#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the concurrent runtime:
# a ThreadSanitizer pass (data races — including the chaos harness) and
# an ASan+UBSan pass (memory errors / undefined behavior).
# Usage: scripts/check.sh [release|tsan|asan|chaos|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

san_targets=(runtime_test session_test sws_run_test fault_test chaos_test)

run_release() {
  echo "== Release build + full ctest =="
  cmake --preset release
  cmake --build --preset release -j "$jobs"
  ctest --preset release -j "$jobs"
}

run_tsan() {
  echo "== TSan build + concurrency-sensitive tests =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target "${san_targets[@]}"
  # halt_on_error: a data race fails the suite instead of just logging.
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -j 1
}

run_asan() {
  echo "== ASan+UBSan build + concurrency-sensitive tests =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" --target "${san_targets[@]}"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -j 1
}

run_chaos() {
  echo "== Chaos harness (randomized faults) under TSan =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target chaos_test
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan -L chaos \
    --output-on-failure -j 1
}

case "$mode" in
  release) run_release ;;
  tsan) run_tsan ;;
  asan) run_asan ;;
  chaos) run_chaos ;;
  all) run_release; run_tsan; run_asan ;;
  *) echo "usage: $0 [release|tsan|asan|chaos|all]" >&2; exit 2 ;;
esac
echo "== check.sh ($mode): OK =="
