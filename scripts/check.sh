#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the concurrent runtime:
# a ThreadSanitizer pass (data races — including the chaos harness) and
# an ASan+UBSan pass (memory errors / undefined behavior), a standalone
# UBSan pass (UB without ASan interposition), a crash-recovery chaos pass
# (randomized kill points) under ASan, a replicated-node kill/promotion
# chaos pass under ASan, a self-healing failover pass (fencing epochs,
# elections, catch-up) under ASan, and a deterministic fuzz smoke over
# the serde decoders.
# Usage: scripts/check.sh
#   [release|tsan|asan|ubsan|chaos|recovery|replication|failover|bench|fuzz|all]
# (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

san_targets=(runtime_test session_test sws_run_test fault_test chaos_test
             persistence_test crash_recovery_test governor_test serde_fuzz
             replication_test node_chaos_test failover_test relational_test
             query_engine_test)

run_release() {
  echo "== Release build + full ctest =="
  cmake --preset release
  cmake --build --preset release -j "$jobs"
  ctest --preset release -j "$jobs"
}

run_tsan() {
  echo "== TSan build + concurrency-sensitive tests =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target "${san_targets[@]}"
  # halt_on_error: a data race fails the suite instead of just logging.
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -j 1
}

run_asan() {
  echo "== ASan+UBSan build + concurrency-sensitive tests =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" --target "${san_targets[@]}"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -j 1
}

run_ubsan() {
  echo "== Standalone UBSan build + concurrency-sensitive tests =="
  cmake --preset ubsan
  cmake --build --preset ubsan -j "$jobs" --target "${san_targets[@]}"
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --preset ubsan -j 1
}

run_fuzz() {
  echo "== Deterministic fuzz smoke over the serde decoders =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target serde_fuzz
  ctest --test-dir build -L fuzz --output-on-failure -j 1
}

run_bench() {
  echo "== Query-engine benchmarks vs checked-in baseline =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_query_engine \
    bench_interning bench_persistence
  ./build/bench/bench_query_engine --benchmark_min_time=0.05 \
    --benchmark_format=json > /tmp/bench_query_engine.fresh.json
  # The naive/raw-tree reference evaluators are exponential-cost and
  # scheduler-bound; their run-to-run noise on the 1-CPU host exceeds
  # 25%, so the broad diff gates loosely. The hot path is gated tightly
  # below.
  python3 scripts/bench_diff.py BENCH_query_engine.json \
    /tmp/bench_query_engine.fresh.json --threshold 0.75
  # Gate specifically on the chain-join hot path: these are the numbers
  # the bytecode executor exists for, so a regression here fails check.
  python3 scripts/bench_diff.py BENCH_query_engine.json \
    /tmp/bench_query_engine.fresh.json --filter 'BM_CqChainJoin' \
    --threshold 0.25
  echo "== Interning/columnar microbenchmarks vs checked-in baseline =="
  ./build/bench/bench_interning --benchmark_min_time=0.05 \
    --benchmark_format=json > /tmp/bench_interning.fresh.json
  python3 scripts/bench_diff.py BENCH_interning.json \
    /tmp/bench_interning.fresh.json
  echo "== Durability benchmarks vs checked-in baseline =="
  ./build/bench/bench_persistence --benchmark_min_time=0.05 \
    --benchmark_format=json > /tmp/bench_persistence.fresh.json
  # fsync timing is at the mercy of the host's storage stack; allow 2x.
  python3 scripts/bench_diff.py BENCH_persistence.json \
    /tmp/bench_persistence.fresh.json --threshold 1.0
  echo "== Replication benchmarks vs checked-in baseline =="
  cmake --build --preset release -j "$jobs" --target bench_replication
  ./build/bench/bench_replication --benchmark_min_time=0.05 \
    --benchmark_format=json > /tmp/bench_replication.fresh.json
  # Barrier latency is scheduler-bound on a 1-CPU host; allow 2x.
  python3 scripts/bench_diff.py BENCH_replication.json \
    /tmp/bench_replication.fresh.json --threshold 1.0
}

run_recovery() {
  echo "== Crash-recovery chaos harness (randomized kill points) under ASan =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" --target crash_recovery_test \
    persistence_test
  ASAN_OPTIONS="halt_on_error=1" ctest --test-dir build-asan -L recovery \
    --output-on-failure -j 1
}

run_replication() {
  echo "== Replicated-node kill/promotion chaos under ASan =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" --target replication_test \
    node_chaos_test
  ASAN_OPTIONS="halt_on_error=1" ctest --test-dir build-asan -L replication \
    --output-on-failure -j 1
}

run_failover() {
  echo "== Self-healing failover (fencing, elections, catch-up) under ASan =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" --target failover_test \
    replication_test
  ASAN_OPTIONS="halt_on_error=1" ctest --test-dir build-asan -L failover \
    --output-on-failure -j 1
}

run_chaos() {
  echo "== Chaos harness (randomized faults) under TSan =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target chaos_test
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan -L chaos \
    --output-on-failure -j 1
}

case "$mode" in
  release) run_release ;;
  tsan) run_tsan ;;
  asan) run_asan ;;
  ubsan) run_ubsan ;;
  chaos) run_chaos ;;
  recovery) run_recovery ;;
  replication) run_replication ;;
  failover) run_failover ;;
  bench) run_bench ;;
  fuzz) run_fuzz ;;
  all) run_release; run_tsan; run_asan; run_ubsan ;;
  *) echo "usage: $0 [release|tsan|asan|ubsan|chaos|recovery|replication|failover|bench|fuzz|all]" >&2
     exit 2 ;;
esac
echo "== check.sh ($mode): OK =="
