#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrent
# runtime. Usage: scripts/check.sh [release|tsan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_release() {
  echo "== Release build + full ctest =="
  cmake --preset release
  cmake --build --preset release -j "$jobs"
  ctest --preset release -j "$jobs"
}

run_tsan() {
  echo "== TSan build + concurrency-sensitive tests =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
    --target runtime_test session_test sws_run_test
  # halt_on_error: a data race fails the suite instead of just logging.
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -j 1
}

case "$mode" in
  release) run_release ;;
  tsan) run_tsan ;;
  all) run_release; run_tsan ;;
  *) echo "usage: $0 [release|tsan|all]" >&2; exit 2 ;;
esac
echo "== check.sh ($mode): OK =="
