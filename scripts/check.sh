#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the concurrent runtime:
# a ThreadSanitizer pass (data races — including the chaos harness) and
# an ASan+UBSan pass (memory errors / undefined behavior).
# Usage: scripts/check.sh [release|tsan|asan|chaos|bench|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

san_targets=(runtime_test session_test sws_run_test fault_test chaos_test)

run_release() {
  echo "== Release build + full ctest =="
  cmake --preset release
  cmake --build --preset release -j "$jobs"
  ctest --preset release -j "$jobs"
}

run_tsan() {
  echo "== TSan build + concurrency-sensitive tests =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target "${san_targets[@]}"
  # halt_on_error: a data race fails the suite instead of just logging.
  TSAN_OPTIONS="halt_on_error=1" ctest --preset tsan -j 1
}

run_asan() {
  echo "== ASan+UBSan build + concurrency-sensitive tests =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs" --target "${san_targets[@]}"
  ASAN_OPTIONS="halt_on_error=1" ctest --preset asan -j 1
}

run_bench() {
  echo "== Query-engine benchmarks vs checked-in baseline =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_query_engine
  ./build/bench/bench_query_engine --benchmark_min_time=0.05 \
    --benchmark_format=json > /tmp/bench_query_engine.fresh.json
  python3 scripts/bench_diff.py BENCH_query_engine.json \
    /tmp/bench_query_engine.fresh.json
}

run_chaos() {
  echo "== Chaos harness (randomized faults) under TSan =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target chaos_test
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan -L chaos \
    --output-on-failure -j 1
}

case "$mode" in
  release) run_release ;;
  tsan) run_tsan ;;
  asan) run_asan ;;
  chaos) run_chaos ;;
  bench) run_bench ;;
  all) run_release; run_tsan; run_asan ;;
  *) echo "usage: $0 [release|tsan|asan|chaos|bench|all]" >&2; exit 2 ;;
esac
echo "== check.sh ($mode): OK =="
