#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage:
    scripts/bench_diff.py BASELINE.json FRESH.json \
        [--threshold 0.25] [--filter REGEX]

Benchmarks are matched by name (optionally restricted to names matching
--filter); for each pair the relative change in real_time is reported. Exits non-zero if any benchmark regressed by
more than the threshold (default 25% slower). Benchmarks present in
only one file are reported but never fail the run — baselines are
regenerated wholesale when the suite changes.

Both plain google-benchmark output and the repo's wrapped baselines
(top-level "note"/"command"/"context" plus "benchmarks") are accepted.

Runs whose `context.library_build_type` differ are refused outright:
debug-library timings are not comparable to release-library timings,
so a mismatch means the baseline must be re-recorded, not diffed
against. (The field reports how the google-benchmark *library* was
compiled — Debian's libbenchmark ships without NDEBUG and always says
"debug" regardless of how this repo is built.)
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = float(b["real_time"])
    build_type = doc.get("context", {}).get("library_build_type")
    return out, build_type


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated slowdown as a fraction (0.25 = 25%%)")
    parser.add_argument("--filter", default=None, metavar="REGEX",
                        help="only compare benchmarks whose name matches")
    args = parser.parse_args()

    base, base_build = load_benchmarks(args.baseline)
    fresh, fresh_build = load_benchmarks(args.fresh)
    if args.filter:
        pattern = re.compile(args.filter)
        base = {n: v for n, v in base.items() if pattern.search(n)}
        fresh = {n: v for n, v in fresh.items() if pattern.search(n)}

    if base_build != fresh_build:
        print("bench_diff: refusing to compare across library_build_type: "
              f"baseline={base_build!r} fresh={fresh_build!r} — "
              "re-record the baseline instead", file=sys.stderr)
        return 2

    regressions = []
    common = sorted(set(base) & set(fresh))
    if not common:
        print("bench_diff: no common benchmarks between "
              f"{args.baseline} and {args.fresh}", file=sys.stderr)
        return 2

    width = max(len(n) for n in common)
    for name in common:
        old, new = base[name], fresh[name]
        change = (new - old) / old if old > 0 else 0.0
        marker = ""
        if change > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, change))
        elif change < -args.threshold:
            marker = "  (faster)"
        print(f"{name:<{width}}  {old:>12.0f}ns -> {new:>12.0f}ns  "
              f"{change:+7.1%}{marker}")

    for name in sorted(set(base) - set(fresh)):
        print(f"{name:<{width}}  only in baseline")
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<{width}}  only in fresh run")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} benchmark(s) regressed by "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for name, change in regressions:
            print(f"  {name}: {change:+.1%}", file=sys.stderr)
        return 1
    print(f"\nbench_diff: OK ({len(common)} benchmarks within "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
