// Durability benchmarks (PR 4): write-ahead journal append throughput
// under each fsync policy, snapshot capture cost, and full recovery
// (scan + deterministic replay) latency as the session count grows.
// The checked-in baseline is BENCH_persistence.json; regenerate with
//   scripts/check.sh bench
// after any change to src/persistence/ or the serde formats.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "persistence/durability.h"
#include "persistence/journal.h"
#include "persistence/recovery.h"
#include "persistence/serde.h"
#include "persistence/snapshot.h"
#include "sws/session.h"
#include "util/common.h"

namespace {

using sws::core::SessionRunner;
using sws::core::Sws;
using sws::logic::Atom;
using sws::logic::ConjunctiveQuery;
using sws::logic::Term;
using sws::rel::Relation;
using sws::rel::Value;
namespace persistence = sws::persistence;

// The depth-2 logger of session_test: one committed insert per session.
Sws MakeTwoLevelLogger() {
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("Log", {"x"}));
  Sws sws(schema, 1, 3);
  int q0 = sws.AddState("q0");
  int q1 = sws.AddState("q1");
  ConjunctiveQuery pass({Term::Var(0)},
                        {Atom{sws::core::kInputRelation, {Term::Var(0)}}});
  sws.SetTransition(
      q0, {sws::core::TransitionTarget{q1, sws::core::RelQuery::Cq(pass)}});
  ConjunctiveQuery copy_up(
      {Term::Var(0), Term::Var(1), Term::Var(2)},
      {Atom{sws::core::ActRelation(1),
            {Term::Var(0), Term::Var(1), Term::Var(2)}}});
  sws.SetSynthesis(q0, sws::core::RelQuery::Cq(copy_up));
  sws.SetTransition(q1, {});
  ConjunctiveQuery log_msg(
      {Term::Str("ins"), Term::Str("Log"), Term::Var(0)},
      {Atom{sws::core::kMsgRelation, {Term::Var(0)}}});
  sws.SetSynthesis(q1, sws::core::RelQuery::Cq(log_msg));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

sws::rel::Database LoggerDb() {
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("Log", {"x"}));
  return sws::rel::Database(schema);
}

Relation Msg(int64_t v) {
  Relation m(1);
  m.Insert({Value::Int(v)});
  return m;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/sws_bench_persistence_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    SWS_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    std::vector<persistence::DurableFile> files;
    if (persistence::ListDurableFiles(path_, &files).ok()) {
      for (const persistence::DurableFile& f : files) {
        ::unlink((path_ + "/" + f.name).c_str());
      }
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Journal append throughput under one fsync policy. Policy is the whole
// story here: kNever is a buffered write, kBatch adds one fsync per 64
// inputs, kAlways one per append.
void JournalAppendBench(benchmark::State& state,
                        persistence::FsyncPolicy policy) {
  TempDir dir;
  persistence::DurabilityOptions options;
  options.dir = dir.path();
  options.fsync = policy;
  // Keep rotation and snapshot triggers out of the measurement.
  options.segment_bytes = 1ull << 30;
  options.snapshot_interval_appends = 1ull << 40;
  persistence::ShardDurability shard(options,
                                     persistence::SegmentHeader{1, 0, 7}, 0,
                                     nullptr);
  const Relation payload = Msg(42);
  uint64_t seq = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    persistence::JournalRecord record;
    record.type = persistence::JournalRecord::Type::kInput;
    record.session_id = "bench";
    record.seq = seq++;
    record.payload = payload;
    persistence::AppendResult result = shard.AppendInput(record);
    if (!result.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    bytes += 8 + 1 + 4 + 5 + 8 + 1 + 8 + 4 + 4 + 13;  // approx frame size
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

void BM_JournalAppendNever(benchmark::State& state) {
  JournalAppendBench(state, persistence::FsyncPolicy::kNever);
}
BENCHMARK(BM_JournalAppendNever);

void BM_JournalAppendBatch(benchmark::State& state) {
  JournalAppendBench(state, persistence::FsyncPolicy::kBatch);
}
BENCHMARK(BM_JournalAppendBatch);

void BM_JournalAppendAlways(benchmark::State& state) {
  JournalAppendBench(state, persistence::FsyncPolicy::kAlways);
}
BENCHMARK(BM_JournalAppendAlways);

// Snapshot capture cost vs session count: serialize + CRC + atomic
// rename of N session images, each a one-tuple database.
void BM_SnapshotWrite(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  std::vector<persistence::SessionImage> images;
  images.reserve(sessions);
  for (int i = 0; i < sessions; ++i) {
    persistence::SessionImage image;
    image.session_id = "s" + std::to_string(i);
    image.db = LoggerDb();
    image.db.GetMutable("Log")->Insert({Value::Int(i)});
    image.next_seq = 2;
    images.push_back(std::move(image));
  }
  persistence::SnapshotData data;
  data.header = persistence::SegmentHeader{1, 0, 7};
  data.sessions = images;
  TempDir dir;
  const std::string path =
      dir.path() + "/" + persistence::SnapFileName(1, 0, 0);
  for (auto _ : state) {
    sws::core::Status status = persistence::WriteSnapshot(path, data, nullptr);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    ::unlink(path.c_str());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * sessions);
}
BENCHMARK(BM_SnapshotWrite)->RangeMultiplier(4)->Range(64, 1024);

// Full recovery latency vs session count: scan a journal of N sessions
// (one buffered input + one unacknowledged delimiter each) and replay
// every session deterministically through the engine. Inspect() is the
// non-mutating recovery path, so each iteration does the full work.
void BM_RecoveryReplay(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  Sws sws = MakeTwoLevelLogger();
  TempDir dir;
  {
    persistence::DurabilityOptions options;
    options.dir = dir.path();
    options.fsync = persistence::FsyncPolicy::kNever;
    options.segment_bytes = 1ull << 30;
    options.snapshot_interval_appends = 1ull << 40;
    persistence::ShardDurability shard(
        options,
        persistence::SegmentHeader{1, 0, persistence::SwsFingerprint(sws)}, 0,
        nullptr);
    for (int i = 0; i < sessions; ++i) {
      persistence::JournalRecord record;
      record.type = persistence::JournalRecord::Type::kInput;
      record.session_id = "s" + std::to_string(i);
      record.seq = 0;
      record.payload = Msg(i);
      SWS_CHECK(shard.AppendInput(record).ok());
      record.seq = 1;
      record.payload = SessionRunner::DelimiterMessage(1);
      SWS_CHECK(shard.AppendInput(record).ok());
    }
  }
  for (auto _ : state) {
    persistence::RecoveryManager manager(dir.path(), &sws, LoggerDb(),
                                         persistence::RecoveryOptions{},
                                         nullptr);
    persistence::RecoveryResult result = manager.Inspect();
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
    SWS_CHECK(result.replayed.size() == static_cast<size_t>(sessions));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * sessions);
}
BENCHMARK(BM_RecoveryReplay)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace

BENCHMARK_MAIN();
