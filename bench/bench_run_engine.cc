// Supporting benchmark: the Section 2 execution-tree engine itself —
// node counts and run time as functions of input length, branching and
// database size, plus the session/commit layer and the PL value-vector
// engine.

#include <benchmark/benchmark.h>

#include "models/roman.h"
#include "models/travel.h"
#include "sws/execution.h"
#include "sws/generator.h"
#include "sws/session.h"

namespace {

// τ2 (the recursive travel variant): tree size grows linearly with the
// inquiry chain.
void BM_RecursiveRunInputLength(benchmark::State& state) {
  auto service = sws::models::MakeTravelServiceRecursive();
  auto db = sws::models::MakeTravelDatabase();
  size_t n = static_cast<size_t>(state.range(0));
  sws::rel::InputSequence input(3);
  input.Append(sws::models::MakeTravelRequest("orlando", 1000));
  for (size_t j = 1; j < n; ++j) {
    sws::rel::Relation inquiry(3);
    inquiry.Insert({sws::rel::Value::Str("a"), sws::rel::Value::Str("paris"),
                    sws::rel::Value::Int(1000)});
    input.Append(std::move(inquiry));
  }
  size_t nodes = 0;
  for (auto _ : state) {
    auto result = sws::core::Run(service.sws, db, input);
    benchmark::DoNotOptimize(result.output.size());
    nodes = result.num_nodes;
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_RecursiveRunInputLength)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Complexity(benchmark::oN);

// Branching services: tree nodes grow with successor fan-out ^ depth.
void BM_BranchingRun(benchmark::State& state) {
  sws::core::WorkloadGenerator gen(99);
  sws::core::WorkloadGenerator::CqSwsParams params;
  params.num_states = 6;
  params.max_successors = static_cast<int>(state.range(0));
  params.final_state_prob = 0.0;
  sws::core::Sws sws = gen.RandomCqSws(params);
  sws::rel::Database db = gen.RandomDatabase(sws.db_schema(), 4, 4);
  sws::rel::InputSequence input =
      gen.RandomInput(sws.rin_arity(), *sws.MaxDepth(), 2, 4);
  size_t nodes = 0;
  for (auto _ : state) {
    auto result = sws::core::Run(sws, db, input);
    benchmark::DoNotOptimize(result.output.size());
    nodes = result.num_nodes;
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BranchingRun)->DenseRange(1, 4);

// Database-size scaling of the CQ join engine inside runs.
void BM_RunDatabaseScaling(benchmark::State& state) {
  sws::core::WorkloadGenerator gen(7);
  sws::core::WorkloadGenerator::CqSwsParams params;
  params.num_states = 4;
  sws::core::Sws sws = gen.RandomCqSws(params);
  size_t tuples = static_cast<size_t>(state.range(0));
  sws::rel::Database db =
      gen.RandomDatabase(sws.db_schema(), tuples, 8);
  sws::rel::InputSequence input =
      gen.RandomInput(sws.rin_arity(), *sws.MaxDepth(), 4, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sws::core::Run(sws, db, input).output.size());
  }
}
BENCHMARK(BM_RunDatabaseScaling)->RangeMultiplier(4)->Range(4, 256);

// Session stream throughput with commits.
void BM_SessionStream(benchmark::State& state) {
  auto service = sws::models::MakeTravelServiceCqUcq();
  size_t sessions = static_cast<size_t>(state.range(0));
  std::vector<sws::rel::Relation> stream;
  for (size_t i = 0; i < sessions; ++i) {
    stream.push_back(sws::models::MakeTravelRequest("orlando", 1000));
    stream.push_back(sws::core::SessionRunner::DelimiterMessage(3));
  }
  for (auto _ : state) {
    sws::core::SessionRunner runner(&service.sws,
                                    sws::models::MakeTravelDatabase());
    auto outcomes = runner.FeedStream(stream);
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sessions));
}
BENCHMARK(BM_SessionStream)->RangeMultiplier(4)->Range(1, 64);

// The PL value-vector run engine on Roman-translated words.
void BM_PlRunWordLength(benchmark::State& state) {
  sws::fsa::Dfa target(3, 2);
  target.set_start(0);
  target.SetFinal(0);
  target.SetTransition(0, 0, 1);
  target.SetTransition(0, 1, 2);
  target.SetTransition(1, 1, 0);
  target.SetTransition(1, 0, 2);
  target.SetTransition(2, 0, 2);
  target.SetTransition(2, 1, 2);
  sws::core::PlSws pl = sws::models::RomanToPlSws(target);
  size_t rounds = static_cast<size_t>(state.range(0));
  std::vector<int> word;
  for (size_t i = 0; i < rounds; ++i) {
    word.push_back(0);
    word.push_back(1);
  }
  auto encoded = sws::models::EncodeRomanPlWord(word, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pl.Run(encoded));
  }
  state.SetComplexityN(static_cast<int64_t>(rounds));
}
BENCHMARK(BM_PlRunWordLength)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
