// Table 1, PL rows: non-emptiness / validation / equivalence for
// SWS(PL, PL) (pspace-complete) and SWS_nr(PL, PL) (np / conp-complete).
//
// The recursive procedures are explicit-state reachability over carry
// vectors: the hard family below ("the k-th input from the start must
// carry variable 0", processed right-to-left) forces ~2^k distinct
// carries — the exponential explicit-state realization of the pspace
// bound. The nonrecursive procedures are SAT-based; the pigeonhole
// family forces exponential DPLL behavior — the NP-hardness in action.

#include <benchmark/benchmark.h>

#include "analysis/pl_analysis.h"
#include "analysis/pl_nr_analysis.h"
#include "models/roman.h"
#include "sws/generator.h"

namespace {

using sws::core::PlSws;
using sws::logic::PlFormula;
using F = PlFormula;

// NFA over {a=0, b=1} for "|w| >= k and w_k = a": small forward, but
// right-to-left processing must track all suffix positions.
sws::fsa::Nfa KthFromStartNfa(int k) {
  sws::fsa::Nfa nfa(2);
  for (int i = 0; i <= k; ++i) nfa.AddState();
  nfa.AddInitial(0);
  for (int i = 0; i + 1 < k; ++i) {
    nfa.AddTransition(i, 0, i + 1);
    nfa.AddTransition(i, 1, i + 1);
  }
  nfa.AddTransition(k - 1, 0, k);  // the k-th symbol must be 'a'
  nfa.AddTransition(k, 0, k);
  nfa.AddTransition(k, 1, k);
  nfa.AddFinal(k);
  return nfa;
}

void BM_PlNonEmptinessHardFamily(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  PlSws sws = sws::models::RomanToPlSws(KthFromStartNfa(k));
  uint64_t carries = 0;
  for (auto _ : state) {
    auto result = sws::analysis::PlNonEmptiness(sws);
    benchmark::DoNotOptimize(result.holds);
    carries = result.stats.carries_explored;
  }
  state.counters["carries"] = static_cast<double>(carries);
  state.counters["states"] = sws.num_states();
}
BENCHMARK(BM_PlNonEmptinessHardFamily)->DenseRange(2, 9);

void BM_PlEquivalenceHardFamily(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  PlSws a = sws::models::RomanToPlSws(KthFromStartNfa(k));
  PlSws b = sws::models::RomanToPlSws(KthFromStartNfa(k));
  uint64_t carries = 0;
  for (auto _ : state) {
    auto result = sws::analysis::PlEquivalence(a, b);
    benchmark::DoNotOptimize(result.equivalent);
    carries = result.stats.carries_explored;
  }
  state.counters["carry_pairs"] = static_cast<double>(carries);
}
BENCHMARK(BM_PlEquivalenceHardFamily)->DenseRange(2, 7);

void BM_PlNonEmptinessRandom(benchmark::State& state) {
  sws::core::WorkloadGenerator gen(1234);
  sws::core::WorkloadGenerator::PlSwsParams params;
  params.num_states = static_cast<int>(state.range(0));
  params.allow_recursion = true;
  PlSws sws = gen.RandomPlSws(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sws::analysis::PlNonEmptiness(sws).holds);
  }
}
BENCHMARK(BM_PlNonEmptinessRandom)->DenseRange(4, 12, 2);

// The nonrecursive NP procedure on a pigeonhole-hard family: a depth-2
// service whose run formula is PHP(p pigeons, p-1 holes) over I_1.
PlSws PigeonholeService(int pigeons) {
  int holes = pigeons - 1;
  int vars = pigeons * holes;
  PlSws sws(vars);
  int q0 = sws.AddState("q0");
  int leaf = sws.AddState("leaf");
  sws.SetTransition(q0, {{leaf, F::True()}});
  sws.SetSynthesis(q0, F::Var(0));
  sws.SetTransition(leaf, {});
  std::vector<F> clauses;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<F> some;
    for (int h = 0; h < holes; ++h) some.push_back(F::Var(p * holes + h));
    clauses.push_back(F::Or(std::move(some)));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        clauses.push_back(F::Or(F::Not(F::Var(p1 * holes + h)),
                                F::Not(F::Var(p2 * holes + h))));
      }
    }
  }
  sws.SetSynthesis(leaf, F::And(std::move(clauses)));
  return sws;
}

void BM_NrNonEmptinessPigeonhole(benchmark::State& state) {
  PlSws sws = PigeonholeService(static_cast<int>(state.range(0)));
  uint64_t conflicts = 0;
  for (auto _ : state) {
    auto result = sws::analysis::NrNonEmptiness(sws);
    benchmark::DoNotOptimize(result.holds);
    conflicts = result.sat_stats.conflicts;
  }
  state.counters["sat_conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_NrNonEmptinessPigeonhole)->DenseRange(3, 7);

void BM_NrEquivalenceRandom(benchmark::State& state) {
  sws::core::WorkloadGenerator gen(777);
  sws::core::WorkloadGenerator::PlSwsParams params;
  params.num_states = static_cast<int>(state.range(0));
  params.allow_recursion = false;
  PlSws a = gen.RandomPlSws(params);
  PlSws b = gen.RandomPlSws(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sws::analysis::NrEquivalence(a, b).holds);
  }
}
BENCHMARK(BM_NrEquivalenceRandom)->DenseRange(3, 7);

// The AFA ↔ SWS(PL, PL) correspondence (Theorem 4.1(3) lower bound): AFA
// emptiness through the SWS translation vs. directly.
void BM_AfaViaSwsTranslation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // AFA requiring all of n chains to accept (conjunction).
  sws::fsa::Afa afa(2 * n, 2);
  std::vector<F> init;
  for (int i = 0; i < n; ++i) {
    afa.AddFinal(2 * i + 1);
    afa.SetTransition(2 * i, 0, F::Var(2 * i + 1));
    afa.SetTransition(2 * i, 1, F::Var(2 * i));
    afa.SetTransition(2 * i + 1, 0, F::Var(2 * i + 1));
    afa.SetTransition(2 * i + 1, 1, F::Var(2 * i + 1));
    init.push_back(F::Var(2 * i));
  }
  afa.SetInitialFormula(F::And(std::move(init)));
  sws::core::PlSws sws = sws::analysis::AfaToPlSws(afa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sws::analysis::PlNonEmptiness(sws).holds);
  }
  state.counters["sws_states"] = sws.num_states();
}
BENCHMARK(BM_AfaViaSwsTranslation)->DenseRange(1, 4);

}  // namespace

BENCHMARK_MAIN();
