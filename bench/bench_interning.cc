// Interning + columnar-relation microbenchmarks (PR 7): intern/lookup
// throughput, packed-Value equality/hash, and columnar scans vs the
// boxed tuple iteration the set-backed representation forced. The
// checked-in baseline is BENCH_interning.json; regenerate with
//   scripts/check.sh bench
// after any change to relational/intern.* or the Value/Relation layout.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "relational/intern.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace {

using sws::rel::Interner;
using sws::rel::Relation;
using sws::rel::Tuple;
using sws::rel::TupleHash;
using sws::rel::Value;

std::vector<std::string> Words(size_t n) {
  std::vector<std::string> words;
  words.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    words.push_back("constant_" + std::to_string(i));
  }
  return words;
}

// Hit-path throughput: re-interning an already-known string (the common
// case — workload vocabularies are finite). Covers the shard-map lookup.
void BM_InternStringHit(benchmark::State& state) {
  const auto words = Words(static_cast<size_t>(state.range(0)));
  for (const auto& w : words) Interner::Global().InternString(w);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Interner::Global().InternString(words[i]));
    i = (i + 1) % words.size();
  }
}
BENCHMARK(BM_InternStringHit)->Arg(1024);

// Id-to-payload lookup (the hot direction: ToString/serde/ordering).
// Lock-free chunked-table read.
void BM_InternStringLookup(benchmark::State& state) {
  const auto words = Words(1024);
  std::vector<uint64_t> ids;
  ids.reserve(words.size());
  for (const auto& w : words) {
    ids.push_back(Interner::Global().InternString(w));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Interner::Global().StringAt(ids[i]).size());
    i = (i + 1) % ids.size();
  }
}
BENCHMARK(BM_InternStringLookup);

// Equality of two string-kind Values: one packed-word compare now; was
// a kind check + std::string compare before interning.
void BM_ValueStringEquality(benchmark::State& state) {
  const Value a = Value::Str("a_moderately_long_constant_name");
  const Value b = Value::Str("a_moderately_long_constant_nam_");
  bool eq = false;
  for (auto _ : state) {
    eq ^= (a == b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_ValueStringEquality);

void BM_TupleHash3(benchmark::State& state) {
  const Tuple t = {Value::Str("orlando"), Value::Int(42), Value::Null(7)};
  TupleHash hash;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(t));
  }
}
BENCHMARK(BM_TupleHash3);

Relation ScanRelation(size_t rows) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int64_t> v(0, 1 << 20);
  Relation r(3);
  while (r.size() < rows) {
    r.Insert({Value::Int(v(rng)), Value::Int(v(rng)), Value::Int(v(rng))});
  }
  return r;
}

// Columnar scan: walk one column of the arena directly (what the
// bytecode executor's kLoad/kCheckCol ops do per candidate row).
void BM_ColumnarScan(benchmark::State& state) {
  const Relation r = ScanRelation(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    size_t h = 0;
    const Value* col = r.ColumnData(1);
    for (size_t i = 0; i < r.size(); ++i) h ^= col[i].Hash();
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_ColumnarScan)->Range(1 << 10, 1 << 14);

// Boxed iteration: materialize each row as a Tuple, the legacy-style
// access pattern (what pre-columnar set iteration cost per tuple, minus
// the pointer chasing).
void BM_BoxedTupleScan(benchmark::State& state) {
  const Relation r = ScanRelation(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    size_t h = 0;
    for (const Tuple& t : r) h ^= t[1].Hash();
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_BoxedTupleScan)->Range(1 << 10, 1 << 14);

// Sorted point insertion into the columnar arena (binary search + one
// memmove per column): the mutation-side cost the scan speed buys.
void BM_RelationInsertErase(benchmark::State& state) {
  Relation r = ScanRelation(static_cast<size_t>(state.range(0)));
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<int64_t> v(0, 1 << 20);
  for (auto _ : state) {
    Tuple t = {Value::Int(v(rng)), Value::Int(v(rng)), Value::Int(v(rng))};
    if (r.Insert(t)) r.Erase(t);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_RelationInsertErase)->Range(1 << 10, 1 << 14);

}  // namespace

BENCHMARK_MAIN();
