// Table 2: complexity of composition synthesis. The decidable cases all
// run through exponential machinery, measured here:
//  * regular-language rewriting [8] (the MDT(∨) cases, up to
//    2expspace/3expspace): determinization + complement + view
//    summaries — automaton sizes are the cost drivers;
//  * bounded PL mediator enumeration with k-prefix equivalence checks
//    (MDT_b(PL), expspace/pspace cases);
//  * CQ-view rewriting composition (the SWSnr(CQ, UCQ) 2expspace case /
//    Corollary 5.2's 2exptime special case);
//  * Roman-model composition (exptime-complete [6, 24]) for the
//    contrast the paper draws in Section 5.2.

#include <benchmark/benchmark.h>

#include "automata/regex.h"
#include "mediator/cq_composition.h"
#include "mediator/pl_composition.h"
#include "models/roman_composition.h"
#include "models/travel.h"
#include "rewriting/regular_rewriting.h"

namespace {

using sws::fsa::CompileRegexes;
using sws::fsa::Dfa;
using sws::fsa::Nfa;
using sws::fsa::RegexAlphabet;

// Goal: "position k from the start is a" over {a, b}; views: letters.
// The bad-word automaton determinizes over suffix uncertainty: its size
// grows exponentially with k.
void BM_RegularRewritingGrowth(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  RegexAlphabet alphabet;
  std::string goal = "";
  for (int i = 1; i < k; ++i) goal += "(a|b)";
  goal += "a(a|b)*";
  auto nfas = CompileRegexes({goal, "a", "b"}, &alphabet);
  uint64_t bad_states = 0;
  for (auto _ : state) {
    auto result = sws::rw::RewriteRegular(nfas[0], {nfas[1], nfas[2]});
    benchmark::DoNotOptimize(result.exact);
    bad_states = result.bad_word_dfa_states;
  }
  state.counters["bad_word_dfa_states"] = static_cast<double>(bad_states);
}
BENCHMARK(BM_RegularRewritingGrowth)->DenseRange(1, 8);

// Longer view languages: goal (ab)^k-separable family.
void BM_RegularRewritingViewLength(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  RegexAlphabet alphabet;
  std::string view = "";
  for (int i = 0; i < k; ++i) view += "ab";
  auto nfas = CompileRegexes({"(ab)*", view}, &alphabet);
  for (auto _ : state) {
    auto result = sws::rw::RewriteRegular(nfas[0], {nfas[1]});
    benchmark::DoNotOptimize(result.exact);
  }
}
BENCHMARK(BM_RegularRewritingViewLength)->DenseRange(1, 6);

// Bounded PL mediator search: candidate space grows with the number of
// components and mediator states (the MDT_b(PL) expspace flavor).
void BM_FindPlMediator(benchmark::State& state) {
  using sws::core::PlSws;
  using F = sws::logic::PlFormula;
  int num_components = static_cast<int>(state.range(0));
  // Goal: conjunction of the first two variables (components 0 and 1
  // suffice; extras are distractors enlarging the search space).
  PlSws goal(num_components);
  {
    int q0 = goal.AddState("q0");
    int l0 = goal.AddState("l0");
    int l1 = goal.AddState("l1");
    goal.SetTransition(q0, {{l0, F::True()}, {l1, F::True()}});
    goal.SetSynthesis(q0, F::And(F::Var(0), F::Var(1)));
    goal.SetTransition(l0, {});
    goal.SetSynthesis(l0, F::Var(0));
    goal.SetTransition(l1, {});
    goal.SetSynthesis(l1, F::Var(1));
  }
  std::vector<PlSws> components;
  for (int v = 0; v < num_components; ++v) {
    PlSws c(num_components);
    int q0 = c.AddState("q0");
    int leaf = c.AddState("leaf");
    c.SetTransition(q0, {{leaf, F::True()}});
    c.SetSynthesis(q0, F::Var(0));
    c.SetTransition(leaf, {});
    c.SetSynthesis(leaf, F::Var(v));
    components.push_back(std::move(c));
  }
  std::vector<const PlSws*> pointers;
  for (const auto& c : components) pointers.push_back(&c);
  uint64_t tried = 0;
  for (auto _ : state) {
    auto result = sws::med::FindPlMediator(goal, pointers);
    benchmark::DoNotOptimize(result.found);
    tried = result.mediators_tried;
  }
  state.counters["mediators_tried"] = static_cast<double>(tried);
}
BENCHMARK(BM_FindPlMediator)->DenseRange(2, 4);

// CQ composition of the travel service from Example 5.1's components.
void BM_CqCompositionTravel(benchmark::State& state) {
  auto goal = sws::models::MakeTravelServiceCqUcq();
  auto ta = sws::models::MakeTravelComponentAirfare();
  auto tht = sws::models::MakeTravelComponentHotelTickets();
  auto thc = sws::models::MakeTravelComponentHotelCar();
  std::vector<const sws::core::Sws*> components = {&ta.sws, &tht.sws,
                                                   &thc.sws};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::med::ComposeCqOneLevel(goal.sws, components).found);
  }
}
BENCHMARK(BM_CqCompositionTravel);

// Roman-model composition: the product space grows exponentially with
// the number of components (exptime-complete).
void BM_RomanComposition(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  // Target: (a_0 a_1 ... a_{m-1})*, component i supplies letter i.
  int sigma = m;
  Dfa target(m + 1, sigma);
  target.set_start(0);
  target.SetFinal(0);
  for (int i = 0; i < m; ++i) {
    for (int a = 0; a < sigma; ++a) target.SetTransition(i, a, m);
    target.SetTransition(i, i, (i + 1) % m);
  }
  for (int a = 0; a < sigma; ++a) target.SetTransition(m, a, m);
  std::vector<Dfa> components;
  for (int i = 0; i < m; ++i) {
    Dfa c(2, sigma);
    c.set_start(0);
    c.SetFinal(0);
    for (int a = 0; a < sigma; ++a) c.SetTransition(0, a, 1);
    c.SetTransition(0, i, 0);
    for (int a = 0; a < sigma; ++a) c.SetTransition(1, a, 1);
    components.push_back(std::move(c));
  }
  uint64_t product = 0;
  for (auto _ : state) {
    auto result = sws::models::ComposeRoman(target, components);
    benchmark::DoNotOptimize(result.composable);
    product = result.product_states_visited;
  }
  state.counters["product_states"] = static_cast<double>(product);
}
BENCHMARK(BM_RomanComposition)->DenseRange(2, 6);

}  // namespace

BENCHMARK_MAIN();
