// Table 1, FO row: everything is undecidable, already for
// SWS_nr(FO, FO), by reduction from FO (finite) satisfiability. What a
// benchmark *can* show is the cost profile of the only implementable
// procedure — bounded (D, I) enumeration — whose instance space explodes
// doubly exponentially in the domain/arity bounds, illustrating why no
// uniform procedure exists.

#include <benchmark/benchmark.h>

#include "analysis/fo_analysis.h"
#include "models/travel.h"
#include "sws/execution.h"

namespace {

using sws::analysis::FoBoundedNonEmptiness;
using sws::analysis::FoBoundedOptions;
using sws::analysis::FoSatToSws;
using sws::logic::FoFormula;
using sws::logic::Term;

FoFormula UnsatisfiableSentence() {
  FoFormula nonempty =
      FoFormula::Exists(0, FoFormula::MakeAtom("R", {Term::Var(0)}));
  FoFormula empty = FoFormula::Forall(
      0, FoFormula::Not(FoFormula::MakeAtom("R", {Term::Var(0)})));
  return FoFormula::And(nonempty, empty);
}

FoFormula NeedsTwoElements() {
  return FoFormula::Exists(
      0, FoFormula::Exists(
             1, FoFormula::And(
                    FoFormula::MakeAtom("R", {Term::Var(0), Term::Var(1)}),
                    FoFormula::Neq(Term::Var(0), Term::Var(1)))));
}

// The instance space over domain {1..k}: 2^(k^arity) databases per
// relation — the enumeration's cost explodes with the domain bound.
void BM_FoBoundedSearchUnsat(benchmark::State& state) {
  auto sws = FoSatToSws(UnsatisfiableSentence());
  FoBoundedOptions options;
  options.max_domain_size = static_cast<size_t>(state.range(0));
  options.max_instances = 2000000;
  uint64_t instances = 0;
  for (auto _ : state) {
    auto result = FoBoundedNonEmptiness(sws, options);
    benchmark::DoNotOptimize(result.found);
    instances = result.instances_checked;
  }
  state.counters["instances"] = static_cast<double>(instances);
}
BENCHMARK(BM_FoBoundedSearchUnsat)->DenseRange(1, 3);

void BM_FoBoundedSearchSat(benchmark::State& state) {
  auto sws = FoSatToSws(NeedsTwoElements());
  FoBoundedOptions options;
  options.max_domain_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FoBoundedNonEmptiness(sws, options).found);
  }
}
BENCHMARK(BM_FoBoundedSearchSat)->DenseRange(2, 4);

// Equivalence refutation against the empty service (the reduction's
// equivalence half).
void BM_FoBoundedInequivalence(benchmark::State& state) {
  auto sws = FoSatToSws(NeedsTwoElements());
  auto empty = sws::analysis::EmptyServiceLike(sws);
  FoBoundedOptions options;
  options.max_domain_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::analysis::FoBoundedInequivalence(sws, empty, options).found);
  }
}
BENCHMARK(BM_FoBoundedInequivalence)->DenseRange(2, 3);

// FO-run cost on the data-driven travel service (active-domain
// evaluation of the deterministic-preference synthesis).
void BM_FoTravelRun(benchmark::State& state) {
  auto service = sws::models::MakeTravelService();
  auto db = sws::models::MakeTravelDatabase();
  sws::rel::InputSequence input(3);
  input.Append(sws::models::MakeTravelRequest("orlando", 1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::core::Run(service.sws, db, input).output.size());
  }
}
BENCHMARK(BM_FoTravelRun);

}  // namespace

BENCHMARK_MAIN();
