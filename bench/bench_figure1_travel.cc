// Figure 1: the FSA (sequential) vs SWS (parallel, deferred-commit)
// specification of the travel-package service. The paper's three
// motivations for SWS's are measured on a synthetic workload:
//  1. *Parallelism*: the FSA chains airfare → hotel → local-arrangement
//     checks, so its end-to-end latency is the SUM of per-check
//     latencies; the SWS issues them in parallel, paying the MAX.
//  2. *Deferred commitment*: the FSA books as it goes and must roll back
//     earlier bookings when a later conjunct fails; the SWS synthesizes
//     first and commits once — zero rollbacks.
//  3. *Deterministic synthesis*: when both tickets and a car are
//     available, the SWS commits to exactly one option (no double
//     bookings); a nondeterministic FSA may try both branches.
// Latencies are simulated (fixed per-catalog costs), so the shape — sum
// vs max, rollbacks vs none — is hardware-independent. The real engine's
// run cost is measured alongside.

#include <benchmark/benchmark.h>

#include <random>

#include "models/travel.h"
#include "sws/execution.h"

namespace {

// Simulated per-check latencies (milliseconds).
constexpr double kAirfareMs = 120;
constexpr double kHotelMs = 90;
constexpr double kTicketMs = 60;
constexpr double kCarMs = 50;

struct Workload {
  // Per-request availability flags.
  std::vector<std::array<bool, 4>> requests;  // airfare, hotel, ticket, car
};

Workload MakeWorkload(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> coin(0, 9);
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.requests.push_back({coin(rng) < 9,   // airfare usually available
                          coin(rng) < 7,   // hotels sometimes full
                          coin(rng) < 5,   // tickets 50/50
                          coin(rng) < 8}); // cars mostly available
  }
  return w;
}

// The sequential FSA of Figure 1(a): airfare, then hotel, then ticket,
// then (on failure) car; bookings commit eagerly and roll back on a
// later failure.
void BM_Figure1SequentialFsa(benchmark::State& state) {
  Workload w = MakeWorkload(4096, 42);
  double total_latency = 0;
  uint64_t rollbacks = 0;
  uint64_t booked = 0;
  for (auto _ : state) {
    total_latency = 0;
    rollbacks = 0;
    booked = 0;
    for (const auto& r : w.requests) {
      double latency = kAirfareMs;  // always checks airfare first
      int committed = 0;
      bool ok = r[0];
      if (ok) {
        ++committed;  // airfare booked eagerly
        latency += kHotelMs;
        ok = r[1];
      }
      if (ok) {
        ++committed;  // hotel booked eagerly
        latency += kTicketMs;
        if (!r[2]) {
          latency += kCarMs;  // fall back to the car desk
          ok = r[3];
        }
      }
      if (ok) {
        ++booked;
      } else {
        rollbacks += committed;  // cancel earlier eager bookings
      }
      total_latency += latency;
      benchmark::DoNotOptimize(latency);
    }
  }
  state.counters["avg_latency_ms"] =
      total_latency / static_cast<double>(w.requests.size());
  state.counters["rollbacks"] = static_cast<double>(rollbacks);
  state.counters["booked"] = static_cast<double>(booked);
}
BENCHMARK(BM_Figure1SequentialFsa);

// The SWS of Figure 1(b): all four checks in parallel (latency = max),
// synthesis decides afterwards, commitment deferred (no rollbacks ever).
void BM_Figure1ParallelSws(benchmark::State& state) {
  Workload w = MakeWorkload(4096, 42);
  double total_latency = 0;
  uint64_t rollbacks = 0;
  uint64_t booked = 0;
  for (auto _ : state) {
    total_latency = 0;
    rollbacks = 0;
    booked = 0;
    for (const auto& r : w.requests) {
      double latency =
          std::max({kAirfareMs, kHotelMs, kTicketMs, kCarMs});
      bool ok = r[0] && r[1] && (r[2] || r[3]);
      if (ok) ++booked;
      // Deferred commitment: nothing to roll back on failure.
      total_latency += latency;
      benchmark::DoNotOptimize(ok);
    }
  }
  state.counters["avg_latency_ms"] =
      total_latency / static_cast<double>(w.requests.size());
  state.counters["rollbacks"] = static_cast<double>(rollbacks);
  state.counters["booked"] = static_cast<double>(booked);
}
BENCHMARK(BM_Figure1ParallelSws);

// The real execution engine on the Figure 1 service: per-session run
// cost over the three destinations (success, fallback, failure).
void BM_Figure1EngineRun(benchmark::State& state) {
  auto service = sws::models::MakeTravelService();
  auto db = sws::models::MakeTravelDatabase();
  std::vector<sws::rel::InputSequence> inputs;
  for (const char* dest : {"orlando", "paris", "tokyo"}) {
    sws::rel::InputSequence input(3);
    input.Append(sws::models::MakeTravelRequest(dest, 1000));
    inputs.push_back(std::move(input));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::core::Run(service.sws, db, inputs[i % 3]).output.size());
    ++i;
  }
}
BENCHMARK(BM_Figure1EngineRun);

// Catalog-size scaling of the engine (the FO synthesis evaluates over
// the active domain).
void BM_Figure1EngineCatalogScaling(benchmark::State& state) {
  auto service = sws::models::MakeTravelService();
  auto db = sws::models::MakeTravelDatabase();
  int extra = static_cast<int>(state.range(0));
  for (int i = 0; i < extra; ++i) {
    std::string dest = "city" + std::to_string(i);
    for (const char* rel : {"Ra", "Rh", "Rt", "Rc"}) {
      db.GetMutable(rel)->Insert(
          {sws::rel::Value::Str(dest), sws::rel::Value::Int(100 + i)});
    }
  }
  sws::rel::InputSequence input(3);
  input.Append(sws::models::MakeTravelRequest("orlando", 1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::core::Run(service.sws, db, input).output.size());
  }
}
BENCHMARK(BM_Figure1EngineCatalogScaling)->RangeMultiplier(4)->Range(1, 64);

}  // namespace

BENCHMARK_MAIN();
