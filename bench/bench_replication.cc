// Replication benchmark: commit latency of a replicated session as a
// function of the follower ack quorum, on a 3-node in-process cluster
// (src/replication). Each iteration runs one full session — a message
// plus the '#' delimiter — on the session's primary and waits for the
// client ack, so the measured latency includes local durability, the
// CRC-framed shipment to both followers, and the quorum ack barrier:
//  * quorum:0 — replicas=0, no replication wiring on the commit path,
//  * quorum:1 — replicas=2, ack_quorum=1 (first follower ack releases),
//  * quorum:2 — replicas=2, ack_quorum=2 (both followers must ack).
// The quorum:0 → quorum:1 step is the price of the barrier itself;
// quorum:1 → quorum:2 is the price of waiting for the slower follower.
//
// BM_RuntimeTravelReplicasZero re-runs the BENCH_runtime.json travel
// workload (bench_runtime_throughput.cc) through the same library so
// the non-replicated hot path can be diffed against that baseline: the
// replication hooks are a null check when no commit barrier is wired,
// so the numbers must agree within noise. Recorded in
// BENCH_replication.json.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "logic/cq.h"
#include "models/travel.h"
#include "persistence/durability.h"
#include "replication/node.h"
#include "replication/replica_group.h"
#include "replication/transport.h"
#include "runtime/runtime.h"
#include "sws/session.h"
#include "util/common.h"

namespace {

using sws::core::SessionRunner;
using sws::core::Sws;
using sws::logic::Atom;
using sws::logic::ConjunctiveQuery;
using sws::logic::Term;
using sws::rel::Relation;
using sws::rel::Value;
using sws::rt::RuntimeOptions;
using sws::rt::ServiceRuntime;

// The depth-2 logger from the replication tests: commits each session's
// first message into Log. Deliberately cheap — the service run is a few
// microseconds, so the commit path (durability + barrier) dominates.
Sws MakeTwoLevelLogger() {
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("Log", {"x"}));
  Sws sws(schema, 1, 3);
  int q0 = sws.AddState("q0");
  int q1 = sws.AddState("q1");
  ConjunctiveQuery pass({Term::Var(0)},
                        {Atom{sws::core::kInputRelation, {Term::Var(0)}}});
  sws.SetTransition(
      q0, {sws::core::TransitionTarget{q1, sws::core::RelQuery::Cq(pass)}});
  ConjunctiveQuery copy_up(
      {Term::Var(0), Term::Var(1), Term::Var(2)},
      {Atom{sws::core::ActRelation(1),
            {Term::Var(0), Term::Var(1), Term::Var(2)}}});
  sws.SetSynthesis(q0, sws::core::RelQuery::Cq(copy_up));
  sws.SetTransition(q1, {});
  ConjunctiveQuery log_msg({Term::Str("ins"), Term::Str("Log"), Term::Var(0)},
                           {Atom{sws::core::kMsgRelation, {Term::Var(0)}}});
  sws.SetSynthesis(q1, sws::core::RelQuery::Cq(log_msg));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

sws::rel::Database LoggerDb() {
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("Log", {"x"}));
  return sws::rel::Database(schema);
}

Relation Msg(int64_t v) {
  Relation m(1);
  m.Insert({Value::Int(v)});
  return m;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/sws_bench_replication_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    SWS_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    std::vector<sws::persistence::DurableFile> files;
    if (sws::persistence::ListDurableFiles(path_, &files).ok()) {
      for (const sws::persistence::DurableFile& f : files) {
        ::unlink((path_ + "/" + f.name).c_str());
      }
    }
    // The fencing state is deliberately invisible to ListDurableFiles.
    ::unlink((path_ + "/epoch.fence").c_str());
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Three replicated nodes joined by a clean in-process transport.
// Storage is tuned so it never stalls the measurement: no fsync, large
// segments, snapshots effectively off.
struct Cluster {
  explicit Cluster(sws::replication::ReplicationOptions replication,
                   bool auto_failover = false)
      : group({"n0", "n1", "n2"}), sws(MakeTwoLevelLogger()) {
    for (size_t i = 0; i < 3; ++i) {
      sws::replication::NodeOptions options;
      options.id = "n" + std::to_string(i);
      options.dir = dirs[i].path();
      options.replication = replication;
      options.auto_failover = auto_failover;
      options.runtime.num_workers = 2;
      options.runtime.num_shards = 2;
      options.runtime.durability.fsync = sws::persistence::FsyncPolicy::kNever;
      options.runtime.durability.segment_bytes = 1u << 22;
      options.runtime.durability.snapshot_interval_appends = 1u << 20;
      if (auto_failover) {
        // The watchdog pumps the suspicion clock; its interval bounds
        // how fast silence can be noticed at all.
        options.runtime.governance.enable_watchdog = true;
        options.runtime.governance.watchdog_interval =
            std::chrono::microseconds(500);
      }
      nodes[i] = std::make_unique<sws::replication::ReplicatedNode>(
          options, &sws, LoggerDb(), &group, &transport);
    }
    for (auto& node : nodes) SWS_CHECK(node->Start().ok());
  }
  ~Cluster() {
    for (auto& node : nodes) node->Stop();
  }

  sws::replication::ReplicatedNode* node(const std::string& id) {
    for (auto& n : nodes) {
      if (n->id() == id) return n.get();
    }
    return nullptr;
  }

  // Next unused session id served by `primary`.
  std::string NextSessionOn(const std::string& primary) {
    for (;; ++next_session_) {
      const std::string id = "s" + std::to_string(next_session_);
      if (group.PrimaryOf(id) == primary) {
        ++next_session_;
        return id;
      }
    }
  }

  sws::replication::ReplicaGroup group;
  Sws sws;
  sws::replication::InProcessTransport transport{nullptr};
  TempDir dirs[3];
  std::unique_ptr<sws::replication::ReplicatedNode> nodes[3];
  uint64_t next_session_ = 0;
};

void BM_ReplicatedCommit(benchmark::State& state) {
  const size_t quorum = static_cast<size_t>(state.range(0));
  sws::replication::ReplicationOptions replication;
  replication.replicas = quorum == 0 ? 0 : 2;
  replication.ack_quorum = quorum;
  replication.ack_timeout = std::chrono::milliseconds(1000);
  Cluster cluster(replication);
  sws::replication::ReplicatedNode* primary = cluster.node("n0");

  uint64_t acked = 0;
  for (auto _ : state) {
    const std::string id = cluster.NextSessionOn("n0");
    std::atomic<int> ok{0};
    SWS_CHECK(primary->runtime()->Submit(id, Msg(7)).ok());
    SWS_CHECK(primary->runtime()
                  ->Submit(id, SessionRunner::DelimiterMessage(1),
                           [&](sws::rt::Outcome outcome) {
                             if (outcome.status.ok()) ok.fetch_add(1);
                           })
                  .ok());
    primary->runtime()->Drain();
    SWS_CHECK(ok.load() == 1) << "commit did not ack (quorum " << quorum
                              << ")";
    ++acked;
  }
  state.SetItemsProcessed(static_cast<int64_t>(acked));
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(acked), benchmark::Counter::kIsRate);
  state.counters["quorum"] = static_cast<double>(quorum);
}

// Downtime of a fully automatic failover: wall-clock from killing a
// primary to the first client-acked commit of one of its sessions on
// the self-elected heir. The measured window therefore spans detector
// silence (suspicion_misses missed heartbeats), the quorum election,
// the heir's promotion life (recovery plus tail re-ship), and one
// commit with its ack barrier. Every iteration builds a fresh cluster
// (untimed, via manual timing): depositions are permanent, so a killed
// primary cannot be measured twice in the same group.
void BM_FailoverDowntime(benchmark::State& state) {
  sws::replication::ReplicationOptions replication;
  replication.replicas = 2;
  replication.ack_quorum = 1;
  replication.ack_timeout = std::chrono::milliseconds(250);
  replication.retransmit_interval = std::chrono::milliseconds(2);
  replication.heartbeat_interval = std::chrono::milliseconds(2);
  replication.suspicion_misses = 3;
  replication.heartbeat_jitter = 0.25;
  replication.election_timeout = std::chrono::milliseconds(10);
  uint64_t failovers = 0;
  for (auto _ : state) {
    Cluster cluster(replication, /*auto_failover=*/true);
    // Prime one committed session on n0 so the heir adopts real state,
    // not an empty namespace.
    {
      const std::string warm = cluster.NextSessionOn("n0");
      std::atomic<int> ok{0};
      SWS_CHECK(cluster.node("n0")->runtime()->Submit(warm, Msg(1)).ok());
      SWS_CHECK(cluster.node("n0")
                    ->runtime()
                    ->Submit(warm, SessionRunner::DelimiterMessage(1),
                             [&](sws::rt::Outcome outcome) {
                               if (outcome.status.ok()) ok.fetch_add(1);
                             })
                    .ok());
      cluster.node("n0")->runtime()->Drain();
      SWS_CHECK(ok.load() == 1) << "warmup commit did not ack";
    }

    // Pre-generate n0-owned session ids: once the heir promotes itself,
    // n0 is deposed and PrimaryOf never maps a fresh id to it again, so
    // NextSessionOn("n0") would spin forever post-failover.
    std::vector<std::string> spares;
    for (int k = 0; k < 128; ++k) spares.push_back(cluster.NextSessionOn("n0"));
    const std::string outage = spares.back();
    const auto t0 = std::chrono::steady_clock::now();
    cluster.node("n0")->Kill();
    // The outage ends at the first acked commit of an n0-owned session;
    // attempts before the election resolves simply fail and retry, each
    // burning a spare id (an abandoned half-submitted session must not
    // be reused).
    const auto deadline = t0 + std::chrono::seconds(20);
    bool acked = false;
    std::chrono::steady_clock::time_point t1;
    while (!acked) {
      SWS_CHECK(std::chrono::steady_clock::now() < deadline)
          << "failover never completed";
      SWS_CHECK(!spares.empty()) << "failover attempt budget exhausted";
      const std::string owner = cluster.group.PrimaryOf(outage);
      sws::replication::ReplicatedNode* primary = cluster.node(owner);
      if (owner == "n0" || primary == nullptr || !primary->running()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      auto runtime = primary->runtime_snapshot();
      if (runtime == nullptr) continue;
      const std::string id = spares.back();
      spares.pop_back();
      std::atomic<int> ok{0};
      if (!runtime->Submit(id, Msg(2)).ok()) continue;
      if (!runtime
               ->Submit(id, SessionRunner::DelimiterMessage(1),
                        [&](sws::rt::Outcome outcome) {
                          if (outcome.status.ok()) ok.fetch_add(1);
                        })
               .ok()) {
        continue;
      }
      runtime->Drain();
      if (ok.load() == 1) {
        t1 = std::chrono::steady_clock::now();
        acked = true;
      }
    }
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    ++failovers;
  }
  state.SetItemsProcessed(static_cast<int64_t>(failovers));
}

// The BENCH_runtime.json travel workload, verbatim, through the library
// that now carries the replication hooks — with no barrier wired the
// commit path must cost what it did before the hooks existed.
void BM_RuntimeTravelReplicasZero(benchmark::State& state) {
  static const auto* service =
      new sws::models::TravelService(sws::models::MakeTravelService());
  static const auto* db =
      new sws::rel::Database(sws::models::MakeTravelDatabase());
  constexpr int kSessions = 64;
  std::vector<Relation> stream;
  for (int s = 0; s < 4; ++s) {
    stream.push_back(sws::models::MakeTravelRequest("orlando", 1000));
    stream.push_back(sws::models::MakeTravelRequest("paris", 800));
    stream.push_back(SessionRunner::DelimiterMessage(3));
  }
  uint64_t messages = 0;
  for (auto _ : state) {
    RuntimeOptions options;
    options.num_workers = static_cast<size_t>(state.range(0));
    options.queue_capacity = 1u << 16;
    ServiceRuntime runtime(&service->sws, *db, options);
    for (int c = 0; c < kSessions; ++c) {
      std::string id = "client-" + std::to_string(c);
      for (const Relation& message : stream) runtime.Submit(id, message);
    }
    runtime.Drain();
    messages += static_cast<uint64_t>(kSessions) * stream.size();
    benchmark::DoNotOptimize(runtime.Stats().sessions_closed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_ReplicatedCommit)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_FailoverDowntime)
    ->Iterations(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RuntimeTravelReplicasZero)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
