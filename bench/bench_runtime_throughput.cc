// Runtime benchmark: messages/sec of the concurrent multi-session
// runtime (src/runtime) as a function of worker-thread count, on a
// 64-session mixed workload. Two services:
//  * travel  — the Figure 1 travel agency (SWS(FO,FO), depth 2),
//  * peer    — the web-store peer of Section 3 embedded via f_τ
//              (recursive SWS(FO,FO)).
//
// Each session is an independent client conversation: a few request
// messages followed by a '#' delimiter that runs the service and commits
// against that session's private database. Thread counts are the
// benchmark argument; speedup over threads:1 is the scaling headline
// (recorded in BENCH_runtime.json). On a single-core host the scheduler
// still interleaves sessions, but no speedup should be expected.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "models/peer.h"
#include "models/travel.h"
#include "runtime/runtime.h"
#include "sws/session.h"

namespace {

using sws::rt::RuntimeOptions;
using sws::rt::ServiceRuntime;

constexpr int kSessions = 64;
constexpr int kSessionsPerClient = 4;  // each client closes 4 sessions

struct Workload {
  const sws::core::Sws* sws;
  sws::rel::Database db;
  // One client conversation: the message stream replayed per session id
  // (requests + delimiters, kSessionsPerClient delimiters).
  std::vector<sws::rel::Relation> stream;
};

Workload MakeTravelWorkload(const sws::models::TravelService& service) {
  Workload w;
  w.sws = &service.sws;
  w.db = sws::models::MakeTravelDatabase();
  for (int s = 0; s < kSessionsPerClient; ++s) {
    // A mixed session: an Orlando request, a Paris retry, then commit.
    w.stream.push_back(sws::models::MakeTravelRequest("orlando", 1000));
    w.stream.push_back(sws::models::MakeTravelRequest("paris", 800));
    w.stream.push_back(sws::core::SessionRunner::DelimiterMessage(3));
  }
  return w;
}

// The web-store peer of examples/peer_store.cpp: requests go to a cart,
// re-requesting a carted item purchases it.
struct PeerFixture {
  sws::models::Peer peer;
  sws::core::Sws sws;
};

PeerFixture* MakePeerFixture() {
  using sws::logic::FoFormula;
  using sws::logic::Term;
  auto v = [](int i) { return Term::Var(i); };
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("Item", {"id", "price"}));
  sws::models::Peer shop(schema, 1, 1, 2);
  shop.set_state_rule(FoFormula::And(
      FoFormula::Or(
          FoFormula::MakeAtom(sws::models::Peer::kPeerState, {v(0)}),
          FoFormula::MakeAtom(sws::models::Peer::kPeerInput, {v(0)})),
      FoFormula::Exists(1, FoFormula::MakeAtom("Item", {v(0), v(1)}))));
  shop.set_action_rule(FoFormula::And(
      {FoFormula::MakeAtom(sws::models::Peer::kPeerState, {v(0)}),
       FoFormula::MakeAtom(sws::models::Peer::kPeerInput, {v(0)}),
       FoFormula::MakeAtom("Item", {v(0), v(1)})}));
  auto* fixture = new PeerFixture{shop, sws::models::PeerToSws(shop)};
  return fixture;
}

Workload MakePeerWorkload(const PeerFixture& fixture) {
  Workload w;
  w.sws = &fixture.sws;
  sws::rel::Relation items(2);
  items.Insert({sws::rel::Value::Int(1), sws::rel::Value::Int(10)});
  items.Insert({sws::rel::Value::Int(2), sws::rel::Value::Int(25)});
  w.db.Set("Item", items);

  auto request = [](std::vector<int64_t> ids) {
    sws::rel::Relation r(1);
    for (int64_t id : ids) r.Insert({sws::rel::Value::Int(id)});
    return r;
  };
  // Carted then purchased across steps; encoded for the f_τ service.
  sws::rel::InputSequence encoded = sws::models::EncodePeerInput(
      fixture.peer, {request({1, 2}), request({1})});
  for (int s = 0; s < kSessionsPerClient; ++s) {
    for (size_t j = 1; j <= encoded.size(); ++j) {
      w.stream.push_back(encoded.Message(j));
    }
    w.stream.push_back(
        sws::core::SessionRunner::DelimiterMessage(encoded.message_arity()));
  }
  return w;
}

void RunWorkload(benchmark::State& state, const Workload& workload,
                 const RuntimeOptions& base = {}) {
  const size_t workers = static_cast<size_t>(state.range(0));
  uint64_t messages = 0;
  for (auto _ : state) {
    RuntimeOptions options = base;
    options.num_workers = workers;
    options.queue_capacity = 1u << 16;
    ServiceRuntime runtime(workload.sws, workload.db, options);
    for (int c = 0; c < kSessions; ++c) {
      std::string id = "client-" + std::to_string(c);
      for (const sws::rel::Relation& message : workload.stream) {
        runtime.Submit(id, message);
      }
    }
    runtime.Drain();
    messages += static_cast<uint64_t>(kSessions) * workload.stream.size();
    benchmark::DoNotOptimize(runtime.Stats().sessions_closed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(messages));
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(workers);
}

void BM_RuntimeTravel(benchmark::State& state) {
  static const auto* service =
      new sws::models::TravelService(sws::models::MakeTravelService());
  static const auto* workload = new Workload(MakeTravelWorkload(*service));
  RunWorkload(state, *workload);
}

void BM_RuntimePeerStore(benchmark::State& state) {
  static const auto* fixture = MakePeerFixture();
  static const auto* workload = new Workload(MakePeerWorkload(*fixture));
  RunWorkload(state, *workload);
}

// Hot-path cost of the fault-tolerance machinery when nothing fires:
// the same travel workload with a zero-rate fault injector attached,
// retry and the per-session circuit breaker enabled. Comparing against
// BM_RuntimeTravel (null injector, no retry, no breaker — the all-
// disabled default) measures the overhead of the fault path itself;
// it should be noise (a null check, a counter bump and an integer
// compare per run). Recorded in BENCH_runtime_faults.json.
void BM_RuntimeTravelFaultsQuiescent(benchmark::State& state) {
  static const auto* service =
      new sws::models::TravelService(sws::models::MakeTravelService());
  static const auto* workload = new Workload(MakeTravelWorkload(*service));
  // Zero rates: every draw says "healthy", so no failure, delay or stall
  // is ever injected — but every run pays the injector consultation.
  static auto* injector =
      new sws::core::FaultInjector(sws::core::FaultOptions{});
  RuntimeOptions base;
  base.run_options.fault_injector = injector;
  base.run_options.retry.max_attempts = 3;
  base.circuit_breaker.failure_threshold = 5;
  base.circuit_breaker.open_duration = std::chrono::milliseconds(1);
  RunWorkload(state, *workload, base);
}

void ThreadCounts(benchmark::internal::Benchmark* bench) {
  bench->Arg(1)->Arg(2)->Arg(4);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 4) bench->Arg(static_cast<int>(hw));
  bench->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(BM_RuntimeTravel)->Apply(ThreadCounts);
BENCHMARK(BM_RuntimePeerStore)->Apply(ThreadCounts);
BENCHMARK(BM_RuntimeTravelFaultsQuiescent)->Apply(ThreadCounts);

}  // namespace

BENCHMARK_MAIN();
