// Ablation benchmarks for the design choices DESIGN.md calls out:
//  1. CQ evaluation: greedy join ordering + connected-component
//     decomposition vs. the naive textual-order backtracking join. The
//     unfolding produces "guard-heavy" queries (many fresh-variable
//     existential atoms); without the optimizations they evaluate as
//     cross-products.
//  2. Unfolding with vs. without unsatisfiable-disjunct pruning
//     (measured via the disjunct bound vs. the surviving disjuncts).
//  3. The identity-first identification ordering in the composition
//     search (cheap candidates first).

#include <benchmark/benchmark.h>

#include "logic/cq.h"
#include "mediator/cq_composition.h"
#include "models/travel.h"
#include "sws/execution.h"
#include "sws/generator.h"
#include "sws/unfold.h"

namespace {

using sws::logic::Atom;
using sws::logic::ConjunctiveQuery;
using sws::logic::Term;

// A guard-heavy query: `guards` independent existential R-atoms with all
// fresh variables, plus one head atom. The naive join is |R|^guards.
ConjunctiveQuery GuardHeavyQuery(int guards) {
  std::vector<Atom> body;
  body.push_back(Atom{"R", {Term::Var(0), Term::Var(1)}});
  for (int g = 0; g < guards; ++g) {
    body.push_back(Atom{"R", {Term::Var(2 + 2 * g), Term::Var(3 + 2 * g)}});
  }
  return ConjunctiveQuery({Term::Var(0)}, body);
}

sws::rel::Database GuardDb(int tuples) {
  sws::core::WorkloadGenerator gen(5);
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("R", {"a", "b"}));
  return gen.RandomDatabase(schema, static_cast<size_t>(tuples), 10);
}

void BM_CqEvalOptimized(benchmark::State& state) {
  ConjunctiveQuery q = GuardHeavyQuery(static_cast<int>(state.range(0)));
  sws::rel::Database db = GuardDb(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(db).size());
  }
}
BENCHMARK(BM_CqEvalOptimized)->DenseRange(1, 7);

void BM_CqEvalNaive(benchmark::State& state) {
  ConjunctiveQuery q = GuardHeavyQuery(static_cast<int>(state.range(0)));
  sws::rel::Database db = GuardDb(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.EvaluateNaive(db).size());
  }
}
BENCHMARK(BM_CqEvalNaive)->DenseRange(1, 7);

// Join-ordering only (connected query, no decomposition possible): a
// chain R(x0,x1), R(x1,x2), ..., written in reverse order so the naive
// evaluator starts from the unselective end.
void BM_CqChainOrdering(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  std::vector<Atom> body;
  body.push_back(Atom{"S", {Term::Var(0)}});  // selective anchor
  for (int i = len - 1; i >= 0; --i) {
    body.push_back(Atom{"R", {Term::Var(i), Term::Var(i + 1)}});
  }
  std::reverse(body.begin(), body.end());  // R-chain first, anchor last
  ConjunctiveQuery q({Term::Var(len)}, body);
  sws::core::WorkloadGenerator gen(6);
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("R", {"a", "b"}));
  schema.Add(sws::rel::RelationSchema("S", {"a"}));
  sws::rel::Database db = gen.RandomDatabase(schema, 12, 6);
  // Shrink S to one tuple: the anchor the optimizer should start from.
  sws::rel::Relation s(1);
  s.Insert({sws::rel::Value::Int(1)});
  db.Set("S", s);
  if (state.range(1) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(q.Evaluate(db).size());
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(q.EvaluateNaive(db).size());
    }
  }
}
BENCHMARK(BM_CqChainOrdering)
    ->ArgsProduct({{2, 4, 6}, {0, 1}});  // {chain length} × {opt, naive}

// Unfolding pruning: the satisfiable disjuncts vs. the syntactic bound
// on the travel service (whose tag constants make many combinations
// inconsistent).
void BM_UnfoldPruning(benchmark::State& state) {
  auto service = sws::models::MakeTravelServiceCqUcq();
  size_t kept = 0;
  size_t bound = 0;
  for (auto _ : state) {
    auto u = sws::core::UnfoldToUcq(service.sws, 1);
    benchmark::DoNotOptimize(u.size());
    kept = u.size();
    bound = sws::core::UnfoldDisjunctBound(service.sws, 1);
  }
  state.counters["disjuncts_kept"] = static_cast<double>(kept);
  state.counters["syntactic_bound"] = static_cast<double>(bound);
}
BENCHMARK(BM_UnfoldPruning);

// Composition search with identity-only identifications (the default for
// one-level composition) vs. the full merge search on the same instance.
void BM_CompositionIdentityOnly(benchmark::State& state) {
  auto goal = sws::models::MakeTravelServiceCqUcq();
  auto ta = sws::models::MakeTravelComponentAirfare();
  auto tht = sws::models::MakeTravelComponentHotelTickets();
  auto thc = sws::models::MakeTravelComponentHotelCar();
  std::vector<const sws::core::Sws*> components = {&ta.sws, &tht.sws,
                                                   &thc.sws};
  sws::med::CqCompositionOptions options;
  options.rewrite.max_candidates =
      static_cast<uint64_t>(state.range(0));  // cap the search effort
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::med::ComposeCqOneLevel(goal.sws, components).found);
  }
}
BENCHMARK(BM_CompositionIdentityOnly)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
