// Query-engine benchmarks (PR 3): the indexed join planner vs the
// naive nested-loop evaluator on a chain join, and execution-tree
// memoization vs raw re-evaluation on the non-linear sirup embedding.
// The checked-in baseline is BENCH_query_engine.json; regenerate with
//   scripts/check.sh bench
// after any change to the relational layer, the CQ planner or the run
// engine.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "logic/cq.h"
#include "logic/datalog.h"
#include "models/sirup_sws.h"
#include "relational/database.h"
#include "sws/execution.h"

namespace {

using sws::logic::Atom;
using sws::logic::ConjunctiveQuery;
using sws::logic::Term;
using sws::rel::Database;
using sws::rel::Relation;
using sws::rel::Value;

// A seeded random edge relation over domain [0, 64): with |R| tuples
// the chain join R(x0,x1), R(x1,x2), R(x2,x3) has ~|R|^3 / 64^2
// matches, so the naive evaluator does Θ(|R|^3) match attempts while
// the indexed plan only walks actual join partners.
Database ChainDb(size_t tuples) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> node(0, 63);
  Relation r(2);
  while (r.size() < tuples) {
    r.Insert({Value::Int(node(rng)), Value::Int(node(rng))});
  }
  Database db;
  db.Set("R", r);
  return db;
}

ConjunctiveQuery ChainQuery() {
  auto v = [](int i) { return Term::Var(i); };
  return ConjunctiveQuery({v(0), v(3)},
                          {Atom{"R", {v(0), v(1)}}, Atom{"R", {v(1), v(2)}},
                           Atom{"R", {v(2), v(3)}}});
}

void BM_CqChainJoinIndexed(benchmark::State& state) {
  Database db = ChainDb(static_cast<size_t>(state.range(0)));
  ConjunctiveQuery q = ChainQuery();
  size_t out = 0;
  for (auto _ : state) {
    Relation result = q.Evaluate(db);
    benchmark::DoNotOptimize(result);
    out = result.size();
  }
  state.counters["output_tuples"] = static_cast<double>(out);
}
BENCHMARK(BM_CqChainJoinIndexed)->RangeMultiplier(2)->Range(64, 512);

void BM_CqChainJoinNaive(benchmark::State& state) {
  Database db = ChainDb(static_cast<size_t>(state.range(0)));
  ConjunctiveQuery q = ChainQuery();
  size_t out = 0;
  for (auto _ : state) {
    Relation result = q.EvaluateNaive(db);
    benchmark::DoNotOptimize(result);
    out = result.size();
  }
  state.counters["output_tuples"] = static_cast<double>(out);
}
BENCHMARK(BM_CqChainJoinNaive)->RangeMultiplier(2)->Range(64, 512);

// Boolean satisfiability check (ComponentHasMatch path): the plan
// short-circuits on the first witness, the naive evaluator still
// materializes the full result before testing emptiness.
void BM_CqNonemptyIndexed(benchmark::State& state) {
  Database db = ChainDb(static_cast<size_t>(state.range(0)));
  ConjunctiveQuery q = ChainQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.EvaluatesNonempty(db));
  }
}
BENCHMARK(BM_CqNonemptyIndexed)->RangeMultiplier(2)->Range(64, 512);

// The non-linear sirup P(x,y) :- P(x,z), P(z,w), E(w,y): its execution
// tree is exponential in the fuel, but both recursive children of a
// node carry identical (state, timestamp, Msg) labels, so memoization
// collapses the tree to one evaluation per distinct label.
sws::logic::Sirup NonLinearSirup() {
  auto v = [](int i) { return Term::Var(i); };
  sws::logic::Sirup sirup;
  sirup.rule = sws::logic::DatalogRule{
      Atom{"P", {v(0), v(1)}},
      {Atom{"P", {v(0), v(2)}}, Atom{"P", {v(2), v(3)}},
       Atom{"E", {v(3), v(1)}}}};
  sirup.ground_fact = Atom{"P", {Term::Int(1), Term::Int(1)}};
  return sirup;
}

Database SirupDb() {
  Relation e(2);
  for (int i = 1; i <= 6; ++i) {
    e.Insert({Value::Int(i), Value::Int(i + 1)});
  }
  Database db;
  db.Set("E", e);
  return db;
}

void BM_RunSirupMemoized(benchmark::State& state) {
  sws::logic::Sirup sirup = NonLinearSirup();
  sws::core::Sws sws = sws::models::SirupToSws(sirup);
  Database db = SirupDb();
  sws::rel::InputSequence fuel =
      sws::models::SirupFuel(sirup, static_cast<size_t>(state.range(0)));
  size_t nodes = 0, hits = 0;
  for (auto _ : state) {
    sws::core::RunResult result = sws::core::Run(sws, db, fuel);
    benchmark::DoNotOptimize(result.output);
    nodes = result.num_nodes;
    hits = result.memo_hits;
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
  state.counters["memo_hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_RunSirupMemoized)->DenseRange(4, 8);

void BM_RunSirupRaw(benchmark::State& state) {
  sws::logic::Sirup sirup = NonLinearSirup();
  sws::core::Sws sws = sws::models::SirupToSws(sirup);
  Database db = SirupDb();
  sws::rel::InputSequence fuel =
      sws::models::SirupFuel(sirup, static_cast<size_t>(state.range(0)));
  sws::core::RunOptions options;
  options.memoize = false;
  size_t nodes = 0;
  for (auto _ : state) {
    sws::core::RunResult result = sws::core::Run(sws, db, fuel, options);
    benchmark::DoNotOptimize(result.output);
    nodes = result.num_nodes;
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_RunSirupRaw)->DenseRange(4, 8);

}  // namespace

BENCHMARK_MAIN();
