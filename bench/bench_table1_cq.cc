// Table 1, CQ rows: SWS(CQ, UCQ) non-emptiness is exptime-complete and
// validation/equivalence undecidable; for SWS_nr(CQ, UCQ) they drop to
// pspace / nexptime / conexptime. The drivers measured here:
//  * the exponential growth of the per-length UCQ unfolding (the
//    conversion behind all the upper bounds),
//  * Klug-style containment with inequalities (identification-partition
//    enumeration — the conexptime engine),
//  * the canonical-database searches for non-emptiness and validation.

#include <benchmark/benchmark.h>

#include "analysis/cq_analysis.h"
#include "logic/containment.h"
#include "logic/datalog.h"
#include "models/sirup_sws.h"
#include "models/travel.h"
#include "sws/generator.h"
#include "sws/execution.h"
#include "sws/unfold.h"

namespace {

using sws::core::ActRelation;
using sws::core::RelQuery;
using sws::core::Sws;
using sws::core::TransitionTarget;
using sws::logic::Atom;
using sws::logic::Comparison;
using sws::logic::ConjunctiveQuery;
using sws::logic::Term;
using sws::logic::UnionQuery;

// A recursive chain whose synthesis has two disjuncts per level: the
// unfolding at length n has ~2^n disjuncts.
Sws BranchingChain() {
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("R", {"a", "b"}));
  Sws sws(schema, 1, 1);
  int q0 = sws.AddState("q0");
  int q = sws.AddState("q");
  int f = sws.AddState("f");
  ConjunctiveQuery pass({Term::Var(0)},
                        {Atom{sws::core::kInputRelation, {Term::Var(0)}}});
  sws.SetTransition(q0, {TransitionTarget{q, RelQuery::Cq(pass)}});
  ConjunctiveQuery copy({Term::Var(0)},
                        {Atom{ActRelation(1), {Term::Var(0)}}});
  sws.SetSynthesis(q0, RelQuery::Cq(copy));
  sws.SetTransition(q, {TransitionTarget{q, RelQuery::Cq(pass)},
                        TransitionTarget{f, RelQuery::Cq(pass)}});
  UnionQuery either(1);
  // Two references to the recursive register in one disjunct: the
  // disjunct bound satisfies B(j) = B(j+1)^2 + 1 — doubly exponential.
  either.Add(ConjunctiveQuery({Term::Var(0)},
                              {Atom{ActRelation(1), {Term::Var(0)}},
                               Atom{ActRelation(1), {Term::Var(1)}}}));
  either.Add(ConjunctiveQuery({Term::Var(0)},
                              {Atom{ActRelation(2), {Term::Var(0)}}}));
  sws.SetSynthesis(q, RelQuery::Ucq(either));
  sws.SetTransition(f, {});
  ConjunctiveQuery join({Term::Var(0)},
                        {Atom{sws::core::kMsgRelation, {Term::Var(0)}},
                         Atom{"R", {Term::Var(0), Term::Var(1)}}});
  sws.SetSynthesis(f, RelQuery::Cq(join));
  return sws;
}

void BM_UnfoldingGrowth(benchmark::State& state) {
  Sws sws = BranchingChain();
  size_t n = static_cast<size_t>(state.range(0));
  size_t disjuncts = 0;
  for (auto _ : state) {
    UnionQuery u = sws::core::UnfoldToUcq(sws, n);
    benchmark::DoNotOptimize(u.size());
    disjuncts = u.size();
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
  state.counters["bound"] =
      static_cast<double>(sws::core::UnfoldDisjunctBound(sws, n));
}
BENCHMARK(BM_UnfoldingGrowth)->DenseRange(1, 6);

// A linear chain of k states before the final join: the earliest witness
// needs k+1 input messages, so non-emptiness unfolds at every length up
// to there — cost grows with the (exptime-style) iterative search depth.
Sws DeepChain(int k) {
  sws::rel::Schema schema;
  schema.Add(sws::rel::RelationSchema("R", {"a", "b"}));
  Sws sws(schema, 1, 1);
  int q0 = sws.AddState("q0");
  std::vector<int> chain;
  for (int i = 0; i < k; ++i) {
    chain.push_back(sws.AddState("q" + std::to_string(i + 1)));
  }
  int f = sws.AddState("f");
  ConjunctiveQuery pass({Term::Var(0)},
                        {Atom{sws::core::kInputRelation, {Term::Var(0)}},
                         Atom{sws::core::kMsgRelation, {Term::Var(1)}}});
  ConjunctiveQuery pass_root({Term::Var(0)},
                             {Atom{sws::core::kInputRelation, {Term::Var(0)}}});
  ConjunctiveQuery copy({Term::Var(0)},
                        {Atom{ActRelation(1), {Term::Var(0)}}});
  int prev = q0;
  for (int i = 0; i <= k; ++i) {
    int next = i < k ? chain[i] : f;
    sws.SetTransition(prev, {TransitionTarget{
                                next, RelQuery::Cq(i == 0 ? pass_root
                                                          : pass)}});
    sws.SetSynthesis(prev, RelQuery::Cq(copy));
    prev = next;
  }
  sws.SetTransition(f, {});
  ConjunctiveQuery join({Term::Var(0)},
                        {Atom{sws::core::kMsgRelation, {Term::Var(0)}},
                         Atom{"R", {Term::Var(0), Term::Var(1)}}});
  sws.SetSynthesis(f, RelQuery::Cq(join));
  return sws;
}

void BM_CqNonEmptinessDepth(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Sws sws = DeepChain(k);
  for (auto _ : state) {
    auto result = sws::analysis::CqNonEmptinessNr(sws);
    benchmark::DoNotOptimize(result.nonempty);
  }
}
BENCHMARK(BM_CqNonEmptinessDepth)->DenseRange(1, 16, 3);

// Klug containment with inequalities: Q1 has v variables; the right-hand
// UCQ uses ≠, so all identification partitions are enumerated (~Bell(v)).
void BM_KlugContainmentPartitions(benchmark::State& state) {
  int v = static_cast<int>(state.range(0));
  std::vector<Atom> body;
  for (int i = 0; i < v; ++i) {
    body.push_back(Atom{"R", {Term::Var(i)}});
  }
  ConjunctiveQuery q1({}, body);
  UnionQuery q2(0);
  q2.Add(ConjunctiveQuery({}, {Atom{"R", {Term::Var(0)}},
                               Atom{"R", {Term::Var(1)}}},
                          {Comparison{Term::Var(0), Term::Var(1), false}}));
  q2.Add(ConjunctiveQuery({}, {Atom{"R", {Term::Var(0)}}}));
  uint64_t partitions = 0;
  for (auto _ : state) {
    sws::logic::ContainmentStats stats;
    benchmark::DoNotOptimize(sws::logic::CqContainedIn(q1, q2, &stats));
    partitions = stats.partitions_checked;
  }
  state.counters["partitions"] = static_cast<double>(partitions);
}
BENCHMARK(BM_KlugContainmentPartitions)->DenseRange(2, 9);

void BM_CqEquivalenceNrRandom(benchmark::State& state) {
  sws::core::WorkloadGenerator gen(4242);
  sws::core::WorkloadGenerator::CqSwsParams params;
  params.num_states = static_cast<int>(state.range(0));
  params.inequality_prob = 0.0;
  Sws a = gen.RandomCqSws(params);
  Sws b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::analysis::CqEquivalenceNr(a, b).equivalent);
  }
}
BENCHMARK(BM_CqEquivalenceNrRandom)->DenseRange(3, 6);

void BM_CqValidationTravel(benchmark::State& state) {
  auto service = sws::models::MakeTravelServiceCqUcq();
  auto db = sws::models::MakeTravelDatabase();
  sws::rel::InputSequence input(3);
  input.Append(sws::models::MakeTravelRequest("orlando", 1000));
  sws::rel::Relation target =
      sws::core::Run(service.sws, db, input).output;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::analysis::CqValidation(service.sws, target).validated);
  }
}
BENCHMARK(BM_CqValidationTravel);

void BM_CqNonEmptinessTravel(benchmark::State& state) {
  auto service = sws::models::MakeTravelServiceCqUcq();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sws::analysis::CqNonEmptinessNr(service.sws).nonempty);
  }
}
BENCHMARK(BM_CqNonEmptinessTravel);

// The exptime lower-bound family (Theorem 4.1(2)): a *non-linear* sirup
// embedded as a recursive SWS(CQ, UCQ); with two recursive body atoms
// the execution tree branches, growing exponentially in the fuel — the
// cost profile the hardness reduction exploits. (A linear sirup like
// plain transitive closure embeds as a chain: linear trees.)
void BM_SirupEmbeddingFuel(benchmark::State& state) {
  sws::logic::Sirup sirup;
  auto v = [](int i) { return Term::Var(i); };
  sirup.rule = sws::logic::DatalogRule{
      Atom{"P", {v(0), v(1)}},
      {Atom{"P", {v(0), v(2)}}, Atom{"P", {v(2), v(3)}},
       Atom{"E", {v(3), v(1)}}}};
  sirup.ground_fact = Atom{"P", {Term::Int(1), Term::Int(1)}};
  Sws sws = sws::models::SirupToSws(sirup);
  sws::rel::Database edb;
  sws::rel::Relation e(2);
  for (int i = 1; i <= 6; ++i) {
    e.Insert({sws::rel::Value::Int(i), sws::rel::Value::Int(i + 1)});
  }
  edb.Set("E", e);
  size_t fuel = static_cast<size_t>(state.range(0));
  auto input = sws::models::SirupFuel(sirup, fuel);
  size_t nodes = 0;
  size_t facts = 0;
  for (auto _ : state) {
    auto run = sws::core::Run(sws, edb, input);
    benchmark::DoNotOptimize(run.output.size());
    nodes = run.num_nodes;
    facts = run.output.size();
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
  state.counters["derived_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_SirupEmbeddingFuel)->DenseRange(2, 8);

}  // namespace

BENCHMARK_MAIN();
