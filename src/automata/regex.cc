#include "automata/regex.h"

#include "util/common.h"

namespace sws::fsa {

namespace {
bool IsOperator(char c) {
  return c == '|' || c == '*' || c == '+' || c == '?' || c == '(' || c == ')';
}
}  // namespace

int RegexAlphabet::Intern(char c) {
  auto it = ids_.find(c);
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(chars_.size());
  ids_.emplace(c, id);
  chars_.push_back(c);
  return id;
}

std::optional<int> RegexAlphabet::Find(char c) const {
  auto it = ids_.find(c);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

char RegexAlphabet::CharOf(int symbol) const {
  SWS_CHECK(symbol >= 0 && symbol < size());
  return chars_[symbol];
}

void RegexAlphabet::InternPattern(const std::string& pattern) {
  for (char c : pattern) {
    if (!IsOperator(c)) Intern(c);
  }
}

std::vector<int> RegexAlphabet::Encode(const std::string& word) const {
  std::vector<int> out;
  out.reserve(word.size());
  for (char c : word) {
    auto id = Find(c);
    SWS_CHECK(id.has_value()) << "character '" << c << "' not in alphabet";
    out.push_back(*id);
  }
  return out;
}

std::string RegexAlphabet::Decode(const std::vector<int>& word) const {
  std::string out;
  out.reserve(word.size());
  for (int s : word) out.push_back(CharOf(s));
  return out;
}

namespace {

// Recursive-descent parser producing a Thompson NFA.
class RegexParser {
 public:
  RegexParser(const std::string& pattern, const RegexAlphabet& alphabet)
      : pattern_(pattern), alphabet_(alphabet) {}

  std::optional<Nfa> Parse(std::string* error) {
    auto nfa = ParseAlternation();
    if (nfa.has_value() && pos_ != pattern_.size()) {
      error_ = "unexpected ')' at position " + std::to_string(pos_);
      nfa = std::nullopt;
    }
    if (!nfa.has_value() && error != nullptr) *error = error_;
    return nfa;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }

  std::optional<Nfa> ParseAlternation() {
    auto left = ParseConcatenation();
    if (!left.has_value()) return std::nullopt;
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      auto right = ParseConcatenation();
      if (!right.has_value()) return std::nullopt;
      left = Nfa::Union(*left, *right);
    }
    return left;
  }

  std::optional<Nfa> ParseConcatenation() {
    Nfa result = Nfa::Epsilon(alphabet_.size());
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto factor = ParseRepetition();
      if (!factor.has_value()) return std::nullopt;
      result = Nfa::Concat(result, *factor);
    }
    return result;
  }

  std::optional<Nfa> ParseRepetition() {
    auto atom = ParseAtom();
    if (!atom.has_value()) return std::nullopt;
    while (!AtEnd() && (Peek() == '*' || Peek() == '+' || Peek() == '?')) {
      char op = Peek();
      ++pos_;
      if (op == '*') {
        atom = Nfa::Star(*atom);
      } else if (op == '+') {
        atom = Nfa::Concat(*atom, Nfa::Star(*atom));
      } else {
        atom = Nfa::Union(*atom, Nfa::Epsilon(alphabet_.size()));
      }
    }
    return atom;
  }

  std::optional<Nfa> ParseAtom() {
    if (AtEnd()) {
      error_ = "unexpected end of pattern";
      return std::nullopt;
    }
    char c = Peek();
    if (c == '(') {
      ++pos_;
      if (!AtEnd() && Peek() == ')') {  // "()" is epsilon
        ++pos_;
        return Nfa::Epsilon(alphabet_.size());
      }
      auto inner = ParseAlternation();
      if (!inner.has_value()) return std::nullopt;
      if (AtEnd() || Peek() != ')') {
        error_ = "missing ')'";
        return std::nullopt;
      }
      ++pos_;
      return inner;
    }
    if (c == '*' || c == '+' || c == '?' || c == '|' || c == ')') {
      error_ = std::string("unexpected '") + c + "' at position " +
               std::to_string(pos_);
      return std::nullopt;
    }
    auto symbol = alphabet_.Find(c);
    if (!symbol.has_value()) {
      error_ = std::string("character '") + c + "' not in alphabet";
      return std::nullopt;
    }
    ++pos_;
    return Nfa::Literal(alphabet_.size(), *symbol);
  }

  const std::string& pattern_;
  const RegexAlphabet& alphabet_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Nfa> CompileRegex(const std::string& pattern,
                                const RegexAlphabet& alphabet,
                                std::string* error) {
  RegexParser parser(pattern, alphabet);
  return parser.Parse(error);
}

std::vector<Nfa> CompileRegexes(const std::vector<std::string>& patterns,
                                RegexAlphabet* alphabet) {
  for (const auto& p : patterns) alphabet->InternPattern(p);
  std::vector<Nfa> out;
  out.reserve(patterns.size());
  for (const auto& p : patterns) {
    std::string error;
    auto nfa = CompileRegex(p, *alphabet, &error);
    SWS_CHECK(nfa.has_value()) << "bad regex '" << p << "': " << error;
    out.push_back(std::move(*nfa));
  }
  return out;
}

}  // namespace sws::fsa
