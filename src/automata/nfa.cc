#include "automata/nfa.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/common.h"

namespace sws::fsa {

namespace {
const std::set<int>& EmptyStateSet() {
  static const std::set<int>& empty = *new std::set<int>();
  return empty;
}
}  // namespace

int Nfa::AddState() {
  transitions_.emplace_back();
  epsilon_.emplace_back();
  return static_cast<int>(transitions_.size()) - 1;
}

void Nfa::AddTransition(int from, int symbol, int to) {
  SWS_CHECK(from >= 0 && from < num_states());
  SWS_CHECK(to >= 0 && to < num_states());
  if (symbol == kEpsilon) {
    epsilon_[from].insert(to);
    return;
  }
  SWS_CHECK(symbol >= 0 && symbol < alphabet_size_)
      << "symbol " << symbol << " outside alphabet of size " << alphabet_size_;
  transitions_[from][symbol].insert(to);
}

void Nfa::AddInitial(int state) {
  SWS_CHECK(state >= 0 && state < num_states());
  initial_.insert(state);
}

void Nfa::AddFinal(int state) {
  SWS_CHECK(state >= 0 && state < num_states());
  final_.insert(state);
}

const std::set<int>& Nfa::Successors(int state, int symbol) const {
  SWS_CHECK(state >= 0 && state < num_states());
  if (symbol == kEpsilon) return epsilon_[state];
  auto it = transitions_[state].find(symbol);
  if (it == transitions_[state].end()) return EmptyStateSet();
  return it->second;
}

std::set<int> Nfa::EpsilonClosure(std::set<int> states) const {
  std::deque<int> queue(states.begin(), states.end());
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int t : epsilon_[s]) {
      if (states.insert(t).second) queue.push_back(t);
    }
  }
  return states;
}

std::set<int> Nfa::Step(const std::set<int>& states, int symbol) const {
  std::set<int> moved;
  for (int s : states) {
    const std::set<int>& succ = Successors(s, symbol);
    moved.insert(succ.begin(), succ.end());
  }
  return EpsilonClosure(std::move(moved));
}

bool Nfa::Accepts(const std::vector<int>& word) const {
  std::set<int> current = EpsilonClosure(initial_);
  for (int symbol : word) {
    current = Step(current, symbol);
    if (current.empty()) return false;
  }
  for (int s : current) {
    if (IsFinal(s)) return true;
  }
  return false;
}

bool Nfa::IsEmpty() const { return !ShortestAcceptedWord().has_value(); }

std::optional<std::vector<int>> Nfa::ShortestAcceptedWord() const {
  // BFS over states, tracking the word via parent pointers.
  std::vector<int> parent(num_states(), -2);  // -2 = unvisited
  std::vector<int> via_symbol(num_states(), kEpsilon);
  std::deque<int> queue;
  for (int s : initial_) {
    parent[s] = -1;
    queue.push_back(s);
  }
  int found = -1;
  while (!queue.empty() && found < 0) {
    int s = queue.front();
    queue.pop_front();
    if (IsFinal(s)) {
      found = s;
      break;
    }
    auto visit = [&](int t, int symbol) {
      if (parent[t] == -2) {
        parent[t] = s;
        via_symbol[t] = symbol;
        queue.push_back(t);
      }
    };
    for (int t : epsilon_[s]) visit(t, kEpsilon);
    for (const auto& [symbol, succ] : transitions_[s]) {
      for (int t : succ) visit(t, symbol);
    }
  }
  if (found < 0) return std::nullopt;
  std::vector<int> word;
  for (int s = found; parent[s] != -1; s = parent[s]) {
    if (via_symbol[s] != kEpsilon) word.push_back(via_symbol[s]);
  }
  std::reverse(word.begin(), word.end());
  return word;
}

int Nfa::ImportStates(const Nfa& other) {
  SWS_CHECK_EQ(alphabet_size_, other.alphabet_size_);
  int offset = num_states();
  for (int s = 0; s < other.num_states(); ++s) AddState();
  for (int s = 0; s < other.num_states(); ++s) {
    for (int t : other.epsilon_[s]) {
      AddTransition(s + offset, kEpsilon, t + offset);
    }
    for (const auto& [symbol, succ] : other.transitions_[s]) {
      for (int t : succ) AddTransition(s + offset, symbol, t + offset);
    }
  }
  return offset;
}

Nfa Nfa::Union(const Nfa& a, const Nfa& b) {
  Nfa out(a.alphabet_size());
  int start = out.AddState();
  out.AddInitial(start);
  int oa = out.ImportStates(a);
  int ob = out.ImportStates(b);
  for (int s : a.initial_) out.AddTransition(start, kEpsilon, s + oa);
  for (int s : b.initial_) out.AddTransition(start, kEpsilon, s + ob);
  for (int s : a.final_) out.AddFinal(s + oa);
  for (int s : b.final_) out.AddFinal(s + ob);
  return out;
}

Nfa Nfa::Concat(const Nfa& a, const Nfa& b) {
  Nfa out(a.alphabet_size());
  int oa = out.ImportStates(a);
  int ob = out.ImportStates(b);
  for (int s : a.initial_) out.AddInitial(s + oa);
  for (int s : b.final_) out.AddFinal(s + ob);
  for (int f : a.final_) {
    for (int s : b.initial_) out.AddTransition(f + oa, kEpsilon, s + ob);
  }
  return out;
}

Nfa Nfa::Star(const Nfa& a) {
  Nfa out(a.alphabet_size());
  int start = out.AddState();
  out.AddInitial(start);
  out.AddFinal(start);
  int oa = out.ImportStates(a);
  for (int s : a.initial_) out.AddTransition(start, kEpsilon, s + oa);
  for (int f : a.final_) {
    out.AddFinal(f + oa);
    out.AddTransition(f + oa, kEpsilon, start);
  }
  return out;
}

Nfa Nfa::Epsilon(int alphabet_size) {
  Nfa out(alphabet_size);
  int s = out.AddState();
  out.AddInitial(s);
  out.AddFinal(s);
  return out;
}

Nfa Nfa::Literal(int alphabet_size, int symbol) {
  Nfa out(alphabet_size);
  int s = out.AddState();
  int t = out.AddState();
  out.AddInitial(s);
  out.AddFinal(t);
  out.AddTransition(s, symbol, t);
  return out;
}

Nfa Nfa::EmptyLanguage(int alphabet_size) {
  Nfa out(alphabet_size);
  int s = out.AddState();
  out.AddInitial(s);
  return out;
}

Nfa Nfa::Reverse() const {
  Nfa out(alphabet_size_);
  for (int s = 0; s < num_states(); ++s) out.AddState();
  for (int s = 0; s < num_states(); ++s) {
    for (int t : epsilon_[s]) out.AddTransition(t, kEpsilon, s);
    for (const auto& [symbol, succ] : transitions_[s]) {
      for (int t : succ) out.AddTransition(t, symbol, s);
    }
  }
  for (int s : final_) out.AddInitial(s);
  for (int s : initial_) out.AddFinal(s);
  return out;
}

Nfa Nfa::RemoveEpsilons() const {
  Nfa out(alphabet_size_);
  for (int s = 0; s < num_states(); ++s) out.AddState();
  for (int s = 0; s < num_states(); ++s) {
    std::set<int> closure = EpsilonClosure({s});
    for (int c : closure) {
      if (IsFinal(c)) out.AddFinal(s);
      for (const auto& [symbol, succ] : transitions_[c]) {
        for (int t : succ) out.AddTransition(s, symbol, t);
      }
    }
  }
  for (int s : initial_) out.AddInitial(s);
  return out;
}

std::string Nfa::ToString() const {
  std::ostringstream out;
  out << "NFA(" << num_states() << " states, alphabet " << alphabet_size_
      << ")\n";
  out << "  initial:";
  for (int s : initial_) out << " " << s;
  out << "\n  final:";
  for (int s : final_) out << " " << s;
  out << "\n";
  for (int s = 0; s < num_states(); ++s) {
    for (int t : epsilon_[s]) out << "  " << s << " -eps-> " << t << "\n";
    for (const auto& [symbol, succ] : transitions_[s]) {
      for (int t : succ) {
        out << "  " << s << " -" << symbol << "-> " << t << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace sws::fsa
