#include "automata/afa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "util/common.h"

namespace sws::fsa {

namespace {

// Positivity check: no negation anywhere; variables within range.
void CheckPositive(const logic::PlFormula& f, int num_states) {
  using Kind = logic::PlFormula::Kind;
  switch (f.kind()) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      SWS_CHECK(f.var() < num_states)
          << "AFA formula mentions state " << f.var() << " out of range";
      return;
    case Kind::kNot:
      SWS_CHECK(false) << "AFA transition formulas must be positive";
      return;
    default:
      for (const auto& c : f.children()) CheckPositive(c, num_states);
  }
}

}  // namespace

Afa::Afa(int num_states, int alphabet_size)
    : alphabet_size_(alphabet_size),
      delta_(num_states, std::vector<logic::PlFormula>(
                             alphabet_size, logic::PlFormula::False())),
      initial_(logic::PlFormula::False()) {}

void Afa::SetTransition(int state, int symbol, logic::PlFormula formula) {
  SWS_CHECK(state >= 0 && state < num_states());
  SWS_CHECK(symbol >= 0 && symbol < alphabet_size_);
  CheckPositive(formula, num_states());
  delta_[state][symbol] = std::move(formula);
}

const logic::PlFormula& Afa::Transition(int state, int symbol) const {
  SWS_CHECK(state >= 0 && state < num_states());
  SWS_CHECK(symbol >= 0 && symbol < alphabet_size_);
  return delta_[state][symbol];
}

void Afa::SetInitialFormula(logic::PlFormula formula) {
  CheckPositive(formula, num_states());
  initial_ = std::move(formula);
}

void Afa::AddFinal(int state) {
  SWS_CHECK(state >= 0 && state < num_states());
  final_.insert(state);
}

std::vector<bool> Afa::StepBack(const std::vector<bool>& v,
                                int symbol) const {
  std::vector<bool> out(num_states());
  auto assignment = [&v](int s) { return v[s]; };
  for (int s = 0; s < num_states(); ++s) {
    out[s] = delta_[s][symbol].EvalWith(assignment);
  }
  return out;
}

bool Afa::Accepts(const std::vector<int>& word) const {
  std::vector<bool> v(num_states());
  for (int s = 0; s < num_states(); ++s) v[s] = IsFinal(s);
  for (auto it = word.rbegin(); it != word.rend(); ++it) {
    v = StepBack(v, *it);
  }
  return initial_.EvalWith([&v](int s) { return v[s]; });
}

std::optional<std::vector<int>> Afa::ShortestAcceptedWord() const {
  // BFS over value vectors, growing the word from the back.
  std::vector<bool> v0(num_states());
  for (int s = 0; s < num_states(); ++s) v0[s] = IsFinal(s);
  std::map<std::vector<bool>, std::pair<std::vector<bool>, int>> parent;
  parent.emplace(v0, std::make_pair(std::vector<bool>{}, -1));
  std::deque<std::vector<bool>> queue = {v0};
  auto accepted = [this](const std::vector<bool>& v) {
    return initial_.EvalWith([&v](int s) { return v[s]; });
  };
  std::optional<std::vector<bool>> hit;
  if (accepted(v0)) hit = v0;
  while (!queue.empty() && !hit.has_value()) {
    std::vector<bool> v = queue.front();
    queue.pop_front();
    for (int a = 0; a < alphabet_size_ && !hit.has_value(); ++a) {
      std::vector<bool> w = StepBack(v, a);
      if (parent.emplace(w, std::make_pair(v, a)).second) {
        if (accepted(w)) hit = w;
        queue.push_back(w);
      }
    }
  }
  last_search_size_ = parent.size();
  if (!hit.has_value()) return std::nullopt;
  // Reconstruct: vectors were built back-to-front, so the path from v0 to
  // the hit reads the word right-to-left... each BFS edge prepends its
  // symbol, so walking hit -> v0 yields the word left-to-right.
  std::vector<int> word;
  std::vector<bool> cur = *hit;
  while (true) {
    const auto& [prev, symbol] = parent.at(cur);
    if (symbol < 0) break;
    word.push_back(symbol);
    cur = prev;
  }
  return word;
}

bool Afa::IsEmpty() const { return !ShortestAcceptedWord().has_value(); }

Nfa Afa::ToNfa() const {
  // Obligation-set construction: NFA state = set of AFA states that must
  // all accept the remaining word. We enumerate subsets explicitly.
  const int n = num_states();
  SWS_CHECK_LE(n, 20) << "AFA too large for explicit NFA translation";
  const size_t num_subsets = size_t{1} << n;
  Nfa out(alphabet_size_);
  for (size_t i = 0; i < num_subsets; ++i) out.AddState();
  auto member = [](size_t set, int s) { return ((set >> s) & 1) != 0; };
  // Initial NFA states: subsets satisfying the initial formula.
  for (size_t set = 0; set < num_subsets; ++set) {
    if (initial_.EvalWith([&](int s) { return member(set, s); })) {
      out.AddInitial(static_cast<int>(set));
    }
    // Final: every obligation is an AFA final state.
    bool all_final = true;
    for (int s = 0; s < n && all_final; ++s) {
      if (member(set, s) && !IsFinal(s)) all_final = false;
    }
    if (all_final) out.AddFinal(static_cast<int>(set));
  }
  // Transitions: S -a-> S' iff S' satisfies δ(q, a) for all q in S.
  for (size_t set = 0; set < num_subsets; ++set) {
    for (int a = 0; a < alphabet_size_; ++a) {
      for (size_t next = 0; next < num_subsets; ++next) {
        bool ok = true;
        for (int q = 0; q < n && ok; ++q) {
          if (!member(set, q)) continue;
          ok = delta_[q][a].EvalWith([&](int s) { return member(next, s); });
        }
        if (ok) {
          out.AddTransition(static_cast<int>(set), a, static_cast<int>(next));
        }
      }
    }
  }
  return out;
}

Afa Afa::FromNfa(const Nfa& nfa) {
  // Epsilon transitions are not supported directly; require none.
  for (int s = 0; s < nfa.num_states(); ++s) {
    SWS_CHECK(nfa.Successors(s, Nfa::kEpsilon).empty())
        << "FromNfa requires an epsilon-free NFA";
  }
  Afa out(nfa.num_states(), nfa.alphabet_size());
  for (int s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsFinal(s)) out.AddFinal(s);
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      std::vector<logic::PlFormula> succ;
      for (int t : nfa.Successors(s, a)) {
        succ.push_back(logic::PlFormula::Var(t));
      }
      out.SetTransition(s, a, logic::PlFormula::Or(std::move(succ)));
    }
  }
  std::vector<logic::PlFormula> inits;
  for (int s : nfa.initial()) inits.push_back(logic::PlFormula::Var(s));
  out.SetInitialFormula(logic::PlFormula::Or(std::move(inits)));
  return out;
}

std::string Afa::ToString() const {
  std::ostringstream out;
  out << "AFA(" << num_states() << " states, alphabet " << alphabet_size_
      << ")\n  initial: " << initial_.ToString() << "\n  final:";
  for (int s : final_) out << " " << s;
  out << "\n";
  for (int s = 0; s < num_states(); ++s) {
    for (int a = 0; a < alphabet_size_; ++a) {
      out << "  d(" << s << ", " << a << ") = " << delta_[s][a].ToString()
          << "\n";
    }
  }
  return out.str();
}

}  // namespace sws::fsa
