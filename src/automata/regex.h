#ifndef SWS_AUTOMATA_REGEX_H_
#define SWS_AUTOMATA_REGEX_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "automata/nfa.h"

namespace sws::fsa {

/// Character-to-symbol interning for regular expressions, so that several
/// expressions can be compiled over one shared alphabet (required for
/// products, containment and the rewriting algorithms).
class RegexAlphabet {
 public:
  /// Symbol id for the character, allocating if new.
  int Intern(char c);
  /// Symbol id, or nullopt if the character was never interned.
  std::optional<int> Find(char c) const;
  char CharOf(int symbol) const;
  int size() const { return static_cast<int>(chars_.size()); }

  /// Interns every literal character of the pattern (ignoring operators).
  void InternPattern(const std::string& pattern);

  /// Encodes a plain string of interned characters as a symbol word.
  std::vector<int> Encode(const std::string& word) const;
  std::string Decode(const std::vector<int>& word) const;

 private:
  std::map<char, int> ids_;
  std::vector<char> chars_;
};

/// Compiles a regular expression into an NFA over symbols 0..n-1 where n =
/// alphabet->size() — intern all characters of all patterns you plan to
/// combine *before* compiling (InternPattern does this), so every NFA
/// shares one alphabet size.
///
/// Grammar: alternation `|`, concatenation by juxtaposition, postfix
/// `*` `+` `?`, grouping `(...)`, `()` for epsilon. Literal characters are
/// anything else except the operators. Returns nullopt with `error` set on
/// a syntax error or on a literal missing from the alphabet.
std::optional<Nfa> CompileRegex(const std::string& pattern,
                                const RegexAlphabet& alphabet,
                                std::string* error = nullptr);

/// Convenience: interns all patterns, then compiles each. Aborts on
/// syntax errors (intended for tests/benchmarks with literal patterns).
std::vector<Nfa> CompileRegexes(const std::vector<std::string>& patterns,
                                RegexAlphabet* alphabet);

}  // namespace sws::fsa

#endif  // SWS_AUTOMATA_REGEX_H_
