#ifndef SWS_AUTOMATA_NFA_H_
#define SWS_AUTOMATA_NFA_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace sws::fsa {

/// A nondeterministic finite automaton over the alphabet {0, ...,
/// alphabet_size-1}, with epsilon transitions. The FSA abstractions of Web
/// services (the Roman model [6], conversation protocols [15]) are built
/// on these; SWS(PL, PL) services define regular languages whose analysis
/// (Theorem 4.1(3)) and composition (Theorem 5.3) run through this module.
class Nfa {
 public:
  explicit Nfa(int alphabet_size = 0) : alphabet_size_(alphabet_size) {}

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return static_cast<int>(transitions_.size()); }

  /// Adds a fresh state and returns its id.
  int AddState();

  /// Adds a transition on `symbol` (or an epsilon transition if symbol is
  /// kEpsilon).
  void AddTransition(int from, int symbol, int to);
  static constexpr int kEpsilon = -1;

  void AddInitial(int state);
  void AddFinal(int state);
  bool IsInitial(int state) const { return initial_.count(state) > 0; }
  bool IsFinal(int state) const { return final_.count(state) > 0; }
  const std::set<int>& initial() const { return initial_; }
  const std::set<int>& final() const { return final_; }

  /// Successors of `state` on `symbol` (no epsilon closure applied).
  const std::set<int>& Successors(int state, int symbol) const;

  /// Epsilon closure of a set of states.
  std::set<int> EpsilonClosure(std::set<int> states) const;
  /// One step: closure(move(closure(states), symbol)).
  std::set<int> Step(const std::set<int>& states, int symbol) const;

  bool Accepts(const std::vector<int>& word) const;

  /// True iff the language is empty.
  bool IsEmpty() const;
  /// A shortest accepted word, if any.
  std::optional<std::vector<int>> ShortestAcceptedWord() const;

  /// Thompson-style combinators. Operands must share the alphabet size.
  static Nfa Union(const Nfa& a, const Nfa& b);
  static Nfa Concat(const Nfa& a, const Nfa& b);
  static Nfa Star(const Nfa& a);
  /// Automaton accepting only the empty word / only the given letter.
  static Nfa Epsilon(int alphabet_size);
  static Nfa Literal(int alphabet_size, int symbol);
  /// Automaton accepting nothing.
  static Nfa EmptyLanguage(int alphabet_size);

  /// The reversal of the language.
  Nfa Reverse() const;

  /// An equivalent NFA without epsilon transitions (same state set:
  /// transitions and final markings are saturated through closures).
  Nfa RemoveEpsilons() const;

  /// Copies `other`'s states into this automaton, returning the id offset
  /// (other's state s becomes s + offset). Initial/final markings of
  /// `other` are NOT copied.
  int ImportStates(const Nfa& other);

  std::string ToString() const;

 private:
  int alphabet_size_;
  // transitions_[state][symbol] -> successors; symbol kEpsilon stored in
  // epsilon_[state].
  std::vector<std::map<int, std::set<int>>> transitions_;
  std::vector<std::set<int>> epsilon_;
  std::set<int> initial_;
  std::set<int> final_;
};

}  // namespace sws::fsa

#endif  // SWS_AUTOMATA_NFA_H_
