#ifndef SWS_AUTOMATA_AFA_H_
#define SWS_AUTOMATA_AFA_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "logic/pl_formula.h"
#include "automata/dfa.h"
#include "automata/nfa.h"

namespace sws::fsa {

/// An alternating finite automaton: reading a symbol in a state yields a
/// *positive* Boolean formula over states (PL variables are state ids);
/// acceptance propagates backwards from the final states.
///
/// Section 1 presents SWS's "along the same lines as alternating finite
/// automata", and Theorem 4.1(3) transfers the pspace lower bound for AFA
/// emptiness [32] to SWS(PL, PL) non-emptiness; this module provides the
/// AFA side of that correspondence (see analysis/pl_analysis.h for the
/// translation).
class Afa {
 public:
  Afa(int num_states, int alphabet_size);

  int num_states() const { return static_cast<int>(delta_.size()); }
  int alphabet_size() const { return alphabet_size_; }

  /// Sets δ(state, symbol). The formula must be positive (no negation)
  /// over variables 0..num_states-1; constants allowed. Unset transitions
  /// default to false.
  void SetTransition(int state, int symbol, logic::PlFormula formula);
  const logic::PlFormula& Transition(int state, int symbol) const;

  /// The initial condition: a positive formula over states. A word is
  /// accepted iff the backward value vector after consuming the word
  /// satisfies it. Defaults to false.
  void SetInitialFormula(logic::PlFormula formula);
  const logic::PlFormula& initial_formula() const { return initial_; }

  void AddFinal(int state);
  bool IsFinal(int state) const { return final_.count(state) > 0; }

  /// Backward value-vector semantics: v_n(s) = [s final]; reading symbol
  /// a at position j gives v_{j-1}(s) = δ(s, a)(v_j); accept iff the
  /// initial formula holds of v_0.
  bool Accepts(const std::vector<int>& word) const;

  /// Emptiness via reachability over backward value vectors (at most 2^n
  /// of them — the explicit-state realization of the pspace procedure).
  bool IsEmpty() const;
  /// A shortest accepted word, if any.
  std::optional<std::vector<int>> ShortestAcceptedWord() const;

  /// Number of distinct value vectors touched by the last emptiness /
  /// shortest-word call (bench instrumentation).
  size_t last_search_size() const { return last_search_size_; }

  /// Translation to an equivalent NFA over obligation sets (exponential).
  Nfa ToNfa() const;

  /// Every NFA is an AFA (linear).
  static Afa FromNfa(const Nfa& nfa);

  std::string ToString() const;

 private:
  std::vector<bool> StepBack(const std::vector<bool>& v, int symbol) const;

  int alphabet_size_;
  std::vector<std::vector<logic::PlFormula>> delta_;  // [state][symbol]
  logic::PlFormula initial_;
  std::set<int> final_;
  mutable size_t last_search_size_ = 0;
};

}  // namespace sws::fsa

#endif  // SWS_AUTOMATA_AFA_H_
