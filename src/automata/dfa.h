#ifndef SWS_AUTOMATA_DFA_H_
#define SWS_AUTOMATA_DFA_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "automata/nfa.h"

namespace sws::fsa {

/// A complete deterministic finite automaton over the alphabet
/// {0, ..., alphabet_size-1}. Services of the Roman model are DFAs
/// (composite services NFAs); the composition procedures of Section 5
/// determinize, complement and product these automata.
class Dfa {
 public:
  /// A complete DFA with `num_states` states, all transitions initially
  /// pointing at state 0. State 0 is the default start.
  Dfa(int num_states, int alphabet_size);

  int num_states() const { return static_cast<int>(final_.size()); }
  int alphabet_size() const { return alphabet_size_; }

  int start() const { return start_; }
  void set_start(int state);

  int Transition(int state, int symbol) const;
  void SetTransition(int state, int symbol, int to);

  bool IsFinal(int state) const { return final_[state]; }
  void SetFinal(int state, bool is_final = true);
  std::set<int> FinalStates() const;

  bool Accepts(const std::vector<int>& word) const;

  /// Language emptiness / universality.
  bool IsEmpty() const;
  bool IsUniversal() const;
  /// A shortest accepted word, if any.
  std::optional<std::vector<int>> ShortestAcceptedWord() const;

  /// Complement (flips finality; the DFA is complete by construction).
  Dfa Complement() const;

  /// Boolean combinations via the product construction.
  enum class BoolOp { kAnd, kOr, kDiff };
  static Dfa Product(const Dfa& a, const Dfa& b, BoolOp op);

  /// Language equivalence / containment.
  static bool Equivalent(const Dfa& a, const Dfa& b);
  static bool Contains(const Dfa& outer, const Dfa& inner);
  /// A word in L(a) \ L(b), if any.
  static std::optional<std::vector<int>> WitnessDifference(const Dfa& a,
                                                           const Dfa& b);

  /// Minimization (Moore's partition refinement), with unreachable states
  /// removed first.
  Dfa Minimize() const;

  Nfa ToNfa() const;

  std::string ToString() const;

 private:
  int alphabet_size_;
  int start_ = 0;
  std::vector<std::vector<int>> transitions_;  // [state][symbol] -> state
  std::vector<bool> final_;
};

/// Subset construction (with epsilon closures).
Dfa Determinize(const Nfa& nfa);

}  // namespace sws::fsa

#endif  // SWS_AUTOMATA_DFA_H_
