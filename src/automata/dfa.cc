#include "automata/dfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "util/common.h"

namespace sws::fsa {

Dfa::Dfa(int num_states, int alphabet_size) : alphabet_size_(alphabet_size) {
  SWS_CHECK_GE(num_states, 1) << "a complete DFA needs at least one state";
  transitions_.assign(num_states, std::vector<int>(alphabet_size, 0));
  final_.assign(num_states, false);
}

void Dfa::set_start(int state) {
  SWS_CHECK(state >= 0 && state < num_states());
  start_ = state;
}

int Dfa::Transition(int state, int symbol) const {
  SWS_CHECK(state >= 0 && state < num_states());
  SWS_CHECK(symbol >= 0 && symbol < alphabet_size_);
  return transitions_[state][symbol];
}

void Dfa::SetTransition(int state, int symbol, int to) {
  SWS_CHECK(state >= 0 && state < num_states());
  SWS_CHECK(symbol >= 0 && symbol < alphabet_size_);
  SWS_CHECK(to >= 0 && to < num_states());
  transitions_[state][symbol] = to;
}

void Dfa::SetFinal(int state, bool is_final) {
  SWS_CHECK(state >= 0 && state < num_states());
  final_[state] = is_final;
}

std::set<int> Dfa::FinalStates() const {
  std::set<int> out;
  for (int s = 0; s < num_states(); ++s) {
    if (final_[s]) out.insert(s);
  }
  return out;
}

bool Dfa::Accepts(const std::vector<int>& word) const {
  int state = start_;
  for (int symbol : word) state = Transition(state, symbol);
  return final_[state];
}

std::optional<std::vector<int>> Dfa::ShortestAcceptedWord() const {
  std::vector<int> parent(num_states(), -2);
  std::vector<int> via(num_states(), -1);
  std::deque<int> queue = {start_};
  parent[start_] = -1;
  int found = final_[start_] ? start_ : -1;
  while (!queue.empty() && found < 0) {
    int s = queue.front();
    queue.pop_front();
    for (int a = 0; a < alphabet_size_ && found < 0; ++a) {
      int t = transitions_[s][a];
      if (parent[t] == -2) {
        parent[t] = s;
        via[t] = a;
        if (final_[t]) found = t;
        queue.push_back(t);
      }
    }
  }
  if (found < 0) return std::nullopt;
  std::vector<int> word;
  for (int s = found; parent[s] != -1; s = parent[s]) word.push_back(via[s]);
  std::reverse(word.begin(), word.end());
  return word;
}

bool Dfa::IsEmpty() const { return !ShortestAcceptedWord().has_value(); }

bool Dfa::IsUniversal() const { return Complement().IsEmpty(); }

Dfa Dfa::Complement() const {
  Dfa out = *this;
  for (int s = 0; s < num_states(); ++s) out.final_[s] = !out.final_[s];
  return out;
}

Dfa Dfa::Product(const Dfa& a, const Dfa& b, BoolOp op) {
  SWS_CHECK_EQ(a.alphabet_size_, b.alphabet_size_);
  // Build only the reachable part of the product.
  std::map<std::pair<int, int>, int> ids;
  std::vector<std::pair<int, int>> order;
  auto intern = [&](std::pair<int, int> p) {
    auto [it, inserted] = ids.emplace(p, static_cast<int>(order.size()));
    if (inserted) order.push_back(p);
    return it->second;
  };
  intern({a.start_, b.start_});
  for (size_t i = 0; i < order.size(); ++i) {
    auto [sa, sb] = order[i];
    for (int symbol = 0; symbol < a.alphabet_size_; ++symbol) {
      intern({a.transitions_[sa][symbol], b.transitions_[sb][symbol]});
    }
  }
  Dfa out(static_cast<int>(order.size()), a.alphabet_size_);
  out.set_start(0);
  for (size_t i = 0; i < order.size(); ++i) {
    auto [sa, sb] = order[i];
    for (int symbol = 0; symbol < a.alphabet_size_; ++symbol) {
      out.SetTransition(
          static_cast<int>(i), symbol,
          ids.at({a.transitions_[sa][symbol], b.transitions_[sb][symbol]}));
    }
    bool fa = a.final_[sa];
    bool fb = b.final_[sb];
    bool f = false;
    switch (op) {
      case BoolOp::kAnd:
        f = fa && fb;
        break;
      case BoolOp::kOr:
        f = fa || fb;
        break;
      case BoolOp::kDiff:
        f = fa && !fb;
        break;
    }
    out.SetFinal(static_cast<int>(i), f);
  }
  return out;
}

bool Dfa::Equivalent(const Dfa& a, const Dfa& b) {
  return Contains(a, b) && Contains(b, a);
}

bool Dfa::Contains(const Dfa& outer, const Dfa& inner) {
  return Product(inner, outer, BoolOp::kDiff).IsEmpty();
}

std::optional<std::vector<int>> Dfa::WitnessDifference(const Dfa& a,
                                                       const Dfa& b) {
  return Product(a, b, BoolOp::kDiff).ShortestAcceptedWord();
}

Dfa Dfa::Minimize() const {
  // Restrict to reachable states.
  std::vector<int> reach_id(num_states(), -1);
  std::vector<int> reachable;
  std::deque<int> queue = {start_};
  reach_id[start_] = 0;
  reachable.push_back(start_);
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int a = 0; a < alphabet_size_; ++a) {
      int t = transitions_[s][a];
      if (reach_id[t] < 0) {
        reach_id[t] = static_cast<int>(reachable.size());
        reachable.push_back(t);
        queue.push_back(t);
      }
    }
  }
  int n = static_cast<int>(reachable.size());

  // Moore's algorithm: refine the partition {final, non-final} until
  // stable. block[i] is the class of reachable state i.
  std::vector<int> block(n);
  for (int i = 0; i < n; ++i) block[i] = final_[reachable[i]] ? 1 : 0;
  int num_blocks = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::vector<int>, int> signature_to_block;
    std::vector<int> new_block(n);
    for (int i = 0; i < n; ++i) {
      std::vector<int> signature;
      signature.reserve(alphabet_size_ + 1);
      signature.push_back(block[i]);
      for (int a = 0; a < alphabet_size_; ++a) {
        signature.push_back(block[reach_id[transitions_[reachable[i]][a]]]);
      }
      auto [it, inserted] = signature_to_block.emplace(
          std::move(signature), static_cast<int>(signature_to_block.size()));
      new_block[i] = it->second;
      (void)inserted;
    }
    if (static_cast<int>(signature_to_block.size()) != num_blocks) {
      changed = true;
      num_blocks = static_cast<int>(signature_to_block.size());
    }
    block = std::move(new_block);
  }

  Dfa out(num_blocks, alphabet_size_);
  out.set_start(block[reach_id[start_]]);
  for (int i = 0; i < n; ++i) {
    int b = block[i];
    if (final_[reachable[i]]) out.SetFinal(b);
    for (int a = 0; a < alphabet_size_; ++a) {
      out.SetTransition(b, a, block[reach_id[transitions_[reachable[i]][a]]]);
    }
  }
  return out;
}

Nfa Dfa::ToNfa() const {
  Nfa out(alphabet_size_);
  for (int s = 0; s < num_states(); ++s) out.AddState();
  out.AddInitial(start_);
  for (int s = 0; s < num_states(); ++s) {
    if (final_[s]) out.AddFinal(s);
    for (int a = 0; a < alphabet_size_; ++a) {
      out.AddTransition(s, a, transitions_[s][a]);
    }
  }
  return out;
}

std::string Dfa::ToString() const {
  std::ostringstream out;
  out << "DFA(" << num_states() << " states, alphabet " << alphabet_size_
      << ", start " << start_ << ")\n";
  for (int s = 0; s < num_states(); ++s) {
    out << "  " << s << (final_[s] ? "*" : " ") << ":";
    for (int a = 0; a < alphabet_size_; ++a) {
      out << " " << a << "->" << transitions_[s][a];
    }
    out << "\n";
  }
  return out.str();
}

Dfa Determinize(const Nfa& nfa) {
  std::map<std::set<int>, int> ids;
  std::vector<std::set<int>> order;
  auto intern = [&](std::set<int> s) {
    auto [it, inserted] = ids.emplace(s, static_cast<int>(order.size()));
    if (inserted) order.push_back(std::move(s));
    return it->second;
  };
  intern(nfa.EpsilonClosure(nfa.initial()));
  for (size_t i = 0; i < order.size(); ++i) {
    std::set<int> current = order[i];  // copy: order may reallocate
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      intern(nfa.Step(current, a));
    }
  }
  Dfa out(static_cast<int>(order.size()), nfa.alphabet_size());
  out.set_start(0);
  for (size_t i = 0; i < order.size(); ++i) {
    const std::set<int> current = order[i];
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      out.SetTransition(static_cast<int>(i), a, ids.at(nfa.Step(current, a)));
    }
    for (int s : current) {
      if (nfa.IsFinal(s)) {
        out.SetFinal(static_cast<int>(i));
        break;
      }
    }
  }
  return out;
}

}  // namespace sws::fsa
