#include "runtime/runtime.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "persistence/serde.h"
#include "util/common.h"

namespace sws::rt {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

core::Status ValidateRuntimeOptions(const RuntimeOptions& options) {
  using core::RunError;
  using core::Status;
  auto invalid = [](std::string message) {
    return Status::Error(RunError::kQueueRejected, std::move(message));
  };
  if (options.queue_capacity == 0) {
    return invalid("queue_capacity must be >= 1 (0 admits nothing)");
  }
  if (options.shed.low_occupancy <= 0.0 || options.shed.low_occupancy > 1.0 ||
      options.shed.normal_occupancy <= 0.0 ||
      options.shed.normal_occupancy > 1.0) {
    return invalid("shed occupancy fractions must be in (0, 1]");
  }
  if (options.shed.low_occupancy > options.shed.normal_occupancy) {
    return invalid(
        "shed.low_occupancy must not exceed shed.normal_occupancy "
        "(low priority is shed first)");
  }
  if (options.default_deadline.count() < 0) {
    return invalid("default_deadline must be >= 0 (0 = none)");
  }
  if (options.circuit_breaker.failure_threshold > 0 &&
      options.circuit_breaker.open_duration.count() <= 0) {
    return invalid(
        "circuit_breaker.open_duration must be > 0 when breaking is "
        "enabled");
  }
  if (options.run_options.max_nodes == 0) {
    return invalid("run_options.max_nodes must be >= 1 (0 aborts every run)");
  }
  const core::RetryPolicy& retry = options.run_options.retry;
  if (retry.max_attempts == 0) {
    return invalid("retry.max_attempts must be >= 1 (1 = no retry)");
  }
  if (retry.initial_backoff.count() < 0 ||
      retry.max_backoff < retry.initial_backoff) {
    return invalid(
        "retry backoffs must satisfy 0 <= initial_backoff <= max_backoff");
  }
  if (const core::FaultInjector* fi = options.run_options.fault_injector) {
    const core::FaultOptions& fo = fi->options();
    if (fo.fail_rate < 0 || fo.fail_rate > 1 || fo.delay_rate < 0 ||
        fo.delay_rate > 1 || fo.stall_rate < 0 || fo.stall_rate > 1 ||
        fo.torn_write_rate < 0 || fo.torn_write_rate > 1 ||
        fo.sync_fail_rate < 0 || fo.sync_fail_rate > 1 ||
        fo.short_read_rate < 0 || fo.short_read_rate > 1) {
      return invalid("fault injector rates must be in [0, 1]");
    }
  }
  if (core::Status durability =
          persistence::ValidateDurabilityOptions(options.durability);
      !durability.ok()) {
    return invalid(durability.message());
  }
  const RuntimeOptions::GovernanceOptions& gov = options.governance;
  if (gov.enable_watchdog && gov.watchdog_interval.count() <= 0) {
    return invalid("governance.watchdog_interval must be > 0");
  }
  if (gov.deadline_grace < 1.0) {
    return invalid(
        "governance.deadline_grace must be >= 1 (the watchdog must not "
        "cancel before the deadline itself)");
  }
  if (gov.recovery_fraction <= 0.0 || gov.recovery_fraction > 1.0) {
    return invalid("governance.recovery_fraction must be in (0, 1]");
  }
  const ReplicationRuntimeOptions& repl = options.replication;
  if (repl.client != nullptr && !options.durability.enabled()) {
    return invalid(
        "replication.client requires durability (the replicated unit is "
        "the journal record; there is nothing to ship without a journal)");
  }
  if (repl.failover_timeout.count() < 0) {
    return invalid("replication.failover_timeout must be >= 0 (0 = off)");
  }
  if (repl.failover_timeout.count() > 0 &&
      (repl.monitor == nullptr || !gov.enable_watchdog)) {
    return invalid(
        "replication.failover_timeout requires a monitor and the watchdog "
        "(governance.enable_watchdog) — the watchdog thread polls it");
  }
  return Status::Ok();
}

ServiceRuntime::ServiceRuntime(const core::Sws* sws, rel::Database initial_db,
                               RuntimeOptions options)
    : initial_db_(std::move(initial_db)),
      options_(std::move(options)),
      stats_(options_.num_shards != 0
                 ? options_.num_shards
                 : 4 * ResolveWorkers(options_.num_workers)) {
  SWS_CHECK(sws != nullptr);
  core::Status valid = ValidateRuntimeOptions(options_);
  SWS_CHECK(valid.ok()) << "invalid RuntimeOptions — " << valid.message();
  const size_t workers = ResolveWorkers(options_.num_workers);
  const size_t shards =
      options_.num_shards != 0 ? options_.num_shards : 4 * workers;

  shard_config_.sws = sws;
  shard_config_.initial_db = &initial_db_;
  shard_config_.run_options = options_.run_options;
  shard_config_.circuit_breaker = options_.circuit_breaker;
  shard_config_.before_process_hook = options_.before_process_hook;
  if (options_.governance.enable_watchdog) {
    shard_config_.root_governor = &root_governor_;
    shard_config_.pressure_level = &pressure_level_;
  }
  shard_config_.replication = options_.replication.client;

  // Durable startup: recover the directory (replaying any previous
  // incarnation's journal) *before* any shard exists, then hand each
  // shard its durable state and its recovered sessions, and only then
  // start the workers. Recovery runs without the fault injector — it
  // models a fresh process; injected storage faults belong to the life
  // that crashed (tests drive RecoveryManager directly to fault it).
  if (options_.durability.enabled()) {
    // Durable-startup failures (unreachable dir, corrupt/foreign journal,
    // replay divergence) are environmental: aborting would crash-loop on
    // the same bad bytes at every restart. Instead the runtime comes up
    // in a failed state — workers run but every Submit is rejected with
    // init_status() — so the operator can inspect the durable dir.
    core::Status dir_status = persistence::EnsureDir(options_.durability.dir);
    if (!dir_status.ok()) {
      init_error_ = std::move(dir_status);
    } else {
      persistence::RecoveryOptions recovery_options;
      recovery_options.verify_replay_outputs =
          options_.durability.verify_replay_outputs;
      recovery_options.run_max_nodes = options_.run_options.max_nodes;
      persistence::RecoveryManager manager(options_.durability.dir, sws,
                                           initial_db_, recovery_options,
                                           /*fault_injector=*/nullptr);
      recovery_ =
          std::make_unique<persistence::RecoveryResult>(manager.Recover());
      if (!recovery_->status.ok()) {
        init_error_ = recovery_->status;
      }
    }
    if (init_error_.ok()) {
      const uint64_t fingerprint = persistence::SwsFingerprint(*sws);
      durability_.reserve(shards);
      for (size_t i = 0; i < shards; ++i) {
        durability_.push_back(std::make_unique<persistence::ShardDurability>(
            options_.durability,
            persistence::SegmentHeader{recovery_->next_incarnation, i,
                                       fingerprint},
            /*first_segment_n=*/0, options_.run_options.fault_injector));
      }
    }
  }

  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<SessionShard>(
        i, &shard_config_,
        durability_.empty() ? nullptr : durability_[i].get()));
  }
  if (recovery_ != nullptr && init_error_.ok()) {
    for (const auto& [session_id, image] : recovery_->sessions) {
      shards_[ShardOf(session_id)]->InstallSession(
          session_id, core::SessionRunner(sws, image.db, image.pending),
          image.next_seq);
    }
  }
  // The pool queue holds at most one drain task per shard (the scheduled
  // flag), so `shards` capacity guarantees drain-task submission never
  // blocks a client thread.
  pool_ = std::make_unique<ThreadPool>(workers, shards);
  if (options_.governance.enable_watchdog) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

ServiceRuntime::~ServiceRuntime() { Shutdown(); }

core::Status ServiceRuntime::Submit(std::string session_id,
                                    rel::Relation message,
                                    OutcomeCallback callback) {
  SubmitOptions options;
  options.callback = std::move(callback);
  return Submit(std::move(session_id), std::move(message),
                std::move(options));
}

core::Status ServiceRuntime::Submit(std::string session_id,
                                    rel::Relation message,
                                    std::chrono::nanoseconds deadline,
                                    OutcomeCallback callback) {
  SubmitOptions options;
  options.deadline = deadline;
  options.callback = std::move(callback);
  return Submit(std::move(session_id), std::move(message),
                std::move(options));
}

core::Status ServiceRuntime::Submit(std::string session_id,
                                    rel::Relation message,
                                    SubmitOptions options) {
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (options.absolute_deadline.has_value()) {
    deadline = *options.absolute_deadline;
  } else {
    std::chrono::nanoseconds relative = options.deadline.count() > 0
                                            ? options.deadline
                                            : options_.default_deadline;
    if (relative.count() > 0) {
      deadline = std::chrono::steady_clock::now() + relative;
    }
  }
  return SubmitInternal(std::move(session_id), std::move(message),
                        options.priority, deadline,
                        std::move(options.callback));
}

size_t ServiceRuntime::LimitFor(Priority priority) const {
  const size_t cap = options_.queue_capacity;
  double fraction = 1.0;
  switch (priority) {
    case Priority::kHigh:
      return cap;
    case Priority::kNormal:
      fraction = options_.shed.normal_occupancy;
      break;
    case Priority::kLow:
      fraction = options_.shed.low_occupancy;
      break;
  }
  return std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(cap)));
}

core::Status ServiceRuntime::SubmitInternal(
    std::string session_id, rel::Relation message, Priority priority,
    std::chrono::steady_clock::time_point deadline, OutcomeCallback callback) {
  using core::RunError;
  using core::Status;
  // Failed-state runtime (durable startup failed): nothing is admitted.
  if (!init_error_.ok()) {
    stats_.OnRejected();
    return init_error_;
  }
  // Dead on arrival: fast-fail without admitting or running anything.
  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() > deadline) {
    stats_.OnExpiredAtEnqueue();
    return Status::Error(RunError::kDeadlineExceeded,
                         "deadline already expired at enqueue");
  }
  // Memory-pressure shedding (degradation level 3): while the ladder is
  // maxed, low-priority work is refused at the door — the cheapest way
  // to stop feeding a system already shedding caches.
  if (priority == Priority::kLow &&
      pressure_level_.load(std::memory_order_relaxed) >= 3) {
    stats_.OnRejected();
    stats_.OnShedLowPriority();
    return Status::Error(RunError::kQueueRejected,
                         "shed under memory pressure");
  }
  const size_t limit = LimitFor(priority);
  {
    std::unique_lock<std::mutex> lock(admission_mu_);
    // Low priority never blocks: under overload it is shed immediately so
    // that degraded service fails cheap work fast instead of stalling it
    // behind the very backlog that caused the degradation.
    if (options_.on_full == RuntimeOptions::OnFull::kBlock &&
        priority != Priority::kLow) {
      admission_cv_.wait(lock, [&] { return pending_ < limit || stopped_; });
    }
    if (stopped_) {
      lock.unlock();
      stats_.OnRejected();
      return Status::Error(RunError::kShutdown, "runtime is shut down");
    }
    if (pending_ >= limit) {
      const bool shed_before_full = pending_ < options_.queue_capacity;
      lock.unlock();
      stats_.OnRejected();
      if (priority == Priority::kLow && shed_before_full) {
        stats_.OnShedLowPriority();
      }
      return Status::Error(RunError::kQueueRejected,
                           shed_before_full ? "shed by priority policy"
                                            : "admission queue full");
    }
    ++pending_;
  }
  stats_.OnSubmitted();

  SessionShard& shard = *shards_[ShardOf(session_id)];
  const bool needs_scheduling = shard.Enqueue(Envelope{
      std::move(session_id), std::move(message), deadline, priority,
      std::move(callback)});
  if (needs_scheduling) {
    // Cannot fail: pool capacity == num_shards ≥ shards needing a drain
    // task, and the pool only closes after Shutdown()'s drain.
    SWS_CHECK(pool_->Submit([this, &shard] {
      shard.Drain(&stats_, [this] { OnEnvelopeDone(); });
    }));
  }
  return Status::Ok();
}

void ServiceRuntime::OnEnvelopeDone() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    SWS_CHECK_GT(pending_, 0u);
    --pending_;
  }
  admission_cv_.notify_all();
}

void ServiceRuntime::Drain() {
  std::unique_lock<std::mutex> lock(admission_mu_);
  admission_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ServiceRuntime::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    stopped_ = true;
  }
  admission_cv_.notify_all();  // release submitters blocked on capacity
  Drain();
  // Safe under concurrent Shutdown: Close() is idempotent and Stop()
  // serializes the joins internally, so every caller returns only after
  // the workers are joined. The watchdog outlives the drain (it must be
  // able to cancel a wedged run that the drain is waiting on) and is
  // stopped last; its join is serialized by its own mutex.
  pool_->Stop();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(watchdog_join_mu_);
    if (watchdog_.joinable()) watchdog_.join();
  }
}

void ServiceRuntime::WatchdogLoop() {
  const RuntimeOptions::GovernanceOptions& gov = options_.governance;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, gov.watchdog_interval,
                            [&] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    // Deadline backstop: cancel any in-flight run that has overrun its
    // deadline by the grace factor. Cancel() is sticky/first-writer-wins,
    // so repeated ticks over the same hog count one watchdog cancel.
    const auto now = std::chrono::steady_clock::now();
    for (const auto& shard : shards_) {
      std::optional<SessionShard::InFlightRun> run = shard->CurrentRun();
      if (!run.has_value() ||
          run->deadline == std::chrono::steady_clock::time_point::max()) {
        continue;
      }
      const auto budget = run->deadline - run->start;
      const auto graced =
          run->start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              budget * gov.deadline_grace);
      if (now > graced &&
          run->governor->Cancel(core::RunError::kDeadlineExceeded,
                                "cancelled by watchdog: run overran its "
                                "deadline past the grace factor")) {
        stats_.OnWatchdogCancel();
      }
    }
    // Failover trigger: a peer whose replication stream has gone silent
    // past the failover timeout is reported (once per silence episode by
    // the monitor's contract) so the node above can decide to promote.
    // Detection only — promotion itself tears this runtime down and
    // recovers the follower journal, which cannot happen on this thread.
    const ReplicationRuntimeOptions& repl = options_.replication;
    if (repl.monitor != nullptr && repl.failover_timeout.count() > 0 &&
        repl.on_peer_suspected) {
      for (const std::string& peer :
           repl.monitor->SuspectPeers(now, repl.failover_timeout)) {
        if (repl.counters != nullptr) {
          repl.counters->peer_suspicions.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
        repl.on_peer_suspected(peer);
      }
    }
    // Memory-pressure ladder: one step per tick, up at ≥ threshold, down
    // at ≤ recovery_fraction × threshold (hysteresis in between).
    if (gov.memory_pressure_bytes > 0) {
      const uint64_t bytes =
          gov.pressure_probe
              ? gov.pressure_probe()
              : static_cast<uint64_t>(
                    std::max<int64_t>(0, root_governor_.tracked_bytes()));
      stats_.OnTrackedBytes(bytes);
      const int level = pressure_level_.load(std::memory_order_relaxed);
      if (bytes >= gov.memory_pressure_bytes && level < 3) {
        pressure_level_.store(level + 1, std::memory_order_relaxed);
        stats_.OnDegradation();
      } else if (bytes <= static_cast<uint64_t>(
                              gov.recovery_fraction *
                              static_cast<double>(gov.memory_pressure_bytes)) &&
                 level > 0) {
        pressure_level_.store(level - 1, std::memory_order_relaxed);
      }
    }
  }
}

StatsSnapshot ServiceRuntime::Stats() const {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    depth = pending_;
  }
  StatsSnapshot snap = stats_.Snapshot(
      depth, static_cast<uint64_t>(
                 pressure_level_.load(std::memory_order_relaxed)));
  // Replication-layer gauges live outside RuntimeStats: the promotion
  // counter survives the runtime rebuild a promotion performs, and the
  // shipping counters are owned by the replicator.
  snap.promotions = options_.replication.promotions;
  if (const ReplicationClient* client = options_.replication.client) {
    snap.segments_shipped = client->segments_shipped();
    snap.follower_lag_hwm = client->follower_lag_hwm();
  }
  if (const ReplicationCounters* counters = options_.replication.counters) {
    snap.peer_suspicions =
        counters->peer_suspicions.load(std::memory_order_relaxed);
    snap.auto_promotions =
        counters->auto_promotions.load(std::memory_order_relaxed);
    snap.epoch_fencing_rejects =
        counters->epoch_fencing_rejects.load(std::memory_order_relaxed);
    snap.catchup_bytes_shipped =
        counters->catchup_bytes_shipped.load(std::memory_order_relaxed);
  }
  return snap;
}

size_t ServiceRuntime::ShardOf(const std::string& session_id) const {
  return std::hash<std::string>{}(session_id) % shards_.size();
}

}  // namespace sws::rt
