#include "runtime/runtime.h"

#include <thread>
#include <utility>

#include "util/common.h"

namespace sws::rt {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ServiceRuntime::ServiceRuntime(const core::Sws* sws, rel::Database initial_db,
                               RuntimeOptions options)
    : initial_db_(std::move(initial_db)),
      options_(std::move(options)),
      stats_(options_.num_shards != 0
                 ? options_.num_shards
                 : 4 * ResolveWorkers(options_.num_workers)) {
  SWS_CHECK(sws != nullptr);
  SWS_CHECK_GE(options_.queue_capacity, 1u);
  const size_t workers = ResolveWorkers(options_.num_workers);
  const size_t shards =
      options_.num_shards != 0 ? options_.num_shards : 4 * workers;

  shard_config_.sws = sws;
  shard_config_.initial_db = &initial_db_;
  shard_config_.run_options = options_.run_options;
  shard_config_.before_process_hook = options_.before_process_hook;

  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<SessionShard>(i, &shard_config_));
  }
  // The pool queue holds at most one drain task per shard (the scheduled
  // flag), so `shards` capacity guarantees drain-task submission never
  // blocks a client thread.
  pool_ = std::make_unique<ThreadPool>(workers, shards);
}

ServiceRuntime::~ServiceRuntime() { Shutdown(); }

bool ServiceRuntime::Submit(std::string session_id, rel::Relation message,
                            OutcomeCallback callback) {
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (options_.default_deadline.count() > 0) {
    deadline = std::chrono::steady_clock::now() + options_.default_deadline;
  }
  return SubmitInternal(std::move(session_id), std::move(message), deadline,
                        std::move(callback));
}

bool ServiceRuntime::Submit(std::string session_id, rel::Relation message,
                            std::chrono::nanoseconds deadline,
                            OutcomeCallback callback) {
  auto abs = std::chrono::steady_clock::time_point::max();
  if (deadline.count() > 0) abs = std::chrono::steady_clock::now() + deadline;
  return SubmitInternal(std::move(session_id), std::move(message), abs,
                        std::move(callback));
}

bool ServiceRuntime::SubmitInternal(
    std::string session_id, rel::Relation message,
    std::chrono::steady_clock::time_point deadline, OutcomeCallback callback) {
  {
    std::unique_lock<std::mutex> lock(admission_mu_);
    if (options_.on_full == RuntimeOptions::OnFull::kBlock) {
      admission_cv_.wait(lock, [&] {
        return pending_ < options_.queue_capacity || stopped_;
      });
    }
    if (stopped_ || pending_ >= options_.queue_capacity) {
      lock.unlock();
      stats_.OnRejected();
      return false;
    }
    ++pending_;
  }
  stats_.OnSubmitted();

  SessionShard& shard = *shards_[ShardOf(session_id)];
  const bool needs_scheduling = shard.Enqueue(Envelope{
      std::move(session_id), std::move(message), deadline,
      std::move(callback)});
  if (needs_scheduling) {
    // Cannot fail: pool capacity == num_shards ≥ shards needing a drain
    // task, and the pool only closes after Shutdown()'s drain.
    SWS_CHECK(pool_->Submit([this, &shard] {
      shard.Drain(&stats_, [this] { OnEnvelopeDone(); });
    }));
  }
  return true;
}

void ServiceRuntime::OnEnvelopeDone() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    SWS_CHECK_GT(pending_, 0u);
    --pending_;
  }
  admission_cv_.notify_all();
}

void ServiceRuntime::Drain() {
  std::unique_lock<std::mutex> lock(admission_mu_);
  admission_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ServiceRuntime::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    stopped_ = true;
  }
  admission_cv_.notify_all();  // release submitters blocked on capacity
  Drain();
  pool_->Stop();
}

StatsSnapshot ServiceRuntime::Stats() const {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    depth = pending_;
  }
  return stats_.Snapshot(depth);
}

size_t ServiceRuntime::ShardOf(const std::string& session_id) const {
  return std::hash<std::string>{}(session_id) % shards_.size();
}

}  // namespace sws::rt
