#ifndef SWS_RUNTIME_REPLICATION_HOOKS_H_
#define SWS_RUNTIME_REPLICATION_HOOKS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "persistence/journal.h"
#include "sws/status.h"

namespace sws::rt {

/// Primary-side replication hooks, implemented by
/// replication::Replicator and wired through RuntimeOptions. The shard
/// drain path calls these from the drain-role holder right after the
/// corresponding durable append, so shipments follow journal order per
/// shard. A null client is replication off — the hot path's only cost
/// is that null check (the replicas=0 contract in DESIGN.md §11).
class ReplicationClient {
 public:
  virtual ~ReplicationClient() = default;

  /// Ships one *persisted* input or discard record to the session's
  /// followers. Non-blocking: followers acknowledge asynchronously and
  /// the record is retransmitted until they do. `shard` and `segment_n`
  /// locate the record in the primary's journal — the replication
  /// cursor, which pins the segment against snapshot GC until every
  /// follower has acknowledged past it.
  virtual void ShipRecord(const persistence::JournalRecord& record,
                          uint64_t shard, uint64_t segment_n) = 0;

  /// The extended ack barrier (DESIGN.md §11): ships the persisted
  /// outcome record, then blocks until `ack_quorum` of the session's
  /// followers have durably acknowledged everything up to and including
  /// it, or `ack_timeout` passes. Ok ⇒ the callback may acknowledge the
  /// client; kReplicationTimeout ⇒ the ack must be withheld (the outcome
  /// is durable locally but not provably replicated).
  virtual core::Status ShipOutcomeAndWait(
      const persistence::JournalRecord& record, uint64_t shard,
      uint64_t segment_n) = 0;

  /// Smallest journal segment counter of `shard` that an unacknowledged
  /// shipment still references (the GC pin the shard installs before
  /// snapshotting), or persistence::ShardDurability::kNoSegmentPin when
  /// every shipment of that shard has been acknowledged.
  virtual uint64_t MinUnackedSegment(uint64_t shard) const = 0;

  // Pulled into StatsSnapshot by ServiceRuntime::Stats().
  virtual uint64_t segments_shipped() const = 0;
  virtual uint64_t follower_lag_hwm() const = 0;
};

/// Follower-side failover signal, implemented by
/// replication::FollowerApplier and polled by the runtime watchdog: a
/// peer whose replication stream (records or heartbeats) has gone silent
/// past the failover timeout is reported once per silence episode, and
/// the runtime fires RuntimeOptions::replication.on_peer_suspected so
/// the operator (or a chaos harness) can decide to promote.
class FailoverMonitor {
 public:
  virtual ~FailoverMonitor() = default;
  virtual std::vector<std::string> SuspectPeers(
      std::chrono::steady_clock::time_point now,
      std::chrono::nanoseconds timeout) = 0;
};

/// Self-healing-failover counters (DESIGN.md §13), owned by whoever
/// owns the replication layer (a ReplicatedNode) so they survive the
/// runtime rebuilds that promotions and restarts perform — the same
/// reason ReplicationRuntimeOptions::promotions is a stamp, not a
/// RuntimeStats atomic. The watchdog ticks peer_suspicions through the
/// options pointer; the replication layer ticks the rest; Stats()
/// stamps all four into the snapshot.
struct ReplicationCounters {
  std::atomic<uint64_t> peer_suspicions{0};
  std::atomic<uint64_t> auto_promotions{0};
  std::atomic<uint64_t> epoch_fencing_rejects{0};
  std::atomic<uint64_t> catchup_bytes_shipped{0};
};

/// Replication wiring carried by RuntimeOptions::replication. All
/// defaults off: a runtime constructed without touching this struct is
/// byte-for-byte the unreplicated runtime.
struct ReplicationRuntimeOptions {
  /// Primary-side shipping + ack barrier; null = replication off.
  /// Must outlive the runtime.
  ReplicationClient* client = nullptr;
  /// Follower-side silence detection; null = no failover trigger.
  /// Must outlive the runtime.
  FailoverMonitor* monitor = nullptr;
  /// Silence window after which a peer is suspected dead. Requires the
  /// watchdog (governance.enable_watchdog) and `monitor`; 0 disables.
  std::chrono::nanoseconds failover_timeout{0};
  /// Fired from the watchdog thread, once per silence episode per peer.
  /// Must not block: promotion work belongs on the caller's own thread.
  std::function<void(const std::string& peer)> on_peer_suspected;
  /// Completed promotions this node has performed (stamped into
  /// StatsSnapshot::promotions — the counter survives the runtime
  /// rebuild a promotion performs, so the node passes it back in).
  uint64_t promotions = 0;
  /// Failover counters shared across this node's lives; null = none
  /// (their snapshot fields stay zero). Must outlive the runtime.
  ReplicationCounters* counters = nullptr;
};

}  // namespace sws::rt

#endif  // SWS_RUNTIME_REPLICATION_HOOKS_H_
