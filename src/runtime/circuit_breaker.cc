#include "runtime/circuit_breaker.h"

namespace sws::rt {

CircuitBreaker::State CircuitBreaker::OnRequest(
    std::chrono::steady_clock::time_point now) {
  if (!enabled()) return State::kClosed;
  if (state_ == State::kOpen && now - opened_at_ >= policy_.open_duration) {
    state_ = State::kHalfOpen;
  }
  return state_;
}

void CircuitBreaker::OnRunSuccess() {
  if (!enabled()) return;
  consecutive_failures_ = 0;
  state_ = State::kClosed;
}

void CircuitBreaker::OnRunFailure(std::chrono::steady_clock::time_point now) {
  if (!enabled()) return;
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now;
  }
}

}  // namespace sws::rt
