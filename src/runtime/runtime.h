#ifndef SWS_RUNTIME_RUNTIME_H_
#define SWS_RUNTIME_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "persistence/durability.h"
#include "persistence/recovery.h"
#include "relational/database.h"
#include "runtime/circuit_breaker.h"
#include "runtime/replication_hooks.h"
#include "runtime/runtime_stats.h"
#include "runtime/session_shard.h"
#include "runtime/thread_pool.h"
#include "sws/execution.h"
#include "sws/status.h"
#include "sws/sws.h"

namespace sws::rt {

struct RuntimeOptions {
  /// Worker threads. 0 → std::thread::hardware_concurrency() (min 1).
  size_t num_workers = 0;
  /// Session shards. 0 → 4× the worker count. More shards = finer-grained
  /// parallelism across sessions; sessions on one shard serialize.
  size_t num_shards = 0;
  /// Bound on admitted-but-unprocessed messages across all shards — the
  /// backpressure knob. Must be ≥ 1 (see ValidateRuntimeOptions).
  size_t queue_capacity = 1024;
  /// What Submit does when a priority class's admission limit is hit.
  enum class OnFull {
    kReject,  // Submit fails immediately (load shedding)
    kBlock,   // Submit waits for capacity (producer throttling); low
              // priority never blocks — it is shed instead, so degraded
              // service fails cheap work fast rather than stalling it
  };
  OnFull on_full = OnFull::kReject;
  /// Graceful degradation under overload: the fraction of queue_capacity
  /// each priority class may fill before its submissions are shed. High
  /// priority may always use the full queue, so as load rises the
  /// runtime sheds low- then (when normal_occupancy < 1) normal-priority
  /// work while high-priority work is still admitted. Each limit
  /// resolves to at least 1 slot. The default keeps normal priority at
  /// full capacity, so plain Submit behaves exactly as without shedding.
  struct ShedPolicy {
    double low_occupancy = 0.5;     // Priority::kLow admitted below this
    double normal_occupancy = 1.0;  // Priority::kNormal admitted below this
  };
  ShedPolicy shed;
  /// Deadline applied to every message from the moment it is admitted;
  /// zero means none. A message still queued past its deadline is dropped
  /// (callback gets kDeadlineExceeded) without running the service.
  std::chrono::nanoseconds default_deadline{0};
  /// Per-session circuit breaking: after `failure_threshold` consecutive
  /// failed runs a session fast-fails (kCircuitOpen) for `open_duration`,
  /// then gets a half-open trial. Threshold 0 disables.
  CircuitBreakerPolicy circuit_breaker;
  /// Per-run execution limits and fault-tolerance knobs: max_nodes (the
  /// node budget; a trip surfaces as kBudgetExceeded), fault_injector
  /// (null = disabled), and retry (transient-failure retry with capped
  /// backoff + decorrelated jitter, deadline-aware).
  core::RunOptions run_options;
  /// Durability (write-ahead journal + snapshots + crash recovery,
  /// DESIGN.md §9). Off by default (`dir` empty): the shards then carry
  /// a null durability pointer and the hot path is identical to a
  /// non-durable build. When set, the constructor first *recovers* the
  /// directory (replaying any prior incarnation's journal), installs the
  /// recovered sessions, and only then starts the workers.
  persistence::DurabilityOptions durability;
  /// Resource governance (DESIGN.md §10): per-run governors, a watchdog
  /// that externally cancels runs overrunning their deadline, and a
  /// memory-pressure ladder that degrades service gracefully instead of
  /// letting cache growth run away.
  struct GovernanceOptions {
    /// Master switch. When true every delimiter run gets an
    /// ExecutionGovernor parented to the runtime root (cooperative
    /// cancellation + budget enforcement inside query evaluation) and
    /// the watchdog thread runs. Off by default: the ungoverned hot
    /// path is unchanged.
    bool enable_watchdog = false;
    /// Watchdog tick period. Must be > 0 when the watchdog is enabled.
    std::chrono::microseconds watchdog_interval{1000};
    /// A governed run started at s with deadline d is cancelled from
    /// outside once now > s + deadline_grace × (d − s). Cooperative
    /// in-run cancellation should fire first; the watchdog is the
    /// backstop for runs wedged where no cancellation point runs.
    /// Must be ≥ 1.
    double deadline_grace = 2.0;
    /// Global governed-cache-bytes threshold that starts the
    /// degradation ladder; 0 disables pressure handling. Each watchdog
    /// tick at or above the threshold raises the level (max 3):
    ///   1 — new runs stop memoizing (memo caches shed);
    ///   2 — new runs clamp their index pools to one index/relation;
    ///   3 — low-priority submissions are shed at admission.
    /// Ticks at or below recovery_fraction × threshold step back down.
    size_t memory_pressure_bytes = 0;
    /// Hysteresis for stepping the ladder down. Must be in (0, 1].
    double recovery_fraction = 0.7;
    /// Overrides the pressure signal (tests inject synthetic pressure);
    /// null = the root governor's live tracked_bytes().
    std::function<uint64_t()> pressure_probe;
  };
  GovernanceOptions governance;
  /// Cross-node replication wiring (DESIGN.md §11): the primary-side
  /// shipper + quorum ack barrier, the follower-side silence monitor the
  /// watchdog polls for failover, and the promotion counter. All-default
  /// = replication off; `client` requires durability (the shipped unit
  /// is the journal record) and `failover_timeout` requires the watchdog.
  ReplicationRuntimeOptions replication;
  /// Test/bench instrumentation; see SessionShard::Config.
  std::function<void(const std::string& session_id)> before_process_hook;
};

/// Checks a RuntimeOptions for nonsense (zero queue bound, shed
/// fractions outside (0, 1], inverted shed ordering, zero retry
/// attempts, inverted backoff bounds, a zero node budget, an enabled
/// breaker with a non-positive open window, fault rates outside [0, 1]).
/// num_workers == 0 and num_shards == 0 are *valid* — they mean "auto"
/// and resolve to at least 1. The ServiceRuntime constructor enforces
/// this with a clear diagnostic instead of undefined behavior.
core::Status ValidateRuntimeOptions(const RuntimeOptions& options);

/// Per-request submission knobs (the long-form Submit overload).
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Relative deadline; zero falls back to RuntimeOptions::default_deadline.
  std::chrono::nanoseconds deadline{0};
  /// Absolute deadline; overrides `deadline` when set. A deadline already
  /// expired at enqueue time fast-fails the submission (kDeadlineExceeded
  /// returned, nothing admitted, no callback) without running anything.
  std::optional<std::chrono::steady_clock::time_point> absolute_deadline;
  OutcomeCallback callback;
};

/// The concurrent multi-session runtime: clients Submit() messages tagged
/// with a session id; the runtime hashes each session to a shard, shards
/// drain on a fixed worker pool, and each session replays the classic
/// SessionRunner semantics — messages buffer until a '#' delimiter runs
/// the service and commits to that session's private database copy.
///
/// Threading model (see also DESIGN.md §6):
///  * shared-immutable: the Sws and the seed Database — read concurrently
///    by all workers, never written;
///  * shard-owned: every SessionRunner (session buffer + database copy) —
///    touched only by the worker currently draining its shard;
///  * per-session ordering: messages of one session are processed in
///    submission order; distinct sessions on distinct shards in parallel.
///
/// Submit() may be called from any number of threads concurrently.
class ServiceRuntime {
 public:
  /// `sws` must outlive the runtime and must not be mutated while the
  /// runtime exists. Every new session starts from a copy of
  /// `initial_db`.
  ServiceRuntime(const core::Sws* sws, rel::Database initial_db,
                 RuntimeOptions options = {});
  /// Shuts down (completing admitted work) if not already shut down.
  ~ServiceRuntime();

  ServiceRuntime(const ServiceRuntime&) = delete;
  ServiceRuntime& operator=(const ServiceRuntime&) = delete;

  /// Submits one message for `session_id`. ok() iff the message was
  /// admitted; otherwise the code says why: kQueueRejected (backpressure
  /// or priority shedding), kShutdown, or kDeadlineExceeded (already
  /// expired at enqueue — fast-failed without running). A non-admitted
  /// message produces no callback. `callback`, if given, fires on the
  /// worker when the message closes a session, errors, or misses its
  /// deadline; buffered non-delimiter messages produce no callback.
  core::Status Submit(std::string session_id, rel::Relation message,
                      OutcomeCallback callback = nullptr);

  /// As above with a per-request deadline overriding the default.
  core::Status Submit(std::string session_id, rel::Relation message,
                      std::chrono::nanoseconds deadline,
                      OutcomeCallback callback);

  /// The long form: priority class, deadline (relative or absolute) and
  /// callback in one bag.
  core::Status Submit(std::string session_id, rel::Relation message,
                      SubmitOptions options);

  /// Blocks until every admitted message has been processed. Concurrent
  /// Submits may keep the runtime busy past the return; typical use is
  /// quiescing after producers stop. Idempotent and safe to call from
  /// any number of threads, before or after Shutdown.
  void Drain();

  /// Drains, then stops the workers. Subsequent Submits are rejected
  /// with kShutdown. Idempotent and safe to call concurrently: every
  /// caller returns only once all admitted work is complete and the
  /// workers are joined.
  void Shutdown();

  /// Point-in-time counters; safe to call at any time.
  StatsSnapshot Stats() const;

  /// Which shard a session id maps to (stable for the runtime's life) —
  /// introspection for tests, benches and placement debugging.
  size_t ShardOf(const std::string& session_id) const;

  size_t num_workers() const { return pool_->num_threads(); }
  size_t num_shards() const { return shards_.size(); }
  const core::Sws& sws() const { return *shard_config_.sws; }

  /// The constructor-time recovery result (replayed outputs a client
  /// must deliver, per-session next_seq for resubmission), or null when
  /// durability is off. Valid for the runtime's lifetime.
  const persistence::RecoveryResult* recovery() const {
    return recovery_.get();
  }

  /// Ok unless durable startup failed (unreachable dir, corrupt or
  /// foreign journal, replay-divergence with verify_replay_outputs).
  /// These are environmental, not programmer errors, so construction
  /// surfaces them here instead of aborting: the runtime comes up in a
  /// failed state that rejects every Submit with this status, letting
  /// the operator inspect the durable dir and decide — an abort would
  /// just crash-loop on the same bad bytes. Check after constructing
  /// any runtime whose options enable durability.
  const core::Status& init_status() const { return init_error_; }

 private:
  core::Status SubmitInternal(std::string session_id, rel::Relation message,
                              Priority priority,
                              std::chrono::steady_clock::time_point deadline,
                              OutcomeCallback callback);
  /// Admission limit (in queue slots) for a priority class.
  size_t LimitFor(Priority priority) const;
  /// Called by a shard after each processed envelope: releases one unit
  /// of queue capacity and wakes blocked submitters/drainers.
  void OnEnvelopeDone();
  /// The watchdog thread body: each tick cancels overrunning in-flight
  /// runs and steps the memory-pressure ladder (see GovernanceOptions).
  void WatchdogLoop();

  rel::Database initial_db_;
  SessionShard::Config shard_config_;
  RuntimeOptions options_;
  RuntimeStats stats_;
  core::Status init_error_;  // set = failed-state runtime, see init_status()
  std::unique_ptr<persistence::RecoveryResult> recovery_;
  std::vector<std::unique_ptr<persistence::ShardDurability>> durability_;
  std::vector<std::unique_ptr<SessionShard>> shards_;
  std::unique_ptr<ThreadPool> pool_;

  /// Admission state: `pending_` counts admitted-but-unprocessed
  /// messages, bounded by options_.queue_capacity (per-priority limits
  /// below it implement the shedding policy).
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;  // capacity freed / drained
  size_t pending_ = 0;
  bool stopped_ = false;

  /// Governance state (enable_watchdog only). The root governor is the
  /// parent of every per-run governor, so its tracked_bytes() is the
  /// live global governed-cache gauge the pressure ladder samples.
  core::ExecutionGovernor root_governor_;
  std::atomic<int> pressure_level_{0};
  std::mutex watchdog_mu_;  // guards watchdog_stop_ + the tick cv
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::mutex watchdog_join_mu_;  // serializes concurrent Shutdown joins
  std::thread watchdog_;
};

}  // namespace sws::rt

#endif  // SWS_RUNTIME_RUNTIME_H_
