#ifndef SWS_RUNTIME_RUNTIME_H_
#define SWS_RUNTIME_RUNTIME_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "relational/database.h"
#include "runtime/runtime_stats.h"
#include "runtime/session_shard.h"
#include "runtime/thread_pool.h"
#include "sws/execution.h"
#include "sws/sws.h"

namespace sws::rt {

struct RuntimeOptions {
  /// Worker threads. 0 → std::thread::hardware_concurrency() (min 1).
  size_t num_workers = 0;
  /// Session shards. 0 → 4× the worker count. More shards = finer-grained
  /// parallelism across sessions; sessions on one shard serialize.
  size_t num_shards = 0;
  /// Bound on admitted-but-unprocessed messages across all shards — the
  /// backpressure knob.
  size_t queue_capacity = 1024;
  /// What Submit does when the bound is hit.
  enum class OnFull {
    kReject,  // Submit returns false immediately (load shedding)
    kBlock,   // Submit waits for capacity (producer throttling)
  };
  OnFull on_full = OnFull::kReject;
  /// Deadline applied to every message from the moment it is admitted;
  /// zero means none. A message still queued past its deadline is dropped
  /// (callback gets kDeadlineExceeded) without running the service.
  std::chrono::nanoseconds default_deadline{0};
  /// Per-run execution limits (notably max_nodes, the node budget); a
  /// budget trip surfaces as OutcomeStatus::kBudgetExceeded.
  core::RunOptions run_options;
  /// Test/bench instrumentation; see SessionShard::Config.
  std::function<void(const std::string& session_id)> before_process_hook;
};

/// The concurrent multi-session runtime: clients Submit() messages tagged
/// with a session id; the runtime hashes each session to a shard, shards
/// drain on a fixed worker pool, and each session replays the classic
/// SessionRunner semantics — messages buffer until a '#' delimiter runs
/// the service and commits to that session's private database copy.
///
/// Threading model (see also DESIGN.md §6):
///  * shared-immutable: the Sws and the seed Database — read concurrently
///    by all workers, never written;
///  * shard-owned: every SessionRunner (session buffer + database copy) —
///    touched only by the worker currently draining its shard;
///  * per-session ordering: messages of one session are processed in
///    submission order; distinct sessions on distinct shards in parallel.
///
/// Submit() may be called from any number of threads concurrently.
class ServiceRuntime {
 public:
  /// `sws` must outlive the runtime and must not be mutated while the
  /// runtime exists. Every new session starts from a copy of
  /// `initial_db`.
  ServiceRuntime(const core::Sws* sws, rel::Database initial_db,
                 RuntimeOptions options = {});
  /// Shuts down (completing admitted work) if not already shut down.
  ~ServiceRuntime();

  ServiceRuntime(const ServiceRuntime&) = delete;
  ServiceRuntime& operator=(const ServiceRuntime&) = delete;

  /// Submits one message for `session_id`. Returns false iff the message
  /// was not admitted (backpressure under OnFull::kReject, or the runtime
  /// is shut down). `callback`, if given, fires on the worker when the
  /// message closes a session, misses its deadline, or trips the node
  /// budget; buffered non-delimiter messages produce no callback.
  bool Submit(std::string session_id, rel::Relation message,
              OutcomeCallback callback = nullptr);

  /// As above with a per-request deadline overriding the default.
  bool Submit(std::string session_id, rel::Relation message,
              std::chrono::nanoseconds deadline, OutcomeCallback callback);

  /// Blocks until every admitted message has been processed. Concurrent
  /// Submits may keep the runtime busy past the return; typical use is
  /// quiescing after producers stop.
  void Drain();

  /// Drains, then stops the workers. Subsequent Submits are rejected.
  /// Idempotent.
  void Shutdown();

  /// Point-in-time counters; safe to call at any time.
  StatsSnapshot Stats() const;

  /// Which shard a session id maps to (stable for the runtime's life) —
  /// introspection for tests, benches and placement debugging.
  size_t ShardOf(const std::string& session_id) const;

  size_t num_workers() const { return pool_->num_threads(); }
  size_t num_shards() const { return shards_.size(); }
  const core::Sws& sws() const { return *shard_config_.sws; }

 private:
  bool SubmitInternal(std::string session_id, rel::Relation message,
                      std::chrono::steady_clock::time_point deadline,
                      OutcomeCallback callback);
  /// Called by a shard after each processed envelope: releases one unit
  /// of queue capacity and wakes blocked submitters/drainers.
  void OnEnvelopeDone();

  rel::Database initial_db_;
  SessionShard::Config shard_config_;
  RuntimeOptions options_;
  RuntimeStats stats_;
  std::vector<std::unique_ptr<SessionShard>> shards_;
  std::unique_ptr<ThreadPool> pool_;

  /// Admission state: `pending_` counts admitted-but-unprocessed
  /// messages, bounded by options_.queue_capacity.
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;  // capacity freed / drained
  size_t pending_ = 0;
  bool stopped_ = false;
};

}  // namespace sws::rt

#endif  // SWS_RUNTIME_RUNTIME_H_
