#ifndef SWS_RUNTIME_SESSION_SHARD_H_
#define SWS_RUNTIME_SESSION_SHARD_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "persistence/durability.h"
#include "relational/database.h"
#include "runtime/circuit_breaker.h"
#include "runtime/replication_hooks.h"
#include "runtime/runtime_stats.h"
#include "sws/fault.h"
#include "sws/governor.h"
#include "sws/session.h"
#include "sws/status.h"
#include "sws/sws.h"

namespace sws::rt {

/// Priority class of a submitted message. Priorities shape *admission
/// only* (graceful degradation: low-priority work is shed before
/// high-priority work blocks or bounces); once admitted, every message
/// obeys the same per-session FIFO order.
enum class Priority : uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

/// Delivered to the submitter's callback from a worker thread. Callbacks
/// for one session are invoked in submission order (the per-shard drain
/// serializes them); callbacks must not block for long — they run on pool
/// workers — and must not call back into ServiceRuntime::Submit when the
/// runtime uses blocking admission (deadlock: the worker the submit waits
/// on is the one running the callback).
struct Outcome {
  /// ok() ⇔ a delimiter ran and committed (`session` is set). Error
  /// codes: kDeadlineExceeded (sat in the queue past its deadline, or
  /// the retry loop ran out of deadline), kBudgetExceeded,
  /// kInjectedFault (final, after any retries), kCircuitOpen (the
  /// session's breaker fast-failed the delimiter without running).
  core::Status status;
  std::string session_id;
  /// Set iff status.ok().
  std::optional<core::SessionRunner::SessionOutcome> session;
  /// Run attempts made for this outcome (1 + retries); 0 when nothing
  /// ran (deadline drop, circuit fast-fail).
  uint32_t attempts = 0;
};

using OutcomeCallback = std::function<void(Outcome)>;

/// One admitted message, stamped by the admission layer.
struct Envelope {
  std::string session_id;
  rel::Relation message;
  std::chrono::steady_clock::time_point deadline;  // ::max() = none
  Priority priority = Priority::kNormal;
  OutcomeCallback callback;  // may be null
};

/// A shard of the session space: owns the SessionRunner (and therefore
/// the per-session database copy) of every session id hashing to it, plus
/// a FIFO of undelivered envelopes.
///
/// Concurrency protocol ("strand" scheduling): `mu_` guards only the
/// queue and the scheduled flag. At most one worker at a time holds the
/// *drain role* for a shard — Enqueue returns true exactly when it
/// transitions the shard from idle to scheduled, and the caller must then
/// post Drain() to the pool. Drain() processes envelopes one at a time
/// without holding `mu_` during the service run, and gives the role back
/// (scheduled_ = false) only after observing an empty queue under `mu_`.
/// Hence: messages of one shard — a fortiori of one session — are
/// processed in submission order by exactly one thread at a time, while
/// distinct shards drain on distinct workers in parallel. `runners_` is
/// only ever touched by the drain-role holder, so it needs no lock.
class SessionShard {
 public:
  /// Per-message hooks and run options shared by all shards. `sws` and
  /// `initial_db` must outlive the shard and stay unmodified (they are
  /// read concurrently by every shard; see the thread-safety notes in
  /// sws/sws.h and relational/database.h).
  struct Config {
    const core::Sws* sws = nullptr;
    const rel::Database* initial_db = nullptr;
    /// Carries the per-run limits plus the fault-tolerance knobs: the
    /// (nullable) fault injector — also consulted for shard-stall
    /// injection in Drain — and the retry policy. The per-envelope
    /// deadline overrides run_options.deadline for each message.
    core::RunOptions run_options;
    /// Per-session circuit breaking; failure_threshold 0 disables.
    CircuitBreakerPolicy circuit_breaker;
    /// Test/bench instrumentation: invoked on the worker right before
    /// each envelope is processed (after the deadline check).
    std::function<void(const std::string& session_id)> before_process_hook;
    /// Resource governance (see DESIGN.md §10). The runtime's root
    /// governor — parent of every per-request governor, so steps/bytes
    /// roll up to a live global gauge — or null when governance is off.
    core::ExecutionGovernor* root_governor = nullptr;
    /// The runtime watchdog's memory-pressure degradation level (0 =
    /// healthy). Read per delimiter: ≥1 disables run memoization, ≥2
    /// additionally clamps the run's index pool to one index per
    /// relation. Null = no degradation.
    const std::atomic<int>* pressure_level = nullptr;
    /// Primary-side replication (DESIGN.md §11): persisted records are
    /// shipped to followers and delimiter acks wait for the follower
    /// quorum. Null = replication off — the single-node ack path is
    /// untouched. Only meaningful with durability (there is no journal
    /// record to ship otherwise; ValidateRuntimeOptions enforces it).
    ReplicationClient* replication = nullptr;
  };

  /// What the runtime watchdog sees of a run in flight on this shard:
  /// the request's governor (cancellable from the watchdog thread) plus
  /// when it started and when it was due.
  struct InFlightRun {
    std::shared_ptr<core::ExecutionGovernor> governor;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point deadline;
  };

  /// `durability` is the shard's durable state (write-ahead journal +
  /// snapshots), or null when durability is off — the null check is the
  /// non-durable hot path's entire cost. Like `sessions_`, it is only
  /// ever touched by the drain-role holder.
  SessionShard(size_t shard_index, const Config* config,
               persistence::ShardDurability* durability = nullptr);

  /// Appends an envelope. Returns true iff the shard was idle — the
  /// caller must then schedule Drain() on a worker.
  bool Enqueue(Envelope envelope);

  /// Installs a recovered session (runner state + the journal seq it
  /// expects next). Pre-start only: must be called before any worker can
  /// drain this shard, since it touches `sessions_` without the role.
  void InstallSession(const std::string& session_id,
                      core::SessionRunner runner, uint64_t next_seq);

  /// Processes queued envelopes until empty; called only via the
  /// scheduling protocol above. Every processed envelope is counted via
  /// `stats` and `on_done` (the admission layer's queue-depth release).
  void Drain(RuntimeStats* stats, const std::function<void()>& on_done);

  /// Number of sessions ever materialized on this shard (approximate
  /// during a drain; exact when the shard is idle).
  size_t num_sessions() const {
    return num_sessions_.load(std::memory_order_relaxed);
  }

  /// The delimiter run currently in flight on this shard, if any —
  /// watchdog-safe (its own lock; never contends with the strand).
  std::optional<InFlightRun> CurrentRun() const;

 private:
  /// A session's shard-owned state: its runner (buffer + private
  /// database copy) and its circuit breaker. Touched only by the
  /// drain-role holder.
  struct SessionState {
    core::SessionRunner runner;
    CircuitBreaker breaker;
    /// Journal seq of the session's next input (durable runtimes only).
    uint64_t next_seq = 0;
  };

  void Process(Envelope envelope, RuntimeStats* stats);

  /// Captures all sessions into a shard snapshot (drain-role holder
  /// only). Failures are counted, not fatal: the journal still covers
  /// everything the snapshot would have.
  void MaybeSnapshot(RuntimeStats* stats);

  const size_t shard_index_;
  const Config* const config_;
  persistence::ShardDurability* const durability_;

  std::mutex mu_;
  std::deque<Envelope> queue_;
  bool scheduled_ = false;

  // Drain-role-owned; no lock (see class comment).
  std::unordered_map<std::string, SessionState> sessions_;
  std::atomic<size_t> num_sessions_{0};

  /// The in-flight slot: published by the drain-role holder around each
  /// delimiter run, read by the runtime watchdog. Guarded by its own
  /// mutex so the watchdog never touches the strand's state.
  mutable std::mutex inflight_mu_;
  std::optional<InFlightRun> inflight_;
};

}  // namespace sws::rt

#endif  // SWS_RUNTIME_SESSION_SHARD_H_
