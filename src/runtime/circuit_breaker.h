#ifndef SWS_RUNTIME_CIRCUIT_BREAKER_H_
#define SWS_RUNTIME_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>

namespace sws::rt {

struct CircuitBreakerPolicy {
  /// Consecutive failed runs that open the breaker; 0 disables breaking
  /// (the breaker then always reports kClosed).
  uint32_t failure_threshold = 0;
  /// How long an open breaker fast-fails before admitting one half-open
  /// trial run.
  std::chrono::microseconds open_duration{1'000};
};

/// The classic closed → open → half-open state machine, one instance per
/// session. While closed, runs proceed and consecutive failures are
/// counted; at `failure_threshold` the breaker opens and the session's
/// requests fast-fail (kCircuitOpen) without running — protecting the
/// shard's drain role from a session whose runs keep tripping. After
/// `open_duration` the next request is a half-open trial: its run's
/// success closes the breaker, its failure re-opens it immediately.
///
/// Not thread-safe by design: a breaker lives next to its SessionRunner
/// in shard-owned state, touched only by the shard's drain-role holder.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerPolicy policy) : policy_(policy) {}

  /// Admission check for the next request; transitions kOpen → kHalfOpen
  /// once the cooldown has elapsed. The caller must fast-fail the
  /// request iff this returns kOpen.
  State OnRequest(std::chrono::steady_clock::time_point now);

  /// Reports the result of a (delimiter) run to the state machine.
  void OnRunSuccess();
  void OnRunFailure(std::chrono::steady_clock::time_point now);

  State state() const { return state_; }
  uint32_t consecutive_failures() const { return consecutive_failures_; }
  bool enabled() const { return policy_.failure_threshold > 0; }

 private:
  CircuitBreakerPolicy policy_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace sws::rt

#endif  // SWS_RUNTIME_CIRCUIT_BREAKER_H_
