#include "runtime/thread_pool.h"

#include "util/common.h"

namespace sws::rt {

BoundedTaskQueue::BoundedTaskQueue(size_t capacity) : capacity_(capacity) {
  SWS_CHECK_GE(capacity, 1u);
}

bool BoundedTaskQueue::Push(Task task) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return tasks_.size() < capacity_ || closed_; });
  if (closed_) return false;
  tasks_.push_back(std::move(task));
  not_empty_.notify_one();
  return true;
}

bool BoundedTaskQueue::TryPush(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || tasks_.size() >= capacity_) return false;
    tasks_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

bool BoundedTaskQueue::Pop(Task* task) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !tasks_.empty() || closed_; });
  if (tasks_.empty()) return false;  // closed and drained
  *task = std::move(tasks_.front());
  tasks_.pop_front();
  not_full_.notify_one();
  return true;
}

void BoundedTaskQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t BoundedTaskQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_(queue_capacity) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  return queue_.TryPush(std::move(task));
}

void ThreadPool::Stop() {
  queue_.Close();
  std::lock_guard<std::mutex> lock(stop_mu_);  // serialize concurrent Stops
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  BoundedTaskQueue::Task task;
  while (queue_.Pop(&task)) {
    task();
    task = nullptr;  // release captures before blocking in Pop again
  }
}

}  // namespace sws::rt
