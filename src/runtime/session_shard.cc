#include "runtime/session_shard.h"

#include <utility>

#include "util/common.h"

namespace sws::rt {

SessionShard::SessionShard(size_t shard_index, const Config* config)
    : shard_index_(shard_index), config_(config) {
  SWS_CHECK(config != nullptr);
  SWS_CHECK(config->sws != nullptr);
  SWS_CHECK(config->initial_db != nullptr);
}

bool SessionShard::Enqueue(Envelope envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(envelope));
  if (scheduled_) return false;
  scheduled_ = true;
  return true;
}

void SessionShard::Drain(RuntimeStats* stats,
                         const std::function<void()>& on_done) {
  for (;;) {
    Envelope envelope;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        scheduled_ = false;
        return;
      }
      envelope = std::move(queue_.front());
      queue_.pop_front();
    }
    // Fault injection at the scheduling layer: a stall holds this
    // shard's drain role (backing up its sessions) without touching any
    // other shard. Null injector = disabled (a single branch).
    if (config_->run_options.fault_injector) {
      config_->run_options.fault_injector->OnDrainStep();
    }
    Process(std::move(envelope), stats);
    stats->OnCompleted();
    if (on_done) on_done();
  }
}

void SessionShard::Process(Envelope envelope, RuntimeStats* stats) {
  const auto now = std::chrono::steady_clock::now();
  if (now > envelope.deadline) {
    stats->OnDeadlineExceeded();
    if (envelope.callback) {
      envelope.callback(
          Outcome{core::Status::Error(core::RunError::kDeadlineExceeded,
                                      "expired while queued"),
                  std::move(envelope.session_id), std::nullopt, 0});
    }
    return;
  }
  if (config_->before_process_hook) {
    config_->before_process_hook(envelope.session_id);
  }

  auto [it, inserted] = sessions_.try_emplace(
      envelope.session_id,
      SessionState{core::SessionRunner(config_->sws, *config_->initial_db),
                   CircuitBreaker(config_->circuit_breaker)});
  if (inserted) num_sessions_.fetch_add(1, std::memory_order_relaxed);
  SessionState& session = it->second;

  const bool is_delimiter = core::SessionRunner::IsDelimiter(envelope.message);

  // Fast-fail a session whose runs keep tripping: while the breaker is
  // open, the session's stream is shed without running — buffered input
  // is discarded (nothing was committed) and only delimiters report, so
  // the callback contract stays "one outcome per delimiter".
  if (session.breaker.OnRequest(now) == CircuitBreaker::State::kOpen) {
    session.runner.DiscardPending();
    if (!is_delimiter) return;
    stats->OnCircuitOpen();
    if (envelope.callback) {
      envelope.callback(
          Outcome{core::Status::Error(core::RunError::kCircuitOpen,
                                      "session circuit breaker is open"),
                  std::move(envelope.session_id), std::nullopt, 0});
    }
    return;
  }

  core::RunOptions run_options = config_->run_options;
  run_options.deadline = envelope.deadline;
  const auto run_start = std::chrono::steady_clock::now();
  std::optional<core::SessionRunner::SessionOutcome> outcome =
      session.runner.Feed(std::move(envelope.message), run_options);
  if (!is_delimiter) return;  // buffered; nothing ran, nothing to report

  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - run_start);
  stats->RecordRunLatency(shard_index_,
                          static_cast<uint64_t>(elapsed.count()));
  SWS_CHECK(outcome.has_value());
  if (outcome->attempts > 1) stats->OnRetries(outcome->attempts - 1);
  if (!outcome->status.ok()) {
    session.breaker.OnRunFailure(std::chrono::steady_clock::now());
    switch (outcome->status.code()) {
      case core::RunError::kBudgetExceeded:
        stats->OnBudgetExceeded();
        break;
      case core::RunError::kInjectedFault:
        stats->OnInjectedFault();
        break;
      case core::RunError::kDeadlineExceeded:  // retry loop ran out of time
        stats->OnDeadlineExceeded();
        break;
      default:
        SWS_CHECK(false) << "unexpected run error: "
                         << outcome->status.ToString();
    }
    const uint32_t attempts = outcome->attempts;
    if (envelope.callback) {
      envelope.callback(Outcome{outcome->status,
                                std::move(envelope.session_id), std::nullopt,
                                attempts});
    }
    return;
  }
  session.breaker.OnRunSuccess();
  stats->OnSessionClosed();
  stats->OnMemo(outcome->memo_hits, outcome->memo_misses);
  if (envelope.callback) {
    const uint32_t attempts = outcome->attempts;
    envelope.callback(Outcome{core::Status::Ok(),
                              std::move(envelope.session_id),
                              std::move(outcome), attempts});
  }
}

}  // namespace sws::rt
