#include "runtime/session_shard.h"

#include <utility>

#include "util/common.h"

namespace sws::rt {

SessionShard::SessionShard(size_t shard_index, const Config* config,
                           persistence::ShardDurability* durability)
    : shard_index_(shard_index), config_(config), durability_(durability) {
  SWS_CHECK(config != nullptr);
  SWS_CHECK(config->sws != nullptr);
  SWS_CHECK(config->initial_db != nullptr);
}

void SessionShard::InstallSession(const std::string& session_id,
                                  core::SessionRunner runner,
                                  uint64_t next_seq) {
  auto [it, inserted] = sessions_.try_emplace(
      session_id, SessionState{std::move(runner),
                               CircuitBreaker(config_->circuit_breaker),
                               next_seq});
  SWS_CHECK(inserted) << "session installed twice: " << session_id;
  num_sessions_.fetch_add(1, std::memory_order_relaxed);
}

bool SessionShard::Enqueue(Envelope envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(envelope));
  if (scheduled_) return false;
  scheduled_ = true;
  return true;
}

void SessionShard::Drain(RuntimeStats* stats,
                         const std::function<void()>& on_done) {
  for (;;) {
    Envelope envelope;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        scheduled_ = false;
        return;
      }
      envelope = std::move(queue_.front());
      queue_.pop_front();
    }
    // Fault injection at the scheduling layer: a stall holds this
    // shard's drain role (backing up its sessions) without touching any
    // other shard. Null injector = disabled (a single branch). Under
    // governance the stall sleeps interruptibly against the runtime's
    // root governor, so shutdown/watchdog cancellation is not blocked
    // behind an injected stall.
    if (config_->run_options.fault_injector) {
      config_->run_options.fault_injector->OnDrainStep(config_->root_governor);
    }
    Process(std::move(envelope), stats);
    if (durability_ != nullptr && durability_->ShouldSnapshot()) {
      MaybeSnapshot(stats);
    }
    stats->OnCompleted();
    if (on_done) on_done();
  }
}

void SessionShard::Process(Envelope envelope, RuntimeStats* stats) {
  const auto now = std::chrono::steady_clock::now();
  if (now > envelope.deadline) {
    stats->OnDeadlineExceeded();
    if (envelope.callback) {
      envelope.callback(
          Outcome{core::Status::Error(core::RunError::kDeadlineExceeded,
                                      "expired while queued"),
                  std::move(envelope.session_id), std::nullopt, 0});
    }
    return;
  }

  const bool is_delimiter = core::SessionRunner::IsDelimiter(envelope.message);

  core::RunOptions run_options = config_->run_options;
  run_options.deadline = envelope.deadline;

  // Graceful degradation under memory pressure (watchdog-driven): level
  // ≥1 stops new runs from building memo caches, level ≥2 additionally
  // clamps each run's index pool to one index per relation. Shaping only
  // *new* runs suffices because all caches are per-run and released at
  // the end of Execute.
  if (is_delimiter && config_->pressure_level != nullptr) {
    const int level = config_->pressure_level->load(std::memory_order_relaxed);
    if (level >= 1) run_options.memoize = false;
    if (level >= 2) run_options.index_budget.max_indexes = 1;
  }

  // Governed runtimes give each delimiter run its own governor, parented
  // to the runtime root (so steps/bytes roll up globally) and published
  // in the in-flight slot so the watchdog can cancel an overrunning run
  // from outside the strand. The slot is published before any further
  // per-envelope work (hook, breaker, journal, feed) so the watchdog
  // covers the whole service window, and cleared on every exit path.
  std::shared_ptr<core::ExecutionGovernor> governor;
  if (is_delimiter && config_->root_governor != nullptr) {
    core::ExecutionGovernor::Limits limits;
    limits.deadline = envelope.deadline;
    limits.max_eval_steps = run_options.max_eval_steps;
    limits.max_tracked_bytes = run_options.max_tracked_bytes;
    governor = std::make_shared<core::ExecutionGovernor>(
        limits, config_->root_governor);
    run_options.governor = governor.get();
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_ = InFlightRun{governor, now, envelope.deadline};
  }
  struct InFlightClear {
    SessionShard* shard;
    ~InFlightClear() {
      if (shard == nullptr) return;
      std::lock_guard<std::mutex> lock(shard->inflight_mu_);
      shard->inflight_.reset();
    }
  } inflight_clear{governor == nullptr ? nullptr : this};

  if (config_->before_process_hook) {
    config_->before_process_hook(envelope.session_id);
  }

  auto [it, inserted] = sessions_.try_emplace(
      envelope.session_id,
      SessionState{core::SessionRunner(config_->sws, *config_->initial_db),
                   CircuitBreaker(config_->circuit_breaker)});
  if (inserted) num_sessions_.fetch_add(1, std::memory_order_relaxed);
  SessionState& session = it->second;

  // Fast-fail a session whose runs keep tripping: while the breaker is
  // open, the session's stream is shed without running — buffered input
  // is discarded (nothing was committed) and only delimiters report, so
  // the callback contract stays "one outcome per delimiter".
  if (session.breaker.OnRequest(now) == CircuitBreaker::State::kOpen) {
    // The discard changes what replay must reproduce, so it is journaled
    // first (WAL discipline). The discard is applied iff the record
    // persisted — a persisted-but-unsynced marker will still be replayed
    // after a process crash, so disk and memory agree either way; only
    // when no record reached the disk is the buffer kept (discard
    // deferred).
    if (durability_ != nullptr && session.runner.buffered() > 0) {
      persistence::JournalRecord discard;
      discard.type = persistence::JournalRecord::Type::kDiscard;
      discard.session_id = envelope.session_id;
      discard.seq = session.next_seq;
      persistence::AppendResult journaled = durability_->AppendDiscard(discard);
      if (!journaled.ok()) stats->OnStorageFailure();
      if (!journaled.persisted) {
        if (!is_delimiter) return;
        if (envelope.callback) {
          envelope.callback(Outcome{std::move(journaled.status),
                                    std::move(envelope.session_id),
                                    std::nullopt, 0});
        }
        return;
      }
      stats->OnJournalAppends(1);
      // A discard changes what replay reproduces, so followers must see
      // it too (same order as the primary's journal).
      if (config_->replication != nullptr) {
        config_->replication->ShipRecord(discard, shard_index_,
                                         durability_->current_segment_n());
      }
    }
    session.runner.DiscardPending();
    if (!is_delimiter) return;
    stats->OnCircuitOpen();
    if (envelope.callback) {
      envelope.callback(
          Outcome{core::Status::Error(core::RunError::kCircuitOpen,
                                      "session circuit breaker is open"),
                  std::move(envelope.session_id), std::nullopt, 0});
    }
    return;
  }

  // Write-ahead: the input is journaled before it is fed, and the
  // feed/no-feed decision follows `persisted` exactly — the journal and
  // the live session must agree on the consumed-input sequence, which is
  // what makes replay exact. When no record reached the disk the message
  // is dropped un-fed (the callback reports it, the client may resubmit)
  // and its seq is safely reissued. When the record persisted but its
  // fsync failed, the message is still fed and the seq still advances:
  // recovery after a process crash WILL replay that record, so dropping
  // the message (or reusing its seq for a different payload) would fork
  // the journal from the live run. Only OS-crash durability of that one
  // record is forfeit; the failure is counted and the poisoned segment
  // rotates away at the next append.
  uint64_t seq = 0;
  if (durability_ != nullptr) {
    persistence::JournalRecord input;
    input.type = persistence::JournalRecord::Type::kInput;
    input.session_id = envelope.session_id;
    input.seq = session.next_seq;
    input.priority = static_cast<uint8_t>(envelope.priority);
    input.deadline_ns =
        envelope.deadline == std::chrono::steady_clock::time_point::max()
            ? -1
            : std::chrono::duration_cast<std::chrono::nanoseconds>(
                  envelope.deadline - now)
                  .count();
    input.payload = envelope.message;
    persistence::AppendResult journaled = durability_->AppendInput(input);
    if (!journaled.ok()) stats->OnStorageFailure();
    if (!journaled.persisted) {
      session.breaker.OnRunFailure(std::chrono::steady_clock::now());
      if (envelope.callback) {
        envelope.callback(Outcome{std::move(journaled.status),
                                  std::move(envelope.session_id),
                                  std::nullopt, 0});
      }
      return;
    }
    stats->OnJournalAppends(1);
    seq = session.next_seq++;
    // Ship the persisted input to the session's followers (async; the
    // quorum is only awaited at the delimiter's ack barrier below).
    if (config_->replication != nullptr) {
      config_->replication->ShipRecord(input, shard_index_,
                                       durability_->current_segment_n());
    }
  }

  const auto run_start = std::chrono::steady_clock::now();
  std::optional<core::SessionRunner::SessionOutcome> outcome =
      session.runner.Feed(std::move(envelope.message), run_options);

  if (!is_delimiter) return;  // buffered; nothing ran, nothing to report

  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - run_start);
  stats->RecordRunLatency(shard_index_,
                          static_cast<uint64_t>(elapsed.count()));
  SWS_CHECK(outcome.has_value());
  stats->OnEvictions(outcome->memo_evictions, outcome->index_evictions);

  // The ack barrier: the outcome record must be durable before the
  // callback fires, so an acknowledged output is always recoverable (and
  // recovery can suppress its re-emission). Exactly-once is guaranteed
  // for *acknowledged* outputs; a delimiter whose append fails gets
  // kStorageFailure instead of its output, and which way recovery
  // resolves it depends on whether the record reached the disk:
  //  * no record persisted — recovery re-runs the session
  //    deterministically and emits the output exactly once (via
  //    RecoveryResult::replayed);
  //  * record persisted but its fsync failed — recovery sees the record
  //    and treats the seq as acknowledged, so the output is re-emitted
  //    by neither path. The client saw an error, never an ack, so this
  //    is the standard at-most-once resolution of a storage-ambiguous
  //    request, not an exactly-once violation.
  if (durability_ != nullptr) {
    persistence::JournalRecord record;
    record.type = persistence::JournalRecord::Type::kOutcome;
    record.session_id = envelope.session_id;
    record.seq = seq;
    record.status_code = static_cast<uint8_t>(outcome->status.code());
    if (outcome->status.ok()) record.payload = outcome->output;
    persistence::AppendResult journaled =
        durability_->AppendOutcomeAndAck(record);
    if (journaled.persisted) stats->OnJournalAppends(1);
    if (!journaled.ok()) {
      stats->OnStorageFailure();
      session.breaker.OnRunFailure(std::chrono::steady_clock::now());
      if (envelope.callback) {
        const uint32_t attempts = outcome->attempts;
        envelope.callback(Outcome{std::move(journaled.status),
                                  std::move(envelope.session_id),
                                  std::nullopt, attempts});
      }
      return;
    }
    // The replicated ack barrier (DESIGN.md §11): with replication on,
    // local durability alone does not earn the ack — the outcome must
    // also be durable on a quorum of the session's followers, or a
    // primary death after the ack could promote a follower that never
    // saw it (a lost acknowledged output). On timeout the ack is
    // withheld and the client sees kReplicationTimeout: the outcome is
    // committed locally, so recovery treats the seq as acknowledged —
    // the same at-most-once resolution as a failed outcome fsync above.
    if (config_->replication != nullptr) {
      core::Status replicated = config_->replication->ShipOutcomeAndWait(
          record, shard_index_, durability_->current_segment_n());
      if (replicated.ok()) {
        stats->OnReplicationAck();
      } else {
        stats->OnReplicationTimeout();
        session.breaker.OnRunFailure(std::chrono::steady_clock::now());
        if (envelope.callback) {
          const uint32_t attempts = outcome->attempts;
          envelope.callback(Outcome{std::move(replicated),
                                    std::move(envelope.session_id),
                                    std::nullopt, attempts});
        }
        return;
      }
    }
  }

  if (outcome->attempts > 1) stats->OnRetries(outcome->attempts - 1);
  if (!outcome->status.ok()) {
    session.breaker.OnRunFailure(std::chrono::steady_clock::now());
    switch (outcome->status.code()) {
      case core::RunError::kBudgetExceeded:
        stats->OnBudgetExceeded();
        break;
      case core::RunError::kInjectedFault:
        stats->OnInjectedFault();
        break;
      case core::RunError::kDeadlineExceeded:  // in-run, watchdog, or retry
        stats->OnDeadlineExceeded();
        break;
      case core::RunError::kFuelExhausted:  // eval-step / byte budget
        stats->OnFuelExhausted();
        break;
      default:
        SWS_CHECK(false) << "unexpected run error: "
                         << outcome->status.ToString();
    }
    const uint32_t attempts = outcome->attempts;
    if (envelope.callback) {
      envelope.callback(Outcome{outcome->status,
                                std::move(envelope.session_id), std::nullopt,
                                attempts});
    }
    return;
  }
  session.breaker.OnRunSuccess();
  stats->OnSessionClosed();
  stats->OnMemo(outcome->memo_hits, outcome->memo_misses);
  if (envelope.callback) {
    const uint32_t attempts = outcome->attempts;
    envelope.callback(Outcome{core::Status::Ok(),
                              std::move(envelope.session_id),
                              std::move(outcome), attempts});
  }
}

std::optional<SessionShard::InFlightRun> SessionShard::CurrentRun() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_;
}

void SessionShard::MaybeSnapshot(RuntimeStats* stats) {
  // Refresh the replication GC pin first: the snapshot's segment GC must
  // not reclaim a segment an unacknowledged shipment still references
  // (the follower's retransmit source) — see ShardDurability's pin.
  if (config_->replication != nullptr) {
    durability_->PinSegmentsFrom(
        config_->replication->MinUnackedSegment(shard_index_));
  }
  std::vector<persistence::SessionImage> images;
  images.reserve(sessions_.size());
  for (const auto& [session_id, state] : sessions_) {
    images.push_back(persistence::SessionImage{
        session_id, state.runner.db(), state.runner.pending(),
        state.next_seq});
  }
  core::Status status = durability_->WriteShardSnapshot(std::move(images));
  if (status.ok()) {
    stats->OnSnapshot();
  } else {
    stats->OnStorageFailure();
  }
}

}  // namespace sws::rt
