#include "runtime/session_shard.h"

#include <utility>

#include "util/common.h"

namespace sws::rt {

SessionShard::SessionShard(size_t shard_index, const Config* config)
    : shard_index_(shard_index), config_(config) {
  SWS_CHECK(config != nullptr);
  SWS_CHECK(config->sws != nullptr);
  SWS_CHECK(config->initial_db != nullptr);
}

bool SessionShard::Enqueue(Envelope envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(envelope));
  if (scheduled_) return false;
  scheduled_ = true;
  return true;
}

void SessionShard::Drain(RuntimeStats* stats,
                         const std::function<void()>& on_done) {
  for (;;) {
    Envelope envelope;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        scheduled_ = false;
        return;
      }
      envelope = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(std::move(envelope), stats);
    stats->OnCompleted();
    if (on_done) on_done();
  }
}

void SessionShard::Process(Envelope envelope, RuntimeStats* stats) {
  const auto now = std::chrono::steady_clock::now();
  if (now > envelope.deadline) {
    stats->OnDeadlineExceeded();
    if (envelope.callback) {
      envelope.callback(Outcome{OutcomeStatus::kDeadlineExceeded,
                                std::move(envelope.session_id), std::nullopt});
    }
    return;
  }
  if (config_->before_process_hook) {
    config_->before_process_hook(envelope.session_id);
  }

  auto [it, inserted] = runners_.try_emplace(
      envelope.session_id,
      core::SessionRunner(config_->sws, *config_->initial_db));
  if (inserted) num_sessions_.fetch_add(1, std::memory_order_relaxed);
  core::SessionRunner& runner = it->second;

  const bool is_delimiter = core::SessionRunner::IsDelimiter(envelope.message);
  const auto run_start = std::chrono::steady_clock::now();
  std::optional<core::SessionRunner::SessionOutcome> outcome =
      runner.Feed(std::move(envelope.message), config_->run_options);
  if (!is_delimiter) return;  // buffered; nothing ran, nothing to report

  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - run_start);
  stats->RecordRunLatency(shard_index_,
                          static_cast<uint64_t>(elapsed.count()));
  SWS_CHECK(outcome.has_value());
  if (!outcome->ok) {
    stats->OnBudgetExceeded();
    if (envelope.callback) {
      envelope.callback(Outcome{OutcomeStatus::kBudgetExceeded,
                                std::move(envelope.session_id), std::nullopt});
    }
    return;
  }
  stats->OnSessionClosed();
  if (envelope.callback) {
    envelope.callback(Outcome{OutcomeStatus::kSessionClosed,
                              std::move(envelope.session_id),
                              std::move(outcome)});
  }
}

}  // namespace sws::rt
