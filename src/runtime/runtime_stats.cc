#include "runtime/runtime_stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/common.h"

namespace sws::rt {

void LatencyHistogram::Record(uint64_t micros) {
  size_t bucket = micros == 0 ? 0 : std::bit_width(micros) - 1;
  bucket = std::min(bucket, kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::array<uint64_t, LatencyHistogram::kBuckets> LatencyHistogram::Counts()
    const {
  std::array<uint64_t, kBuckets> out{};
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t StatsSnapshot::total_runs() const {
  uint64_t total = 0;
  for (const auto& shard : shard_latency) {
    for (uint64_t c : shard) total += c;
  }
  return total;
}

uint64_t StatsSnapshot::ApproxLatencyMicros(double quantile) const {
  const uint64_t total = total_runs();
  if (total == 0) return 0;
  std::array<uint64_t, LatencyHistogram::kBuckets> merged{};
  for (const auto& shard : shard_latency) {
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += shard[i];
  }
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(quantile * total));
  uint64_t seen = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    seen += merged[i];
    if (seen >= rank) return uint64_t{1} << (i + 1);  // upper bucket bound
  }
  return uint64_t{1} << LatencyHistogram::kBuckets;
}

std::string StatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "submitted=" << submitted << " completed=" << completed
      << " rejected=" << rejected << " sessions_closed=" << sessions_closed
      << " deadline_exceeded=" << deadline_exceeded
      << " budget_exceeded=" << budget_exceeded
      << " injected_faults=" << injected_faults
      << " circuit_open=" << circuit_open << " retries=" << retries
      << " shed_low_priority=" << shed_low_priority
      << " expired_at_enqueue=" << expired_at_enqueue
      << " memo_hits=" << memo_hits << " memo_misses=" << memo_misses
      << " storage_failures=" << storage_failures
      << " journal_appends=" << journal_appends << " snapshots=" << snapshots
      << " fuel_exhausted=" << fuel_exhausted
      << " watchdog_cancels=" << watchdog_cancels
      << " degradations=" << degradations
      << " memo_evictions=" << memo_evictions
      << " index_evictions=" << index_evictions
      << " tracked_bytes_hwm=" << tracked_bytes_hwm
      << " replication_acks=" << replication_acks
      << " replication_timeouts=" << replication_timeouts
      << " promotions=" << promotions
      << " segments_shipped=" << segments_shipped
      << " follower_lag_hwm=" << follower_lag_hwm
      << " peer_suspicions=" << peer_suspicions
      << " auto_promotions=" << auto_promotions
      << " epoch_fencing_rejects=" << epoch_fencing_rejects
      << " catchup_bytes_shipped=" << catchup_bytes_shipped
      << " pressure_level=" << pressure_level
      << " queue_depth=" << queue_depth << " runs=" << total_runs()
      << " p50_us<=" << ApproxLatencyMicros(0.5)
      << " p99_us<=" << ApproxLatencyMicros(0.99);
  return out.str();
}

namespace {

/// RFC 8259 string escaping: quotes, backslashes and control characters.
/// The keys below are all plain identifiers today, but the escaping is
/// unconditional so the emitter can never produce invalid JSON (the
/// output feeds scripts/bench_diff.py's strict parser).
void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string StatsSnapshot::ToJson() const {
  const std::pair<std::string_view, uint64_t> fields[] = {
      {"submitted", submitted},
      {"completed", completed},
      {"rejected", rejected},
      {"sessions_closed", sessions_closed},
      {"deadline_exceeded", deadline_exceeded},
      {"budget_exceeded", budget_exceeded},
      {"injected_faults", injected_faults},
      {"circuit_open", circuit_open},
      {"retries", retries},
      {"shed_low_priority", shed_low_priority},
      {"expired_at_enqueue", expired_at_enqueue},
      {"memo_hits", memo_hits},
      {"memo_misses", memo_misses},
      {"storage_failures", storage_failures},
      {"journal_appends", journal_appends},
      {"snapshots", snapshots},
      {"fuel_exhausted", fuel_exhausted},
      {"watchdog_cancels", watchdog_cancels},
      {"degradations", degradations},
      {"memo_evictions", memo_evictions},
      {"index_evictions", index_evictions},
      {"tracked_bytes_hwm", tracked_bytes_hwm},
      {"replication_acks", replication_acks},
      {"replication_timeouts", replication_timeouts},
      {"promotions", promotions},
      {"segments_shipped", segments_shipped},
      {"follower_lag_hwm", follower_lag_hwm},
      {"peer_suspicions", peer_suspicions},
      {"auto_promotions", auto_promotions},
      {"epoch_fencing_rejects", epoch_fencing_rejects},
      {"catchup_bytes_shipped", catchup_bytes_shipped},
      {"pressure_level", pressure_level},
      {"queue_depth", queue_depth},
      {"runs", total_runs()},
      {"p50_us", ApproxLatencyMicros(0.5)},
      {"p99_us", ApproxLatencyMicros(0.99)},
  };
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(key, &out);
    out.push_back(':');
    out += std::to_string(value);
  }
  out.push_back('}');
  return out;
}

RuntimeStats::RuntimeStats(size_t num_shards) : shard_latency_(num_shards) {
  SWS_CHECK_GE(num_shards, 1u);
}

void RuntimeStats::RecordRunLatency(size_t shard, uint64_t micros) {
  SWS_CHECK_LT(shard, shard_latency_.size());
  shard_latency_[shard].Record(micros);
}

StatsSnapshot RuntimeStats::Snapshot(uint64_t queue_depth,
                                     uint64_t pressure_level) const {
  StatsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  snap.budget_exceeded = budget_exceeded_.load(std::memory_order_relaxed);
  snap.injected_faults = injected_faults_.load(std::memory_order_relaxed);
  snap.circuit_open = circuit_open_.load(std::memory_order_relaxed);
  snap.retries = retries_.load(std::memory_order_relaxed);
  snap.shed_low_priority =
      shed_low_priority_.load(std::memory_order_relaxed);
  snap.expired_at_enqueue =
      expired_at_enqueue_.load(std::memory_order_relaxed);
  snap.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  snap.memo_misses = memo_misses_.load(std::memory_order_relaxed);
  snap.storage_failures = storage_failures_.load(std::memory_order_relaxed);
  snap.journal_appends = journal_appends_.load(std::memory_order_relaxed);
  snap.snapshots = snapshots_.load(std::memory_order_relaxed);
  snap.fuel_exhausted = fuel_exhausted_.load(std::memory_order_relaxed);
  snap.watchdog_cancels = watchdog_cancels_.load(std::memory_order_relaxed);
  snap.degradations = degradations_.load(std::memory_order_relaxed);
  snap.memo_evictions = memo_evictions_.load(std::memory_order_relaxed);
  snap.index_evictions = index_evictions_.load(std::memory_order_relaxed);
  snap.tracked_bytes_hwm =
      tracked_bytes_hwm_.load(std::memory_order_relaxed);
  snap.replication_acks = replication_acks_.load(std::memory_order_relaxed);
  snap.replication_timeouts =
      replication_timeouts_.load(std::memory_order_relaxed);
  // promotions / segments_shipped / follower_lag_hwm and the failover
  // counters (peer_suspicions, auto_promotions, epoch_fencing_rejects,
  // catchup_bytes_shipped) are owned by the replication layer;
  // ServiceRuntime::Stats() stamps them afterwards.
  snap.pressure_level = pressure_level;
  snap.queue_depth = queue_depth;
  snap.shard_latency.reserve(shard_latency_.size());
  for (const LatencyHistogram& h : shard_latency_) {
    snap.shard_latency.push_back(h.Counts());
  }
  return snap;
}

}  // namespace sws::rt
