#ifndef SWS_RUNTIME_THREAD_POOL_H_
#define SWS_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sws::rt {

/// A bounded multi-producer/multi-consumer queue of tasks. Producers may
/// either block until space frees up (Push) or fail fast (TryPush);
/// consumers block in Pop until a task arrives or the queue is closed.
///
/// The implementation is a mutex + two condition variables over a deque —
/// deliberately boring: the runtime's unit of work is a whole shard drain
/// (many service runs), so queue overhead is nowhere near the hot path,
/// and the blocking semantics are exactly what admission control needs.
class BoundedTaskQueue {
 public:
  using Task = std::function<void()>;

  explicit BoundedTaskQueue(size_t capacity);

  /// Blocks until there is space, then enqueues. Returns false iff the
  /// queue was closed (the task is dropped).
  bool Push(Task task);
  /// Enqueues without blocking. Returns false if full or closed.
  bool TryPush(Task task);
  /// Blocks for the next task. Returns false iff the queue is closed and
  /// drained — the consumer should exit.
  bool Pop(Task* task);

  /// Closes the queue: pending tasks still Pop, new pushes fail.
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Task> tasks_;
  bool closed_ = false;
};

/// A fixed-size worker pool draining a BoundedTaskQueue. Workers are
/// started in the constructor and joined in Stop()/the destructor; tasks
/// already queued at Stop() time are completed (graceful drain), tasks
/// submitted after Stop() are rejected.
class ThreadPool {
 public:
  /// `num_threads` 0 means std::thread::hardware_concurrency() (min 1).
  /// `queue_capacity` bounds the number of queued-but-unstarted tasks.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocking submit (waits for queue space). False iff stopped.
  bool Submit(std::function<void()> task);
  /// Non-blocking submit. False if the queue is full or the pool stopped.
  bool TrySubmit(std::function<void()> task);

  /// Completes all queued tasks, then joins the workers. Idempotent.
  void Stop();

  size_t num_threads() const { return threads_.size(); }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void WorkerLoop();

  BoundedTaskQueue queue_;
  std::mutex stop_mu_;
  std::vector<std::thread> threads_;
};

}  // namespace sws::rt

#endif  // SWS_RUNTIME_THREAD_POOL_H_
