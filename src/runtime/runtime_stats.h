#ifndef SWS_RUNTIME_RUNTIME_STATS_H_
#define SWS_RUNTIME_RUNTIME_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sws::rt {

/// A lock-free latency histogram with power-of-two microsecond buckets:
/// bucket b counts samples in [2^b, 2^(b+1)) microseconds (bucket 0 also
/// absorbs sub-microsecond samples). Recording is a single relaxed
/// fetch_add — safe to call from every worker on every run.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(uint64_t micros);

  /// A plain (non-atomic) copy for reporting.
  std::array<uint64_t, kBuckets> Counts() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// A point-in-time copy of the runtime counters, safe to read and print
/// while the runtime keeps running. Counters are monotonically increasing
/// except queue_depth (a gauge).
struct StatsSnapshot {
  uint64_t submitted = 0;          // Submit() calls that were admitted
  uint64_t rejected = 0;           // Submit() calls bounced by backpressure
  uint64_t completed = 0;          // messages fully processed by a worker
  uint64_t sessions_closed = 0;    // delimiter runs that committed
  uint64_t deadline_exceeded = 0;  // messages dropped past their deadline
  uint64_t budget_exceeded = 0;    // session runs aborted by max_nodes
  uint64_t injected_faults = 0;    // runs failed by the fault injector
  uint64_t circuit_open = 0;       // delimiters fast-failed by a breaker
  uint64_t retries = 0;            // extra run attempts by the retry loop
  uint64_t shed_low_priority = 0;  // low-priority shed before hard-full
  uint64_t expired_at_enqueue = 0; // dead on arrival; never admitted
  uint64_t memo_hits = 0;          // subtrees replayed from the memo cache
  uint64_t memo_misses = 0;        // subtrees evaluated and cached
  uint64_t storage_failures = 0;   // durable appends/snapshots that failed
  uint64_t journal_appends = 0;    // records appended to the WAL
  uint64_t snapshots = 0;          // shard snapshots captured
  uint64_t fuel_exhausted = 0;     // runs aborted by a fuel / byte budget
  uint64_t watchdog_cancels = 0;   // overrunning runs cancelled externally
  uint64_t degradations = 0;       // pressure-ladder level increases
  uint64_t memo_evictions = 0;     // memo entries evicted by the byte cap
  uint64_t index_evictions = 0;    // relation indexes evicted by the pool cap
  uint64_t tracked_bytes_hwm = 0;  // high-water mark of governed cache bytes
  uint64_t replication_acks = 0;   // ack barriers satisfied by the quorum
  uint64_t replication_timeouts = 0;  // ack barriers that timed out
  uint64_t promotions = 0;         // follower→primary promotions (this node)
  uint64_t segments_shipped = 0;   // journal segments streamed to followers
  uint64_t follower_lag_hwm = 0;   // high-water mark of unacked shipments
  uint64_t peer_suspicions = 0;    // silence episodes the watchdog reported
  uint64_t auto_promotions = 0;    // quorum-elected promotions (no operator)
  uint64_t epoch_fencing_rejects = 0;  // stale-epoch shipments refused
  uint64_t catchup_bytes_shipped = 0;  // snapshot bytes served to joiners
  uint64_t pressure_level = 0;     // current degradation level (gauge, 0-3)
  uint64_t queue_depth = 0;        // admitted but not yet completed
  /// Per-shard session-run latency histograms (delimiter runs only; the
  /// buffering of a non-delimiter message is not a run).
  std::vector<std::array<uint64_t, LatencyHistogram::kBuckets>> shard_latency;

  /// Total recorded runs and an approximate latency quantile (in
  /// microseconds, upper bucket bound) aggregated across shards.
  uint64_t total_runs() const;
  uint64_t ApproxLatencyMicros(double quantile) const;

  std::string ToString() const;
  /// One-line JSON object (for BENCH_*.json files and scraping). The
  /// output is guaranteed-valid JSON: keys go through full string
  /// escaping and every value is emitted as a plain integer.
  std::string ToJson() const;
};

/// The live counters. All mutators are single atomic ops with relaxed
/// ordering — the stats surface deliberately imposes no synchronization
/// on the data path; cross-thread visibility of the *work* itself is
/// ordered by the shard queues, not by these counters.
class RuntimeStats {
 public:
  explicit RuntimeStats(size_t num_shards);

  void OnSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void OnRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void OnCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void OnSessionClosed() {
    sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnDeadlineExceeded() {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnBudgetExceeded() {
    budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnInjectedFault() {
    injected_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnCircuitOpen() {
    circuit_open_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnRetries(uint64_t n) {
    retries_.fetch_add(n, std::memory_order_relaxed);
  }
  void OnShedLowPriority() {
    shed_low_priority_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnExpiredAtEnqueue() {
    expired_at_enqueue_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Execution-tree memoization counters from one committed session run.
  void OnMemo(uint64_t hits, uint64_t misses) {
    if (hits > 0) memo_hits_.fetch_add(hits, std::memory_order_relaxed);
    if (misses > 0) memo_misses_.fetch_add(misses, std::memory_order_relaxed);
  }
  void OnStorageFailure() {
    storage_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnJournalAppends(uint64_t n) {
    if (n > 0) journal_appends_.fetch_add(n, std::memory_order_relaxed);
  }
  void OnSnapshot() { snapshots_.fetch_add(1, std::memory_order_relaxed); }
  void OnFuelExhausted() {
    fuel_exhausted_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnWatchdogCancel() {
    watchdog_cancels_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnDegradation() {
    degradations_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Cache-eviction counters from one session run (bounded caches).
  void OnEvictions(uint64_t memo, uint64_t index) {
    if (memo > 0) memo_evictions_.fetch_add(memo, std::memory_order_relaxed);
    if (index > 0) index_evictions_.fetch_add(index, std::memory_order_relaxed);
  }
  void OnReplicationAck() {
    replication_acks_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnReplicationTimeout() {
    replication_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Raises the governed-cache-bytes high-water mark (watchdog samples).
  void OnTrackedBytes(uint64_t bytes) {
    uint64_t prev = tracked_bytes_hwm_.load(std::memory_order_relaxed);
    while (prev < bytes && !tracked_bytes_hwm_.compare_exchange_weak(
                               prev, bytes, std::memory_order_relaxed)) {
    }
  }
  void RecordRunLatency(size_t shard, uint64_t micros);

  /// The queue-depth and pressure-level gauges are owned by the admission
  /// layer and the watchdog respectively; the snapshot takes them as
  /// arguments.
  StatsSnapshot Snapshot(uint64_t queue_depth, uint64_t pressure_level = 0)
      const;

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> budget_exceeded_{0};
  std::atomic<uint64_t> injected_faults_{0};
  std::atomic<uint64_t> circuit_open_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> shed_low_priority_{0};
  std::atomic<uint64_t> expired_at_enqueue_{0};
  std::atomic<uint64_t> memo_hits_{0};
  std::atomic<uint64_t> memo_misses_{0};
  std::atomic<uint64_t> storage_failures_{0};
  std::atomic<uint64_t> journal_appends_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> fuel_exhausted_{0};
  std::atomic<uint64_t> watchdog_cancels_{0};
  std::atomic<uint64_t> degradations_{0};
  std::atomic<uint64_t> memo_evictions_{0};
  std::atomic<uint64_t> index_evictions_{0};
  std::atomic<uint64_t> tracked_bytes_hwm_{0};
  std::atomic<uint64_t> replication_acks_{0};
  std::atomic<uint64_t> replication_timeouts_{0};
  std::vector<LatencyHistogram> shard_latency_;
};

}  // namespace sws::rt

#endif  // SWS_RUNTIME_RUNTIME_STATS_H_
