#include "replication/replicator.h"

#include <algorithm>

#include "persistence/journal.h"
#include "sws/fault.h"  // SplitMix64

namespace sws::replication {

Replicator::Replicator(std::string node_id, const ReplicaGroup* group,
                       ReplicationOptions options,
                       ReplicationTransport* transport, uint64_t incarnation,
                       FencingEpoch* fence)
    : node_id_(std::move(node_id)),
      group_(group),
      options_(options),
      transport_(transport),
      incarnation_(incarnation),
      fence_(fence),
      background_([this] { BackgroundLoop(); }) {}

Replicator::~Replicator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    aborted_ = true;
  }
  ack_cv_.notify_all();
  background_.join();
}

uint64_t Replicator::BufferLocked(const std::string& dest,
                                  const std::string& session_id,
                                  const std::string& frame, uint64_t shard,
                                  uint64_t segment_n, bool snapshot,
                                  std::vector<Shipment>* to_send) {
  Link& link = links_[dest];
  Shipment shipment;
  shipment.source = node_id_;
  shipment.dest = dest;
  shipment.source_incarnation = incarnation_;
  shipment.link_seq = link.next_link_seq++;
  shipment.first_unacked = link.acked + 1;
  shipment.epoch = CurrentEpoch();
  shipment.shard = shard;
  shipment.segment_n = segment_n;
  shipment.session_id = session_id;
  shipment.snapshot = snapshot;
  shipment.frame = frame;
  link.unacked.push_back(shipment);
  link.last_send = std::chrono::steady_clock::now();
  follower_lag_hwm_ = std::max<uint64_t>(follower_lag_hwm_, link.unacked.size());
  to_send->push_back(std::move(shipment));
  return link.next_link_seq - 1;
}

void Replicator::NoteSegmentLocked(uint64_t shard, uint64_t segment_n) {
  auto it = last_segment_.find(shard);
  if (it == last_segment_.end() || it->second != segment_n) {
    last_segment_[shard] = segment_n;
    ++segments_shipped_;
  }
}

void Replicator::ShipRecord(const persistence::JournalRecord& record,
                            uint64_t shard, uint64_t segment_n) {
  const std::vector<std::string> followers =
      group_->FollowersOf(record.session_id, options_.replicas);
  if (followers.empty()) return;
  const std::string frame = persistence::EncodeRecordFrame(record);
  std::vector<Shipment> to_send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_ || fenced_) return;
    NoteSegmentLocked(shard, segment_n);
    for (const std::string& dest : followers) {
      if (dest == node_id_) continue;
      BufferLocked(dest, record.session_id, frame, shard, segment_n,
                   /*snapshot=*/false, &to_send);
    }
  }
  for (Shipment& s : to_send) transport_->Ship(std::move(s));
}

void Replicator::ShipRecordTo(const std::string& dest,
                              const persistence::JournalRecord& record,
                              uint64_t shard, uint64_t segment_n) {
  if (dest == node_id_) return;
  const std::string frame = persistence::EncodeRecordFrame(record);
  std::vector<Shipment> to_send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_ || fenced_) return;
    NoteSegmentLocked(shard, segment_n);
    BufferLocked(dest, record.session_id, frame, shard, segment_n,
                 /*snapshot=*/false, &to_send);
  }
  for (Shipment& s : to_send) transport_->Ship(std::move(s));
}

void Replicator::ShipSnapshotTo(const std::string& dest, std::string payload) {
  if (dest == node_id_) return;
  std::vector<Shipment> to_send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_ || fenced_) return;
    // shard/segment 0: the payload was just encoded from disk state the
    // catch-up pin already retains, so the per-shipment pin is moot.
    BufferLocked(dest, /*session_id=*/"", payload, /*shard=*/0,
                 /*segment_n=*/0, /*snapshot=*/true, &to_send);
  }
  for (Shipment& s : to_send) transport_->Ship(std::move(s));
}

core::Status Replicator::ShipOutcomeAndWait(
    const persistence::JournalRecord& record, uint64_t shard,
    uint64_t segment_n) {
  const std::vector<std::string> followers =
      group_->FollowersOf(record.session_id, options_.replicas);
  std::vector<std::pair<std::string, uint64_t>> targets;  // dest -> link_seq
  std::vector<Shipment> to_send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_ || fenced_) {
      return core::Status::Error(core::RunError::kShutdown,
                                 fenced_ ? "replicator fenced (deposed)"
                                         : "replicator aborted");
    }
    NoteSegmentLocked(shard, segment_n);
    const std::string frame = persistence::EncodeRecordFrame(record);
    for (const std::string& dest : followers) {
      if (dest == node_id_) continue;
      targets.emplace_back(dest,
                           BufferLocked(dest, record.session_id, frame, shard,
                                        segment_n, /*snapshot=*/false,
                                        &to_send));
    }
  }
  for (Shipment& s : to_send) transport_->Ship(std::move(s));

  // The barrier: quorum of the session's followers must cover the
  // outcome's link position. A group smaller than replicas+1 caps the
  // quorum at what exists (a 1-node "group" degenerates to local-only).
  const size_t quorum = std::min(options_.resolved_quorum(), targets.size());
  if (quorum == 0) return core::Status::Ok();

  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + options_.ack_timeout;
  bool satisfied = false;
  bool impossible = false;
  ack_cv_.wait_until(lock, deadline, [&] {
    if (aborted_) return true;
    size_t acked = 0;
    size_t possible = 0;
    for (const auto& [dest, seq] : targets) {
      auto it = links_.find(dest);
      if (it == links_.end()) continue;
      const Link& link = it->second;
      // "Possible": the follower already covers seq, or the shipment is
      // still buffered for retransmission. A fenced link (buffers
      // dropped) makes the barrier fail fast instead of timing out.
      if (link.acked >= seq ||
          (!link.unacked.empty() && link.unacked.front().link_seq <= seq &&
           seq <= link.unacked.back().link_seq)) {
        ++possible;
      }
      // Only caught-up followers vouch for the quorum: a joiner that is
      // missing the prefix must not certify the suffix (DESIGN.md §13).
      if (link.caught_up && link.acked >= seq) ++acked;
    }
    satisfied = acked >= quorum;
    impossible = possible < quorum;
    return satisfied || impossible;
  });
  if (aborted_) {
    return core::Status::Error(core::RunError::kShutdown,
                               "replicator aborted");
  }
  if (!satisfied) {
    return core::Status::Error(
        core::RunError::kReplicationTimeout,
        impossible ? "follower ack quorum unreachable (link fenced)"
                   : "follower ack quorum not reached in time");
  }
  return core::Status::Ok();
}

uint64_t Replicator::MinUnackedSegment(uint64_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  // A catch-up serve in flight reads arbitrary old segments from disk:
  // pin the whole journal until it completes.
  if (catchup_pins_ > 0) return 0;
  uint64_t min_segment = persistence::ShardDurability::kNoSegmentPin;
  for (const auto& [dest, link] : links_) {
    for (const Shipment& s : link.unacked) {
      if (s.shard == shard) {
        min_segment = std::min(min_segment, s.segment_n);
        break;  // unacked is link_seq-ordered; ship order follows journal order per shard
      }
    }
  }
  return min_segment;
}

uint64_t Replicator::segments_shipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_shipped_;
}

uint64_t Replicator::follower_lag_hwm() const {
  std::lock_guard<std::mutex> lock(mu_);
  return follower_lag_hwm_;
}

bool Replicator::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

void Replicator::MaybeAdoptEpoch(uint64_t epoch) {
  if (fence_ == nullptr) return;
  if (epoch > fence_->current()) fence_->Adopt(epoch);
  ReconcileEpoch();
}

void Replicator::ReconcileEpoch() {
  if (fence_ == nullptr) return;
  const uint64_t current = fence_->current();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fenced_ || reconciled_epoch_ >= current) return;
  }
  // The group moved on without us. If our arcs now resolve elsewhere, a
  // quorum promoted an heir over our sessions: everything still buffered
  // is stale history the followers will reject — drop it and stop
  // shipping, failing pending barriers fast (the node restarts this
  // life as a follower). Otherwise the promotion deposed someone else;
  // restamp the buffers so retransmissions carry the new epoch. The
  // group probe runs outside mu_ (lock order) and at most once per
  // epoch, gated by reconciled_epoch_.
  const bool deposed = group_->IsDeposed(node_id_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fenced_ || reconciled_epoch_ >= current) return;
    reconciled_epoch_ = current;
    if (deposed) {
      fenced_ = true;
      for (auto& [dest, link] : links_) link.unacked.clear();
    } else {
      for (auto& [dest, link] : links_) {
        for (Shipment& s : link.unacked) s.epoch = current;
      }
    }
  }
  ack_cv_.notify_all();
}

void Replicator::OnAck(const std::string& from, uint64_t source_incarnation,
                       uint64_t acked_link_seq, uint64_t epoch) {
  MaybeAdoptEpoch(epoch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (source_incarnation != incarnation_) return;  // a past life's ack
    auto it = links_.find(from);
    if (it == links_.end()) return;
    Link& link = it->second;
    if (acked_link_seq <= link.acked) return;  // duplicate / out of order
    link.acked = acked_link_seq;
    while (!link.unacked.empty() &&
           link.unacked.front().link_seq <= link.acked) {
      link.unacked.pop_front();
    }
    if (!link.caught_up && link.catchup_fence != 0 &&
        link.acked >= link.catchup_fence) {
      link.caught_up = true;  // the joiner graduated into the quorum
    }
  }
  ack_cv_.notify_all();
}

void Replicator::BeginCatchup(const std::string& dest) {
  std::lock_guard<std::mutex> lock(mu_);
  Link& link = links_[dest];
  link.caught_up = false;
  link.catchup_fence = 0;
}

void Replicator::FinishCatchupServe(const std::string& dest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Link& link = links_[dest];
    link.catchup_fence = link.next_link_seq - 1;
    if (link.acked >= link.catchup_fence) link.caught_up = true;
  }
  ack_cv_.notify_all();
}

void Replicator::PinCatchup() {
  std::lock_guard<std::mutex> lock(mu_);
  ++catchup_pins_;
}

void Replicator::UnpinCatchup() {
  std::lock_guard<std::mutex> lock(mu_);
  --catchup_pins_;
}

void Replicator::RequestCatchup(const std::vector<std::string>& sources) {
  const uint64_t epoch = CurrentEpoch();
  std::vector<std::string> to_ask;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& source : sources) {
      if (source == node_id_) continue;
      if (pending_catchup_.insert(source).second) to_ask.push_back(source);
    }
    last_catchup_send_ = std::chrono::steady_clock::now();
  }
  for (const std::string& source : to_ask) {
    transport_->SendCatchupRequest(node_id_, source, epoch);
  }
}

void Replicator::NoteCatchupServed(const std::string& source) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_catchup_.erase(source);
  }
  ack_cv_.notify_all();
}

void Replicator::CancelCatchup(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  // A suspected-dead source can never serve; its sessions will be served
  // by whichever heir inherits them (still pending under its own name).
  pending_catchup_.erase(source);
}

size_t Replicator::pending_catchup_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_catchup_.size();
}

void Replicator::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  ack_cv_.notify_all();
}

void Replicator::BackgroundLoop() {
  // Deterministic per-node jitter stream (heartbeat_jitter): probes must
  // de-synchronize across the group without losing seed reproducibility.
  uint64_t jitter_seed = 0xcbf29ce484222325ULL;
  for (unsigned char c : node_id_) {
    jitter_seed = (jitter_seed ^ c) * 0x100000001b3ULL;
  }
  uint64_t draws = 0;
  const auto jittered_heartbeat = [&]() -> std::chrono::nanoseconds {
    const std::chrono::nanoseconds base = options_.heartbeat_interval;
    if (options_.heartbeat_jitter <= 0.0) return base;
    const uint64_t draw = core::SplitMix64(jitter_seed ^ ++draws);
    const double frac = (draw % 4096) / 4096.0 * 2.0 - 1.0;  // [-1, 1)
    const auto delta = std::chrono::duration_cast<std::chrono::nanoseconds>(
        base * options_.heartbeat_jitter * frac);
    return base + delta;  // positive: |delta| < base since jitter < 1
  };

  std::unique_lock<std::mutex> lock(mu_);
  auto next_heartbeat = std::chrono::steady_clock::now();
  while (!stop_) {
    auto tick = std::chrono::nanoseconds(options_.retransmit_interval);
    if (options_.heartbeat_interval.count() > 0) {
      tick = std::min(tick,
                      std::chrono::nanoseconds(options_.heartbeat_interval));
    }
    ack_cv_.wait_for(lock, tick);
    if (stop_ || aborted_) {
      if (stop_) return;
      // Aborted but not destroyed: idle until destruction.
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    const uint64_t epoch = CurrentEpoch();
    if (fence_ != nullptr && !fenced_ && reconciled_epoch_ < epoch) {
      // The fence moved without an ack (heartbeat adoption by the
      // applier, or a local promotion). Reconcile before retransmitting:
      // a deposed node must never restamp its stale tail with the new
      // epoch — followers would accept it (see class comment).
      lock.unlock();
      ReconcileEpoch();
      lock.lock();
      continue;
    }
    std::vector<Shipment> to_send;
    if (!fenced_) {
      for (auto& [dest, link] : links_) {
        if (link.unacked.empty()) continue;
        if (now - link.last_send < options_.retransmit_interval) continue;
        link.last_send = now;
        for (Shipment& s : link.unacked) {
          // Refresh the resync hint to the current cumulative ack: a
          // follower that lost its link state fast-forwards past what it
          // acknowledged in a previous life (those records are in its
          // journal) instead of deadlocking on seqs we no longer retain.
          s.first_unacked = link.acked + 1;
          s.epoch = epoch;  // retransmissions carry the newest epoch
          to_send.push_back(s);
        }
      }
    }
    std::vector<std::string> beat_peers;
    if (options_.heartbeat_interval.count() > 0 && now >= next_heartbeat) {
      next_heartbeat = now + jittered_heartbeat();
      for (const std::string& peer : group_->nodes()) {
        if (peer != node_id_) beat_peers.push_back(peer);
      }
    }
    std::vector<std::string> catchup_peers;
    if (!pending_catchup_.empty() &&
        now - last_catchup_send_ >= options_.ack_timeout) {
      last_catchup_send_ = now;
      catchup_peers.assign(pending_catchup_.begin(), pending_catchup_.end());
    }
    lock.unlock();
    for (Shipment& s : to_send) transport_->Ship(std::move(s));
    for (const std::string& peer : beat_peers) {
      transport_->SendHeartbeat(node_id_, peer, incarnation_, epoch);
    }
    for (const std::string& peer : catchup_peers) {
      transport_->SendCatchupRequest(node_id_, peer, epoch);
    }
    lock.lock();
  }
}

}  // namespace sws::replication
