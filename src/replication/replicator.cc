#include "replication/replicator.h"

#include <algorithm>

#include "persistence/journal.h"

namespace sws::replication {

Replicator::Replicator(std::string node_id, const ReplicaGroup* group,
                       ReplicationOptions options,
                       ReplicationTransport* transport, uint64_t incarnation)
    : node_id_(std::move(node_id)),
      group_(group),
      options_(options),
      transport_(transport),
      incarnation_(incarnation),
      background_([this] { BackgroundLoop(); }) {}

Replicator::~Replicator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    aborted_ = true;
  }
  ack_cv_.notify_all();
  background_.join();
}

uint64_t Replicator::BufferLocked(const std::string& dest,
                                  const std::string& frame, uint64_t shard,
                                  uint64_t segment_n,
                                  std::vector<Shipment>* to_send) {
  Link& link = links_[dest];
  Shipment shipment;
  shipment.source = node_id_;
  shipment.dest = dest;
  shipment.source_incarnation = incarnation_;
  shipment.link_seq = link.next_link_seq++;
  shipment.first_unacked = link.acked + 1;
  shipment.shard = shard;
  shipment.segment_n = segment_n;
  shipment.frame = frame;
  link.unacked.push_back(shipment);
  link.last_send = std::chrono::steady_clock::now();
  follower_lag_hwm_ = std::max<uint64_t>(follower_lag_hwm_, link.unacked.size());
  to_send->push_back(std::move(shipment));
  return link.next_link_seq - 1;
}

void Replicator::NoteSegmentLocked(uint64_t shard, uint64_t segment_n) {
  auto it = last_segment_.find(shard);
  if (it == last_segment_.end() || it->second != segment_n) {
    last_segment_[shard] = segment_n;
    ++segments_shipped_;
  }
}

void Replicator::ShipRecord(const persistence::JournalRecord& record,
                            uint64_t shard, uint64_t segment_n) {
  const std::vector<std::string> followers =
      group_->FollowersOf(record.session_id, options_.replicas);
  if (followers.empty()) return;
  const std::string frame = persistence::EncodeRecordFrame(record);
  std::vector<Shipment> to_send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return;
    NoteSegmentLocked(shard, segment_n);
    for (const std::string& dest : followers) {
      if (dest == node_id_) continue;
      BufferLocked(dest, frame, shard, segment_n, &to_send);
    }
  }
  for (Shipment& s : to_send) transport_->Ship(std::move(s));
}

core::Status Replicator::ShipOutcomeAndWait(
    const persistence::JournalRecord& record, uint64_t shard,
    uint64_t segment_n) {
  const std::vector<std::string> followers =
      group_->FollowersOf(record.session_id, options_.replicas);
  std::vector<std::pair<std::string, uint64_t>> targets;  // dest -> link_seq
  std::vector<Shipment> to_send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) {
      return core::Status::Error(core::RunError::kShutdown,
                                 "replicator aborted");
    }
    NoteSegmentLocked(shard, segment_n);
    const std::string frame = persistence::EncodeRecordFrame(record);
    for (const std::string& dest : followers) {
      if (dest == node_id_) continue;
      targets.emplace_back(
          dest, BufferLocked(dest, frame, shard, segment_n, &to_send));
    }
  }
  for (Shipment& s : to_send) transport_->Ship(std::move(s));

  // The barrier: quorum of the session's followers must cover the
  // outcome's link position. A group smaller than replicas+1 caps the
  // quorum at what exists (a 1-node "group" degenerates to local-only).
  const size_t quorum = std::min(options_.resolved_quorum(), targets.size());
  if (quorum == 0) return core::Status::Ok();

  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + options_.ack_timeout;
  const bool reached = ack_cv_.wait_until(lock, deadline, [&] {
    if (aborted_) return true;
    size_t acked = 0;
    for (const auto& [dest, seq] : targets) {
      auto it = links_.find(dest);
      if (it != links_.end() && it->second.acked >= seq) ++acked;
    }
    return acked >= quorum;
  });
  if (aborted_) {
    return core::Status::Error(core::RunError::kShutdown,
                               "replicator aborted");
  }
  if (!reached) {
    return core::Status::Error(core::RunError::kReplicationTimeout,
                               "follower ack quorum not reached in time");
  }
  return core::Status::Ok();
}

uint64_t Replicator::MinUnackedSegment(uint64_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_segment = persistence::ShardDurability::kNoSegmentPin;
  for (const auto& [dest, link] : links_) {
    for (const Shipment& s : link.unacked) {
      if (s.shard == shard) {
        min_segment = std::min(min_segment, s.segment_n);
        break;  // unacked is link_seq-ordered; ship order follows journal order per shard
      }
    }
  }
  return min_segment;
}

uint64_t Replicator::segments_shipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_shipped_;
}

uint64_t Replicator::follower_lag_hwm() const {
  std::lock_guard<std::mutex> lock(mu_);
  return follower_lag_hwm_;
}

void Replicator::OnAck(const std::string& from, uint64_t source_incarnation,
                       uint64_t acked_link_seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (source_incarnation != incarnation_) return;  // a past life's ack
    auto it = links_.find(from);
    if (it == links_.end()) return;
    Link& link = it->second;
    if (acked_link_seq <= link.acked) return;  // duplicate / out of order
    link.acked = acked_link_seq;
    while (!link.unacked.empty() &&
           link.unacked.front().link_seq <= link.acked) {
      link.unacked.pop_front();
    }
  }
  ack_cv_.notify_all();
}

void Replicator::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  ack_cv_.notify_all();
}

void Replicator::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  auto last_heartbeat = std::chrono::steady_clock::now();
  while (!stop_) {
    auto tick = options_.retransmit_interval;
    if (options_.heartbeat_interval.count() > 0) {
      tick = std::min(tick, options_.heartbeat_interval);
    }
    ack_cv_.wait_for(lock, tick);
    if (stop_ || aborted_) {
      if (stop_) return;
      // Aborted but not destroyed: idle until destruction.
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    std::vector<Shipment> to_send;
    for (auto& [dest, link] : links_) {
      if (link.unacked.empty()) continue;
      if (now - link.last_send < options_.retransmit_interval) continue;
      link.last_send = now;
      for (Shipment& s : link.unacked) {
        // Refresh the resync hint to the current cumulative ack: a
        // follower that lost its link state fast-forwards past what it
        // acknowledged in a previous life (those records are in its
        // journal) instead of deadlocking on seqs we no longer retain.
        s.first_unacked = link.acked + 1;
        to_send.push_back(s);
      }
    }
    std::vector<std::string> beat_peers;
    if (options_.heartbeat_interval.count() > 0 &&
        now - last_heartbeat >= options_.heartbeat_interval) {
      last_heartbeat = now;
      for (const std::string& peer : group_->nodes()) {
        if (peer != node_id_) beat_peers.push_back(peer);
      }
    }
    lock.unlock();
    for (Shipment& s : to_send) transport_->Ship(std::move(s));
    for (const std::string& peer : beat_peers) {
      transport_->SendHeartbeat(node_id_, peer, incarnation_);
    }
    lock.lock();
  }
}

}  // namespace sws::replication
