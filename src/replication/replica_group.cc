#include "replication/replica_group.h"

#include <algorithm>
#include <unordered_set>

#include "sws/fault.h"  // SplitMix64

namespace sws::replication {
namespace {

uint64_t HashBytes(const std::string& s) {
  // FNV-1a folded through SplitMix64 — stable across platforms (no
  // std::hash, whose value is implementation-defined and would make
  // placement differ between builds of the same group).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h = (h ^ c) * 0x100000001b3ULL;
  }
  return core::SplitMix64(h);
}

}  // namespace

core::Status ValidateReplicationOptions(const ReplicationOptions& options,
                                        size_t group_size) {
  if (options.replicas == 0) return core::Status::Ok();
  if (group_size == 0) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: empty replica group");
  }
  if (options.replicas > group_size - 1) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: replicas exceeds group size - 1");
  }
  if (options.ack_quorum > options.replicas) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: ack_quorum exceeds replicas");
  }
  if (options.ack_timeout.count() <= 0 ||
      options.retransmit_interval.count() <= 0) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: ack_timeout and retransmit_interval must be positive");
  }
  if (options.heartbeat_interval.count() < 0) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: heartbeat_interval must be non-negative");
  }
  if (options.suspicion_misses == 0) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: suspicion_misses must be positive");
  }
  if (options.heartbeat_jitter < 0.0 || options.heartbeat_jitter >= 1.0) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: heartbeat_jitter must be in [0, 1)");
  }
  if (options.election_timeout.count() <= 0) {
    return core::Status::Error(core::RunError::kQueueRejected,
        "replication: election_timeout must be positive");
  }
  return core::Status::Ok();
}

ReplicaGroup::ReplicaGroup(std::vector<std::string> nodes,
                           size_t virtual_tokens)
    : nodes_(std::move(nodes)) {
  if (virtual_tokens == 0) virtual_tokens = 1;
  ring_.reserve(nodes_.size() * virtual_tokens);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const uint64_t base = HashBytes(nodes_[i]);
    for (size_t t = 0; t < virtual_tokens; ++t) {
      ring_.emplace_back(
          core::SplitMix64(base ^ (t * 0x9e3779b97f4a7c15ULL)), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::string ReplicaGroup::Resolve(const std::string& node) const {
  // Follow the override chain (heir may itself have been promoted away).
  // Chains are acyclic by construction — Promote never maps a node onto
  // one that resolves back to it — but cap the walk defensively.
  std::string current = node;
  for (size_t hops = 0; hops <= overrides_.size(); ++hops) {
    auto it = overrides_.find(current);
    if (it == overrides_.end()) return current;
    current = it->second;
  }
  return current;
}

std::string ReplicaGroup::PrimaryOf(const std::string& session_id) const {
  std::vector<std::string> owners = ReplicasOf(session_id, 0);
  return owners.empty() ? std::string() : owners.front();
}

std::vector<std::string> ReplicaGroup::ReplicasOf(
    const std::string& session_id, size_t replicas) const {
  std::vector<std::string> out;
  if (ring_.empty()) return out;
  const uint64_t point = HashBytes(session_id);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, size_t{0}));
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<std::string> seen;
  // Walk clockwise collecting distinct *resolved* owners; a dead node's
  // tokens yield its heir, so its arcs (as primary or follower) fold
  // onto the heir without disturbing anyone else's placement.
  for (size_t step = 0; step < ring_.size() && out.size() < replicas + 1;
       ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    std::string owner = Resolve(nodes_[it->second]);
    if (seen.insert(owner).second) out.push_back(std::move(owner));
  }
  return out;
}

std::vector<std::string> ReplicaGroup::FollowersOf(
    const std::string& session_id, size_t replicas) const {
  std::vector<std::string> owners = ReplicasOf(session_id, replicas);
  if (!owners.empty()) owners.erase(owners.begin());
  return owners;
}

bool ReplicaGroup::IsDeposed(const std::string& node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Resolve(node) != node;
}

std::string ReplicaGroup::HeirOf(
    const std::string& dead, const std::vector<std::string>& exclude) const {
  if (ring_.empty()) return std::string();
  // Find `dead`'s lowest token; the heir search starts at its successor,
  // mirroring how the consistent-hash chain already names the next
  // distinct owner as the natural inheritor of the dead node's arcs.
  size_t start = 0;
  bool found = false;
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (nodes_[ring_[i].second] == dead) {
      start = i;
      found = true;
      break;
    }
  }
  if (!found) return std::string();
  std::lock_guard<std::mutex> lock(mu_);
  const std::string dead_resolved = Resolve(dead);
  for (size_t step = 1; step <= ring_.size(); ++step) {
    const std::string& candidate =
        nodes_[ring_[(start + step) % ring_.size()].second];
    std::string owner = Resolve(candidate);
    if (owner == dead_resolved) continue;
    if (std::find(exclude.begin(), exclude.end(), owner) != exclude.end()) {
      continue;
    }
    return owner;
  }
  return std::string();
}

void ReplicaGroup::Promote(const std::string& dead, const std::string& heir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead == heir) return;
  // Redirect chains that currently end at `dead` straight to `heir`, and
  // drop any stale mapping *from* `heir` (a previously-demoted node being
  // promoted back) so the new chain cannot loop.
  overrides_.erase(heir);
  for (auto& [from, to] : overrides_) {
    if (to == dead) to = heir;
  }
  overrides_[dead] = heir;
}

}  // namespace sws::replication
