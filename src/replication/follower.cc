#include "replication/follower.h"

#include <utility>

#include "persistence/journal.h"
#include "persistence/snapshot.h"

namespace sws::replication {

FollowerApplier::FollowerApplier(std::string node_id, Options options,
                                 ReplicationTransport* transport,
                                 uint64_t incarnation,
                                 core::FaultInjector* injector,
                                 FencingEpoch* fence,
                                 rt::ReplicationCounters* counters)
    : node_id_(std::move(node_id)),
      options_(std::move(options)),
      transport_(transport),
      incarnation_(incarnation),
      injector_(injector),
      fence_(fence),
      counters_(counters) {}

FollowerApplier::SourceLink& FollowerApplier::LinkFor(
    const std::string& source, std::chrono::steady_clock::time_point now) {
  SourceLink& link = sources_[source];
  if (link.replica_shard == 0) {
    link.replica_shard = kReplicaShardBase + next_ordinal_++;
  }
  link.last_heard = now;
  link.suspected = false;
  return link;
}

bool FollowerApplier::DrainPendingLocked(SourceLink* link) {
  bool advanced = false;
  while (!link->pending.empty()) {
    auto it = link->pending.begin();
    if (it->first <= link->applied_seq) {
      // Subsumed by a fast-forward while buffered.
      link->pending.erase(it);
      continue;
    }
    if (it->first != link->applied_seq + 1) break;  // gap: wait for retransmit
    const Shipment& shipment = it->second;
    if (shipment.snapshot) {
      // Catch-up bootstrap riding the link: persist it as a snapshot
      // file before advancing — the ack must mean "durably absorbed"
      // exactly as it means "durably journaled" for records.
      bool corrupt = false;
      if (!AbsorbSnapshotLocked(link, shipment, &corrupt)) {
        ++rejected_;
        if (corrupt) {
          link->pending.erase(it);  // retransmit carries a clean copy
        }
        break;
      }
      link->applied_seq = it->first;
      link->pending.erase(it);
      ++applied_;
      advanced = true;
      continue;
    }
    persistence::JournalRecord record;
    if (!persistence::DecodeRecordFrame(shipment.frame, &record)) {
      // Corrupt in flight; drop it — the retransmit carries a clean copy.
      ++rejected_;
      link->pending.erase(it);
      break;
    }
    if (!link->durability) {
      persistence::DurabilityOptions durability_options;
      durability_options.dir = options_.dir;
      durability_options.fsync = options_.fsync;
      durability_options.segment_bytes = options_.segment_bytes;
      // The applier never snapshots: consolidation happens in recovery
      // (promotion / restart), which subsumes replica journals there.
      durability_options.snapshot_interval_appends = ~uint64_t{0};
      persistence::SegmentHeader header;
      header.incarnation = incarnation_;
      header.shard = link->replica_shard;
      header.service_fingerprint = options_.service_fingerprint;
      link->durability = std::make_unique<persistence::ShardDurability>(
          durability_options, header, /*first_segment_n=*/0, injector_);
    }
    persistence::AppendResult result;
    switch (record.type) {
      case persistence::JournalRecord::Type::kInput:
        result = link->durability->AppendInput(record);
        break;
      case persistence::JournalRecord::Type::kOutcome:
        result = link->durability->AppendOutcomeAndAck(record);
        break;
      case persistence::JournalRecord::Type::kDiscard:
        result = link->durability->AppendDiscard(record);
        break;
    }
    if (!result.persisted) {
      // Local storage trouble (torn write / dead disk). Keep the
      // shipment buffered and stop: the next arrival (or retransmit)
      // retries, by which time the poisoned segment has rotated away.
      ++rejected_;
      break;
    }
    link->applied_seq = it->first;
    link->pending.erase(it);
    ++applied_;
    advanced = true;
  }
  return advanced;
}

void FollowerApplier::OnShipment(const Shipment& shipment) {
  uint64_t ack = 0;
  bool rejected = false;
  {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    SourceLink& link = LinkFor(shipment.source, now);
    if (fence_ != nullptr) {
      if (shipment.epoch > fence_->current()) {
        // News travels on every message: a shipment can be the first
        // carrier of a promotion this node missed.
        fence_->Adopt(shipment.epoch);
      } else if (shipment.epoch < fence_->current()) {
        // A deposed primary's stale traffic (in-flight at promotion, or
        // a restart re-shipping its un-consolidated tail). Never apply:
        // the promoted heir owns this history now, and merging the old
        // primary's divergent tail would fork acked state. The ack
        // carries our current epoch, which fences the sender.
        ++fencing_rejects_;
        if (counters_ != nullptr) {
          counters_->epoch_fencing_rejects.fetch_add(
              1, std::memory_order_relaxed);
        }
        rejected = true;
        ack = link.applied_seq;
      }
    }
    if (!rejected) {
      if (shipment.source_incarnation < link.source_incarnation) {
        return;  // stale life
      }
      if (shipment.source_incarnation > link.source_incarnation) {
        // The source restarted: its links renumber from 1. Everything the
        // old life shipped and we acked is durable here; the new life's
        // first_unacked says where its stream begins.
        link.source_incarnation = shipment.source_incarnation;
        link.pending.clear();
        link.applied_seq = shipment.first_unacked - 1;
      }
      // Fast-forward: seqs below first_unacked were cumulatively acked —
      // by this node in a previous life if not this one — so they are in
      // the local journal already. Without this a restarted follower
      // would wait forever for records the primary no longer retains.
      if (shipment.first_unacked > 0 &&
          link.applied_seq < shipment.first_unacked - 1) {
        link.applied_seq = shipment.first_unacked - 1;
      }
      if (shipment.link_seq <= link.applied_seq) {
        ++duplicates_;  // retransmit of something already applied: re-ack
      } else {
        link.pending.emplace(shipment.link_seq, shipment);
        DrainPendingLocked(&link);
      }
      ack = link.applied_seq;
    }
  }
  // Ack outside mu_ (transport takes its own lock). Cumulative, so
  // acking after every shipment — duplicates included — is harmless
  // and re-seeds a primary whose acks were dropped in flight.
  transport_->SendAck(node_id_, shipment.source, shipment.source_incarnation,
                      ack, CurrentEpoch());
}

bool FollowerApplier::AbsorbSnapshotLocked(SourceLink* link,
                                           const Shipment& shipment,
                                           bool* corrupt) {
  *corrupt = false;
  persistence::SnapshotData snap;
  if (!persistence::DecodeSnapshotPayload(
           shipment.frame, "catch-up snapshot from " + shipment.source, &snap)
           .ok()) {
    *corrupt = true;  // damaged in flight; drop — retransmit is clean
    return false;
  }
  // Re-stamp to this node's identity: the file must read as ours (the
  // applier's shard space, our incarnation) so recovery consolidates it
  // alongside the link's tail records. Session images are carried
  // verbatim — next_seq is what recovery merges on. The name is unique
  // per (incarnation, shard, counter), so a re-absorbed retransmit
  // cannot clobber an earlier file.
  snap.header.incarnation = incarnation_;
  snap.header.shard = link->replica_shard;
  snap.header.service_fingerprint = options_.service_fingerprint;
  const std::string path =
      options_.dir + "/" +
      persistence::SnapFileName(incarnation_, link->replica_shard,
                                link->snapshots_absorbed);
  if (!persistence::WriteSnapshot(path, snap, injector_).ok()) return false;
  ++link->snapshots_absorbed;
  return true;
}

void FollowerApplier::ExpectPeers(const std::vector<std::string>& peers) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& peer : peers) {
    if (peer == node_id_) continue;
    if (sources_.find(peer) == sources_.end()) LinkFor(peer, now);
  }
}

void FollowerApplier::OnHeartbeat(const std::string& from,
                                  uint64_t incarnation, uint64_t epoch) {
  (void)incarnation;  // liveness only; stream resets ride on shipments
  if (fence_ != nullptr && epoch > fence_->current()) fence_->Adopt(epoch);
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  LinkFor(from, now);
}

std::vector<std::string> FollowerApplier::SuspectPeers(
    std::chrono::steady_clock::time_point now,
    std::chrono::nanoseconds timeout) {
  std::vector<std::string> suspects;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [source, link] : sources_) {
    if (link.suspected) continue;
    if (now - link.last_heard >= timeout) {
      link.suspected = true;  // once per silence episode
      suspects.push_back(source);
    }
  }
  return suspects;
}

uint64_t FollowerApplier::applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

uint64_t FollowerApplier::duplicates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_;
}

uint64_t FollowerApplier::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t FollowerApplier::fencing_rejects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fencing_rejects_;
}

}  // namespace sws::replication
