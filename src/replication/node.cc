#include "replication/node.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "persistence/durability.h"
#include "persistence/journal.h"
#include "persistence/serde.h"
#include "persistence/snapshot.h"

namespace sws::replication {

ReplicatedNode::ReplicatedNode(NodeOptions options, const core::Sws* sws,
                               rel::Database initial_db, ReplicaGroup* group,
                               InProcessTransport* transport)
    : options_(std::move(options)),
      sws_(sws),
      initial_db_(std::move(initial_db)),
      group_(group),
      transport_(transport),
      fence_(options_.dir) {}

ReplicatedNode::~ReplicatedNode() {
  // Stop() quiets the wire (Unbind waits out in-flight deliveries) and
  // flips running_, so a coordinator worker mid-promotion fails cleanly;
  // only then is the coordinator destroyed (joins its worker thread).
  Stop();
  coordinator_.reset();
}

std::chrono::nanoseconds ReplicatedNode::EffectiveFailoverTimeout() const {
  if (options_.failover_timeout.count() > 0) return options_.failover_timeout;
  if (options_.auto_failover) {
    return options_.replication.suspicion_misses *
           std::chrono::nanoseconds(options_.replication.heartbeat_interval);
  }
  return std::chrono::nanoseconds{0};
}

bool ReplicatedNode::ReadyForElection() const {
  std::shared_lock<std::shared_mutex> lock(life_mu_);
  return running_.load(std::memory_order_acquire) && replicator_ != nullptr &&
         replicator_->pending_catchup_count() == 0;
}

std::shared_ptr<rt::ServiceRuntime> ReplicatedNode::runtime_snapshot() const {
  std::shared_lock<std::shared_mutex> lock(life_mu_);
  return runtime_;
}

std::vector<persistence::ReplayedOutcome> ReplicatedNode::replayed_copy()
    const {
  std::shared_lock<std::shared_mutex> lock(life_mu_);
  return replayed_;
}

core::Status ReplicatedNode::Start() {
  core::Status status;
  {
    std::unique_lock<std::shared_mutex> lock(life_mu_);
    if (running_.load(std::memory_order_acquire)) return core::Status::Ok();
    status = StartLife();
  }
  if (status.ok() && options_.on_life_started) {
    options_.on_life_started(options_.id);
  }
  return status;
}

core::Status ReplicatedNode::StartLife() {
  core::Status status = persistence::EnsureDir(options_.dir);
  if (!status.ok()) return status;
  if (!fence_loaded_) {
    // Once per node object: the epoch lives across lives in memory and
    // the durable file only has to bridge process restarts. Corruption
    // is a hard failure — silently regressing the epoch would let a
    // deposed primary's writes back in.
    status = fence_.Load();
    if (!status.ok()) return status;
    fence_loaded_ = true;
  }
  // Every life gets a fresh injector: a previous life's injected storage
  // death (KillStorageAfter) must not follow the node into its restart.
  injector_ = std::make_unique<core::FaultInjector>(options_.faults);

  // The incarnation this life will journal under. The runtime
  // constructor's recovery recomputes the same value (nothing is written
  // to the dir in between), so the replica journals the applier writes
  // carry the same stamp as the runtime's own segments.
  uint64_t incarnation = 1;
  status = persistence::NextIncarnation(options_.dir, &incarnation);
  if (!status.ok()) return status;

  // Capture the un-consolidated journal tail of the sessions this node
  // owns *before* the runtime constructor runs: its recovery writes a
  // consolidated snapshot and deletes the segments. A crash wiped the
  // previous life's retransmit buffers, so anything in these segments
  // the followers never acked exists here alone until re-shipped.
  std::vector<TailRecord> tail;
  if (options_.replication.replicas > 0) CollectOwnedTail(&tail);

  FollowerApplier::Options applier_options;
  applier_options.dir = options_.dir;
  applier_options.fsync = persistence::FsyncPolicy::kAlways;
  applier_options.segment_bytes = options_.runtime.durability.segment_bytes;
  applier_options.service_fingerprint = persistence::SwsFingerprint(*sws_);
  applier_ = std::make_unique<FollowerApplier>(
      options_.id, applier_options, transport_, incarnation, injector_.get(),
      &fence_, &counters_);
  const std::chrono::nanoseconds failover_timeout = EffectiveFailoverTimeout();
  if (failover_timeout.count() > 0) {
    // Arm the silence clock for every peer now: a peer that dies before
    // its first heartbeat lands must still become suspect.
    applier_->ExpectPeers(group_->nodes());
  }
  replicator_ = std::make_unique<Replicator>(options_.id, group_,
                                             options_.replication, transport_,
                                             incarnation, &fence_);

  if (options_.auto_failover && coordinator_ == nullptr) {
    // Created once, on the first life: election state and liveness
    // clocks must survive restarts (a node that crashes mid-election
    // must not forget the epoch arithmetic its durable vote implies).
    FailoverHooks hooks;
    hooks.ready = [this]() { return ReadyForElection(); };
    hooks.promote = [this](const std::string& dead, uint64_t epoch) {
      return PromoteWithEpoch(dead, epoch);
    };
    coordinator_ = std::make_unique<FailoverCoordinator>(
        options_.id, group_, transport_, &fence_, options_.replication,
        failover_timeout, std::move(hooks), &counters_);
  }

  rt::RuntimeOptions runtime_options = options_.runtime;
  runtime_options.durability.dir = options_.dir;
  runtime_options.run_options.fault_injector = injector_.get();
  runtime_options.replication.client =
      options_.replication.replicas > 0 ? replicator_.get() : nullptr;
  runtime_options.replication.monitor = applier_.get();
  runtime_options.replication.failover_timeout = failover_timeout;
  runtime_options.replication.promotions = promotions_;
  runtime_options.replication.counters = &counters_;
  if (options_.auto_failover) {
    // Self-healing needs the suspicion signal; the watchdog is its pump.
    runtime_options.governance.enable_watchdog = true;
  }
  if (options_.on_peer_suspected || coordinator_ != nullptr) {
    const std::string node_id = options_.id;
    auto callback = options_.on_peer_suspected;
    FailoverCoordinator* coordinator = coordinator_.get();
    Replicator* replicator = replicator_.get();
    // Watchdog thread. The runtime's Shutdown joins the watchdog before
    // Teardown resets the replicator, so the raw captures stay valid.
    runtime_options.replication.on_peer_suspected =
        [node_id, callback, coordinator,
         replicator](const std::string& peer) {
          // A suspected peer cannot serve our catch-up; stop waiting on
          // it (its heir answers future requests under its own name).
          replicator->CancelCatchup(peer);
          if (coordinator != nullptr) coordinator->NoteSuspect(peer);
          if (callback) callback(node_id, peer);
        };
  }

  // The constructor recovers the dir: own journal *and* replica
  // journals consolidate into one snapshot, sessions install warm.
  runtime_ = std::make_shared<rt::ServiceRuntime>(sws_, initial_db_,
                                                  runtime_options);
  if (!runtime_->init_status().ok()) {
    status = runtime_->init_status();
    runtime_.reset();
    replicator_.reset();
    applier_.reset();
    return status;
  }
  if (runtime_->recovery() != nullptr) {
    incarnation_ = runtime_->recovery()->next_incarnation;
    // Ownership-gated re-emission (DESIGN.md §11): deliver only the
    // unacknowledged outcomes of sessions this node currently serves. A
    // deposed primary replays the rest for state but stays silent —
    // their heir already delivered (or will).
    replayed_.clear();
    for (const persistence::ReplayedOutcome& outcome :
         runtime_->recovery()->replayed) {
      if (group_->PrimaryOf(outcome.session_id) == options_.id) {
        replayed_.push_back(outcome);
      }
    }
  } else {
    incarnation_ = incarnation;
    replayed_.clear();
  }

  transport_->Rejoin(options_.id);
  transport_->Bind(options_.id, this);
  if (coordinator_ != nullptr) {
    // A long downtime must not read as everyone-is-dead the moment the
    // node returns.
    coordinator_->ResetClocks();
  }
  // With the binding up (acks can flow back), converge the followers:
  // re-ship the pre-consolidation tail, then gate each replayed
  // outcome's re-emission on the follower ack barrier. FIFO links order
  // the barrier record after the tail, so a follower's ack of the
  // outcome implies the whole prefix is durable there.
  if (options_.replication.replicas > 0) ReplicateRecoveredState(tail);
  if (options_.auto_failover && options_.replication.replicas > 0 &&
      incarnation_ == 1) {
    // First life over an empty dir: this node may be joining a group
    // with history it never followed, so bootstrap from every peer
    // before vouching for anything (acks of later lives don't need
    // this — acked means durable here, so the dir carries the prefix).
    std::vector<std::string> sources;
    for (const std::string& peer : group_->nodes()) {
      if (peer != options_.id) sources.push_back(peer);
    }
    if (!sources.empty()) replicator_->RequestCatchup(sources);
  }
  running_.store(true, std::memory_order_release);
  return core::Status::Ok();
}

void ReplicatedNode::CollectOwnedTail(std::vector<TailRecord>* tail) const {
  std::vector<persistence::DurableFile> files;
  if (!persistence::ListDurableFiles(options_.dir, &files).ok()) return;
  // Segment order within a shard (incarnation, then n) is append order;
  // the final per-session sort below interleaves shards correctly.
  std::stable_sort(files.begin(), files.end(),
                   [](const persistence::DurableFile& a,
                      const persistence::DurableFile& b) {
                     return std::tie(a.shard, a.incarnation, a.n) <
                            std::tie(b.shard, b.incarnation, b.n);
                   });
  // Uncommitted inputs that were consolidated into a snapshot by a
  // previous life no longer exist as journal records, but a follower
  // that missed their original shipment still needs them — a replayed
  // outcome's ack is only as good as the input prefix shipped before it.
  // SessionImage::pending holds those messages verbatim (recovery
  // replays from them), so input records synthesized here are exact.
  std::map<std::string, persistence::SessionImage> snapshot_images;
  for (const persistence::DurableFile& file : files) {
    const std::string path = options_.dir + "/" + file.name;
    if (file.is_snapshot) {
      persistence::SnapshotData snap;
      if (!persistence::ReadSnapshot(path, nullptr, &snap).ok()) continue;
      for (persistence::SessionImage& image : snap.sessions) {
        if (group_->PrimaryOf(image.session_id) != options_.id) continue;
        auto [it, inserted] =
            snapshot_images.try_emplace(image.session_id, std::move(image));
        if (!inserted && image.next_seq > it->second.next_seq) {
          it->second = std::move(image);  // recovery's merge rule
        }
      }
      continue;
    }
    persistence::SegmentContents contents;
    if (!persistence::ReadSegment(path, nullptr, &contents).ok()) {
      continue;  // unreadable segment: recovery decides its fate, not us
    }
    for (persistence::JournalRecord& record : contents.records) {
      if (group_->PrimaryOf(record.session_id) != options_.id) continue;
      tail->push_back({std::move(record), file.shard, file.n});
    }
  }
  for (const auto& [session_id, image] : snapshot_images) {
    const size_t count = image.pending.size();
    for (size_t j = 1; j <= count; ++j) {
      persistence::JournalRecord record;
      record.type = persistence::JournalRecord::Type::kInput;
      record.session_id = session_id;
      // pending holds the messages at seqs [next_seq - n, next_seq).
      record.seq = image.next_seq - count + (j - 1);
      record.payload = image.pending.Message(j);
      // priority/deadline stay at defaults: they steer live admission,
      // never replay. A segment copy of the same seq may coexist;
      // follower recovery keeps the first and counts a duplicate.
      tail->push_back({std::move(record), /*shard=*/0, /*segment_n=*/0});
    }
  }
  // Ship in per-session seq order so a follower applies without gaps.
  // The same record may appear twice (own journal and a replica journal
  // both hold it); follower recovery dedups by seq.
  std::stable_sort(tail->begin(), tail->end(),
                   [](const TailRecord& a, const TailRecord& b) {
                     return std::tie(a.record.session_id, a.record.seq) <
                            std::tie(b.record.session_id, b.record.seq);
                   });
}

void ReplicatedNode::ReplicateRecoveredState(
    const std::vector<TailRecord>& tail) {
  for (const TailRecord& entry : tail) {
    // Fire-and-forget: the links buffer and retransmit until acked.
    // Client-acked outcomes in the tail are already quorum-durable
    // (that is what their barrier proved); everything else has an
    // ambiguous client, so durability convergence is all that is owed.
    replicator_->ShipRecord(entry.record, entry.shard, entry.segment_n);
  }
  // Replayed outcomes were recomputed — no outcome record exists on any
  // disk. Re-emitting one without quorum durability would let a later
  // heir (which cannot see it) re-run the session and deliver again, so
  // each re-emission pays the same ack barrier as a live commit first.
  // A failed barrier withholds the re-emission: legal, because a crash
  // fails every in-flight callback, leaving those clients ambiguous.
  // One failure mode is new here: if this node was deposed while it was
  // down, its stale-epoch re-ships are fenced by the followers and the
  // barrier fails fast — the withheld outcomes belong to the heir now.
  std::vector<persistence::ReplayedOutcome> deliverable;
  deliverable.reserve(replayed_.size());
  suppressed_reemissions_ = 0;
  for (persistence::ReplayedOutcome& outcome : replayed_) {
    persistence::JournalRecord record;
    record.type = persistence::JournalRecord::Type::kOutcome;
    record.session_id = outcome.session_id;
    record.seq = outcome.seq;
    record.status_code = static_cast<uint8_t>(outcome.status.code());
    if (outcome.status.ok()) record.payload = outcome.output;
    // The record belongs to no local segment (it was recomputed, not
    // read), so pin it to segment 0: MinUnackedSegment only ever
    // over-retains, and the pin clears with the ack.
    if (replicator_->ShipOutcomeAndWait(record, /*shard=*/0, /*segment_n=*/0)
            .ok()) {
      deliverable.push_back(std::move(outcome));
    } else {
      ++suppressed_reemissions_;
    }
  }
  replayed_ = std::move(deliverable);
}

void ReplicatedNode::Teardown(bool crash) {
  // The runtime references the replicator and applier through its
  // options; it dies first. (Its Shutdown also joins the watchdog, so
  // no SuspectPeers poll can touch the applier afterwards.) A
  // runtime_snapshot() holder may outlive the reset — the runtime it
  // holds is already shut down and self-contained.
  runtime_.reset();
  replicator_.reset();
  applier_.reset();
  if (!crash) replayed_.clear();
  running_.store(false, std::memory_order_release);
}

void ReplicatedNode::Kill() {
  std::unique_lock<std::shared_mutex> lock(life_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  // Crash choreography: storage dies first (in-flight appends tear and
  // nothing more persists), the wire is cut (no deliveries in or out,
  // Unbind waits out the one in flight), barrier waiters wake with
  // failure, and only then is the runtime drained and destroyed. What
  // the callbacks report during the drain is what a client of a crashed
  // node sees: errors, never acks.
  injector_->KillStorageAfter(0);
  transport_->Isolate(options_.id);
  transport_->Unbind(options_.id);
  replicator_->Abort();
  runtime_->Shutdown();
  Teardown(/*crash=*/true);
}

void ReplicatedNode::Stop() {
  std::unique_lock<std::shared_mutex> lock(life_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  // Clean shutdown: drain with the wire still up, so outstanding ack
  // barriers resolve normally before the node leaves.
  runtime_->Shutdown();
  transport_->Unbind(options_.id);
  Teardown(/*crash=*/false);
}

core::Status ReplicatedNode::Promote(const std::string& dead) {
  core::Status status;
  {
    std::unique_lock<std::shared_mutex> lock(life_mu_);
    // The operator's override outranks the deposed primary exactly like
    // a won election does: one epoch past everything this node has seen.
    status = PromoteLocked(dead, fence_.current() + 1);
  }
  if (status.ok() && options_.on_life_started) {
    options_.on_life_started(options_.id);
  }
  return status;
}

core::Status ReplicatedNode::PromoteWithEpoch(const std::string& dead,
                                              uint64_t epoch) {
  core::Status status;
  {
    std::unique_lock<std::shared_mutex> lock(life_mu_);
    status = PromoteLocked(dead, epoch);
  }
  if (status.ok() && options_.on_life_started) {
    options_.on_life_started(options_.id);
  }
  return status;
}

core::Status ReplicatedNode::PromoteLocked(const std::string& dead,
                                           uint64_t epoch) {
  if (!running_.load(std::memory_order_acquire)) {
    return core::Status::Error(core::RunError::kShutdown,
                               "promote: node not running");
  }
  // Quiesce this life: finish local work, leave the wire (retransmission
  // covers the gap), drop the replication stack.
  runtime_->Shutdown();
  transport_->Unbind(options_.id);
  replicator_->Abort();
  Teardown(/*crash=*/false);
  // The epoch bump is what fences the deposed primary: its in-flight and
  // restart-re-shipped traffic is stamped below `epoch`, so every
  // follower (this node's next life included) rejects it. Adopt before
  // taking ownership — from the first shipment of the new life onward,
  // the stamp must already outrank the old primary's.
  fence_.Adopt(epoch);
  // Take ownership *before* the next life recovers, so the re-emission
  // filter sees the dead node's sessions as ours.
  group_->Promote(dead, options_.id);
  ++promotions_;
  return StartLife();
}

void ReplicatedNode::ServeCatchup(const std::string& requester) {
  if (replicator_ == nullptr) return;
  // Demote the requester's link out of the ack quorum first: from here
  // to graduation its acks prove only link progress, not history
  // coverage. Then pin GC so the segments read below stay on disk.
  replicator_->BeginCatchup(requester);
  replicator_->PinCatchup();

  // Everything the requester should follow: sessions this node owns
  // whose follower set (under the current overrides) includes it. The
  // snapshot images carry consolidated state (pending buffers verbatim
  // — recovery replays from them); the journal tail covers what was
  // appended since. Extra overlap is harmless: follower recovery merges
  // images by next_seq and dedups records by seq.
  persistence::SnapshotData bootstrap;
  bootstrap.header.incarnation = incarnation_;
  bootstrap.header.shard = 0;
  bootstrap.header.service_fingerprint = persistence::SwsFingerprint(*sws_);
  std::vector<TailRecord> tail;
  std::vector<persistence::DurableFile> files;
  auto serves = [&](const std::string& session_id) {
    if (group_->PrimaryOf(session_id) != options_.id) return false;
    const std::vector<std::string> followers =
        group_->FollowersOf(session_id, options_.replication.replicas);
    return std::find(followers.begin(), followers.end(), requester) !=
           followers.end();
  };
  if (persistence::ListDurableFiles(options_.dir, &files).ok()) {
    std::stable_sort(files.begin(), files.end(),
                     [](const persistence::DurableFile& a,
                        const persistence::DurableFile& b) {
                       return std::tie(a.shard, a.incarnation, a.n) <
                              std::tie(b.shard, b.incarnation, b.n);
                     });
    std::map<std::string, persistence::SessionImage> images;
    for (const persistence::DurableFile& file : files) {
      const std::string path = options_.dir + "/" + file.name;
      if (file.is_snapshot) {
        persistence::SnapshotData snap;
        if (!persistence::ReadSnapshot(path, nullptr, &snap).ok()) continue;
        for (persistence::SessionImage& image : snap.sessions) {
          if (!serves(image.session_id)) continue;
          auto [it, inserted] =
              images.try_emplace(image.session_id, std::move(image));
          if (!inserted && image.next_seq > it->second.next_seq) {
            it->second = std::move(image);
          }
        }
        continue;
      }
      persistence::SegmentContents contents;
      if (!persistence::ReadSegment(path, nullptr, &contents).ok()) continue;
      for (persistence::JournalRecord& record : contents.records) {
        if (!serves(record.session_id)) continue;
        tail.push_back({std::move(record), file.shard, file.n});
      }
    }
    for (auto& [session_id, image] : images) {
      bootstrap.sessions.push_back(std::move(image));
    }
    std::stable_sort(tail.begin(), tail.end(),
                     [](const TailRecord& a, const TailRecord& b) {
                       return std::tie(a.record.session_id, a.record.seq) <
                              std::tie(b.record.session_id, b.record.seq);
                     });
  }

  // The snapshot ships even when empty: its arrival is what tells the
  // joiner this source has answered (NoteCatchupServed), and its link
  // position anchors the graduation fence.
  std::string payload;
  persistence::EncodeSnapshotPayload(bootstrap, &payload);
  counters_.catchup_bytes_shipped.fetch_add(payload.size(),
                                            std::memory_order_relaxed);
  replicator_->ShipSnapshotTo(requester, std::move(payload));
  for (const TailRecord& entry : tail) {
    replicator_->ShipRecordTo(requester, entry.record, entry.shard,
                              entry.segment_n);
  }
  replicator_->FinishCatchupServe(requester);
  replicator_->UnpinCatchup();
}

void ReplicatedNode::OnShipment(const Shipment& shipment) {
  if (coordinator_ != nullptr) coordinator_->NoteAlive(shipment.source);
  if (shipment.snapshot && replicator_ != nullptr) {
    // The bootstrap answer to our catch-up request — stop re-asking this
    // source. (The applier below is what durably absorbs it.)
    replicator_->NoteCatchupServed(shipment.source);
  }
  if (applier_ != nullptr) applier_->OnShipment(shipment);
}

void ReplicatedNode::OnAck(const std::string& from, uint64_t source_incarnation,
                           uint64_t acked_link_seq, uint64_t epoch) {
  if (coordinator_ != nullptr) coordinator_->NoteAlive(from);
  if (replicator_ != nullptr) {
    replicator_->OnAck(from, source_incarnation, acked_link_seq, epoch);
  }
}

void ReplicatedNode::OnHeartbeat(const std::string& from, uint64_t incarnation,
                                 uint64_t epoch) {
  if (coordinator_ != nullptr) coordinator_->NoteAlive(from);
  if (applier_ != nullptr) applier_->OnHeartbeat(from, incarnation, epoch);
}

void ReplicatedNode::OnVoteRequest(const std::string& from, uint64_t epoch,
                                   const std::string& suspect) {
  if (coordinator_ == nullptr) return;
  coordinator_->NoteAlive(from);
  coordinator_->OnVoteRequest(from, epoch, suspect);
}

void ReplicatedNode::OnVoteGrant(const std::string& from, uint64_t epoch,
                                 bool granted) {
  if (coordinator_ == nullptr) return;
  coordinator_->NoteAlive(from);
  coordinator_->OnVoteGrant(from, epoch, granted);
}

void ReplicatedNode::OnCatchupRequest(const std::string& from,
                                      uint64_t epoch) {
  if (coordinator_ != nullptr) coordinator_->NoteAlive(from);
  // A refreshed joiner may know a newer epoch than we do (it heard the
  // promotion first) — news travels on every message.
  fence_.Adopt(epoch);
  // Serving on the delivery thread is deliberate: DeliveryLoop releases
  // the transport lock around endpoint calls, and the serve never takes
  // the node's lifecycle lock, so Kill/Unbind can always drain it.
  ServeCatchup(from);
}

std::string ChoosePromotionCandidate(
    const std::vector<ReplicatedNode*>& candidates, const core::Sws* sws,
    const rel::Database& seed_db) {
  std::string best;
  uint64_t best_total = 0;
  for (ReplicatedNode* node : candidates) {
    if (node == nullptr) continue;
    persistence::RecoveryOptions options;
    options.verify_replay_outputs = false;  // caught-up-ness only
    persistence::RecoveryManager manager(node->options().dir, sws, seed_db,
                                         options, nullptr);
    persistence::RecoveryResult result = manager.Inspect();
    uint64_t total = 0;
    for (const auto& [session_id, image] : result.sessions) {
      total += image.next_seq;
    }
    if (best.empty() || total > best_total ||
        (total == best_total && node->id() < best)) {
      best = node->id();
      best_total = total;
    }
  }
  return best;
}

}  // namespace sws::replication
