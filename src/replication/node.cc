#include "replication/node.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "persistence/durability.h"
#include "persistence/journal.h"
#include "persistence/serde.h"
#include "persistence/snapshot.h"

namespace sws::replication {

ReplicatedNode::ReplicatedNode(NodeOptions options, const core::Sws* sws,
                               rel::Database initial_db, ReplicaGroup* group,
                               InProcessTransport* transport)
    : options_(std::move(options)),
      sws_(sws),
      initial_db_(std::move(initial_db)),
      group_(group),
      transport_(transport) {}

ReplicatedNode::~ReplicatedNode() { Stop(); }

core::Status ReplicatedNode::Start() {
  if (running_) return core::Status::Ok();
  return StartLife();
}

core::Status ReplicatedNode::StartLife() {
  core::Status status = persistence::EnsureDir(options_.dir);
  if (!status.ok()) return status;
  // Every life gets a fresh injector: a previous life's injected storage
  // death (KillStorageAfter) must not follow the node into its restart.
  injector_ = std::make_unique<core::FaultInjector>(options_.faults);

  // The incarnation this life will journal under. The runtime
  // constructor's recovery recomputes the same value (nothing is written
  // to the dir in between), so the replica journals the applier writes
  // carry the same stamp as the runtime's own segments.
  uint64_t incarnation = 1;
  status = persistence::NextIncarnation(options_.dir, &incarnation);
  if (!status.ok()) return status;

  // Capture the un-consolidated journal tail of the sessions this node
  // owns *before* the runtime constructor runs: its recovery writes a
  // consolidated snapshot and deletes the segments. A crash wiped the
  // previous life's retransmit buffers, so anything in these segments
  // the followers never acked exists here alone until re-shipped.
  std::vector<TailRecord> tail;
  if (options_.replication.replicas > 0) CollectOwnedTail(&tail);

  FollowerApplier::Options applier_options;
  applier_options.dir = options_.dir;
  applier_options.fsync = persistence::FsyncPolicy::kAlways;
  applier_options.segment_bytes = options_.runtime.durability.segment_bytes;
  applier_options.service_fingerprint = persistence::SwsFingerprint(*sws_);
  applier_ = std::make_unique<FollowerApplier>(
      options_.id, applier_options, transport_, incarnation, injector_.get());
  if (options_.failover_timeout.count() > 0) {
    // Arm the silence clock for every peer now: a peer that dies before
    // its first heartbeat lands must still become suspect.
    applier_->ExpectPeers(group_->nodes());
  }
  replicator_ = std::make_unique<Replicator>(options_.id, group_,
                                             options_.replication, transport_,
                                             incarnation);

  rt::RuntimeOptions runtime_options = options_.runtime;
  runtime_options.durability.dir = options_.dir;
  runtime_options.run_options.fault_injector = injector_.get();
  runtime_options.replication.client =
      options_.replication.replicas > 0 ? replicator_.get() : nullptr;
  runtime_options.replication.monitor = applier_.get();
  runtime_options.replication.failover_timeout = options_.failover_timeout;
  runtime_options.replication.promotions = promotions_;
  if (options_.on_peer_suspected) {
    const std::string node_id = options_.id;
    auto callback = options_.on_peer_suspected;
    runtime_options.replication.on_peer_suspected =
        [node_id, callback](const std::string& peer) {
          callback(node_id, peer);
        };
  }

  // The constructor recovers the dir: own journal *and* replica
  // journals consolidate into one snapshot, sessions install warm.
  runtime_ = std::make_unique<rt::ServiceRuntime>(sws_, initial_db_,
                                                  runtime_options);
  if (!runtime_->init_status().ok()) {
    status = runtime_->init_status();
    runtime_.reset();
    replicator_.reset();
    applier_.reset();
    return status;
  }
  if (runtime_->recovery() != nullptr) {
    incarnation_ = runtime_->recovery()->next_incarnation;
    // Ownership-gated re-emission (DESIGN.md §11): deliver only the
    // unacknowledged outcomes of sessions this node currently serves. A
    // deposed primary replays the rest for state but stays silent —
    // their heir already delivered (or will).
    replayed_.clear();
    for (const persistence::ReplayedOutcome& outcome :
         runtime_->recovery()->replayed) {
      if (group_->PrimaryOf(outcome.session_id) == options_.id) {
        replayed_.push_back(outcome);
      }
    }
  } else {
    incarnation_ = incarnation;
    replayed_.clear();
  }

  transport_->Rejoin(options_.id);
  transport_->Bind(options_.id, this);
  // With the binding up (acks can flow back), converge the followers:
  // re-ship the pre-consolidation tail, then gate each replayed
  // outcome's re-emission on the follower ack barrier. FIFO links order
  // the barrier record after the tail, so a follower's ack of the
  // outcome implies the whole prefix is durable there.
  if (options_.replication.replicas > 0) ReplicateRecoveredState(tail);
  running_ = true;
  return core::Status::Ok();
}

void ReplicatedNode::CollectOwnedTail(std::vector<TailRecord>* tail) const {
  std::vector<persistence::DurableFile> files;
  if (!persistence::ListDurableFiles(options_.dir, &files).ok()) return;
  // Segment order within a shard (incarnation, then n) is append order;
  // the final per-session sort below interleaves shards correctly.
  std::stable_sort(files.begin(), files.end(),
                   [](const persistence::DurableFile& a,
                      const persistence::DurableFile& b) {
                     return std::tie(a.shard, a.incarnation, a.n) <
                            std::tie(b.shard, b.incarnation, b.n);
                   });
  // Uncommitted inputs that were consolidated into a snapshot by a
  // previous life no longer exist as journal records, but a follower
  // that missed their original shipment still needs them — a replayed
  // outcome's ack is only as good as the input prefix shipped before it.
  // SessionImage::pending holds those messages verbatim (recovery
  // replays from them), so input records synthesized here are exact.
  std::map<std::string, persistence::SessionImage> snapshot_images;
  for (const persistence::DurableFile& file : files) {
    const std::string path = options_.dir + "/" + file.name;
    if (file.is_snapshot) {
      persistence::SnapshotData snap;
      if (!persistence::ReadSnapshot(path, nullptr, &snap).ok()) continue;
      for (persistence::SessionImage& image : snap.sessions) {
        if (group_->PrimaryOf(image.session_id) != options_.id) continue;
        auto [it, inserted] =
            snapshot_images.try_emplace(image.session_id, std::move(image));
        if (!inserted && image.next_seq > it->second.next_seq) {
          it->second = std::move(image);  // recovery's merge rule
        }
      }
      continue;
    }
    persistence::SegmentContents contents;
    if (!persistence::ReadSegment(path, nullptr, &contents).ok()) {
      continue;  // unreadable segment: recovery decides its fate, not us
    }
    for (persistence::JournalRecord& record : contents.records) {
      if (group_->PrimaryOf(record.session_id) != options_.id) continue;
      tail->push_back({std::move(record), file.shard, file.n});
    }
  }
  for (const auto& [session_id, image] : snapshot_images) {
    const size_t count = image.pending.size();
    for (size_t j = 1; j <= count; ++j) {
      persistence::JournalRecord record;
      record.type = persistence::JournalRecord::Type::kInput;
      record.session_id = session_id;
      // pending holds the messages at seqs [next_seq - n, next_seq).
      record.seq = image.next_seq - count + (j - 1);
      record.payload = image.pending.Message(j);
      // priority/deadline stay at defaults: they steer live admission,
      // never replay. A segment copy of the same seq may coexist;
      // follower recovery keeps the first and counts a duplicate.
      tail->push_back({std::move(record), /*shard=*/0, /*segment_n=*/0});
    }
  }
  // Ship in per-session seq order so a follower applies without gaps.
  // The same record may appear twice (own journal and a replica journal
  // both hold it); follower recovery dedups by seq.
  std::stable_sort(tail->begin(), tail->end(),
                   [](const TailRecord& a, const TailRecord& b) {
                     return std::tie(a.record.session_id, a.record.seq) <
                            std::tie(b.record.session_id, b.record.seq);
                   });
}

void ReplicatedNode::ReplicateRecoveredState(
    const std::vector<TailRecord>& tail) {
  for (const TailRecord& entry : tail) {
    // Fire-and-forget: the links buffer and retransmit until acked.
    // Client-acked outcomes in the tail are already quorum-durable
    // (that is what their barrier proved); everything else has an
    // ambiguous client, so durability convergence is all that is owed.
    replicator_->ShipRecord(entry.record, entry.shard, entry.segment_n);
  }
  // Replayed outcomes were recomputed — no outcome record exists on any
  // disk. Re-emitting one without quorum durability would let a later
  // heir (which cannot see it) re-run the session and deliver again, so
  // each re-emission pays the same ack barrier as a live commit first.
  // A failed barrier withholds the re-emission: legal, because a crash
  // fails every in-flight callback, leaving those clients ambiguous.
  std::vector<persistence::ReplayedOutcome> deliverable;
  deliverable.reserve(replayed_.size());
  suppressed_reemissions_ = 0;
  for (persistence::ReplayedOutcome& outcome : replayed_) {
    persistence::JournalRecord record;
    record.type = persistence::JournalRecord::Type::kOutcome;
    record.session_id = outcome.session_id;
    record.seq = outcome.seq;
    record.status_code = static_cast<uint8_t>(outcome.status.code());
    if (outcome.status.ok()) record.payload = outcome.output;
    // The record belongs to no local segment (it was recomputed, not
    // read), so pin it to segment 0: MinUnackedSegment only ever
    // over-retains, and the pin clears with the ack.
    if (replicator_->ShipOutcomeAndWait(record, /*shard=*/0, /*segment_n=*/0)
            .ok()) {
      deliverable.push_back(std::move(outcome));
    } else {
      ++suppressed_reemissions_;
    }
  }
  replayed_ = std::move(deliverable);
}

void ReplicatedNode::Teardown(bool crash) {
  // The runtime references the replicator and applier through its
  // options; it dies first. (Its Shutdown also joins the watchdog, so
  // no SuspectPeers poll can touch the applier afterwards.)
  runtime_.reset();
  replicator_.reset();
  applier_.reset();
  if (!crash) replayed_.clear();
  running_ = false;
}

void ReplicatedNode::Kill() {
  if (!running_) return;
  // Crash choreography: storage dies first (in-flight appends tear and
  // nothing more persists), the wire is cut (no deliveries in or out,
  // Unbind waits out the one in flight), barrier waiters wake with
  // failure, and only then is the runtime drained and destroyed. What
  // the callbacks report during the drain is what a client of a crashed
  // node sees: errors, never acks.
  injector_->KillStorageAfter(0);
  transport_->Isolate(options_.id);
  transport_->Unbind(options_.id);
  replicator_->Abort();
  runtime_->Shutdown();
  Teardown(/*crash=*/true);
}

void ReplicatedNode::Stop() {
  if (!running_) return;
  // Clean shutdown: drain with the wire still up, so outstanding ack
  // barriers resolve normally before the node leaves.
  runtime_->Shutdown();
  transport_->Unbind(options_.id);
  Teardown(/*crash=*/false);
}

core::Status ReplicatedNode::Promote(const std::string& dead) {
  if (!running_) {
    return core::Status::Error(core::RunError::kShutdown,
                               "promote: node not running");
  }
  // Quiesce this life: finish local work, leave the wire (retransmission
  // covers the gap), drop the replication stack.
  runtime_->Shutdown();
  transport_->Unbind(options_.id);
  replicator_->Abort();
  Teardown(/*crash=*/false);
  // Take ownership *before* the next life recovers, so the re-emission
  // filter sees the dead node's sessions as ours.
  group_->Promote(dead, options_.id);
  ++promotions_;
  return StartLife();
}

void ReplicatedNode::OnShipment(const Shipment& shipment) {
  if (applier_ != nullptr) applier_->OnShipment(shipment);
}

void ReplicatedNode::OnAck(const std::string& from, uint64_t source_incarnation,
                           uint64_t acked_link_seq) {
  if (replicator_ != nullptr) {
    replicator_->OnAck(from, source_incarnation, acked_link_seq);
  }
}

void ReplicatedNode::OnHeartbeat(const std::string& from,
                                 uint64_t incarnation) {
  if (applier_ != nullptr) applier_->OnHeartbeat(from, incarnation);
}

std::string ChoosePromotionCandidate(
    const std::vector<ReplicatedNode*>& candidates, const core::Sws* sws,
    const rel::Database& seed_db) {
  std::string best;
  uint64_t best_total = 0;
  for (ReplicatedNode* node : candidates) {
    if (node == nullptr) continue;
    persistence::RecoveryOptions options;
    options.verify_replay_outputs = false;  // caught-up-ness only
    persistence::RecoveryManager manager(node->options().dir, sws, seed_db,
                                         options, nullptr);
    persistence::RecoveryResult result = manager.Inspect();
    uint64_t total = 0;
    for (const auto& [session_id, image] : result.sessions) {
      total += image.next_seq;
    }
    if (best.empty() || total > best_total ||
        (total == best_total && node->id() < best)) {
      best = node->id();
      best_total = total;
    }
  }
  return best;
}

}  // namespace sws::replication
