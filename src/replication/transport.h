#ifndef SWS_REPLICATION_TRANSPORT_H_
#define SWS_REPLICATION_TRANSPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sws/fault.h"

namespace sws::replication {

/// One journal record in flight on a (source, dest) link. `frame` is the
/// exact CRC-framed byte string the primary's JournalWriter appended
/// (persistence::EncodeRecordFrame) — the follower re-verifies the CRC
/// on apply, so transport corruption surfaces exactly like torn storage.
struct Shipment {
  std::string source;
  std::string dest;
  /// The source node's journal incarnation; bumps when the source
  /// restarts, resetting the link (link_seq restarts at 1).
  uint64_t source_incarnation = 0;
  /// 1-based FIFO position on the (source, dest, source_incarnation)
  /// link. Followers apply in link order and ack cumulatively.
  uint64_t link_seq = 0;
  /// Lowest link_seq the source may still retransmit (its cumulative
  /// ack + 1 at last send). Everything below was acknowledged — i.e.
  /// durably applied by some follower life — so a follower that lost its
  /// in-memory link state (restart, promotion) may fast-forward to it.
  uint64_t first_unacked = 1;
  /// The sender's view of the group fencing epoch at (re)transmit time.
  /// A follower rejects shipments below its own epoch (a deposed
  /// primary's stale traffic) and adopts higher ones. See DESIGN.md §13.
  uint64_t epoch = 0;
  /// Where the record sits in the source's journal: shard index and
  /// segment counter — the replication cursor that pins the segment
  /// against snapshot GC until acknowledged.
  uint64_t shard = 0;
  uint64_t segment_n = 0;
  /// The session the record belongs to — sender-side bookkeeping used to
  /// re-check ownership when the group epoch moves while the shipment is
  /// buffered. Redundant with the frame contents, so a socket transport
  /// need not put it on the wire.
  std::string session_id;
  /// True for a catch-up bootstrap shipment: `frame` then holds
  /// persistence::EncodeSnapshotPayload bytes (not a record frame), which
  /// the follower persists as a snapshot file before acking. Riding the
  /// FIFO link gives the bootstrap payload the same retransmit-until-
  /// acked durability as records, so a joiner's cumulative ack past the
  /// catch-up fence proves the whole bootstrap landed (DESIGN.md §13).
  bool snapshot = false;
  std::string frame;
};

/// A node's receive surface. Methods are invoked from the transport's
/// delivery thread, one delivery at a time per node; they must not call
/// back into the transport while blocking (sending acks is fine).
class ReplicationEndpoint {
 public:
  virtual ~ReplicationEndpoint() = default;
  virtual void OnShipment(const Shipment& shipment) = 0;
  /// Cumulative: `acked_link_seq` and everything below it is durably
  /// applied by `from`. `source_incarnation` echoes the shipments being
  /// acknowledged, so a restarted source ignores its past life's acks.
  /// `epoch` is the acker's fencing epoch — how a deposed primary learns
  /// it was fenced.
  virtual void OnAck(const std::string& from, uint64_t source_incarnation,
                     uint64_t acked_link_seq, uint64_t epoch) = 0;
  virtual void OnHeartbeat(const std::string& from, uint64_t incarnation,
                           uint64_t epoch) = 0;
  /// Election traffic (failure-detector-driven failover). `epoch` is the
  /// epoch the candidate wants to claim; `suspect` the node it wants to
  /// depose. Default no-op so pure appliers/replicators can ignore it.
  virtual void OnVoteRequest(const std::string& from, uint64_t epoch,
                             const std::string& suspect) {
    (void)from, (void)epoch, (void)suspect;
  }
  virtual void OnVoteGrant(const std::string& from, uint64_t epoch,
                           bool granted) {
    (void)from, (void)epoch, (void)granted;
  }
  /// Join/rejoin catch-up. A joining node broadcasts a request; each
  /// primary answers on the regular shipment link — a snapshot-flagged
  /// shipment of the sessions the requester follows, then the journal
  /// tail (see Shipment::snapshot).
  virtual void OnCatchupRequest(const std::string& from, uint64_t epoch) {
    (void)from, (void)epoch;
  }
};

/// The wire between nodes. In-process today (InProcessTransport below);
/// the interface is socket-shaped — addressed, fire-and-forget, loss and
/// reordering allowed — so a real network transport can replace it
/// without touching Replicator/FollowerApplier.
class ReplicationTransport {
 public:
  virtual ~ReplicationTransport() = default;
  virtual void Bind(const std::string& node, ReplicationEndpoint* endpoint) = 0;
  /// Blocks until no delivery into `node` is in flight; after return the
  /// endpoint is never called again (safe to destroy).
  virtual void Unbind(const std::string& node) = 0;
  virtual void Ship(Shipment shipment) = 0;
  virtual void SendAck(const std::string& from, const std::string& to,
                       uint64_t source_incarnation, uint64_t acked_link_seq,
                       uint64_t epoch) = 0;
  virtual void SendHeartbeat(const std::string& from, const std::string& to,
                             uint64_t incarnation, uint64_t epoch) = 0;
  virtual void SendVoteRequest(const std::string& from, const std::string& to,
                               uint64_t epoch, const std::string& suspect) = 0;
  virtual void SendVoteGrant(const std::string& from, const std::string& to,
                             uint64_t epoch, bool granted) = 0;
  virtual void SendCatchupRequest(const std::string& from,
                                  const std::string& to, uint64_t epoch) = 0;
};

/// In-process transport: one delivery thread draining a due-time queue.
/// Fault injection (drop / duplicate / reorder / delay) reuses the
/// FaultInjector's per-point deterministic streams — FaultPoint::
/// kTransport* — so a seed reproduces the same loss/reorder schedule
/// without perturbing the storage or run fault schedules. Partitions and
/// isolation are evaluated at send time; a message already in flight to
/// a node that dies mid-flight is dropped by the unbound check at
/// delivery (exactly what a crashed receiver does to a packet).
class InProcessTransport : public ReplicationTransport {
 public:
  /// `injector` may be null (no injected faults). Reorder holds a
  /// message back by 4× the delay penalty; the penalty is
  /// options().transport_delay, or 200µs when that is zero.
  explicit InProcessTransport(core::FaultInjector* injector = nullptr);
  ~InProcessTransport() override;

  void Bind(const std::string& node, ReplicationEndpoint* endpoint) override;
  void Unbind(const std::string& node) override;
  void Ship(Shipment shipment) override;
  void SendAck(const std::string& from, const std::string& to,
               uint64_t source_incarnation, uint64_t acked_link_seq,
               uint64_t epoch) override;
  void SendHeartbeat(const std::string& from, const std::string& to,
                     uint64_t incarnation, uint64_t epoch) override;
  void SendVoteRequest(const std::string& from, const std::string& to,
                       uint64_t epoch, const std::string& suspect) override;
  void SendVoteGrant(const std::string& from, const std::string& to,
                     uint64_t epoch, bool granted) override;
  void SendCatchupRequest(const std::string& from, const std::string& to,
                          uint64_t epoch) override;

  /// One-way partition: messages src→dst vanish until healed.
  void Partition(const std::string& src, const std::string& dst);
  void Heal(const std::string& src, const std::string& dst);
  /// Both-ways cut from everyone (node death); Rejoin restores.
  void Isolate(const std::string& node);
  void Rejoin(const std::string& node);
  /// Fixed extra latency on one link (follower lag).
  void SetLinkLag(const std::string& src, const std::string& dst,
                  std::chrono::microseconds lag);

  // Telemetry.
  uint64_t delivered() const { return delivered_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t duplicated() const { return duplicated_.load(std::memory_order_relaxed); }
  uint64_t reordered() const { return reordered_.load(std::memory_order_relaxed); }

 private:
  enum class Kind : uint8_t {
    kShipment,
    kAck,
    kHeartbeat,
    kVoteRequest,
    kVoteGrant,
    kCatchupRequest,
  };
  struct Event {
    Kind kind;
    std::string src;
    std::string dst;
    Shipment shipment;            // kShipment
    uint64_t source_incarnation;  // kAck / kHeartbeat
    uint64_t acked_link_seq;      // kAck
    uint64_t epoch = 0;           // all but kShipment (which carries its own)
    std::string text;             // kVoteRequest: the suspect node
    bool granted = false;         // kVoteGrant
    std::chrono::steady_clock::time_point due;
    uint64_t order;  // tie-break: submission order
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.due != b.due ? a.due > b.due : a.order > b.order;
    }
  };
  /// Per-node delivery slot: its mutex serializes deliveries into the
  /// endpoint and lets Unbind wait out an in-flight one.
  struct Slot {
    std::mutex mu;
    ReplicationEndpoint* endpoint = nullptr;
  };

  void Submit(Event event);
  bool Blocked(const std::string& src, const std::string& dst) const;
  void DeliveryLoop();

  core::FaultInjector* const injector_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t next_order_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::set<std::string> isolated_;
  std::map<std::pair<std::string, std::string>, std::chrono::microseconds>
      link_lag_;
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> reordered_{0};
  std::thread thread_;
};

}  // namespace sws::replication

#endif  // SWS_REPLICATION_TRANSPORT_H_
