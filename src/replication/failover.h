#ifndef SWS_REPLICATION_FAILOVER_H_
#define SWS_REPLICATION_FAILOVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "persistence/snapshot.h"
#include "replication/replica_group.h"
#include "replication/transport.h"
#include "runtime/replication_hooks.h"
#include "sws/status.h"

namespace sws::replication {

/// A node's view of the group fencing epoch (DESIGN.md §13). The epoch
/// is a monotone counter bumped by every promotion; every shipment, ack
/// and heartbeat carries the sender's view. Safety invariants:
///
///  * a follower never applies a shipment stamped below its own epoch
///    (a deposed primary's stale traffic is rejected, not merged);
///  * a node never grants two election votes at the same epoch, even
///    across restarts — the vote is persisted before the grant leaves.
///
/// Adoption (raising the in-memory epoch on observing a higher one) is
/// persisted best-effort: losing the write only means a restarted node
/// briefly re-learns the epoch from the first heartbeat, never that it
/// regresses safety — rejects are driven by the in-memory value and
/// votes require the durable write to succeed.
///
/// Thread-safe; lives on the node across lives (an epoch survives
/// restarts by design).
class FencingEpoch {
 public:
  /// `dir` is the node's durable dir ("epoch.fence" lives there).
  explicit FencingEpoch(std::string dir);

  /// Loads persisted state; missing file leaves everything at zero.
  core::Status Load();

  uint64_t current() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t last_vote() const {
    return last_vote_.load(std::memory_order_acquire);
  }

  /// Raises the epoch to `epoch` if higher (persisting best-effort).
  /// Returns true when the epoch moved.
  bool Adopt(uint64_t epoch);

  /// Records an election vote at `epoch`: fails (no vote) unless `epoch`
  /// exceeds every previous vote and the persist succeeds — a node with
  /// a dead disk cannot durably promise, so it abstains.
  bool TryVote(uint64_t epoch);

 private:
  const std::string dir_;
  mutable std::mutex mu_;  // serializes persistence
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> last_vote_{0};
};

/// What the coordinator needs from its node. Called from the
/// coordinator's worker thread with no coordinator lock held, so they
/// may take the node's lifecycle lock.
struct FailoverHooks {
  /// Is this node fit to run for election right now? (running, and not
  /// itself mid-catch-up — a joiner with an incomplete prefix must not
  /// seize sessions it has not bootstrapped.)
  std::function<bool()> ready;
  /// Commit a won election: bump the fencing epoch to `epoch`, register
  /// the group override and restart the life over the merged journals
  /// (ReplicatedNode::PromoteWithEpoch).
  std::function<core::Status(const std::string& dead, uint64_t epoch)> promote;
};

/// Drives automatic failover for one node: turns watchdog suspicion
/// into a quorum-confirmed election and the election win into a
/// promotion, with no harness involvement (DESIGN.md §13).
///
/// Election protocol: the deterministic heir (ReplicaGroup::HeirOf —
/// the next live owner clockwise from the dead node's arc) campaigns
/// for epoch current+1; every node grants at most one vote per epoch
/// (persisted first), and only for a suspect its *own* liveness clock
/// agrees is silent. A majority of the whole group (candidate
/// included) wins; the winner bumps the epoch and runs the existing
/// Promote/recovery path. Losers retry with fresh epochs while the
/// suspect stays silent, so duelling candidates (asymmetric partitions)
/// converge instead of split-braining — at most one candidate can
/// assemble a majority per epoch.
///
/// Threading: NoteSuspect arrives on the runtime watchdog thread and
/// NoteAlive / OnVote* on the transport delivery thread; all are brief
/// and never touch the node. The worker thread alone calls the hooks
/// (promotion tears down and restarts the node's life, which must not
/// happen on either of those threads), and never holds the coordinator
/// mutex while doing so.
class FailoverCoordinator {
 public:
  FailoverCoordinator(std::string self, ReplicaGroup* group,
                      ReplicationTransport* transport, FencingEpoch* fence,
                      ReplicationOptions options,
                      std::chrono::nanoseconds suspicion_timeout,
                      FailoverHooks hooks, rt::ReplicationCounters* counters);
  ~FailoverCoordinator();

  FailoverCoordinator(const FailoverCoordinator&) = delete;
  FailoverCoordinator& operator=(const FailoverCoordinator&) = delete;

  /// Watchdog signal: `peer`'s replication stream went silent.
  void NoteSuspect(const std::string& peer);

  /// Any receipt from `peer` (shipment, ack, heartbeat, vote) — feeds
  /// the coordinator's own liveness clock, which validates vote grants
  /// and retries without touching the node's per-life applier.
  void NoteAlive(const std::string& peer);

  /// Re-arms every peer's liveness clock (node restart: a long downtime
  /// must not read as everyone-is-dead).
  void ResetClocks();

  // Election wire (routed by the node's endpoint, transport thread).
  void OnVoteRequest(const std::string& from, uint64_t epoch,
                     const std::string& suspect);
  void OnVoteGrant(const std::string& from, uint64_t epoch, bool granted);

  // Telemetry.
  uint64_t elections_started() const;
  uint64_t votes_granted() const;
  /// Peers currently under suspicion (including entries awaiting a
  /// revalidation retry).
  uint64_t suspect_count() const;

 private:
  bool PeerLooksDeadLocked(const std::string& peer,
                           std::chrono::steady_clock::time_point now) const;
  void WorkerLoop();

  const std::string self_;
  ReplicaGroup* const group_;
  ReplicationTransport* const transport_;
  FencingEpoch* const fence_;
  const ReplicationOptions options_;
  const std::chrono::nanoseconds suspicion_timeout_;
  const FailoverHooks hooks_;
  rt::ReplicationCounters* const counters_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Suspect → earliest next candidacy attempt (retry backoff).
  std::map<std::string, std::chrono::steady_clock::time_point> suspects_;
  std::map<std::string, std::chrono::steady_clock::time_point> last_heard_;
  bool election_active_ = false;
  uint64_t election_epoch_ = 0;
  size_t grants_ = 0;
  size_t denials_ = 0;
  uint64_t elections_ = 0;
  uint64_t votes_granted_ = 0;
  uint64_t attempt_ = 0;  // jitter stream position

  std::thread worker_;
};

}  // namespace sws::replication

#endif  // SWS_REPLICATION_FAILOVER_H_
