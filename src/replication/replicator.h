#ifndef SWS_REPLICATION_REPLICATOR_H_
#define SWS_REPLICATION_REPLICATOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "persistence/durability.h"
#include "replication/failover.h"
#include "replication/replica_group.h"
#include "replication/transport.h"
#include "runtime/replication_hooks.h"

namespace sws::replication {

/// Primary-side replication: ships this node's persisted journal records
/// to each session's followers over per-destination FIFO links, tracks
/// cumulative acks, retransmits, and implements the ack barrier the
/// shard drain path blocks on (rt::ReplicationClient).
///
/// Link protocol (DESIGN.md §11): shipments on a (source, dest) link
/// carry a monotone link_seq starting at 1 per source incarnation;
/// followers apply in link order and ack cumulatively after persisting.
/// Acked shipments leave the retransmit buffer; unacked ones are resent
/// every retransmit_interval with first_unacked refreshed, so a follower
/// that lost its in-memory link state can re-synchronize (see
/// Shipment::first_unacked).
///
/// Fencing (DESIGN.md §13): every shipment and heartbeat is stamped with
/// the node's current fencing epoch. When an ack carries a higher epoch
/// the replicator adopts it; if this node turns out to be deposed (its
/// ring arcs resolve elsewhere — a promotion happened behind its back),
/// the replicator fences itself: every retransmit buffer is dropped and
/// all shipping stops, so pending ack barriers fail fast instead of
/// timing out against followers that will reject the stale epoch anyway.
/// The fence is shared node-wide, so the epoch can also move under the
/// replicator's feet via an incoming heartbeat (FollowerApplier adopts
/// it) or a local promotion; the background loop therefore reconciles
/// deposed-ness against the fence whenever it observes the epoch moved,
/// never only on the ack path. Without that, a deposed primary that
/// learned the new epoch from a heartbeat would keep retransmitting its
/// stale tail restamped with the *current* epoch — which followers
/// would accept, forking acked history.
///
/// Catch-up (DESIGN.md §13): a link to a bootstrapping joiner is marked
/// not-caught-up and excluded from the ack quorum until the joiner has
/// acknowledged past the catch-up fence (the link position at which the
/// serve completed) — a follower missing the prefix must not vouch for
/// the suffix. The joiner side runs a broadcast-and-retry catch-up
/// request loop on the background thread.
///
/// Thread-safety: ShipRecord/ShipOutcomeAndWait are called by shard
/// drain workers, OnAck by the transport delivery thread, Abort by the
/// node teardown path; one mutex guards the link table. Lock order:
/// mu_ may be held while calling transport Ship (the transport never
/// calls back into the replicator while holding its own lock).
class Replicator : public rt::ReplicationClient {
 public:
  /// `fence` may be null (tests exercising the pre-fencing link
  /// protocol): shipments then carry epoch 0 and acks never fence.
  Replicator(std::string node_id, const ReplicaGroup* group,
             ReplicationOptions options, ReplicationTransport* transport,
             uint64_t incarnation, FencingEpoch* fence = nullptr);
  ~Replicator() override;

  // rt::ReplicationClient
  void ShipRecord(const persistence::JournalRecord& record, uint64_t shard,
                  uint64_t segment_n) override;
  core::Status ShipOutcomeAndWait(const persistence::JournalRecord& record,
                                  uint64_t shard,
                                  uint64_t segment_n) override;
  uint64_t MinUnackedSegment(uint64_t shard) const override;
  uint64_t segments_shipped() const override;
  uint64_t follower_lag_hwm() const override;

  /// Ships one persisted record to a single explicit destination,
  /// bypassing placement — the catch-up serve path, which replays the
  /// primary's journal tail to a joiner the group already places as a
  /// follower.
  void ShipRecordTo(const std::string& dest,
                    const persistence::JournalRecord& record, uint64_t shard,
                    uint64_t segment_n);

  /// Ships a catch-up bootstrap payload (EncodeSnapshotPayload bytes) to
  /// `dest` as a snapshot-flagged link shipment: it occupies a link_seq
  /// and is retransmitted until acked like any record, so the catch-up
  /// fence covers it (see Shipment::snapshot).
  void ShipSnapshotTo(const std::string& dest, std::string payload);

  /// Transport ack, routed by the node's endpoint. Acks echoing a stale
  /// incarnation (a past life of this node) are ignored, but their epoch
  /// is adopted regardless — fencing news is never stale.
  void OnAck(const std::string& from, uint64_t source_incarnation,
             uint64_t acked_link_seq, uint64_t epoch);

  // --- catch-up, serve side (called by the node's endpoint) ---

  /// A catch-up request from `dest` arrived: demote its link out of the
  /// ack quorum until FinishCatchupServe's fence is acknowledged.
  void BeginCatchup(const std::string& dest);

  /// The snapshot + tail serve to `dest` is fully buffered: records the
  /// graduation fence at the link's current tip.
  void FinishCatchupServe(const std::string& dest);

  /// While pinned, MinUnackedSegment reports segment 0 for every shard,
  /// holding snapshot GC off the whole journal for the duration of a
  /// catch-up serve (the serve reads segments from disk).
  void PinCatchup();
  void UnpinCatchup();

  // --- catch-up, joiner side ---

  /// Starts the broadcast catch-up loop: a request is sent to every
  /// source now and re-sent every ack_timeout until that source serves
  /// (NoteCatchupServed) or is suspected dead (CancelCatchup).
  void RequestCatchup(const std::vector<std::string>& sources);
  void NoteCatchupServed(const std::string& source);
  void CancelCatchup(const std::string& source);
  size_t pending_catchup_count() const;

  /// Node death: wakes every barrier waiter with failure and stops all
  /// shipping/retransmission permanently. Idempotent.
  void Abort();

  uint64_t incarnation() const { return incarnation_; }

  /// True once a higher-epoch ack revealed this node was deposed and its
  /// buffers were dropped.
  bool fenced() const;

 private:
  struct Link {
    uint64_t next_link_seq = 1;
    uint64_t acked = 0;  // cumulative: follower applied+persisted <= acked
    std::deque<Shipment> unacked;  // retransmit buffer, link_seq order
    std::chrono::steady_clock::time_point last_send{};
    /// False while the destination bootstraps: its acks advance the link
    /// but do not count toward any quorum until it graduates.
    bool caught_up = true;
    /// Graduation point: acked >= catchup_fence flips caught_up back.
    uint64_t catchup_fence = 0;
  };

  uint64_t CurrentEpoch() const {
    return fence_ == nullptr ? 0 : fence_->current();
  }

  /// Builds + buffers a shipment of `frame` on `dest`'s link and returns
  /// its link_seq. Caller holds mu_.
  uint64_t BufferLocked(const std::string& dest, const std::string& session_id,
                        const std::string& frame, uint64_t shard,
                        uint64_t segment_n, bool snapshot,
                        std::vector<Shipment>* to_send);
  void NoteSegmentLocked(uint64_t shard, uint64_t segment_n);
  /// Higher-epoch adoption (ack path): raises the fence, then
  /// reconciles. Caller must NOT hold mu_.
  void MaybeAdoptEpoch(uint64_t epoch);
  /// Brings the link table in line with the fence after the epoch moved
  /// by any route (ack, heartbeat adopted by the applier, local
  /// promotion): a deposed node drops every buffer and fences itself;
  /// anyone else restamps so retransmissions carry the new epoch. Runs
  /// the group-membership probe at most once per epoch. Caller must NOT
  /// hold mu_.
  void ReconcileEpoch();
  void BackgroundLoop();

  const std::string node_id_;
  const ReplicaGroup* const group_;
  const ReplicationOptions options_;
  ReplicationTransport* const transport_;
  const uint64_t incarnation_;
  FencingEpoch* const fence_;

  mutable std::mutex mu_;
  std::condition_variable ack_cv_;
  bool aborted_ = false;
  bool stop_ = false;
  bool fenced_ = false;
  /// Highest epoch the deposed-or-restamp reconciliation has run for;
  /// trails fence_->current() until the next ReconcileEpoch.
  uint64_t reconciled_epoch_ = 0;
  std::map<std::string, Link> links_;
  /// Last journal segment seen per shard (counts segment transitions
  /// into segments_shipped_).
  std::map<uint64_t, uint64_t> last_segment_;
  uint64_t segments_shipped_ = 0;
  uint64_t follower_lag_hwm_ = 0;
  int catchup_pins_ = 0;
  /// Sources this joiner still awaits a catch-up serve from.
  std::set<std::string> pending_catchup_;
  std::chrono::steady_clock::time_point last_catchup_send_{};

  std::thread background_;
};

}  // namespace sws::replication

#endif  // SWS_REPLICATION_REPLICATOR_H_
