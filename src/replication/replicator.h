#ifndef SWS_REPLICATION_REPLICATOR_H_
#define SWS_REPLICATION_REPLICATOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "persistence/durability.h"
#include "replication/replica_group.h"
#include "replication/transport.h"
#include "runtime/replication_hooks.h"

namespace sws::replication {

/// Primary-side replication: ships this node's persisted journal records
/// to each session's followers over per-destination FIFO links, tracks
/// cumulative acks, retransmits, and implements the ack barrier the
/// shard drain path blocks on (rt::ReplicationClient).
///
/// Link protocol (DESIGN.md §11): shipments on a (source, dest) link
/// carry a monotone link_seq starting at 1 per source incarnation;
/// followers apply in link order and ack cumulatively after persisting.
/// Acked shipments leave the retransmit buffer; unacked ones are resent
/// every retransmit_interval with first_unacked refreshed, so a follower
/// that lost its in-memory link state can re-synchronize (see
/// Shipment::first_unacked).
///
/// Thread-safety: ShipRecord/ShipOutcomeAndWait are called by shard
/// drain workers, OnAck by the transport delivery thread, Abort by the
/// node teardown path; one mutex guards the link table. Lock order:
/// mu_ may be held while calling transport Ship (the transport never
/// calls back into the replicator while holding its own lock).
class Replicator : public rt::ReplicationClient {
 public:
  Replicator(std::string node_id, const ReplicaGroup* group,
             ReplicationOptions options, ReplicationTransport* transport,
             uint64_t incarnation);
  ~Replicator() override;

  // rt::ReplicationClient
  void ShipRecord(const persistence::JournalRecord& record, uint64_t shard,
                  uint64_t segment_n) override;
  core::Status ShipOutcomeAndWait(const persistence::JournalRecord& record,
                                  uint64_t shard,
                                  uint64_t segment_n) override;
  uint64_t MinUnackedSegment(uint64_t shard) const override;
  uint64_t segments_shipped() const override;
  uint64_t follower_lag_hwm() const override;

  /// Transport ack, routed by the node's endpoint. Acks echoing a stale
  /// incarnation (a past life of this node) are ignored.
  void OnAck(const std::string& from, uint64_t source_incarnation,
             uint64_t acked_link_seq);

  /// Node death: wakes every barrier waiter with failure and stops all
  /// shipping/retransmission permanently. Idempotent.
  void Abort();

  uint64_t incarnation() const { return incarnation_; }

 private:
  struct Link {
    uint64_t next_link_seq = 1;
    uint64_t acked = 0;  // cumulative: follower applied+persisted <= acked
    std::deque<Shipment> unacked;  // retransmit buffer, link_seq order
    std::chrono::steady_clock::time_point last_send{};
  };

  /// Builds + buffers a shipment of `frame` on `dest`'s link and returns
  /// its link_seq. Caller holds mu_.
  uint64_t BufferLocked(const std::string& dest, const std::string& frame,
                        uint64_t shard, uint64_t segment_n,
                        std::vector<Shipment>* to_send);
  void NoteSegmentLocked(uint64_t shard, uint64_t segment_n);
  void BackgroundLoop();

  const std::string node_id_;
  const ReplicaGroup* const group_;
  const ReplicationOptions options_;
  ReplicationTransport* const transport_;
  const uint64_t incarnation_;

  mutable std::mutex mu_;
  std::condition_variable ack_cv_;
  bool aborted_ = false;
  bool stop_ = false;
  std::map<std::string, Link> links_;
  /// Last journal segment seen per shard (counts segment transitions
  /// into segments_shipped_).
  std::map<uint64_t, uint64_t> last_segment_;
  uint64_t segments_shipped_ = 0;
  uint64_t follower_lag_hwm_ = 0;

  std::thread background_;
};

}  // namespace sws::replication

#endif  // SWS_REPLICATION_REPLICATOR_H_
