#ifndef SWS_REPLICATION_FOLLOWER_H_
#define SWS_REPLICATION_FOLLOWER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "persistence/durability.h"
#include "replication/failover.h"
#include "replication/transport.h"
#include "runtime/replication_hooks.h"

namespace sws::replication {

/// Shard index space for replica journals: records received from the
/// k-th distinct source this applier life are journaled under shard
/// kReplicaShardBase + k in the node's own durable dir. Disjoint from
/// the runtime's own shard indices (and from kRecoveryShard), so a
/// node's primary journal and its replica journals coexist in one dir
/// and RecoveryManager consolidates both — which is exactly what
/// promotion is: recover the dir, replica records included.
inline constexpr uint64_t kReplicaShardBase = 1ull << 40;

/// Follower-side replication: receives shipped journal records, applies
/// them in link order through the node's own journal writers (fsync
/// before ack — "acknowledged ⇒ durable" holds across the wire), and
/// acks cumulatively. Also the node's liveness monitor
/// (rt::FailoverMonitor): any source gone silent past the failover
/// timeout is reported once per silence episode.
///
/// Out-of-order shipments buffer until the gap fills (retransmission
/// guarantees it does); duplicates re-ack. A shipment whose
/// first_unacked is ahead of the local cursor fast-forwards it — those
/// records were acknowledged by a previous life of this node and are
/// already in its journal (see Shipment::first_unacked).
///
/// Fencing (DESIGN.md §13): a shipment stamped with an epoch below this
/// node's adopted epoch is from a deposed primary — it is counted,
/// dropped without applying, and answered with a current-epoch ack so
/// the sender learns it was fenced. Higher epochs on any message are
/// adopted. This is what keeps a promoted heir's history from being
/// forked by the old primary's in-flight or restart-reshipped tail.
///
/// Thread-safety: OnShipment/OnHeartbeat run on the transport delivery
/// thread; SuspectPeers on the runtime watchdog thread; one mutex guards
/// everything. The ShardDurability writers are created lazily per source
/// under the mutex, so the "drain-role holder only" contract those
/// writers assume maps here to "delivery thread under mu_".
class FollowerApplier : public rt::FailoverMonitor {
 public:
  struct Options {
    /// The node's own durable dir (shared with its runtime).
    std::string dir;
    persistence::FsyncPolicy fsync = persistence::FsyncPolicy::kAlways;
    uint64_t segment_bytes = 4ull << 20;
    uint64_t service_fingerprint = 0;
  };

  /// `incarnation` is the node's current journal incarnation (replica
  /// segments are stamped with it, like the runtime's own segments).
  /// `fence` may be null (epoch checks off, acks carry epoch 0);
  /// `counters` may be null (fencing rejects only counted locally).
  FollowerApplier(std::string node_id, Options options,
                  ReplicationTransport* transport, uint64_t incarnation,
                  core::FaultInjector* injector,
                  FencingEpoch* fence = nullptr,
                  rt::ReplicationCounters* counters = nullptr);

  /// Record shipments journal under the source's replica shard; a
  /// snapshot-flagged shipment (catch-up bootstrap) instead persists its
  /// payload as a snapshot file stamped with that shard — recovery then
  /// merges it exactly like a locally-captured snapshot (largest
  /// next_seq per session wins). Both ack only once durable.
  void OnShipment(const Shipment& shipment);
  void OnHeartbeat(const std::string& from, uint64_t incarnation,
                   uint64_t epoch);

  /// Registers peers the monitor should expect to hear from, starting
  /// the silence clock now. Without this a peer that dies (or is
  /// starved off the CPU) before its first heartbeat lands is never
  /// suspectable — silence is only measurable against a baseline. The
  /// node calls this at startup with its group when failover is armed;
  /// peers already heard from are left untouched.
  void ExpectPeers(const std::vector<std::string>& peers);

  // rt::FailoverMonitor
  std::vector<std::string> SuspectPeers(
      std::chrono::steady_clock::time_point now,
      std::chrono::nanoseconds timeout) override;

  // Telemetry.
  uint64_t applied() const;
  uint64_t duplicates() const;
  uint64_t rejected() const;  // corrupt frames / failed appends dropped
  uint64_t fencing_rejects() const;  // stale-epoch shipments dropped

 private:
  struct SourceLink {
    uint64_t source_incarnation = 0;
    /// Cumulative: every link_seq <= applied_seq is durably journaled.
    uint64_t applied_seq = 0;
    std::map<uint64_t, Shipment> pending;  // out-of-order buffer
    std::unique_ptr<persistence::ShardDurability> durability;
    uint64_t replica_shard = 0;
    std::chrono::steady_clock::time_point last_heard{};
    bool suspected = false;
    uint64_t snapshots_absorbed = 0;  // names absorbed snapshot files
  };

  SourceLink& LinkFor(const std::string& source,
                      std::chrono::steady_clock::time_point now);
  /// Applies pending shipments in order until a gap or a failure;
  /// returns true if applied_seq advanced.
  bool DrainPendingLocked(SourceLink* link);
  /// Persists a snapshot-flagged shipment's payload as a snapshot file.
  /// False = transient storage failure (retry on retransmit).
  bool AbsorbSnapshotLocked(SourceLink* link, const Shipment& shipment,
                            bool* corrupt);
  uint64_t CurrentEpoch() const {
    return fence_ == nullptr ? 0 : fence_->current();
  }

  const std::string node_id_;
  const Options options_;
  ReplicationTransport* const transport_;
  const uint64_t incarnation_;
  core::FaultInjector* const injector_;
  FencingEpoch* const fence_;
  rt::ReplicationCounters* const counters_;

  mutable std::mutex mu_;
  std::map<std::string, SourceLink> sources_;
  uint64_t next_ordinal_ = 0;
  uint64_t applied_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t rejected_ = 0;
  uint64_t fencing_rejects_ = 0;
};

}  // namespace sws::replication

#endif  // SWS_REPLICATION_FOLLOWER_H_
