#ifndef SWS_REPLICATION_REPLICA_GROUP_H_
#define SWS_REPLICATION_REPLICA_GROUP_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sws/status.h"

namespace sws::replication {

/// Replication knobs (DESIGN.md §11). replicas = 0 is replication off —
/// the runtime then carries a null ReplicationClient and the single-node
/// ack path is untouched.
struct ReplicationOptions {
  /// Follower nodes per session (beyond the primary). Capped by group
  /// size − 1 at placement time.
  size_t replicas = 0;
  /// Follower acks required before the client ack fires; 0 = all
  /// followers. Exactly-once across promotion is only guaranteed when
  /// the promoted follower was in the ack quorum of every acknowledged
  /// outcome — with ack_quorum == replicas any follower qualifies; with
  /// a smaller quorum the promotion rule must provably pick a quorum
  /// member (trivially so with a single follower). See DESIGN.md §11.
  size_t ack_quorum = 0;
  /// How long a delimiter ack may wait for the follower quorum before
  /// the client sees kReplicationTimeout.
  std::chrono::milliseconds ack_timeout{250};
  /// Unacknowledged shipments older than this are resent.
  std::chrono::milliseconds retransmit_interval{10};
  /// Liveness beacons to every peer (failover detection); 0 = none.
  std::chrono::milliseconds heartbeat_interval{20};
  /// Failure detector: consecutive missed heartbeat intervals before a
  /// peer is suspected. NodeOptions::failover_timeout, when zero, is
  /// derived as suspicion_misses × heartbeat_interval.
  uint32_t suspicion_misses = 3;
  /// Fraction of heartbeat_interval each probe is jittered by (±), drawn
  /// from a per-node deterministic SplitMix64 stream — de-synchronizes
  /// the group's probes without losing seed reproducibility. In [0, 1).
  double heartbeat_jitter = 0.0;
  /// How long an election candidate waits for vote grants before
  /// retrying at a higher epoch (automatic failover).
  std::chrono::milliseconds election_timeout{100};

  size_t resolved_quorum() const {
    return ack_quorum == 0 ? replicas : ack_quorum;
  }
};

/// `group_size` is the number of nodes in the ReplicaGroup the options
/// will place sessions over.
core::Status ValidateReplicationOptions(const ReplicationOptions& options,
                                        size_t group_size);

/// Consistent-hash placement of sessions over a fixed set of nodes, plus
/// explicit promotion overrides. Each node owns `virtual_tokens` points
/// on a 64-bit ring; a session is served by the owner of the first token
/// at or after its hash, and its followers are the next distinct owners
/// clockwise — so node death moves only the dead node's arc, not the
/// whole placement. Promote(dead, heir) reroutes every session whose
/// resolved primary was `dead` to `heir` without re-hashing the ring
/// (placement history must stay stable for journals to stay meaningful).
///
/// Thread-safe: the ring is immutable after construction; overrides are
/// guarded by a mutex (clients resolve placement concurrently with a
/// promotion).
class ReplicaGroup {
 public:
  explicit ReplicaGroup(std::vector<std::string> nodes,
                        size_t virtual_tokens = 16);

  const std::vector<std::string>& nodes() const { return nodes_; }

  /// The node serving `session_id` (after promotion overrides).
  std::string PrimaryOf(const std::string& session_id) const;

  /// Primary followed by up to `replicas` distinct follower nodes, in
  /// ring order (fewer when the group is small).
  std::vector<std::string> ReplicasOf(const std::string& session_id,
                                      size_t replicas) const;

  /// ReplicasOf without the leading primary.
  std::vector<std::string> FollowersOf(const std::string& session_id,
                                       size_t replicas) const;

  /// Reroutes every session resolving to `dead` onto `heir`. Overrides
  /// chain (if `heir` is later promoted away, both hops follow) and are
  /// permanent: a restarted `dead` node rejoins as a follower only.
  void Promote(const std::string& dead, const std::string& heir);

  /// True when `node`'s arcs currently resolve to some other node — it
  /// was promoted away and owns no sessions (it can only follow).
  bool IsDeposed(const std::string& node) const;

  /// The deterministic election heir for `dead`: the first distinct
  /// resolved owner clockwise from `dead`'s lowest ring token, skipping
  /// `dead` itself and every node in `exclude` (the caller's locally-
  /// suspected set). Empty when no candidate remains. All nodes with the
  /// same override table and exclude set compute the same heir — vote
  /// quorums arbitrate when suspicion sets differ.
  std::string HeirOf(const std::string& dead,
                     const std::vector<std::string>& exclude = {}) const;

 private:
  std::string Resolve(const std::string& node) const;  // follow overrides

  std::vector<std::string> nodes_;
  /// (token hash, index into nodes_), sorted by hash.
  std::vector<std::pair<uint64_t, size_t>> ring_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> overrides_;
};

}  // namespace sws::replication

#endif  // SWS_REPLICATION_REPLICA_GROUP_H_
