#include "replication/transport.h"

namespace sws::replication {

using core::FaultPoint;

InProcessTransport::InProcessTransport(core::FaultInjector* injector)
    : injector_(injector), thread_([this] { DeliveryLoop(); }) {}

InProcessTransport::~InProcessTransport() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void InProcessTransport::Bind(const std::string& node,
                              ReplicationEndpoint* endpoint) {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = slots_[node];
    if (!entry) entry = std::make_shared<Slot>();
    slot = entry;
  }
  std::lock_guard<std::mutex> slot_lock(slot->mu);
  slot->endpoint = endpoint;
}

void InProcessTransport::Unbind(const std::string& node) {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(node);
    if (it == slots_.end()) return;
    slot = it->second;
  }
  // Taking the slot mutex waits out any delivery in flight; clearing the
  // endpoint under it guarantees no call after we return.
  std::lock_guard<std::mutex> slot_lock(slot->mu);
  slot->endpoint = nullptr;
}

bool InProcessTransport::Blocked(const std::string& src,
                                 const std::string& dst) const {
  return isolated_.count(src) > 0 || isolated_.count(dst) > 0 ||
         partitions_.count({src, dst}) > 0;
}

void InProcessTransport::Submit(Event event) {
  const auto now = std::chrono::steady_clock::now();
  std::chrono::microseconds extra{0};
  bool duplicate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || Blocked(event.src, event.dst)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (injector_ != nullptr) {
      const core::FaultOptions& fo = injector_->options();
      if (injector_->Draw(FaultPoint::kTransportDrop, fo.transport_drop_rate)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      duplicate = injector_->Draw(FaultPoint::kTransportDuplicate,
                                  fo.transport_duplicate_rate);
      std::chrono::microseconds penalty = fo.transport_delay;
      if (penalty.count() == 0) penalty = std::chrono::microseconds(200);
      if (injector_->Draw(FaultPoint::kTransportDelay,
                          fo.transport_delay_rate)) {
        extra += penalty;
      }
      if (injector_->Draw(FaultPoint::kTransportReorder,
                          fo.transport_reorder_rate)) {
        extra += 4 * penalty;
        reordered_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    auto lag = link_lag_.find({event.src, event.dst});
    if (lag != link_lag_.end()) extra += lag->second;
    event.due = now + extra;
    event.order = next_order_++;
    queue_.push(event);
    if (duplicate) {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      event.order = next_order_++;
      queue_.push(std::move(event));
    }
  }
  cv_.notify_all();
}

void InProcessTransport::Ship(Shipment shipment) {
  Event event;
  event.kind = Kind::kShipment;
  event.src = shipment.source;
  event.dst = shipment.dest;
  event.shipment = std::move(shipment);
  event.source_incarnation = 0;
  event.acked_link_seq = 0;
  Submit(std::move(event));
}

void InProcessTransport::SendAck(const std::string& from, const std::string& to,
                                 uint64_t source_incarnation,
                                 uint64_t acked_link_seq, uint64_t epoch) {
  Event event;
  event.kind = Kind::kAck;
  event.src = from;
  event.dst = to;
  event.source_incarnation = source_incarnation;
  event.acked_link_seq = acked_link_seq;
  event.epoch = epoch;
  Submit(std::move(event));
}

void InProcessTransport::SendHeartbeat(const std::string& from,
                                       const std::string& to,
                                       uint64_t incarnation, uint64_t epoch) {
  Event event;
  event.kind = Kind::kHeartbeat;
  event.src = from;
  event.dst = to;
  event.source_incarnation = incarnation;
  event.acked_link_seq = 0;
  event.epoch = epoch;
  Submit(std::move(event));
}

void InProcessTransport::SendVoteRequest(const std::string& from,
                                         const std::string& to, uint64_t epoch,
                                         const std::string& suspect) {
  Event event;
  event.kind = Kind::kVoteRequest;
  event.src = from;
  event.dst = to;
  event.source_incarnation = 0;
  event.acked_link_seq = 0;
  event.epoch = epoch;
  event.text = suspect;
  Submit(std::move(event));
}

void InProcessTransport::SendVoteGrant(const std::string& from,
                                       const std::string& to, uint64_t epoch,
                                       bool granted) {
  Event event;
  event.kind = Kind::kVoteGrant;
  event.src = from;
  event.dst = to;
  event.source_incarnation = 0;
  event.acked_link_seq = 0;
  event.epoch = epoch;
  event.granted = granted;
  Submit(std::move(event));
}

void InProcessTransport::SendCatchupRequest(const std::string& from,
                                            const std::string& to,
                                            uint64_t epoch) {
  Event event;
  event.kind = Kind::kCatchupRequest;
  event.src = from;
  event.dst = to;
  event.source_incarnation = 0;
  event.acked_link_seq = 0;
  event.epoch = epoch;
  Submit(std::move(event));
}

void InProcessTransport::Partition(const std::string& src,
                                   const std::string& dst) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.insert({src, dst});
}

void InProcessTransport::Heal(const std::string& src, const std::string& dst) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.erase({src, dst});
}

void InProcessTransport::Isolate(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.insert(node);
}

void InProcessTransport::Rejoin(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.erase(node);
}

void InProcessTransport::SetLinkLag(const std::string& src,
                                    const std::string& dst,
                                    std::chrono::microseconds lag) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lag.count() <= 0) {
    link_lag_.erase({src, dst});
  } else {
    link_lag_[{src, dst}] = lag;
  }
}

void InProcessTransport::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (queue_.empty()) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    const auto due = queue_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (due > now && !stop_) {
      cv_.wait_until(lock, due);
      continue;
    }
    Event event = queue_.top();
    queue_.pop();
    // A killed node is isolated *and* unbound; drop in-flight messages
    // to it like a crashed receiver drops packets. Re-check under mu_
    // because the partition may have been installed after submission.
    std::shared_ptr<Slot> slot;
    auto it = slots_.find(event.dst);
    if (it != slots_.end() && !Blocked(event.src, event.dst)) slot = it->second;
    lock.unlock();
    if (slot != nullptr) {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      if (slot->endpoint != nullptr) {
        delivered_.fetch_add(1, std::memory_order_relaxed);
        switch (event.kind) {
          case Kind::kShipment:
            slot->endpoint->OnShipment(event.shipment);
            break;
          case Kind::kAck:
            slot->endpoint->OnAck(event.src, event.source_incarnation,
                                  event.acked_link_seq, event.epoch);
            break;
          case Kind::kHeartbeat:
            slot->endpoint->OnHeartbeat(event.src, event.source_incarnation,
                                        event.epoch);
            break;
          case Kind::kVoteRequest:
            slot->endpoint->OnVoteRequest(event.src, event.epoch, event.text);
            break;
          case Kind::kVoteGrant:
            slot->endpoint->OnVoteGrant(event.src, event.epoch, event.granted);
            break;
          case Kind::kCatchupRequest:
            slot->endpoint->OnCatchupRequest(event.src, event.epoch);
            break;
        }
      } else {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

}  // namespace sws::replication
