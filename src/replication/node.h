#ifndef SWS_REPLICATION_NODE_H_
#define SWS_REPLICATION_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "persistence/recovery.h"
#include "relational/database.h"
#include "replication/failover.h"
#include "replication/follower.h"
#include "replication/replica_group.h"
#include "replication/replicator.h"
#include "replication/transport.h"
#include "runtime/runtime.h"
#include "sws/fault.h"
#include "sws/sws.h"

namespace sws::replication {

struct NodeOptions {
  std::string id;
  /// The node's own durable directory (journal + snapshots + replica
  /// journals + fencing state all live here; promotion is recovery over
  /// this dir).
  std::string dir;
  ReplicationOptions replication;
  /// Base runtime options; the node overrides durability.dir and the
  /// replication wiring per life. governance.enable_watchdog plus
  /// failover_timeout > 0 arm the watchdog-driven failover signal
  /// (auto_failover arms both itself).
  rt::RuntimeOptions runtime;
  /// Silence window before a peer is suspected. 0 with auto_failover on
  /// derives replication.suspicion_misses × heartbeat_interval.
  std::chrono::nanoseconds failover_timeout{0};
  /// Self-healing mode (DESIGN.md §13): suspicion feeds this node's own
  /// FailoverCoordinator, which campaigns for a quorum-confirmed fenced
  /// promotion — no harness Promote() involved — and a fresh node
  /// bootstraps itself via catch-up before entering any ack quorum.
  bool auto_failover = false;
  /// Fired from the node's watchdog thread when a peer's replication
  /// stream goes silent past failover_timeout (once per episode).
  std::function<void(const std::string& node, const std::string& peer)>
      on_peer_suspected;
  /// Fired after a life comes up — Start(), Promote() and automatic
  /// promotions alike — with no node lock held, so the callback may call
  /// straight back into the node (submit, stats). The auto-failover
  /// chaos harness uses it to re-drive clients at the new primary.
  std::function<void(const std::string& node)> on_life_started;
  /// Per-life storage/run fault options (the transport's faults live on
  /// the transport's own injector).
  core::FaultOptions faults;
};

/// One in-process "node": a restartable ServiceRuntime over its own
/// durable dir, a Replicator for the sessions it serves, and a
/// FollowerApplier for the sessions it follows, all joined to the wire
/// by one transport binding. Every life gets a fresh FaultInjector
/// (injected storage death does not leak into the next life).
///
/// Lifecycle: Start → [Kill | Stop] → Start ... Kill models a crash —
/// storage dies first (every in-flight append tears), the transport cuts
/// the node off, barrier waiters are woken with failure, then the
/// runtime is torn down; nothing is flushed. Promote(dead) re-runs
/// recovery over the node's own dir — replica journals included — so
/// the node comes back serving the dead node's sessions with
/// deterministic state, never double-acking (acknowledged outcomes are
/// suppressed by replay) and never re-running failed outcomes.
///
/// Restart re-replication (DESIGN.md §11): a crash wipes the
/// replicator's retransmit buffers, so records committed locally but
/// never acked by followers would otherwise exist on this node alone —
/// and a *later* promotion would lose them (or re-deliver them: a
/// follower that never saw the outcome record re-runs the session on
/// its own promotion and re-emits). Every Start therefore re-ships the
/// un-consolidated journal tail of the sessions it owns before serving
/// (followers dedup by seq on recovery), and gates each replayed
/// outcome's re-emission on the same follower ack barrier as a live
/// commit: an outcome this node re-delivers is quorum-durable first, so
/// every future promotion candidate suppresses it. When the barrier
/// cannot be reached (a peer is down, or this node was deposed and its
/// stale-epoch re-ship was fenced), the re-emission is withheld — the
/// client saw an error for that outcome, so at-most-once resolution
/// applies, never a double delivery. FIFO links make the gate
/// sufficient: a follower's ack of the outcome's link_seq implies every
/// earlier tail record on that link is applied and durable there.
///
/// Threading: lifecycle transitions (Start/Stop/Kill/Promote — harness
/// calls, and the coordinator's automatic promotion) serialize on an
/// internal lifecycle lock, so auto_failover makes them safe from any
/// thread. The raw runtime()/applier()/replicator() accessors remain
/// harness-only (valid between transitions the harness itself drives);
/// concurrent drivers use runtime_snapshot(), which keeps the runtime
/// alive across a teardown (its Shutdown has already quiesced it). The
/// endpoint methods (transport thread) never take the lifecycle lock —
/// Kill holds it across Unbind, which waits out in-flight deliveries —
/// and only touch bound-stable pointers: Bind happens after the
/// applier/replicator exist, Unbind before they die.
class ReplicatedNode : public ReplicationEndpoint {
 public:
  ReplicatedNode(NodeOptions options, const core::Sws* sws,
                 rel::Database initial_db, ReplicaGroup* group,
                 InProcessTransport* transport);
  ~ReplicatedNode() override;

  /// Brings up a life: recovery (via the runtime constructor), then
  /// replication wiring, then the transport binding. Fails if the
  /// durable dir is unrecoverable.
  core::Status Start();

  /// Crash. Idempotent; a killed node can Start() again.
  void Kill();

  /// Clean shutdown (drains admitted work, flushes). Idempotent.
  void Stop();

  /// Operator-driven takeover of `dead`'s sessions: bumps the fencing
  /// epoch (an operator override outranks the deposed primary exactly
  /// like a won election does), registers the group override, rebuilds
  /// this node's runtime from its own dir (replica journals make the
  /// state current), and exposes the ownership-filtered unacknowledged
  /// outcomes in replayed(). The node must be running.
  core::Status Promote(const std::string& dead);

  /// The quorum-election commit path (FailoverHooks::promote): same as
  /// Promote but adopting the exact epoch the votes were granted at.
  core::Status PromoteWithEpoch(const std::string& dead, uint64_t epoch);

  // ReplicationEndpoint (transport delivery thread).
  void OnShipment(const Shipment& shipment) override;
  void OnAck(const std::string& from, uint64_t source_incarnation,
             uint64_t acked_link_seq, uint64_t epoch) override;
  void OnHeartbeat(const std::string& from, uint64_t incarnation,
                   uint64_t epoch) override;
  void OnVoteRequest(const std::string& from, uint64_t epoch,
                     const std::string& suspect) override;
  void OnVoteGrant(const std::string& from, uint64_t epoch,
                   bool granted) override;
  void OnCatchupRequest(const std::string& from, uint64_t epoch) override;

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& id() const { return options_.id; }
  const NodeOptions& options() const { return options_; }
  rt::ServiceRuntime* runtime() { return runtime_.get(); }
  core::FaultInjector* injector() { return injector_.get(); }
  FollowerApplier* applier() { return applier_.get(); }
  Replicator* replicator() { return replicator_.get(); }
  FencingEpoch* fence() { return &fence_; }
  FailoverCoordinator* coordinator() { return coordinator_.get(); }
  rt::ReplicationCounters* counters() { return &counters_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t incarnation() const { return incarnation_; }
  /// Replayed outcomes the last Start()/Promote() withheld because their
  /// re-emission ack barrier failed (a follower was unreachable, or this
  /// node was fenced mid-re-ship). Their clients saw errors —
  /// withholding is at-most-once, not loss.
  uint64_t suppressed_reemissions() const { return suppressed_reemissions_; }

  /// The current runtime, kept alive for the caller even if an automatic
  /// promotion tears this life down concurrently (the runtime's own
  /// Submit/Drain reject cleanly after its Shutdown). Null when down.
  std::shared_ptr<rt::ServiceRuntime> runtime_snapshot() const;
  /// Thread-safe copy of replayed() for concurrent (auto-mode) drivers.
  std::vector<persistence::ReplayedOutcome> replayed_copy() const;

  /// Unacknowledged outcomes recomputed by the last Start()/Promote()
  /// recovery, filtered to sessions this node currently owns
  /// (group->PrimaryOf == id). A deposed primary restarting replays its
  /// journal for state but stays silent about sessions promoted away —
  /// re-emitting them would double-deliver what the heir already
  /// delivered. See DESIGN.md §11.
  const std::vector<persistence::ReplayedOutcome>& replayed() const {
    return replayed_;
  }

 private:
  /// One journal record read back off disk before recovery consolidated
  /// (and deleted) its segment, tagged with the segment identity the
  /// replicator's pin bookkeeping expects.
  struct TailRecord {
    persistence::JournalRecord record;
    uint64_t shard = 0;
    uint64_t segment_n = 0;
  };

  core::Status StartLife();
  core::Status PromoteLocked(const std::string& dead, uint64_t epoch);
  void Teardown(bool crash);
  /// The silence window in force (explicit, or derived from
  /// suspicion_misses × heartbeat_interval under auto_failover).
  std::chrono::nanoseconds EffectiveFailoverTimeout() const;
  /// FailoverHooks::ready — fit to campaign? Running, and not itself
  /// awaiting a catch-up serve (a joiner with an incomplete prefix must
  /// not seize sessions it has not bootstrapped).
  bool ReadyForElection() const;
  /// Reads every journal segment in the dir (own shards and replica
  /// shards alike) and collects the records of sessions this node
  /// currently owns, ordered (session, seq). Must run before the runtime
  /// constructor: its recovery consolidates the dir and deletes the
  /// segments being read.
  void CollectOwnedTail(std::vector<TailRecord>* tail) const;
  /// Re-ships `tail` to this node's followers and runs the re-emission
  /// ack barrier over replayed_, dropping entries whose barrier fails.
  /// Requires the transport binding to be up (acks must flow back).
  void ReplicateRecoveredState(const std::vector<TailRecord>& tail);
  /// Serves a catch-up request from `requester` (transport thread): one
  /// snapshot-flagged shipment of every owned session the requester
  /// follows, then the matching journal tail, then the graduation fence.
  void ServeCatchup(const std::string& requester);

  NodeOptions options_;
  const core::Sws* const sws_;
  const rel::Database initial_db_;
  ReplicaGroup* const group_;
  InProcessTransport* const transport_;

  /// Serializes lifecycle transitions (unique) against concurrent
  /// observers (shared). Endpoint handlers never take it — see class
  /// comment.
  mutable std::shared_mutex life_mu_;
  FencingEpoch fence_;
  bool fence_loaded_ = false;
  rt::ReplicationCounters counters_;

  std::unique_ptr<core::FaultInjector> injector_;
  std::unique_ptr<FollowerApplier> applier_;
  std::unique_ptr<Replicator> replicator_;
  std::shared_ptr<rt::ServiceRuntime> runtime_;
  std::vector<persistence::ReplayedOutcome> replayed_;
  uint64_t incarnation_ = 0;
  uint64_t promotions_ = 0;
  uint64_t suppressed_reemissions_ = 0;
  std::atomic<bool> running_{false};

  /// Lives across lives (election state and liveness clocks must survive
  /// restarts). Created on the first auto_failover Start; destroyed only
  /// by ~ReplicatedNode, after the transport binding is down.
  std::unique_ptr<FailoverCoordinator> coordinator_;
};

/// The promotion rule: among `candidates` (the live followers of the
/// dead node's sessions), pick the most caught-up — the one whose
/// durable dir would recover the largest total next_seq over the dead
/// node's sessions — breaking ties by node id. With ack_quorum ==
/// replicas every follower is in every acked outcome's quorum, so any
/// candidate preserves exactly-once; the most-caught-up rule additionally
/// minimizes re-run work (and is required for exactly-once when the
/// quorum is smaller — the most-caught-up follower has provably seen
/// every quorum-acked outcome when it is the only follower).
std::string ChoosePromotionCandidate(
    const std::vector<ReplicatedNode*>& candidates, const core::Sws* sws,
    const rel::Database& seed_db);

}  // namespace sws::replication

#endif  // SWS_REPLICATION_NODE_H_
