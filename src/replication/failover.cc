#include "replication/failover.h"

#include <algorithm>

#include "sws/fault.h"  // SplitMix64

namespace sws::replication {

FencingEpoch::FencingEpoch(std::string dir) : dir_(std::move(dir)) {}

core::Status FencingEpoch::Load() {
  std::lock_guard<std::mutex> lock(mu_);
  persistence::FencingState state;
  core::Status status = persistence::ReadFencingState(dir_, &state);
  if (!status.ok()) return status;
  epoch_.store(state.epoch, std::memory_order_release);
  last_vote_.store(state.last_vote_epoch, std::memory_order_release);
  return core::Status::Ok();
}

bool FencingEpoch::Adopt(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= epoch_.load(std::memory_order_relaxed)) return false;
  // Publish before persisting: rejects must use the new epoch even if
  // the disk is dead. Losing the write cannot regress safety (see class
  // comment), so the persist result is advisory here.
  epoch_.store(epoch, std::memory_order_release);
  persistence::FencingState state{epoch,
                                  last_vote_.load(std::memory_order_relaxed)};
  (void)persistence::WriteFencingState(dir_, state, nullptr);
  return true;
}

bool FencingEpoch::TryVote(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= last_vote_.load(std::memory_order_relaxed)) return false;
  persistence::FencingState state{epoch_.load(std::memory_order_relaxed),
                                  epoch};
  if (!persistence::WriteFencingState(dir_, state, nullptr).ok()) {
    return false;  // cannot durably promise: abstain
  }
  last_vote_.store(epoch, std::memory_order_release);
  return true;
}

FailoverCoordinator::FailoverCoordinator(
    std::string self, ReplicaGroup* group, ReplicationTransport* transport,
    FencingEpoch* fence, ReplicationOptions options,
    std::chrono::nanoseconds suspicion_timeout, FailoverHooks hooks,
    rt::ReplicationCounters* counters)
    : self_(std::move(self)),
      group_(group),
      transport_(transport),
      fence_(fence),
      options_(options),
      suspicion_timeout_(suspicion_timeout),
      hooks_(std::move(hooks)),
      counters_(counters) {
  ResetClocks();
  worker_ = std::thread([this] { WorkerLoop(); });
}

FailoverCoordinator::~FailoverCoordinator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void FailoverCoordinator::NoteSuspect(const std::string& peer) {
  if (peer == self_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    suspects_.try_emplace(peer, std::chrono::steady_clock::now());
  }
  cv_.notify_all();
}

void FailoverCoordinator::NoteAlive(const std::string& peer) {
  if (peer == self_) return;
  bool revived = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_heard_[peer] = std::chrono::steady_clock::now();
    revived = suspects_.erase(peer) > 0;
  }
  // A flapping peer returning mid-campaign: the worker re-validates
  // silence before promoting, so waking it is enough.
  if (revived) cv_.notify_all();
}

void FailoverCoordinator::ResetClocks() {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& peer : group_->nodes()) {
    if (peer != self_) last_heard_[peer] = now;
  }
}

bool FailoverCoordinator::PeerLooksDeadLocked(
    const std::string& peer, std::chrono::steady_clock::time_point now) const {
  auto it = last_heard_.find(peer);
  if (it == last_heard_.end()) return false;  // unknown: assume alive
  return now - it->second >= suspicion_timeout_;
}

void FailoverCoordinator::OnVoteRequest(const std::string& from, uint64_t epoch,
                                        const std::string& suspect) {
  bool grant = false;
  {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    // Grant iff the claim is ahead of everything we have adopted AND our
    // own clock agrees the suspect is silent — a voter on the suspect's
    // side of an asymmetric partition still hears it and refuses, which
    // is what keeps a live primary from being deposed by one confused
    // observer.
    grant = from != self_ && suspect != self_ &&
            epoch > fence_->current() && PeerLooksDeadLocked(suspect, now);
  }
  // The vote itself must be durable before the grant leaves (TryVote
  // also enforces one vote per epoch, including votes this node cast as
  // a candidate).
  if (grant) grant = fence_->TryVote(epoch);
  if (grant) {
    std::lock_guard<std::mutex> lock(mu_);
    ++votes_granted_;
  }
  transport_->SendVoteGrant(self_, from, epoch, grant);
}

void FailoverCoordinator::OnVoteGrant(const std::string& from, uint64_t epoch,
                                      bool granted) {
  (void)from;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!election_active_ || epoch != election_epoch_) return;
    if (granted) {
      ++grants_;
    } else {
      ++denials_;
    }
  }
  cv_.notify_all();
}

uint64_t FailoverCoordinator::elections_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return elections_;
}

uint64_t FailoverCoordinator::votes_granted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return votes_granted_;
}

uint64_t FailoverCoordinator::suspect_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suspects_.size();
}

void FailoverCoordinator::WorkerLoop() {
  // Per-node deterministic jitter stream for retry staggering: duelling
  // candidates (after a vote split) must not retry in lock-step.
  uint64_t jitter_seed = 0xcbf29ce484222325ULL;
  for (unsigned char c : self_) jitter_seed = (jitter_seed ^ c) * 0x100000001b3ULL;

  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    auto now = std::chrono::steady_clock::now();
    // Re-derive suspicion from our own liveness clocks. The applier's
    // NoteSuspect is only a wake-up hint — it latches once per silence
    // episode — so an entry lost to any erase below (a marginal
    // revalidation, a suspect that revived for one beat mid-election)
    // must grow back here or the partition goes undetected for good.
    // try_emplace keeps the retry schedule of entries already present.
    for (const auto& [peer, at] : last_heard_) {
      if (now - at >= suspicion_timeout_ && !group_->IsDeposed(peer)) {
        suspects_.try_emplace(peer, now);
      }
    }
    // Pick the suspect whose retry time is soonest due.
    std::string dead;
    auto soonest = now + std::chrono::hours(24);
    for (const auto& [peer, at] : suspects_) {
      if (at < soonest) {
        soonest = at;
        dead = peer;
      }
    }
    if (dead.empty()) {
      // Bounded wait: the scan above must re-run even if no hint ever
      // arrives (the hint can be permanently spent).
      cv_.wait_for(lock, std::max<std::chrono::nanoseconds>(
                             suspicion_timeout_, std::chrono::milliseconds(1)));
      continue;
    }
    if (soonest > now) {
      cv_.wait_until(lock, soonest);
      continue;
    }

    const auto retry_at = [&] {
      const auto base = options_.election_timeout;
      const uint64_t draw = core::SplitMix64(jitter_seed ^ ++attempt_);
      const auto jitter = base * (draw % 512) / 1024;  // [0, base/2)
      return std::chrono::steady_clock::now() + base + jitter;
    };

    // Validate the suspicion with our own clock. Not-yet-silent is NOT
    // proof of life: the applier's liveness clock runs slightly ahead of
    // ours, and it latches its suspicion once per silence episode — if
    // we dropped the entry here, nothing would ever re-raise it and the
    // partition would go undetected for good. Re-check after a grace
    // period instead; a peer that genuinely revived is erased by
    // NoteAlive when its next heartbeat lands.
    if (!PeerLooksDeadLocked(dead, now)) {
      suspects_[dead] = retry_at();
      continue;
    }
    std::vector<std::string> exclude;
    for (const auto& [peer, at] : suspects_) {
      if (peer != dead) exclude.push_back(peer);
    }
    lock.unlock();

    // Candidacy checks, outside the lock (group/hooks take their own).
    bool run = true;
    if (group_->IsDeposed(dead)) {
      // Someone already promoted it away; nothing to heal.
      lock.lock();
      suspects_.erase(dead);
      continue;
    }
    if (group_->HeirOf(dead, exclude) != self_) run = false;  // not our job
    if (run && !hooks_.ready()) run = false;
    uint64_t target = 0;
    if (run) {
      // Campaign above everything we have adopted AND everything we have
      // voted at — a failed candidacy burns its epoch (our own durable
      // vote), so retrying at current+1 alone would self-veto forever.
      target = std::max(fence_->current(), fence_->last_vote()) + 1;
      // Cast our own (durable) vote first; failing means our disk is
      // dead — stand down this round.
      if (!fence_->TryVote(target)) run = false;
    }
    if (!run) {
      lock.lock();
      if (suspects_.count(dead)) suspects_[dead] = retry_at();
      continue;
    }

    const std::vector<std::string> peers = group_->nodes();
    lock.lock();
    election_active_ = true;
    election_epoch_ = target;
    grants_ = 1;  // our own vote
    denials_ = 0;
    ++elections_;
    const size_t majority = peers.size() / 2 + 1;
    lock.unlock();
    for (const std::string& peer : peers) {
      if (peer != self_) transport_->SendVoteRequest(self_, peer, target, dead);
    }

    lock.lock();
    const auto deadline =
        std::chrono::steady_clock::now() + options_.election_timeout;
    cv_.wait_until(lock, deadline, [&] {
      return stop_ || grants_ >= majority ||
             denials_ > peers.size() - majority;
    });
    const bool won = grants_ >= majority;
    election_active_ = false;
    if (stop_) return;
    if (!won) {
      if (suspects_.count(dead)) suspects_[dead] = retry_at();
      continue;
    }
    // Final revalidation before committing: the suspect may have revived
    // after the votes were cast (fencing keeps even the lost race safe,
    // but deposing a live primary for nothing is churn worth avoiding).
    now = std::chrono::steady_clock::now();
    const bool still_dead =
        suspects_.count(dead) > 0 && PeerLooksDeadLocked(dead, now);
    lock.unlock();
    bool promoted = false;
    if (still_dead && !group_->IsDeposed(dead)) {
      promoted = hooks_.promote(dead, target).ok();
      if (promoted && counters_ != nullptr) {
        counters_->auto_promotions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    lock.lock();
    if (promoted || !still_dead) {
      suspects_.erase(dead);
    } else if (suspects_.count(dead)) {
      suspects_[dead] = retry_at();
    }
  }
}

}  // namespace sws::replication
