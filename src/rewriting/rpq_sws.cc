#include "rewriting/rpq_sws.h"

#include "util/common.h"

namespace sws::rw {

namespace {
using core::ActRelation;
using core::kMsgRelation;
using core::RelQuery;
using core::Sws;
using core::TransitionTarget;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Term;
using logic::UnionQuery;
}  // namespace

std::string EdgeRelation(int label) {
  return "E" + std::to_string(label);
}

rel::Database EncodeGraph(const GraphDb& graph) {
  rel::Database db;
  rel::Relation nodes(1);
  for (const rel::Value& v : graph.nodes()) nodes.Insert({v});
  db.Set(kNodeRelation, std::move(nodes));
  for (int l = 0; l < graph.num_labels(); ++l) {
    rel::Relation edges(2);
    for (const rel::Value& from : graph.nodes()) {
      for (const rel::Value& to : graph.Successors(from, l)) {
        edges.Insert({from, to});
      }
    }
    db.Set(EdgeRelation(l), std::move(edges));
  }
  return db;
}

rel::InputSequence RpqFuel(size_t n) {
  rel::InputSequence fuel(2);
  for (size_t i = 0; i < n; ++i) fuel.Append(rel::Relation(2));
  return fuel;
}

size_t SufficientFuel(const GraphDb& graph, const fsa::Nfa& rpq) {
  // A shortest accepting path visits no (node, NFA state) pair twice.
  return graph.nodes().size() * static_cast<size_t>(rpq.num_states()) + 2;
}

core::Sws RpqToSws(const fsa::Nfa& rpq_in, int num_labels) {
  const fsa::Nfa rpq = rpq_in.RemoveEpsilons();
  SWS_CHECK_EQ(rpq.alphabet_size(), 2 * num_labels)
      << "RPQ automata use the 2-way alphabet (labels + inverses)";
  rel::Schema schema;
  schema.Add(rel::RelationSchema(kNodeRelation, {"x"}));
  for (int l = 0; l < num_labels; ++l) {
    schema.Add(rel::RelationSchema(EdgeRelation(l), {"from", "to"}));
  }
  // Registers carry (start, current) pairs, so R_in has arity 2 (fuel
  // messages are empty and only their count matters); R_out: answer
  // pairs.
  Sws sws(schema, /*rin_arity=*/2, /*rout_arity=*/2);
  int root = sws.AddState("q0");
  std::vector<int> state_of(rpq.num_states());
  for (int q = 0; q < rpq.num_states(); ++q) {
    state_of[q] = sws.AddState("s" + std::to_string(q));
  }
  int echo = sws.AddState("echo");
  sws.SetTransition(echo, {});
  sws.SetSynthesis(echo, RelQuery::Cq(ConjunctiveQuery(
                             {Term::Var(0), Term::Var(1)},
                             {Atom{kMsgRelation, {Term::Var(0), Term::Var(1)}}})));

  auto v = [](int i) { return Term::Var(i); };
  // φ_init: all zero-step partial paths (x, x).
  ConjunctiveQuery init({v(0), v(0)}, {Atom{kNodeRelation, {v(0)}}});
  // φ_step for symbol σ: extend (x, z) by one σ-edge to (x, y).
  auto step = [&](int symbol) {
    Atom edge = symbol < num_labels
                    ? Atom{EdgeRelation(symbol), {v(2), v(1)}}
                    : Atom{EdgeRelation(symbol - num_labels), {v(1), v(2)}};
    return ConjunctiveQuery({v(0), v(1)},
                            {Atom{kMsgRelation, {v(0), v(2)}}, edge});
  };
  // φ_id: carry the register to an echo leaf.
  ConjunctiveQuery copy({v(0), v(1)},
                        {Atom{kMsgRelation, {v(0), v(1)}}});

  // Per NFA state: children for each outgoing transition, plus an echo
  // child when accepting; the synthesis is the union of all children.
  for (int q = 0; q < rpq.num_states(); ++q) {
    std::vector<TransitionTarget> successors;
    for (int symbol = 0; symbol < rpq.alphabet_size(); ++symbol) {
      for (int p : rpq.Successors(q, symbol)) {
        successors.push_back(
            TransitionTarget{state_of[p], RelQuery::Cq(step(symbol))});
      }
    }
    if (rpq.IsFinal(q)) {
      successors.push_back(TransitionTarget{echo, RelQuery::Cq(copy)});
    }
    UnionQuery psi(2);
    for (size_t i = 1; i <= successors.size(); ++i) {
      psi.Add(ConjunctiveQuery({v(0), v(1)},
                               {Atom{ActRelation(i), {v(0), v(1)}}}));
    }
    sws.SetTransition(state_of[q], std::move(successors));
    sws.SetSynthesis(state_of[q], RelQuery::Ucq(std::move(psi)));
  }

  // Root: one child per initial NFA state, seeded with the zero-step
  // partial paths.
  std::vector<TransitionTarget> root_successors;
  for (int q : rpq.initial()) {
    root_successors.push_back(
        TransitionTarget{state_of[q], RelQuery::Cq(init)});
  }
  UnionQuery root_psi(2);
  for (size_t i = 1; i <= root_successors.size(); ++i) {
    root_psi.Add(ConjunctiveQuery({v(0), v(1)},
                                  {Atom{ActRelation(i), {v(0), v(1)}}}));
  }
  sws.SetTransition(root, std::move(root_successors));
  sws.SetSynthesis(root, RelQuery::Ucq(std::move(root_psi)));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

}  // namespace sws::rw
