#ifndef SWS_REWRITING_RPQ_H_
#define SWS_REWRITING_RPQ_H_

#include <optional>
#include <vector>

#include "automata/nfa.h"
#include "relational/relation.h"
#include "rewriting/graphdb.h"
#include "rewriting/regular_rewriting.h"

namespace sws::rw {

/// (2-way) regular path queries and their unions of conjunctions, for
/// the decidable composition case of Corollary 5.2. An RPQ is an NFA
/// over the graph's 2-way alphabet (labels and inverses); it computes
/// all node pairs (x, y) connected by a path spelling a word of the
/// language.

/// Evaluates an RPQ: the returned relation has arity 2 (from, to).
rel::Relation EvalRpq(const GraphDb& db, const fsa::Nfa& rpq);

/// A conjunct x_i —Q— x_j of a C2RPQ: variables are indices into the
/// query's variable space.
struct RpqAtom {
  int from_var = 0;
  int to_var = 0;
  fsa::Nfa rpq;
};

/// A conjunction of 2RPQ atoms with a projection head.
struct C2Rpq {
  std::vector<int> head_vars;
  std::vector<RpqAtom> atoms;
};

/// Evaluates a C2RPQ by joining the atom results (arity = head size).
rel::Relation EvalC2Rpq(const GraphDb& db, const C2Rpq& query);

/// Union of C2RPQs.
rel::Relation EvalUc2Rpq(const GraphDb& db, const std::vector<C2Rpq>& query);

/// Rewrites a goal RPQ in terms of RPQ views (regular-language rewriting,
/// rewriting/regular_rewriting.h) and materializes the *view graph*: one
/// edge labeled v per pair in EvalRpq(db, views[v]). For an exact
/// rewriting, evaluating it over the view graph equals evaluating the
/// goal over the base graph — the soundness/completeness property the
/// composition result rests on (verified by the test suite).
struct RpqRewriteResult {
  RegularRewritingResult rewriting;
  /// Evaluation of the maximal rewriting over the view graph.
  rel::Relation view_answers;
  /// Evaluation of the goal over the base graph.
  rel::Relation goal_answers;
};

RpqRewriteResult RewriteAndEvalRpq(const GraphDb& db, const fsa::Nfa& goal,
                                   const std::vector<fsa::Nfa>& views);

/// The view graph itself (labels = view indices).
GraphDb BuildViewGraph(const GraphDb& db, const std::vector<fsa::Nfa>& views);

}  // namespace sws::rw

#endif  // SWS_REWRITING_RPQ_H_
