#include "rewriting/cq_rewriting.h"

#include <algorithm>
#include <functional>

#include "util/common.h"

namespace sws::rw {

using logic::Atom;
using logic::Comparison;
using logic::ConjunctiveQuery;
using logic::Term;
using logic::UnionQuery;

namespace {

const View* FindView(const std::vector<View>& views, const std::string& name) {
  for (const View& v : views) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

}  // namespace

ConjunctiveQuery ExpandViewAtoms(const ConjunctiveQuery& rewriting,
                                 const std::vector<View>& views) {
  ConjunctiveQuery out(rewriting.head(), {}, rewriting.comparisons());
  int next_var = rewriting.MaxVar() + 1;
  for (const Atom& atom : rewriting.body()) {
    const View* view = FindView(views, atom.relation);
    if (view == nullptr) {
      out.mutable_body()->push_back(atom);
      continue;
    }
    SWS_CHECK_EQ(view->definition.head_arity(), atom.args.size())
        << "view " << view->name << " arity mismatch";
    ConjunctiveQuery fresh = view->definition.ShiftVars(next_var);
    next_var = fresh.MaxVar() + 1;
    for (const Atom& a : fresh.body()) out.mutable_body()->push_back(a);
    for (const Comparison& c : fresh.comparisons()) {
      out.mutable_comparisons()->push_back(c);
    }
    for (size_t i = 0; i < atom.args.size(); ++i) {
      out.mutable_comparisons()->push_back(
          Comparison{fresh.head()[i], atom.args[i], /*is_equality=*/true});
    }
  }
  return out;
}

UnionQuery ExpandViewAtoms(const UnionQuery& rewriting,
                           const std::vector<View>& views) {
  UnionQuery out(rewriting.head_arity());
  for (const ConjunctiveQuery& d : rewriting.disjuncts()) {
    out.Add(ExpandViewAtoms(d, views));
  }
  return out;
}

namespace {

// Enumerates candidate rewritings over the views: view-atom multisets of
// size 1..max_atoms, identification patterns over their argument
// positions (constants of the goal may be used), and head assignments.
// Returns false iff the candidate budget ran out.
bool EnumerateCandidates(
    size_t head_arity, const std::set<rel::Value>& constants,
    const std::vector<View>& views, size_t max_atoms, uint64_t* budget,
    const std::function<bool(const ConjunctiveQuery&)>& on_candidate) {

  std::vector<size_t> chosen;  // view indices, nondecreasing
  std::function<bool()> instantiate = [&]() -> bool {
    // Argument positions of the chosen atoms.
    size_t positions = 0;
    for (size_t v : chosen) positions += views[v].definition.head_arity();
    std::vector<Term> items;
    for (const rel::Value& c : constants) items.push_back(Term::Const(c));
    for (size_t i = 0; i < positions; ++i) {
      items.push_back(Term::Var(static_cast<int>(i)));
    }
    bool keep_going = true;
    logic::EnumerateIdentifications(
        items, [&](const std::map<int, Term>& ident) {
          // Build the candidate body.
          std::vector<Atom> body;
          size_t pos = 0;
          std::set<Term> blocks;
          for (size_t v : chosen) {
            std::vector<Term> args;
            for (size_t i = 0; i < views[v].definition.head_arity(); ++i) {
              Term rep = ident.at(static_cast<int>(pos++));
              blocks.insert(rep);
              args.push_back(rep);
            }
            body.push_back(Atom{views[v].name, std::move(args)});
          }
          for (const rel::Value& c : constants) blocks.insert(Term::Const(c));
          // Head assignments: every head position takes any block.
          std::vector<Term> block_list(blocks.begin(), blocks.end());
          std::vector<Term> head(head_arity, Term::Int(0));
          std::function<bool(size_t)> assign_head = [&](size_t i) -> bool {
            if (i == head_arity) {
              if (*budget == 0) return false;
              --*budget;
              return on_candidate(ConjunctiveQuery(head, body));
            }
            for (const Term& b : block_list) {
              // Head variables must occur in the body (safety).
              if (b.is_var()) {
                bool in_body = false;
                for (const Atom& a : body) {
                  for (const Term& t : a.args) {
                    if (t == b) in_body = true;
                  }
                }
                if (!in_body) continue;
              }
              head[i] = b;
              if (!assign_head(i + 1)) return false;
            }
            return true;
          };
          if (!assign_head(0)) {
            keep_going = false;
            return false;
          }
          return true;
        });
    return keep_going;
  };

  std::function<bool(size_t, size_t)> choose = [&](size_t count,
                                                   size_t min_view) -> bool {
    if (count > 0 && !instantiate()) return false;
    if (count == max_atoms) return true;
    for (size_t v = min_view; v < views.size(); ++v) {
      chosen.push_back(v);
      bool ok = choose(count + 1, v);
      chosen.pop_back();
      if (!ok) return false;
    }
    return true;
  };
  return choose(0, 0);
}

// Constants of a query, as identification blocks for candidates.
std::set<rel::Value> QueryConstants(const ConjunctiveQuery& q) {
  std::set<rel::Value> constants;
  for (const Term& t : q.AllTerms()) {
    if (t.is_const()) constants.insert(t.value());
  }
  return constants;
}

}  // namespace

CqRewriteResult FindEquivalentCqRewriting(const ConjunctiveQuery& goal,
                                          const std::vector<View>& views,
                                          const CqRewriteOptions& options) {
  CqRewriteResult result;
  size_t max_atoms =
      options.max_atoms > 0 ? options.max_atoms : goal.body().size();
  uint64_t budget = options.max_candidates;
  bool completed = EnumerateCandidates(
      goal.head_arity(), QueryConstants(goal), views, max_atoms, &budget,
      [&](const ConjunctiveQuery& candidate) {
        ++result.candidates_tried;
        ConjunctiveQuery expansion = ExpandViewAtoms(candidate, views);
        if (logic::CqContainedIn(expansion, goal) &&
            logic::CqContainedIn(goal, expansion)) {
          result.found = true;
          result.rewriting = candidate;
          result.expansion = expansion;
          return false;  // stop
        }
        return true;
      });
  result.budget_exhausted = !completed && !result.found;
  return result;
}

UnionQuery MaximallyContainedRewriting(const ConjunctiveQuery& goal,
                                       const std::vector<View>& views,
                                       const CqRewriteOptions& options) {
  CqRewriteOptions opts = options;
  if (opts.max_atoms == 0) opts.max_atoms = goal.body().size();
  return MaximallyContainedRewriting(UnionQuery::Single(goal), views, opts);
}

namespace {

// Body-driven enumeration with goal-driven head discovery: for each
// candidate *body* over the views, candidate heads are read off the goal
// evaluated on the canonical database of the body's expansion (exact for
// comparison-free queries; every head is re-verified by containment, so
// soundness never depends on the shortcut).
class UnionRewriter {
 public:
  UnionRewriter(const UnionQuery& goal, const std::vector<View>& views,
                const CqRewriteOptions& options)
      : goal_(goal), views_(views), options_(options),
        rewriting_(goal.head_arity()), expansion_union_(goal.head_arity()) {}

  UnionQuery Run() {
    size_t max_atoms = options_.max_atoms;
    std::set<rel::Value> constants;
    for (const ConjunctiveQuery& d : goal_.disjuncts()) {
      if (options_.max_atoms == 0) {
        max_atoms = std::max(max_atoms, d.body().size());
      }
      for (const rel::Value& c : QueryConstants(d)) constants.insert(c);
    }
    if (max_atoms == 0) max_atoms = 1;
    budget_ = options_.max_candidates;

    std::vector<size_t> chosen;
    std::function<bool(size_t, size_t)> choose = [&](size_t count,
                                                     size_t min_view) {
      if (count > 0 && !TryBodies(chosen, constants)) return false;
      if (count == max_atoms) return true;
      for (size_t v = min_view; v < views_.size(); ++v) {
        chosen.push_back(v);
        bool keep_going = choose(count + 1, v);
        chosen.pop_back();
        if (!keep_going) return false;
      }
      return true;
    };
    choose(0, 0);
    return std::move(rewriting_);
  }

 private:
  // Enumerates identification patterns for one view multiset.
  bool TryBodies(const std::vector<size_t>& chosen,
                 const std::set<rel::Value>& constants) {
    size_t positions = 0;
    for (size_t v : chosen) positions += views_[v].definition.head_arity();
    if (!options_.merge_variables) {
      // Identity pattern only: all positions distinct fresh variables.
      std::map<int, Term> ident;
      for (size_t i = 0; i < positions; ++i) {
        ident.emplace(static_cast<int>(i), Term::Var(static_cast<int>(i)));
      }
      if (budget_ == 0) return false;
      --budget_;
      return TryIdentification(chosen, ident);
    }
    std::vector<Term> items;
    for (const rel::Value& c : constants) items.push_back(Term::Const(c));
    for (size_t i = 0; i < positions; ++i) {
      items.push_back(Term::Var(static_cast<int>(i)));
    }
    bool keep_going = true;
    logic::EnumerateIdentifications(
        items, [&](const std::map<int, Term>& ident) {
          if (budget_ == 0) {
            keep_going = false;
            return false;
          }
          --budget_;
          if (!TryIdentification(chosen, ident)) {
            keep_going = false;
            return false;
          }
          return true;
        });
    return keep_going;
  }

  bool TryIdentification(const std::vector<size_t>& chosen,
                         const std::map<int, Term>& ident) {
    std::vector<Atom> body;
    size_t pos = 0;
    std::vector<Term> blocks;
    for (size_t v : chosen) {
      std::vector<Term> args;
      for (size_t i = 0; i < views_[v].definition.head_arity(); ++i) {
        Term rep = ident.at(static_cast<int>(pos++));
        if (std::find(blocks.begin(), blocks.end(), rep) == blocks.end()) {
          blocks.push_back(rep);
        }
        args.push_back(rep);
      }
      body.push_back(Atom{views_[v].name, std::move(args)});
    }
    return TryHeads(body, blocks);
  }

  bool TryHeads(const std::vector<Atom>& body,
                const std::vector<Term>& blocks) {
    // Probe expansion with all blocks as the head.
    ConjunctiveQuery probe(blocks, body);
    auto expanded = ExpandViewAtoms(probe, views_).Normalize();
    if (!expanded.has_value()) return true;  // unsatisfiable body
    rel::Tuple frozen_blocks;
    rel::Database canon = expanded->CanonicalDatabase(&frozen_blocks);
    rel::Relation heads = goal_.Evaluate(canon);
    for (const rel::Tuple& h : heads) {
      std::vector<Term> head;
      bool ok = true;
      for (const rel::Value& value : h) {
        // Map the value back to a block term (or keep it as a constant).
        size_t k = 0;
        while (k < blocks.size() && !(frozen_blocks[k] == value)) ++k;
        if (k < blocks.size()) {
          head.push_back(blocks[k]);
        } else if (!value.is_null()) {
          head.push_back(Term::Const(value));
        } else {
          ok = false;  // a view-internal null: not expressible in the head
          break;
        }
      }
      if (!ok) continue;
      ConjunctiveQuery candidate(head, body);
      ConjunctiveQuery expansion = ExpandViewAtoms(candidate, views_);
      if (!logic::CqContainedIn(expansion, goal_)) continue;
      if (logic::CqContainedIn(expansion, expansion_union_)) continue;
      rewriting_.Add(candidate);
      expansion_union_.Add(expansion);
      if (options_.stop_when_covering &&
          logic::UcqContainedIn(goal_, expansion_union_)) {
        return false;  // covered: stop the whole enumeration
      }
    }
    return true;
  }

  const UnionQuery& goal_;
  const std::vector<View>& views_;
  const CqRewriteOptions& options_;
  UnionQuery rewriting_;
  UnionQuery expansion_union_;
  uint64_t budget_ = 0;
};

}  // namespace

UnionQuery MaximallyContainedRewriting(const UnionQuery& goal,
                                       const std::vector<View>& views,
                                       const CqRewriteOptions& options) {
  UnionRewriter rewriter(goal, views, options);
  return rewriter.Run();
}

}  // namespace sws::rw
