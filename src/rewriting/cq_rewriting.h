#ifndef SWS_REWRITING_CQ_REWRITING_H_
#define SWS_REWRITING_CQ_REWRITING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "logic/containment.h"
#include "logic/cq.h"
#include "logic/ucq.h"

namespace sws::rw {

/// Equivalent and maximally-contained rewriting of conjunctive queries
/// using CQ views (cf. [3, 14, 23] and the survey [20]) — the engine
/// behind Theorem 5.1(3) and the Corollary 5.2 setting, where SWS
/// composition is "ptime-equivalent to equivalent query rewriting using
/// views".
///
/// A view is a named CQ over the base schema; rewritings are queries over
/// the *view* relations. The expansion of a rewriting substitutes each
/// view atom by the view's (freshly renamed) body, unifying the head.

struct View {
  std::string name;
  logic::ConjunctiveQuery definition;
};

/// Replaces every view atom of `rewriting` by its definition. Atoms whose
/// relation is not a view name are kept (assumed base relations).
logic::ConjunctiveQuery ExpandViewAtoms(const logic::ConjunctiveQuery& rewriting,
                                        const std::vector<View>& views);
logic::UnionQuery ExpandViewAtoms(const logic::UnionQuery& rewriting,
                                  const std::vector<View>& views);

struct CqRewriteOptions {
  /// Max number of view atoms in a candidate rewriting. For equivalent
  /// CQ rewritings, goal.body().size() atoms suffice (a classical bound),
  /// which is the default (0 = use the bound).
  size_t max_atoms = 0;
  /// Cap on candidates tried before giving up.
  uint64_t max_candidates = 2000000;
  /// For MaximallyContainedRewriting: stop as soon as the collected
  /// union's expansion covers the goal (enough for composition; the
  /// result is then an equivalent — not necessarily maximal — rewriting).
  bool stop_when_covering = false;
  /// For the UCQ overload: when false, candidate bodies use all-distinct
  /// fresh variables (no identification patterns) — complete whenever the
  /// goal needs no equi-join *between* view outputs, and exponentially
  /// cheaper. The general search (true) enumerates all identifications.
  bool merge_variables = true;
};

struct CqRewriteResult {
  bool found = false;
  /// The rewriting over view relations, and its expansion (valid iff
  /// found).
  logic::ConjunctiveQuery rewriting;
  logic::ConjunctiveQuery expansion;
  bool budget_exhausted = false;
  uint64_t candidates_tried = 0;
};

/// Searches for a CQ over the views equivalent to `goal`: enumerates
/// view-atom multisets up to the bound and all identification patterns of
/// their argument positions (plus head assignments), verifying each
/// candidate by containment both ways. Complete up to max_atoms when the
/// budget is not exhausted — the doubly-exponential search the Table 2
/// benchmarks measure.
CqRewriteResult FindEquivalentCqRewriting(const logic::ConjunctiveQuery& goal,
                                          const std::vector<View>& views,
                                          const CqRewriteOptions& options = {});

/// The union of all candidate CQs over the views (up to the bound) whose
/// expansion is contained in the goal — a maximally-contained rewriting
/// within the searched space, with redundant disjuncts pruned. The UCQ
/// overload (goal a union) bounds candidate sizes by the largest goal
/// disjunct when options.max_atoms is 0.
logic::UnionQuery MaximallyContainedRewriting(
    const logic::ConjunctiveQuery& goal, const std::vector<View>& views,
    const CqRewriteOptions& options = {});
logic::UnionQuery MaximallyContainedRewriting(
    const logic::UnionQuery& goal, const std::vector<View>& views,
    const CqRewriteOptions& options = {});

}  // namespace sws::rw

#endif  // SWS_REWRITING_CQ_REWRITING_H_
