#include "rewriting/graphdb.h"

#include "util/common.h"

namespace sws::rw {

namespace {
const std::set<rel::Value>& EmptyNodeSet() {
  static const std::set<rel::Value>& empty = *new std::set<rel::Value>();
  return empty;
}
}  // namespace

int GraphDb::Inverse(int symbol) const {
  SWS_CHECK(symbol >= 0 && symbol < two_way_alphabet());
  return symbol < num_labels_ ? symbol + num_labels_ : symbol - num_labels_;
}

void GraphDb::AddEdge(const rel::Value& from, int label,
                      const rel::Value& to) {
  SWS_CHECK(label >= 0 && label < num_labels_);
  if (adjacency_.empty()) {
    adjacency_.resize(static_cast<size_t>(two_way_alphabet()));
  }
  nodes_.insert(from);
  nodes_.insert(to);
  if (adjacency_[label][from].insert(to).second) ++num_edges_;
  adjacency_[label + num_labels_][to].insert(from);
}

void GraphDb::AddEdge(int64_t from, int label, int64_t to) {
  AddEdge(rel::Value::Int(from), label, rel::Value::Int(to));
}

const std::set<rel::Value>& GraphDb::Successors(const rel::Value& node,
                                                int symbol) const {
  SWS_CHECK(symbol >= 0 && symbol < two_way_alphabet());
  if (adjacency_.empty()) return EmptyNodeSet();
  auto it = adjacency_[symbol].find(node);
  if (it == adjacency_[symbol].end()) return EmptyNodeSet();
  return it->second;
}

}  // namespace sws::rw
