#ifndef SWS_REWRITING_RPQ_SWS_H_
#define SWS_REWRITING_RPQ_SWS_H_

#include <string>

#include "automata/nfa.h"
#include "relational/input_sequence.h"
#include "rewriting/graphdb.h"
#include "sws/sws.h"

namespace sws::rw {

/// The SWS(UC2RPQ) class of Corollary 5.2: "One can express a UC2RPQ in
/// SWS(CQ, UCQ)". This module gives the constructive embedding for a
/// (2-way) RPQ: a *recursive* SWS whose message registers carry the
/// partial-path relation {(start, current)} per NFA state, extended by
/// one automaton step per input message — the input sequence is the
/// recursion fuel, exactly the sense in which recursive SWS's compute
/// recursive queries over unbounded inputs (Section 5.2's discussion of
/// why recursive goals need recursive mediators).
///
/// Database encoding: nodes in a unary relation (kNodeRelation); one
/// binary relation per label, named EdgeRelation(l); inverse symbols
/// traverse the same relation backwards. The service's output are the
/// RPQ answer pairs reachable with at most |I| - 1 automaton steps, so
///   Run(RpqToSws(A), EncodeGraph(G), fuel(n)) == EvalRpq(G, A)
/// for every n exceeding the longest simple path needed (≥ |V|·|Q| + 1
/// always suffices).
inline constexpr const char* kNodeRelation = "V";
std::string EdgeRelation(int label);

/// Packs a graph database into the relational encoding above.
rel::Database EncodeGraph(const GraphDb& graph);

/// Fuel: n empty messages of the register arity (content is irrelevant;
/// only the length runs the recursion).
rel::InputSequence RpqFuel(size_t n);

/// A fuel length sufficient for exact RPQ evaluation on `graph`.
size_t SufficientFuel(const GraphDb& graph, const fsa::Nfa& rpq);

/// The embedding. The RPQ automaton is over the 2-way alphabet of
/// `num_labels` labels (see GraphDb); the resulting service is in
/// SWS(CQ, UCQ) (recursive iff the automaton has a cycle, as expected:
/// star-free path queries embed nonrecursively).
core::Sws RpqToSws(const fsa::Nfa& rpq, int num_labels);

}  // namespace sws::rw

#endif  // SWS_REWRITING_RPQ_SWS_H_
