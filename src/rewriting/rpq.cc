#include "rewriting/rpq.h"

#include <deque>
#include <map>

#include "util/common.h"

namespace sws::rw {

rel::Relation EvalRpq(const GraphDb& db, const fsa::Nfa& rpq) {
  SWS_CHECK_EQ(rpq.alphabet_size(), db.two_way_alphabet())
      << "RPQ alphabet must be the 2-way label alphabet";
  fsa::Nfa clean = rpq.RemoveEpsilons();
  rel::Relation out(2);
  // Product BFS from each source node.
  for (const rel::Value& source : db.nodes()) {
    std::set<std::pair<rel::Value, int>> visited;
    std::deque<std::pair<rel::Value, int>> queue;
    for (int s : clean.initial()) {
      if (visited.insert({source, s}).second) queue.push_back({source, s});
    }
    while (!queue.empty()) {
      auto [node, state] = queue.front();
      queue.pop_front();
      if (clean.IsFinal(state)) out.Insert({source, node});
      for (int symbol = 0; symbol < clean.alphabet_size(); ++symbol) {
        const std::set<int>& next_states = clean.Successors(state, symbol);
        if (next_states.empty()) continue;
        for (const rel::Value& next : db.Successors(node, symbol)) {
          for (int s2 : next_states) {
            if (visited.insert({next, s2}).second) queue.push_back({next, s2});
          }
        }
      }
    }
  }
  return out;
}

rel::Relation EvalC2Rpq(const GraphDb& db, const C2Rpq& query) {
  // Evaluate each atom, then join by backtracking over variable bindings.
  std::vector<rel::Relation> atom_results;
  for (const RpqAtom& atom : query.atoms) {
    atom_results.push_back(EvalRpq(db, atom.rpq));
  }
  rel::Relation out(query.head_vars.size());
  std::map<int, rel::Value> binding;
  std::function<void(size_t)> join = [&](size_t i) {
    if (i == query.atoms.size()) {
      rel::Tuple t;
      for (int v : query.head_vars) {
        auto it = binding.find(v);
        SWS_CHECK(it != binding.end()) << "unsafe C2RPQ head variable";
        t.push_back(it->second);
      }
      out.Insert(std::move(t));
      return;
    }
    const RpqAtom& atom = query.atoms[i];
    for (const rel::Tuple& pair : atom_results[i]) {
      std::vector<int> bound;
      bool ok = true;
      auto bind = [&](int var, const rel::Value& value) {
        auto it = binding.find(var);
        if (it != binding.end()) {
          if (!(it->second == value)) ok = false;
        } else {
          binding.emplace(var, value);
          bound.push_back(var);
        }
      };
      bind(atom.from_var, pair[0]);
      if (ok) bind(atom.to_var, pair[1]);
      if (ok) join(i + 1);
      for (int v : bound) binding.erase(v);
    }
  };
  join(0);
  return out;
}

rel::Relation EvalUc2Rpq(const GraphDb& db, const std::vector<C2Rpq>& query) {
  SWS_CHECK(!query.empty());
  rel::Relation out(query[0].head_vars.size());
  for (const C2Rpq& q : query) {
    out = out.Union(EvalC2Rpq(db, q));
  }
  return out;
}

GraphDb BuildViewGraph(const GraphDb& db, const std::vector<fsa::Nfa>& views) {
  GraphDb view_graph(static_cast<int>(views.size()));
  for (size_t v = 0; v < views.size(); ++v) {
    rel::Relation pairs = EvalRpq(db, views[v]);
    for (const rel::Tuple& t : pairs) {
      view_graph.AddEdge(t[0], static_cast<int>(v), t[1]);
    }
  }
  return view_graph;
}

RpqRewriteResult RewriteAndEvalRpq(const GraphDb& db, const fsa::Nfa& goal,
                                   const std::vector<fsa::Nfa>& views) {
  RpqRewriteResult result{RewriteRegular(goal, views), rel::Relation(2),
                          rel::Relation(2)};
  result.goal_answers = EvalRpq(db, goal);
  GraphDb view_graph = BuildViewGraph(db, views);
  // The rewriting is a 1-way automaton over view symbols; lift it to the
  // view graph's 2-way alphabet (inverse view edges unused).
  fsa::Nfa over_views = result.rewriting.max_rewriting.ToNfa();
  fsa::Nfa lifted(view_graph.two_way_alphabet());
  for (int s = 0; s < over_views.num_states(); ++s) lifted.AddState();
  for (int s : over_views.initial()) lifted.AddInitial(s);
  for (int s : over_views.final()) lifted.AddFinal(s);
  for (int s = 0; s < over_views.num_states(); ++s) {
    for (int a = 0; a < over_views.alphabet_size(); ++a) {
      for (int t : over_views.Successors(s, a)) {
        lifted.AddTransition(s, a, t);
      }
    }
  }
  result.view_answers = EvalRpq(view_graph, lifted);
  return result;
}

}  // namespace sws::rw
