#ifndef SWS_REWRITING_REGULAR_REWRITING_H_
#define SWS_REWRITING_REGULAR_REWRITING_H_

#include <cstdint>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace sws::rw {

/// Rewriting of regular languages in terms of view languages, after
/// Calvanese–De Giacomo–Lenzerini–Vardi [8] — the engine behind the
/// MDT(∨) composition results of Theorem 5.3: given a goal language
/// L(goal) over Σ and views V_1..V_m ⊆ Σ*, the *maximal rewriting* is
///   M = { w ∈ {1..m}* : expansion(w) ⊆ L(goal) },
/// where expansion substitutes each view symbol by its language. M is
/// regular: complement the determinized goal, summarize each view as a
/// reachability relation over the complement's states, and complement the
/// resulting "bad word" automaton — the doubly-exponential construction
/// whose blowup the Table 2 benchmarks measure.
struct RegularRewritingResult {
  RegularRewritingResult() : max_rewriting(1, 1), expansion(0) {}

  /// The maximal rewriting, a DFA over the view alphabet {0..m-1}.
  fsa::Dfa max_rewriting;
  /// Expansion of the maximal rewriting back over Σ.
  fsa::Nfa expansion;
  /// True iff the expansion equals the goal language — i.e. an *exact*
  /// (equivalent) rewriting exists, and max_rewriting is one.
  bool exact = false;
  /// True iff the maximal rewriting is the empty language.
  bool empty = false;

  // Size accounting for the benchmarks.
  uint64_t goal_dfa_states = 0;
  uint64_t bad_word_dfa_states = 0;
};

RegularRewritingResult RewriteRegular(const fsa::Nfa& goal,
                                      const std::vector<fsa::Nfa>& views);

/// Expands an automaton over the view alphabet into one over Σ by
/// substituting each view edge with (a fresh copy of) the view's NFA.
fsa::Nfa ExpandViews(const fsa::Nfa& over_views,
                     const std::vector<fsa::Nfa>& views);

}  // namespace sws::rw

#endif  // SWS_REWRITING_REGULAR_REWRITING_H_
