#ifndef SWS_REWRITING_GRAPHDB_H_
#define SWS_REWRITING_GRAPHDB_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "relational/value.h"

namespace sws::rw {

/// A semistructured (edge-labeled graph) database, as in the UC2RPQ
/// special case of Section 5.2: nodes are values, edges carry labels
/// 0..num_labels-1. For 2-way queries, label L+l denotes the inverse of
/// label l (an edge traversed backwards).
class GraphDb {
 public:
  explicit GraphDb(int num_labels) : num_labels_(num_labels) {}

  int num_labels() const { return num_labels_; }
  /// The alphabet size for 2-way queries: labels plus inverses.
  int two_way_alphabet() const { return 2 * num_labels_; }
  /// The inverse of a (possibly already inverted) 2-way symbol.
  int Inverse(int symbol) const;

  void AddEdge(const rel::Value& from, int label, const rel::Value& to);
  /// Convenience for integer nodes.
  void AddEdge(int64_t from, int label, int64_t to);

  const std::set<rel::Value>& nodes() const { return nodes_; }
  /// Successors of `node` under a 2-way symbol (label or inverse).
  const std::set<rel::Value>& Successors(const rel::Value& node,
                                         int symbol) const;

  size_t num_edges() const { return num_edges_; }

 private:
  int num_labels_;
  size_t num_edges_ = 0;
  std::set<rel::Value> nodes_;
  // adjacency_[symbol][node] -> successors; symbols include inverses.
  std::vector<std::map<rel::Value, std::set<rel::Value>>> adjacency_;
};

}  // namespace sws::rw

#endif  // SWS_REWRITING_GRAPHDB_H_
