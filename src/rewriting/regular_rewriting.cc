#include "rewriting/regular_rewriting.h"

#include <deque>

#include "util/common.h"

namespace sws::rw {

namespace {

// For each view, the reachability relation over the states of `dfa`:
// (p, q) related iff some word of the view's language drives dfa p → q.
// Computed by a product BFS per source state.
std::vector<std::vector<std::vector<bool>>> ViewSummaries(
    const fsa::Dfa& dfa, const std::vector<fsa::Nfa>& views) {
  std::vector<std::vector<std::vector<bool>>> summaries;
  for (const fsa::Nfa& view : views) {
    std::vector<std::vector<bool>> relation(
        dfa.num_states(), std::vector<bool>(dfa.num_states(), false));
    // BFS over (dfa state, view state) pairs per source state, after
    // epsilon elimination.
    fsa::Nfa clean = view.RemoveEpsilons();
    for (int p = 0; p < dfa.num_states(); ++p) {
      std::set<std::pair<int, int>> visited;
      std::deque<std::pair<int, int>> queue;
      for (int s : clean.initial()) {
        if (visited.insert({p, s}).second) queue.push_back({p, s});
      }
      while (!queue.empty()) {
        auto [d, s] = queue.front();
        queue.pop_front();
        if (clean.IsFinal(s)) relation[p][d] = true;
        for (int a = 0; a < clean.alphabet_size(); ++a) {
          int d2 = dfa.Transition(d, a);
          for (int s2 : clean.Successors(s, a)) {
            if (visited.insert({d2, s2}).second) queue.push_back({d2, s2});
          }
        }
      }
    }
    summaries.push_back(std::move(relation));
  }
  return summaries;
}

}  // namespace

fsa::Nfa ExpandViews(const fsa::Nfa& over_views,
                     const std::vector<fsa::Nfa>& views) {
  SWS_CHECK_EQ(static_cast<size_t>(over_views.alphabet_size()), views.size());
  int sigma = views.empty() ? 0 : views[0].alphabet_size();
  fsa::Nfa out(sigma);
  // Copy the skeleton's states.
  for (int s = 0; s < over_views.num_states(); ++s) out.AddState();
  for (int s : over_views.initial()) out.AddInitial(s);
  for (int s : over_views.final()) out.AddFinal(s);
  for (int s = 0; s < over_views.num_states(); ++s) {
    for (int t : over_views.Successors(s, fsa::Nfa::kEpsilon)) {
      out.AddTransition(s, fsa::Nfa::kEpsilon, t);
    }
    for (int v = 0; v < over_views.alphabet_size(); ++v) {
      for (int t : over_views.Successors(s, v)) {
        // Splice in a fresh copy of view v between s and t.
        int offset = out.ImportStates(views[v]);
        for (int i : views[v].initial()) {
          out.AddTransition(s, fsa::Nfa::kEpsilon, i + offset);
        }
        for (int f : views[v].final()) {
          out.AddTransition(f + offset, fsa::Nfa::kEpsilon, t);
        }
      }
    }
  }
  return out;
}

RegularRewritingResult RewriteRegular(const fsa::Nfa& goal,
                                      const std::vector<fsa::Nfa>& views) {
  SWS_CHECK(!views.empty()) << "need at least one view";
  for (const fsa::Nfa& v : views) {
    SWS_CHECK_EQ(v.alphabet_size(), goal.alphabet_size());
  }
  RegularRewritingResult result;
  result.max_rewriting = fsa::Dfa(1, static_cast<int>(views.size()));
  result.expansion = fsa::Nfa(goal.alphabet_size());

  // Complement of the goal.
  fsa::Dfa goal_dfa = Determinize(goal).Minimize();
  result.goal_dfa_states = static_cast<uint64_t>(goal_dfa.num_states());
  fsa::Dfa co_goal = goal_dfa.Complement();

  // Bad-word automaton over the view alphabet: w is bad iff some
  // expansion of w lands in the complement. NFA over co_goal's states
  // with one edge (p → q on view v) per summary pair.
  auto summaries = ViewSummaries(co_goal, views);
  fsa::Nfa bad(static_cast<int>(views.size()));
  for (int s = 0; s < co_goal.num_states(); ++s) bad.AddState();
  bad.AddInitial(co_goal.start());
  for (int s = 0; s < co_goal.num_states(); ++s) {
    if (co_goal.IsFinal(s)) bad.AddFinal(s);
    for (size_t v = 0; v < views.size(); ++v) {
      for (int t = 0; t < co_goal.num_states(); ++t) {
        if (summaries[v][s][t]) {
          bad.AddTransition(s, static_cast<int>(v), t);
        }
      }
    }
  }
  fsa::Dfa bad_dfa = Determinize(bad);
  result.bad_word_dfa_states = static_cast<uint64_t>(bad_dfa.num_states());

  // The maximal rewriting is the complement of the bad words.
  result.max_rewriting = bad_dfa.Complement().Minimize();
  result.empty = result.max_rewriting.IsEmpty();

  // Exactness: the expansion always ⊆ goal; exact iff goal ⊆ expansion.
  result.expansion = ExpandViews(result.max_rewriting.ToNfa(), views);
  fsa::Dfa expansion_dfa = Determinize(result.expansion);
  result.exact = fsa::Dfa::Contains(expansion_dfa, goal_dfa);
  // Sanity: the construction guarantees the other containment.
  SWS_CHECK(fsa::Dfa::Contains(goal_dfa, expansion_dfa))
      << "internal error: maximal rewriting expansion escapes the goal";
  return result;
}

}  // namespace sws::rw
