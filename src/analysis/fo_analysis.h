#ifndef SWS_ANALYSIS_FO_ANALYSIS_H_
#define SWS_ANALYSIS_FO_ANALYSIS_H_

#include <cstdint>
#include <optional>

#include "logic/fo.h"
#include "relational/input_sequence.h"
#include "sws/sws.h"

namespace sws::analysis {

/// Artifacts for Theorem 4.1(1): all three decision problems are
/// undecidable for SWS(FO, FO), already for the nonrecursive subclass, by
/// reduction from the (finite) satisfiability problem for FO — which is
/// undecidable by Trakhtenbrot's theorem. This module provides
///  * the reduction itself (constructively), and
///  * bounded semi-decision procedures, the only implementable option.

/// The reduction: given an FO *sentence* φ over a relational schema,
/// builds a single-state SWS_nr(FO, FO) service τ_φ with
///   τ_φ is non-empty  iff  φ has a finite model.
/// The service's only state is final with synthesis "output (1) iff
/// D ⊨ φ"; any nonempty input triggers the check. Consequently
/// non-emptiness (and with it validation of {(1)} and equivalence to the
/// empty service) inherits FO undecidability.
core::Sws FoSatToSws(const logic::FoFormula& sentence);

/// The everywhere-empty service over the same schemas as `like` — the
/// equivalence partner in the reduction (τ_φ ≡ τ_∅ iff φ unsatisfiable).
core::Sws EmptyServiceLike(const core::Sws& like);

struct FoBoundedOptions {
  size_t max_domain_size = 2;    // databases over {1..k}, k ≤ this
  size_t max_input_length = 1;   // input sequences up to this length
  size_t max_tuples_per_message = 1;
  uint64_t max_instances = 1000000;  // total (D, I) pairs to try
};

struct FoBoundedResult {
  bool found = false;
  rel::Database witness_db;
  rel::InputSequence witness_input;
  uint64_t instances_checked = 0;
  bool budget_exhausted = false;
};

/// Bounded non-emptiness for arbitrary (FO) services: enumerates small
/// databases and input sequences and runs the service. Sound (a witness
/// is a real run); complete only within the bounds — the best possible
/// for an undecidable problem.
FoBoundedResult FoBoundedNonEmptiness(const core::Sws& sws,
                                      const FoBoundedOptions& options = {});

/// Bounded equivalence refutation: searches the same space for a (D, I)
/// distinguishing the two services. found == true means *inequivalent*
/// with the returned witness; false means indistinguishable within the
/// bounds.
FoBoundedResult FoBoundedInequivalence(const core::Sws& a, const core::Sws& b,
                                       const FoBoundedOptions& options = {});

}  // namespace sws::analysis

#endif  // SWS_ANALYSIS_FO_ANALYSIS_H_
