#include "analysis/fo_analysis.h"

#include <functional>

#include "sws/execution.h"
#include "util/common.h"

namespace sws::analysis {

using core::RelQuery;
using core::Sws;
using logic::FoFormula;
using logic::FoQuery;
using logic::Term;

core::Sws FoSatToSws(const FoFormula& sentence) {
  SWS_CHECK(sentence.FreeVars().empty()) << "the reduction needs a sentence";
  rel::Schema schema;
  for (const auto& [name, arity] : sentence.RelationArities()) {
    std::vector<std::string> attrs;
    for (size_t i = 0; i < arity; ++i) attrs.push_back("a" + std::to_string(i));
    schema.Add(rel::RelationSchema(name, attrs));
  }
  Sws sws(schema, /*rin_arity=*/1, /*rout_arity=*/1);
  sws.AddState("q0");
  sws.SetTransition(0, {});
  // Act(q0) = {(1)} iff D ⊨ φ. The final-state root reads I_0 = ∅ and the
  // (irrelevant) message register; only D matters.
  sws.SetSynthesis(0, RelQuery::Fo(FoQuery({Term::Int(1)}, sentence)));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

core::Sws EmptyServiceLike(const Sws& like) {
  Sws sws(like.db_schema(), like.rin_arity(), like.rout_arity());
  sws.AddState("q0");
  sws.SetTransition(0, {});
  // The always-empty synthesis: an empty UCQ.
  sws.SetSynthesis(0, RelQuery::Ucq(logic::UnionQuery(like.rout_arity())));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

namespace {

// Enumerates (D, I) pairs over the integer domain {1..k} for k up to
// max_domain_size, with |I| up to max_input_length messages of up to
// max_tuples_per_message tuples. Stops when `visit` returns true (found)
// or the instance budget runs out.
struct EnumerationState {
  uint64_t checked = 0;
  bool exhausted = false;
};

bool EnumerateInstances(
    const Sws& sws, const FoBoundedOptions& options, EnumerationState* state,
    const std::function<bool(const rel::Database&, const rel::InputSequence&)>&
        visit) {
  for (size_t k = 1; k <= options.max_domain_size; ++k) {
    // Universe of tuples per arity, over {1..k}.
    auto tuple_universe = [&](size_t arity) {
      std::vector<rel::Tuple> tuples;
      rel::Tuple current(arity);
      std::function<void(size_t)> fill = [&](size_t i) {
        if (i == arity) {
          tuples.push_back(current);
          return;
        }
        for (size_t v = 1; v <= k; ++v) {
          current[i] = rel::Value::Int(static_cast<int64_t>(v));
          fill(i + 1);
        }
      };
      fill(0);
      return tuples;
    };

    // Enumerate databases: per relation, any subset of its universe.
    std::vector<std::pair<std::string, std::vector<rel::Tuple>>> universes;
    for (const auto& r : sws.db_schema().relations()) {
      universes.emplace_back(r.name(), tuple_universe(r.arity()));
    }
    std::vector<rel::Tuple> input_universe = tuple_universe(sws.rin_arity());

    rel::Database db(sws.db_schema());
    // Input messages are built as index-subsets of the input universe of
    // size ≤ max_tuples_per_message.
    std::function<bool(size_t)> choose_db;
    std::function<bool(rel::InputSequence*)> choose_input =
        [&](rel::InputSequence* input) -> bool {
      // Visit the current (db, input).
      if (state->checked >= options.max_instances) {
        state->exhausted = true;
        return true;  // stop enumeration
      }
      ++state->checked;
      if (visit(db, *input)) return true;
      if (input->size() == options.max_input_length) return false;
      // Extend with one more message (all small subsets).
      std::vector<size_t> picked;
      std::function<bool(size_t)> pick = [&](size_t from) -> bool {
        {
          rel::Relation message(sws.rin_arity());
          for (size_t idx : picked) message.Insert(input_universe[idx]);
          rel::InputSequence extended = *input;
          extended.Append(std::move(message));
          if (choose_input(&extended)) return true;
        }
        if (picked.size() == options.max_tuples_per_message) return false;
        for (size_t i = from; i < input_universe.size(); ++i) {
          picked.push_back(i);
          if (pick(i + 1)) return true;
          picked.pop_back();
        }
        return false;
      };
      return pick(0);
    };
    choose_db = [&](size_t rel_index) -> bool {
      if (rel_index == universes.size()) {
        rel::InputSequence empty(sws.rin_arity());
        return choose_input(&empty);
      }
      const auto& [name, tuples] = universes[rel_index];
      std::function<bool(size_t)> pick = [&](size_t t_index) -> bool {
        if (t_index == tuples.size()) return choose_db(rel_index + 1);
        if (pick(t_index + 1)) return true;  // exclude
        db.GetMutable(name)->Insert(tuples[t_index]);
        bool stop = pick(t_index + 1);       // include
        db.GetMutable(name)->Erase(tuples[t_index]);
        return stop;
      };
      return pick(0);
    };
    if (choose_db(0)) return true;
  }
  return false;
}

}  // namespace

FoBoundedResult FoBoundedNonEmptiness(const Sws& sws,
                                      const FoBoundedOptions& options) {
  FoBoundedResult result;
  EnumerationState state;
  EnumerateInstances(
      sws, options, &state,
      [&](const rel::Database& db, const rel::InputSequence& input) {
        if (core::Run(sws, db, input).output.empty()) return false;
        result.found = true;
        result.witness_db = db;
        result.witness_input = input;
        return true;
      });
  result.instances_checked = state.checked;
  result.budget_exhausted = state.exhausted;
  return result;
}

FoBoundedResult FoBoundedInequivalence(const Sws& a, const Sws& b,
                                       const FoBoundedOptions& options) {
  SWS_CHECK_EQ(a.rin_arity(), b.rin_arity());
  SWS_CHECK_EQ(a.rout_arity(), b.rout_arity());
  FoBoundedResult result;
  EnumerationState state;
  EnumerateInstances(
      a, options, &state,
      [&](const rel::Database& db, const rel::InputSequence& input) {
        if (core::Run(a, db, input).output == core::Run(b, db, input).output) {
          return false;
        }
        result.found = true;
        result.witness_db = db;
        result.witness_input = input;
        return true;
      });
  result.instances_checked = state.checked;
  result.budget_exhausted = state.exhausted;
  return result;
}

}  // namespace sws::analysis
