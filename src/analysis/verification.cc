#include "analysis/verification.h"

#include "analysis/pl_analysis.h"
#include "automata/dfa.h"


#include "util/common.h"

namespace sws::analysis {

using core::PlSws;

std::vector<PlSws::Symbol> MakePropertyAlphabet(
    const PlSws& service, const std::vector<int>& extra_vars) {
  std::set<int> vars = service.RelevantInputVars();
  for (int v : extra_vars) vars.insert(v);
  std::vector<int> relevant(vars.begin(), vars.end());
  SWS_CHECK_LE(relevant.size(), 16u) << "alphabet too large to enumerate";
  std::vector<PlSws::Symbol> symbols;
  for (size_t mask = 0; mask < (size_t{1} << relevant.size()); ++mask) {
    PlSws::Symbol s;
    for (size_t i = 0; i < relevant.size(); ++i) {
      if ((mask >> i) & 1) s.insert(relevant[i]);
    }
    symbols.push_back(std::move(s));
  }
  return symbols;
}

SafetyResult CheckRegularSafety(
    const PlSws& service, const fsa::Nfa& bad_behaviors,
    const std::vector<PlSws::Symbol>& alphabet) {
  SWS_CHECK_EQ(static_cast<size_t>(bad_behaviors.alphabet_size()),
               alphabet.size())
      << "property automaton alphabet mismatch";
  SafetyResult result;
  result.alphabet = alphabet;
  fsa::Nfa language = PlSwsToNfa(service, alphabet);
  fsa::Dfa service_dfa = Determinize(language);
  fsa::Dfa bad_dfa = Determinize(bad_behaviors);
  fsa::Dfa both =
      fsa::Dfa::Product(service_dfa, bad_dfa, fsa::Dfa::BoolOp::kAnd);
  auto witness = both.ShortestAcceptedWord();
  if (!witness.has_value()) {
    result.safe = true;
    return result;
  }
  result.safe = false;
  PlSws::Word word;
  for (int symbol : *witness) {
    word.push_back(alphabet[static_cast<size_t>(symbol)]);
  }
  result.counterexample = std::move(word);
  return result;
}

fsa::Nfa BadBeforeProperty(const std::vector<PlSws::Symbol>& alphabet,
                           int bad_var, int required_first_var) {
  // Bad behaviors: a message with `bad_var` occurs while no earlier
  // message carried `required_first_var`; anything may follow.
  fsa::Nfa nfa(static_cast<int>(alphabet.size()));
  int waiting = nfa.AddState();   // required var not yet seen
  int violated = nfa.AddState();  // bad var arrived too early
  nfa.AddInitial(waiting);
  nfa.AddFinal(violated);
  for (size_t a = 0; a < alphabet.size(); ++a) {
    bool has_bad = alphabet[a].count(bad_var) > 0;
    bool has_required = alphabet[a].count(required_first_var) > 0;
    if (has_bad && !has_required) {
      nfa.AddTransition(waiting, static_cast<int>(a), violated);
    } else if (!has_required) {
      nfa.AddTransition(waiting, static_cast<int>(a), waiting);
    }
    // Once violated, every continuation is still a violation.
    nfa.AddTransition(violated, static_cast<int>(a), violated);
  }
  return nfa;
}

}  // namespace sws::analysis
