#include "analysis/cq_analysis.h"

#include <algorithm>

#include "sws/execution.h"
#include "util/common.h"

namespace sws::analysis {

using core::Sws;
using logic::Comparison;
using logic::ConjunctiveQuery;
using logic::Term;
using logic::UnionQuery;

namespace {

// "In@<j>" → j, or 0 if not an input relation.
size_t ParseInputLevel(const std::string& name) {
  if (name.size() <= 3 || name.compare(0, 3, "In@") != 0) return 0;
  size_t j = 0;
  for (size_t pos = 3; pos < name.size(); ++pos) {
    char c = name[pos];
    if (c < '0' || c > '9') return 0;
    j = j * 10 + static_cast<size_t>(c - '0');
  }
  return j;
}

int64_t MaxIntValue(const rel::Database& db) {
  int64_t max_int = 0;
  for (const rel::Value& v : db.ActiveDomain()) {
    if (v.is_int()) max_int = std::max(max_int, v.AsInt());
  }
  return max_int;
}

}  // namespace

CqWitness SplitPackedDatabase(const Sws& sws, const rel::Database& packed,
                              size_t input_length) {
  // Ground labeled nulls to fresh integers so the witness is an ordinary
  // instance (grounding is an isomorphism onto fresh constants, which
  // preserves CQ/UCQ results).
  int64_t next_fresh = MaxIntValue(packed) + 1;
  std::map<int64_t, rel::Value> null_map;
  auto ground = [&](const rel::Value& v) {
    if (!v.is_null()) return v;
    auto [it, inserted] = null_map.emplace(v.null_label(), rel::Value());
    if (inserted) it->second = rel::Value::Int(next_fresh++);
    return it->second;
  };

  CqWitness witness;
  witness.input = rel::InputSequence(sws.rin_arity());
  std::vector<rel::Relation> messages(input_length,
                                      rel::Relation(sws.rin_arity()));
  for (const auto& [name, relation] : packed.relations()) {
    size_t level = ParseInputLevel(name);
    rel::Relation grounded(relation.arity());
    for (const rel::Tuple& t : relation) {
      rel::Tuple g;
      g.reserve(t.size());
      for (const rel::Value& v : t) g.push_back(ground(v));
      grounded.Insert(std::move(g));
    }
    if (level >= 1) {
      SWS_CHECK_LE(level, input_length);
      messages[level - 1] = std::move(grounded);
    } else {
      witness.db.Set(name, std::move(grounded));
    }
  }
  for (auto& m : messages) witness.input.Append(std::move(m));
  return witness;
}

CqNonEmptinessResult CqNonEmptiness(const Sws& sws, size_t max_length) {
  CqNonEmptinessResult result;
  for (size_t n = 1; n <= max_length; ++n) {
    ++result.stats.lengths_tried;
    UnionQuery unfolded = core::UnfoldToUcq(sws, n);
    result.stats.disjuncts_seen += unfolded.size();
    if (unfolded.empty()) continue;
    // Unfolded disjuncts are normalized and satisfiable: the canonical
    // database of the first one is a witness.
    rel::Tuple head;
    rel::Database packed = unfolded.disjuncts()[0].CanonicalDatabase(&head);
    CqWitness witness = SplitPackedDatabase(sws, packed, n);
    // Verify (soundness check: the run must actually produce actions).
    core::RunResult run = core::Run(sws, witness.db, witness.input);
    SWS_CHECK(!run.output.empty())
        << "internal error: canonical witness failed for\n" << sws.ToString();
    result.nonempty = true;
    result.witness = std::move(witness);
    return result;
  }
  return result;
}

CqNonEmptinessResult CqNonEmptinessNr(const Sws& sws) {
  auto depth = sws.MaxDepth();
  SWS_CHECK(depth.has_value()) << "CqNonEmptinessNr needs a nonrecursive "
                                  "service; use CqNonEmptiness";
  return CqNonEmptiness(sws, std::max<size_t>(*depth, 1));
}

namespace {

CqEquivalenceResult EquivalenceUpTo(const Sws& a, const Sws& b,
                                    size_t max_length) {
  SWS_CHECK_EQ(a.rin_arity(), b.rin_arity());
  SWS_CHECK_EQ(a.rout_arity(), b.rout_arity());
  CqEquivalenceResult result;
  for (size_t n = 0; n <= max_length; ++n) {
    ++result.stats.lengths_tried;
    UnionQuery ua = core::UnfoldToUcq(a, n);
    UnionQuery ub = core::UnfoldToUcq(b, n);
    result.stats.disjuncts_seen += ua.size() + ub.size();
    if (!logic::UcqEquivalent(ua, ub, &result.stats.containment)) {
      result.equivalent = false;
      result.differing_length = n;
      return result;
    }
  }
  result.equivalent = true;
  return result;
}

}  // namespace

CqEquivalenceResult CqEquivalenceNr(const Sws& a, const Sws& b) {
  auto da = a.MaxDepth();
  auto db = b.MaxDepth();
  SWS_CHECK(da.has_value() && db.has_value())
      << "CqEquivalenceNr needs nonrecursive services";
  return EquivalenceUpTo(a, b, std::max(*da, *db));
}

CqEquivalenceResult CqEquivalenceBounded(const Sws& a, const Sws& b,
                                         size_t max_length) {
  return EquivalenceUpTo(a, b, max_length);
}

namespace {

// A candidate way to produce one output tuple: a disjunct whose head has
// been unified with the tuple's constants and normalized.
std::vector<ConjunctiveQuery> TupleCandidates(const UnionQuery& unfolded,
                                              const rel::Tuple& o) {
  std::vector<ConjunctiveQuery> candidates;
  for (const ConjunctiveQuery& d : unfolded.disjuncts()) {
    ConjunctiveQuery unified = d;
    for (size_t i = 0; i < o.size(); ++i) {
      unified.mutable_comparisons()->push_back(
          Comparison{d.head()[i], Term::Const(o[i]), /*is_equality=*/true});
    }
    if (auto norm = unified.Normalize(); norm.has_value()) {
      candidates.push_back(std::move(*norm));
    }
  }
  return candidates;
}

// Merges the canonical database of `fragment` (variables offset to stay
// disjoint across fragments) into `packed`.
void AddFragment(const ConjunctiveQuery& fragment, int var_offset,
                 rel::Database* packed) {
  ConjunctiveQuery shifted = fragment.ShiftVars(var_offset);
  rel::Database canon = shifted.CanonicalDatabase();
  for (const auto& [name, relation] : canon.relations()) {
    if (!packed->Contains(name)) {
      packed->Set(name, rel::Relation(relation.arity()));
    }
    rel::Relation* target = packed->GetMutable(name);
    for (const rel::Tuple& t : relation) target->Insert(t);
  }
}

}  // namespace

CqValidationResult CqValidation(const Sws& sws,
                                const rel::Relation& desired_output,
                                const CqValidationOptions& options) {
  SWS_CHECK_EQ(desired_output.arity(), sws.rout_arity());
  CqValidationResult result;

  // The empty output is always reachable: τ(D, ε) = ∅.
  if (desired_output.empty()) {
    result.validated = true;
    result.witness = CqWitness{rel::Database(sws.db_schema()),
                               rel::InputSequence(sws.rin_arity())};
    return result;
  }

  size_t max_length = options.max_length;
  if (max_length == 0) {
    auto depth = sws.MaxDepth();
    SWS_CHECK(depth.has_value())
        << "recursive service: set CqValidationOptions::max_length";
    max_length = std::max<size_t>(*depth, 1);
  }

  std::vector<rel::Tuple> tuples(desired_output.begin(),
                                 desired_output.end());
  uint64_t budget = options.max_candidates;
  for (size_t n = 1; n <= max_length; ++n) {
    ++result.stats.lengths_tried;
    UnionQuery unfolded = core::UnfoldToUcq(sws, n);
    result.stats.disjuncts_seen += unfolded.size();
    if (unfolded.empty()) continue;
    // Per-tuple candidate lists.
    std::vector<std::vector<ConjunctiveQuery>> candidates;
    bool feasible = true;
    for (const rel::Tuple& o : tuples) {
      candidates.push_back(TupleCandidates(unfolded, o));
      if (candidates.back().empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    // Cartesian search over per-tuple candidates, verified by running.
    std::vector<size_t> choice(tuples.size(), 0);
    while (true) {
      if (budget == 0) {
        result.budget_exhausted = true;
        return result;
      }
      --budget;
      rel::Database packed;
      int var_offset = 0;
      for (size_t i = 0; i < tuples.size(); ++i) {
        const ConjunctiveQuery& fragment = candidates[i][choice[i]];
        AddFragment(fragment, var_offset, &packed);
        var_offset += fragment.MaxVar() + 1;
      }
      CqWitness witness = SplitPackedDatabase(sws, packed, n);
      core::RunResult run = core::Run(sws, witness.db, witness.input);
      if (run.output == desired_output) {
        result.validated = true;
        result.witness = std::move(witness);
        return result;
      }
      // Next combination.
      size_t i = 0;
      while (i < choice.size() && ++choice[i] == candidates[i].size()) {
        choice[i] = 0;
        ++i;
      }
      if (i == choice.size()) break;
    }
  }
  return result;
}

}  // namespace sws::analysis
