#ifndef SWS_ANALYSIS_VERIFICATION_H_
#define SWS_ANALYSIS_VERIFICATION_H_

#include <optional>
#include <vector>

#include "automata/nfa.h"
#include "sws/pl_sws.h"

namespace sws::analysis {

/// Safety verification for PL services — the paper's Conclusion plans to
/// "investigate for SWS's the verification problems ... studied in
/// [12, 13]". For regular (PL) services the natural decidable fragment
/// is regular safety: given a property automaton describing *bad*
/// behaviors over the same input alphabet, is any accepted session of
/// the service bad?
///
/// Implemented by translating the service to an NFA over an explicit
/// symbol alphabet (mediator/pl_composition.h machinery) and
/// intersecting with the property: pspace in |Q| like the other
/// SWS(PL, PL) analyses.
struct SafetyResult {
  /// True iff no accepted session of the service is a bad behavior.
  bool safe = false;
  /// A bad accepted session, when unsafe.
  std::optional<core::PlSws::Word> counterexample;
  /// The alphabet used (index i of the property automaton = symbol i).
  std::vector<core::PlSws::Symbol> alphabet;
};

/// Checks L(service) ∩ L(bad) = ∅. The property automaton must be over
/// the alphabet returned in SafetyResult::alphabet — build it with
/// MakePropertyAlphabet first (symbols are all truth assignments of the
/// service's relevant variables plus `extra_vars`).
SafetyResult CheckRegularSafety(const core::PlSws& service,
                                const fsa::Nfa& bad_behaviors,
                                const std::vector<core::PlSws::Symbol>& alphabet);

/// The canonical alphabet for property automata over a service.
std::vector<core::PlSws::Symbol> MakePropertyAlphabet(
    const core::PlSws& service, const std::vector<int>& extra_vars = {});

/// Convenience property builders over an alphabet:
/// "some message satisfying `var` occurs before any message satisfying
/// `trigger`" — e.g. "a booking happens before payment was seen" — as a
/// bad-prefix NFA. Symbols containing `var` are those where var ∈ symbol.
fsa::Nfa BadBeforeProperty(const std::vector<core::PlSws::Symbol>& alphabet,
                           int bad_var, int required_first_var);

}  // namespace sws::analysis

#endif  // SWS_ANALYSIS_VERIFICATION_H_
