#ifndef SWS_ANALYSIS_CQ_ANALYSIS_H_
#define SWS_ANALYSIS_CQ_ANALYSIS_H_

#include <cstdint>
#include <optional>

#include "logic/containment.h"
#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/sws.h"
#include "sws/unfold.h"

namespace sws::analysis {

/// Decision procedures for SWS(CQ, UCQ) and SWS_nr(CQ, UCQ) — Theorem
/// 4.1(2). All procedures work on the per-input-length UCQ^{≠}
/// unfoldings (sws/unfold.h); the nonrecursive procedures are complete
/// because input positions beyond MaxDepth() are never read, while the
/// recursive ones take an explicit length bound (equivalence/validation
/// are undecidable for recursive services, and non-emptiness is
/// exptime-complete — the bound realizes the iterative search whose
/// termination the tree-automata argument guarantees in theory).

struct CqAnalysisStats {
  uint64_t lengths_tried = 0;
  uint64_t disjuncts_seen = 0;        // satisfiable unfolded disjuncts
  logic::ContainmentStats containment;
};

/// A concrete witness for non-emptiness / validation: a database and an
/// input sequence.
struct CqWitness {
  rel::Database db;
  rel::InputSequence input;
};

struct CqNonEmptinessResult {
  bool nonempty = false;
  std::optional<CqWitness> witness;  // τ(witness) ≠ ∅, verified by a run
  CqAnalysisStats stats;
};

/// Non-emptiness for a nonrecursive service: some unfolding at
/// n ≤ MaxDepth() has a satisfiable disjunct; its canonical database
/// (split back into D and I) is the witness.
CqNonEmptinessResult CqNonEmptinessNr(const core::Sws& sws);

/// Non-emptiness for a (possibly recursive) service, searching input
/// lengths 1..max_length. Sound: a reported witness is always verified.
/// Complete once max_length reaches the (exponential) bound from the
/// tree-automata construction of Theorem 4.1(2); for shorter bounds a
/// `false` answer means "empty up to max_length".
CqNonEmptinessResult CqNonEmptiness(const core::Sws& sws, size_t max_length);

struct CqEquivalenceResult {
  bool equivalent = false;
  /// Input length at which the unfoldings differ, if any.
  std::optional<size_t> differing_length;
  CqAnalysisStats stats;
};

/// Equivalence for nonrecursive services (conexptime-complete): for each
/// n up to the larger depth, the two unfoldings must be equivalent
/// UCQ^{≠}s (Klug-style containment both ways).
CqEquivalenceResult CqEquivalenceNr(const core::Sws& a, const core::Sws& b);

/// Bounded-length equivalence for recursive services (the undecidable
/// problem; complete only up to max_length).
CqEquivalenceResult CqEquivalenceBounded(const core::Sws& a,
                                         const core::Sws& b,
                                         size_t max_length);

struct CqValidationOptions {
  /// Input lengths to try; defaults to the service depth for
  /// nonrecursive services.
  size_t max_length = 0;
  /// Combinations of (disjunct, head-unification) candidates explored
  /// before giving up.
  uint64_t max_candidates = 100000;
};

struct CqValidationResult {
  bool validated = false;
  std::optional<CqWitness> witness;  // τ(witness) == O, verified by a run
  /// True when the candidate budget was exhausted: `validated == false`
  /// then means "not found", not "impossible".
  bool budget_exhausted = false;
  CqAnalysisStats stats;
};

/// Validation: is there (D, I) with τ(D, I) = O exactly? Searches
/// canonical-database candidates: every tuple of O must be produced by
/// some unfolded disjunct whose frozen body supplies the facts; the
/// combined candidate is then *verified* by running the service (so a
/// positive answer is always sound). This realizes the nexptime
/// small-model procedure of Theorem 4.1(2) as a candidate search; an
/// exhausted budget is reported explicitly.
CqValidationResult CqValidation(const core::Sws& sws,
                                const rel::Relation& desired_output,
                                const CqValidationOptions& options = {});

/// Splits a packed canonical database over R ∪ {In@j} into a concrete
/// (D, I) pair, grounding labeled nulls as fresh integer constants
/// outside `reserved` (so the witness is an ordinary instance).
CqWitness SplitPackedDatabase(const core::Sws& sws, const rel::Database& packed,
                              size_t input_length);

}  // namespace sws::analysis

#endif  // SWS_ANALYSIS_CQ_ANALYSIS_H_
