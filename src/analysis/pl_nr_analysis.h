#ifndef SWS_ANALYSIS_PL_NR_ANALYSIS_H_
#define SWS_ANALYSIS_PL_NR_ANALYSIS_H_

#include <cstdint>
#include <optional>

#include "logic/pl_sat.h"
#include "sws/pl_sws.h"

namespace sws::analysis {

/// NP / coNP decision procedures for nonrecursive SWS_nr(PL, PL)
/// (Theorem 4.1(3)): a nonrecursive service reads at most MaxDepth()
/// input messages, so its run value on a length-n input is a Boolean
/// circuit over the n·num_input_vars input bits. Non-emptiness is
/// circuit satisfiability (Tseitin + DPLL); equivalence is validity of
/// the biconditional.

/// Variable numbering of the run formula: input variable v of message
/// I_j (1-indexed) is PL variable (j-1)*num_input_vars + v.
int RunFormulaVar(const core::PlSws& sws, size_t j, int v);

/// The Boolean circuit expressing τ(I) = true for inputs of length
/// exactly n. Aborts on recursive services (use pl_analysis.h instead).
logic::PlFormula NrRunFormula(const core::PlSws& sws, size_t n);

struct NrAnalysisResult {
  bool holds = false;
  std::optional<core::PlSws::Word> witness;  // satisfying input word
  logic::SatStats sat_stats;                 // accumulated over SAT calls
  uint64_t sat_calls = 0;
  size_t max_formula_size = 0;               // largest run formula built
};

/// Non-emptiness via SAT: tries every input length n = 1..MaxDepth()
/// (inputs beyond the depth are never read, so this range is complete).
NrAnalysisResult NrNonEmptiness(const core::PlSws& sws);

/// Validation of a desired Boolean output (see PlValidation for why
/// `false` is trivial).
NrAnalysisResult NrValidation(const core::PlSws& sws, bool desired_output);

/// Equivalence via UNSAT of (Φ_a XOR Φ_b) for every n up to the larger
/// depth; a model of the XOR is a distinguishing input (the coNP
/// procedure). `witness` carries the counterexample when inequivalent.
NrAnalysisResult NrEquivalence(const core::PlSws& a, const core::PlSws& b);

}  // namespace sws::analysis

#endif  // SWS_ANALYSIS_PL_NR_ANALYSIS_H_
