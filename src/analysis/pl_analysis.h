#ifndef SWS_ANALYSIS_PL_ANALYSIS_H_
#define SWS_ANALYSIS_PL_ANALYSIS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/afa.h"
#include "automata/nfa.h"
#include "sws/pl_sws.h"

namespace sws::analysis {

/// Decision procedures for (possibly recursive) SWS(PL, PL) — Theorem
/// 4.1(3): non-emptiness, validation and equivalence are pspace-complete.
///
/// The implementation is the explicit-state realization of the pspace
/// procedures: the run of a PL service folds the input right-to-left over
/// |Q|-bit carry vectors (see core::PlSws), so the set of behaviors is a
/// reachability problem over at most 2^|Q| vectors — the same
/// relationship AFA emptiness checking bears to its pspace bound.

/// Search-effort counters for the Table 1 benchmarks.
struct PlSearchStats {
  uint64_t carries_explored = 0;  // distinct carry vectors (or pairs)
  uint64_t symbols = 0;           // alphabet size used (2^relevant vars)
};

/// All input messages over the service's relevant input variables
/// (2^|relevant| truth assignments). Messages assigning irrelevant
/// variables cannot change any rule's value, so this alphabet is
/// exhaustive for the decision problems.
std::vector<core::PlSws::Symbol> EnumerateSymbols(const core::PlSws& sws);

struct PlWitnessResult {
  bool holds = false;                          // the property holds
  std::optional<core::PlSws::Word> witness;    // a witnessing input word
  PlSearchStats stats;
};

/// Non-emptiness: is there an input word I with τ(I) = true?
PlWitnessResult PlNonEmptiness(const core::PlSws& sws);

/// Validation: is there an input word I with τ(I) = desired_output?
/// For PL services the output is a single truth value; τ(ε) = false
/// always, so validation of `false` is trivially witnessed by the empty
/// word, and validation of `true` coincides with non-emptiness — the
/// "special cases" observation of Section 4.
PlWitnessResult PlValidation(const core::PlSws& sws, bool desired_output);

struct PlEquivalenceResult {
  bool equivalent = false;
  std::optional<core::PlSws::Word> counterexample;  // word with a(I)≠b(I)
  PlSearchStats stats;
};

/// Equivalence: τ_a(I) = τ_b(I) for every input word I? Reachability over
/// carry-vector *pairs*.
PlEquivalenceResult PlEquivalence(const core::PlSws& a, const core::PlSws& b);

/// The PTIME reduction behind the Theorem 4.1(3) lower bound: every AFA
/// can be expressed as an SWS(PL, PL) service. The encoding uses input
/// variables 0..alphabet-1 (AFA symbol a is the singleton message {a})
/// plus variable `alphabet` as the end-of-word delimiter '#', so that
///   afa.Accepts(w)  iff  sws.Run(EncodeAfaWord(w)).
/// Malformed messages (not exactly one variable true) kill the run.
core::PlSws AfaToPlSws(const fsa::Afa& afa);

/// Encodes an AFA word for the translated service: one singleton message
/// per symbol, followed by the '#' delimiter message.
core::PlSws::Word EncodeAfaWord(const std::vector<int>& word,
                                int alphabet_size);

/// Decodes a witness word of a translated service back into an AFA word
/// (strips the delimiter; nullopt if the word is not well-formed).
std::optional<std::vector<int>> DecodeAfaWord(const core::PlSws::Word& word,
                                              int alphabet_size);

/// Builds a left-to-right NFA for the language of a PL service over an
/// explicit symbol alphabet: the carry-vector graph recognizes the
/// reversed language; the result is its reversal. Exponential in |Q|
/// (the SWS(PL, PL) → NFA translation used in the proof of Thm 5.3(1)).
fsa::Nfa PlSwsToNfa(const core::PlSws& sws,
                    const std::vector<core::PlSws::Symbol>& alphabet);

}  // namespace sws::analysis

#endif  // SWS_ANALYSIS_PL_ANALYSIS_H_
