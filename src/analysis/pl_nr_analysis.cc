#include "analysis/pl_nr_analysis.h"

#include <algorithm>

#include "util/common.h"

namespace sws::analysis {

using core::PlSws;
using logic::PlFormula;

int RunFormulaVar(const PlSws& sws, size_t j, int v) {
  SWS_CHECK_GE(j, 1u);
  SWS_CHECK(v >= 0 && v < sws.num_input_vars());
  return static_cast<int>(j - 1) * sws.num_input_vars() + v;
}

namespace {

// Rewrites a rule formula (over input vars + msg var) into the run
// formula: input var v becomes x_{j,v} (or false if j = 0, the root's
// empty message I_0), msg var becomes the symbolic register `msg`.
PlFormula InstantiateRule(const PlSws& sws, const PlFormula& rule, size_t j,
                          const PlFormula& msg) {
  std::map<int, PlFormula> map;
  for (int v : rule.Vars()) {
    if (v == sws.msg_var()) {
      map.emplace(v, msg);
    } else if (j == 0) {
      map.emplace(v, PlFormula::False());
    } else {
      map.emplace(v, PlFormula::Var(RunFormulaVar(sws, j, v)));
    }
  }
  return rule.Substitute(map);
}

// The symbolic value of a node at state `state`, timestamp j, with
// symbolic register `msg` (is_root disables the dead-register rule).
PlFormula NodeFormula(const PlSws& sws, int state, size_t j, size_t n,
                      const PlFormula& msg, bool is_root) {
  if (j > n) return PlFormula::False();
  const auto& successors = sws.Successors(state);
  PlFormula value;
  if (successors.empty()) {
    value = InstantiateRule(sws, sws.Synthesis(state), j, msg);
  } else {
    std::map<int, PlFormula> child_values;
    for (size_t i = 0; i < successors.size(); ++i) {
      PlFormula child_msg =
          InstantiateRule(sws, successors[i].guard, j + 1, msg);
      PlFormula subtree = NodeFormula(sws, successors[i].state, j + 1, n,
                                      child_msg, /*is_root=*/false);
      child_values.emplace(static_cast<int>(i),
                           PlFormula::And(child_msg, subtree));
    }
    value = sws.Synthesis(state).Substitute(child_values);
  }
  if (!is_root) value = PlFormula::And(msg, value);
  return value;
}

PlSws::Word ModelToWord(const PlSws& sws, size_t n,
                        const std::map<int, bool>& model) {
  PlSws::Word word(n);
  for (size_t j = 1; j <= n; ++j) {
    for (int v = 0; v < sws.num_input_vars(); ++v) {
      auto it = model.find(RunFormulaVar(sws, j, v));
      if (it != model.end() && it->second) word[j - 1].insert(v);
    }
  }
  return word;
}

void Accumulate(logic::SatStats* total, const logic::SatStats& call) {
  total->decisions += call.decisions;
  total->propagations += call.propagations;
  total->conflicts += call.conflicts;
}

}  // namespace

PlFormula NrRunFormula(const PlSws& sws, size_t n) {
  SWS_CHECK(!sws.IsRecursive())
      << "run formulas require a nonrecursive service";
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  if (n == 0) return PlFormula::False();  // empty input: Act(r) = ∅
  return NodeFormula(sws, sws.start_state(), 0, n, PlFormula::False(),
                     /*is_root=*/true)
      .Simplify();
}

NrAnalysisResult NrNonEmptiness(const PlSws& sws) {
  NrAnalysisResult result;
  size_t depth = *sws.MaxDepth();
  for (size_t n = 1; n <= std::max<size_t>(depth, 1); ++n) {
    PlFormula formula = NrRunFormula(sws, n);
    result.max_formula_size = std::max(result.max_formula_size,
                                       formula.Size());
    std::map<int, bool> model;
    logic::SatStats stats;
    ++result.sat_calls;
    if (logic::PlSatisfiable(formula, &model, &stats)) {
      Accumulate(&result.sat_stats, stats);
      std::map<int, bool> full_model;
      for (const auto& [var, value] : model) full_model[var] = value;
      result.holds = true;
      result.witness = ModelToWord(sws, n, full_model);
      return result;
    }
    Accumulate(&result.sat_stats, stats);
  }
  return result;
}

NrAnalysisResult NrValidation(const PlSws& sws, bool desired_output) {
  if (desired_output) return NrNonEmptiness(sws);
  NrAnalysisResult result;
  result.holds = true;  // τ(ε) = false
  result.witness = PlSws::Word{};
  return result;
}

NrAnalysisResult NrEquivalence(const PlSws& a, const PlSws& b) {
  SWS_CHECK_EQ(a.num_input_vars(), b.num_input_vars())
      << "equivalence needs a shared input schema";
  NrAnalysisResult result;
  size_t depth = std::max(*a.MaxDepth(), *b.MaxDepth());
  for (size_t n = 0; n <= depth; ++n) {
    PlFormula fa = NrRunFormula(a, n);
    PlFormula fb = NrRunFormula(b, n);
    PlFormula differ =
        PlFormula::Not(PlFormula::Iff(std::move(fa), std::move(fb)));
    result.max_formula_size =
        std::max(result.max_formula_size, differ.Size());
    std::map<int, bool> model;
    logic::SatStats stats;
    ++result.sat_calls;
    bool distinguishable = logic::PlSatisfiable(differ, &model, &stats);
    Accumulate(&result.sat_stats, stats);
    if (distinguishable) {
      result.holds = false;
      result.witness = ModelToWord(a, n, model);
      return result;
    }
  }
  result.holds = true;
  return result;
}

}  // namespace sws::analysis
