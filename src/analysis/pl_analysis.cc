#include "analysis/pl_analysis.h"

#include <deque>
#include <map>

#include "util/common.h"

namespace sws::analysis {

using core::PlSws;
using logic::PlFormula;

std::vector<PlSws::Symbol> EnumerateSymbols(const PlSws& sws) {
  std::set<int> relevant_set = sws.RelevantInputVars();
  std::vector<int> relevant(relevant_set.begin(), relevant_set.end());
  SWS_CHECK_LE(relevant.size(), 20u)
      << "alphabet too large to enumerate explicitly";
  std::vector<PlSws::Symbol> symbols;
  const size_t count = size_t{1} << relevant.size();
  symbols.reserve(count);
  for (size_t mask = 0; mask < count; ++mask) {
    PlSws::Symbol s;
    for (size_t i = 0; i < relevant.size(); ++i) {
      if ((mask >> i) & 1) s.insert(relevant[i]);
    }
    symbols.push_back(std::move(s));
  }
  return symbols;
}

namespace {

// Shared BFS over carry vectors with witness reconstruction. The carry
// after folding suffix w, extended by an edge labeled a, becomes the
// carry of a·w — i.e. edges prepend symbols, and walking a path from the
// hit back to the initial carry reads the suffix left-to-right.
struct CarrySearch {
  std::map<std::vector<bool>, std::pair<std::vector<bool>, int>> parent;

  PlSws::Word PathTo(const std::vector<bool>& carry,
                     const std::vector<PlSws::Symbol>& symbols) const {
    PlSws::Word suffix;
    std::vector<bool> cur = carry;
    while (true) {
      const auto& [prev, symbol_index] = parent.at(cur);
      if (symbol_index < 0) break;
      suffix.push_back(symbols[symbol_index]);
      cur = prev;
    }
    return suffix;
  }
};

}  // namespace

PlWitnessResult PlNonEmptiness(const PlSws& sws) {
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  std::vector<PlSws::Symbol> symbols = EnumerateSymbols(sws);
  PlWitnessResult result;
  result.stats.symbols = symbols.size();

  CarrySearch search;
  std::vector<bool> initial = sws.InitialCarry();
  search.parent.emplace(initial,
                        std::make_pair(std::vector<bool>{}, -1));
  std::deque<std::vector<bool>> queue = {initial};
  while (!queue.empty()) {
    std::vector<bool> carry = queue.front();
    queue.pop_front();
    // A word a·w is accepted iff RootValue over the carry of w is true.
    for (size_t ai = 0; ai < symbols.size(); ++ai) {
      if (sws.RootValue(carry, symbols[ai], /*root_msg=*/false)) {
        PlSws::Word word;
        word.push_back(symbols[ai]);
        PlSws::Word suffix = search.PathTo(carry, symbols);
        word.insert(word.end(), suffix.begin(), suffix.end());
        result.holds = true;
        result.witness = std::move(word);
        result.stats.carries_explored = search.parent.size();
        return result;
      }
    }
    for (size_t ai = 0; ai < symbols.size(); ++ai) {
      std::vector<bool> next = sws.StepBack(carry, symbols[ai]);
      if (search.parent
              .emplace(next, std::make_pair(carry, static_cast<int>(ai)))
              .second) {
        queue.push_back(next);
      }
    }
  }
  result.stats.carries_explored = search.parent.size();
  return result;
}

PlWitnessResult PlValidation(const PlSws& sws, bool desired_output) {
  if (desired_output) return PlNonEmptiness(sws);
  // τ(ε) = ∅ = false: the empty word always witnesses output `false`.
  PlWitnessResult result;
  result.holds = true;
  result.witness = PlSws::Word{};
  return result;
}

PlEquivalenceResult PlEquivalence(const PlSws& a, const PlSws& b) {
  SWS_CHECK(!a.Validate().has_value()) << *a.Validate();
  SWS_CHECK(!b.Validate().has_value()) << *b.Validate();
  // Joint alphabet: all assignments of the union of relevant variables.
  std::set<int> vars = a.RelevantInputVars();
  for (int v : b.RelevantInputVars()) vars.insert(v);
  std::vector<int> relevant(vars.begin(), vars.end());
  SWS_CHECK_LE(relevant.size(), 20u);
  std::vector<PlSws::Symbol> symbols;
  for (size_t mask = 0; mask < (size_t{1} << relevant.size()); ++mask) {
    PlSws::Symbol s;
    for (size_t i = 0; i < relevant.size(); ++i) {
      if ((mask >> i) & 1) s.insert(relevant[i]);
    }
    symbols.push_back(std::move(s));
  }

  PlEquivalenceResult result;
  result.stats.symbols = symbols.size();

  using Pair = std::pair<std::vector<bool>, std::vector<bool>>;
  std::map<Pair, std::pair<Pair, int>> parent;
  Pair initial = {a.InitialCarry(), b.InitialCarry()};
  parent.emplace(initial, std::make_pair(Pair{}, -1));
  std::deque<Pair> queue = {initial};
  auto reconstruct = [&](const Pair& pair,
                         const PlSws::Symbol& first) -> PlSws::Word {
    PlSws::Word word;
    word.push_back(first);
    Pair cur = pair;
    while (true) {
      const auto& [prev, symbol_index] = parent.at(cur);
      if (symbol_index < 0) break;
      word.push_back(symbols[symbol_index]);
      cur = prev;
    }
    return word;
  };
  while (!queue.empty()) {
    Pair pair = queue.front();
    queue.pop_front();
    for (const PlSws::Symbol& symbol : symbols) {
      bool va = a.RootValue(pair.first, symbol, false);
      bool vb = b.RootValue(pair.second, symbol, false);
      if (va != vb) {
        result.equivalent = false;
        result.counterexample = reconstruct(pair, symbol);
        result.stats.carries_explored = parent.size();
        return result;
      }
    }
    for (size_t ai = 0; ai < symbols.size(); ++ai) {
      Pair next = {a.StepBack(pair.first, symbols[ai]),
                   b.StepBack(pair.second, symbols[ai])};
      if (parent.emplace(next, std::make_pair(pair, static_cast<int>(ai)))
              .second) {
        queue.push_back(next);
      }
    }
  }
  result.equivalent = true;
  result.stats.carries_explored = parent.size();
  return result;
}

namespace {

// Guard formula "the input message is exactly the singleton {v}" over
// variables 0..num_vars-1.
PlFormula ExactSingleton(int v, int num_vars) {
  std::vector<PlFormula> conjuncts;
  for (int u = 0; u < num_vars; ++u) {
    conjuncts.push_back(u == v ? PlFormula::Var(u)
                               : PlFormula::Not(PlFormula::Var(u)));
  }
  return PlFormula::And(std::move(conjuncts));
}

}  // namespace

core::PlSws AfaToPlSws(const fsa::Afa& afa) {
  const int sigma = afa.alphabet_size();
  const int nq = afa.num_states();
  const int num_vars = sigma + 1;  // symbols + '#'
  const int hash_var = sigma;
  PlSws sws(num_vars);
  int root = sws.AddState("root");
  std::vector<int> state_of(nq);
  for (int q = 0; q < nq; ++q) {
    state_of[q] = sws.AddState("s" + std::to_string(q));
  }
  int tt = sws.AddState("tt");  // the always-true final indicator
  sws.SetTransition(tt, {});
  sws.SetSynthesis(tt, PlFormula::True());

  // Successor layout per simulated state: for each symbol a, |Q| children
  // c_{r,a} plus one indicator ind_a; then the '#' indicator.
  auto child_index = [&](int a, int r) { return a * (nq + 1) + r; };
  auto indicator_index = [&](int a) { return a * (nq + 1) + nq; };
  const int hash_index = sigma * (nq + 1);
  auto make_successors = [&]() {
    std::vector<PlSws::Successor> successors;
    for (int a = 0; a < sigma; ++a) {
      PlFormula guard = ExactSingleton(a, num_vars);
      for (int r = 0; r < nq; ++r) {
        successors.push_back(PlSws::Successor{state_of[r], guard});
      }
      successors.push_back(PlSws::Successor{tt, guard});
    }
    successors.push_back(
        PlSws::Successor{tt, ExactSingleton(hash_var, num_vars)});
    return successors;
  };
  // Substitutes AFA state r by the child variable c_{r,a}.
  auto reindex = [&](const PlFormula& f, int a) {
    std::map<int, PlFormula> map;
    for (int r : f.Vars()) map.emplace(r, PlFormula::Var(child_index(a, r)));
    return f.Substitute(map);
  };

  for (int q = 0; q < nq; ++q) {
    sws.SetTransition(state_of[q], make_successors());
    std::vector<PlFormula> disjuncts;
    for (int a = 0; a < sigma; ++a) {
      disjuncts.push_back(
          PlFormula::And(PlFormula::Var(indicator_index(a)),
                         reindex(afa.Transition(q, a), a)));
    }
    if (afa.IsFinal(q)) {
      disjuncts.push_back(PlFormula::Var(hash_index));
    }
    sws.SetSynthesis(state_of[q], PlFormula::Or(std::move(disjuncts)));
  }

  // Root: one extra unfolding step of the initial formula.
  sws.SetTransition(root, make_successors());
  std::vector<PlFormula> disjuncts;
  for (int a = 0; a < sigma; ++a) {
    // init with each state p replaced by δ(p, a) reindexed to level-1
    // children.
    std::map<int, PlFormula> map;
    for (int p : afa.initial_formula().Vars()) {
      map.emplace(p, reindex(afa.Transition(p, a), a));
    }
    disjuncts.push_back(
        PlFormula::And(PlFormula::Var(indicator_index(a)),
                       afa.initial_formula().Substitute(map)));
  }
  // The empty AFA word: initial formula over final-state indicators.
  bool empty_accepted = afa.initial_formula().EvalWith(
      [&afa](int p) { return afa.IsFinal(p); });
  if (empty_accepted) {
    disjuncts.push_back(PlFormula::Var(hash_index));
  }
  sws.SetSynthesis(root, PlFormula::Or(std::move(disjuncts)));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

core::PlSws::Word EncodeAfaWord(const std::vector<int>& word,
                                int alphabet_size) {
  PlSws::Word out;
  for (int a : word) {
    SWS_CHECK(a >= 0 && a < alphabet_size);
    out.push_back({a});
  }
  out.push_back({alphabet_size});  // '#'
  return out;
}

std::optional<std::vector<int>> DecodeAfaWord(const core::PlSws::Word& word,
                                              int alphabet_size) {
  std::vector<int> out;
  for (const PlSws::Symbol& symbol : word) {
    if (symbol.size() != 1) return std::nullopt;
    int v = *symbol.begin();
    if (v == alphabet_size) return out;  // delimiter: ignore the rest
    if (v < 0 || v > alphabet_size) return std::nullopt;
    out.push_back(v);
  }
  return std::nullopt;  // no delimiter seen
}

fsa::Nfa PlSwsToNfa(const PlSws& sws,
                    const std::vector<PlSws::Symbol>& alphabet) {
  // The carry-vector graph reads words right-to-left: from the initial
  // carry, folding symbols yields carries; reading the word's first
  // symbol on top of a carry decides acceptance via RootValue. That
  // graph is an automaton for the *reversed* language; reverse it.
  std::map<std::vector<bool>, int> ids;
  std::vector<std::vector<bool>> order;
  auto intern = [&](const std::vector<bool>& c) {
    auto [it, inserted] = ids.emplace(c, static_cast<int>(order.size()));
    if (inserted) order.push_back(c);
    return it->second;
  };
  fsa::Nfa reversed(static_cast<int>(alphabet.size()));
  int accept = reversed.AddState();  // state 0 = ACC
  reversed.AddFinal(accept);
  std::vector<bool> initial = sws.InitialCarry();
  intern(initial);
  // State ids in the NFA: carry k maps to k+1 (0 is ACC).
  auto nfa_state = [&](int carry_id) { return carry_id + 1; };
  reversed.AddState();  // for the initial carry
  reversed.AddInitial(nfa_state(0));
  size_t processed = 0;
  while (processed < order.size()) {
    std::vector<bool> carry = order[processed];
    int carry_id = static_cast<int>(processed);
    ++processed;
    for (size_t a = 0; a < alphabet.size(); ++a) {
      std::vector<bool> next = sws.StepBack(carry, alphabet[a]);
      size_t before = order.size();
      int next_id = intern(next);
      if (static_cast<size_t>(next_id) == before) reversed.AddState();
      reversed.AddTransition(nfa_state(carry_id), static_cast<int>(a),
                             nfa_state(next_id));
      if (sws.RootValue(carry, alphabet[a], /*root_msg=*/false)) {
        reversed.AddTransition(nfa_state(carry_id), static_cast<int>(a),
                               accept);
      }
    }
  }
  return reversed.Reverse();
}

}  // namespace sws::analysis
