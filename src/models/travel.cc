#include "models/travel.h"

#include "logic/cq.h"
#include "logic/fo.h"
#include "logic/ucq.h"
#include "util/common.h"

namespace sws::models {

namespace {

using core::ActRelation;
using core::kInputRelation;
using core::kMsgRelation;
using core::RelQuery;
using core::Sws;
using core::TransitionTarget;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::FoFormula;
using logic::FoQuery;
using logic::Term;
using logic::UnionQuery;

rel::Schema TravelSchema() {
  rel::Schema schema;
  schema.Add(rel::RelationSchema("Ra", {"dest", "price"}));
  schema.Add(rel::RelationSchema("Rh", {"dest", "price"}));
  schema.Add(rel::RelationSchema("Rt", {"dest", "price"}));
  schema.Add(rel::RelationSchema("Rc", {"dest", "price"}));
  return schema;
}

constexpr size_t kRinArity = 3;   // (tag, dest, budget)
constexpr size_t kRoutArity = 4;  // (x_a, x_h, x_t, x_c)

// φ_tag(t, x, y) = R_in(t, x, y) ∧ t = tag — selects the user's
// requirements for one component (Example 2.1).
RelQuery SelectTag(const char* tag) {
  return RelQuery::Cq(ConjunctiveQuery(
      {Term::Str(tag), Term::Var(0), Term::Var(1)},
      {Atom{kInputRelation, {Term::Str(tag), Term::Var(0), Term::Var(1)}}}));
}

// Leaf synthesis: join the register's requirement with the catalog,
// placing the booked price in the component's output slot (0 elsewhere).
RelQuery LeafSynthesis(const char* tag, const std::string& catalog,
                       size_t slot) {
  std::vector<Term> head(kRoutArity, Term::Int(0));
  head[slot] = Term::Var(1);  // the matched price
  return RelQuery::Cq(ConjunctiveQuery(
      std::move(head),
      {Atom{kMsgRelation, {Term::Str(tag), Term::Var(0), Term::Var(2)}},
       Atom{catalog, {Term::Var(0), Term::Var(1)}}}));
}

// ψ0 of Example 2.1 (FO): conjunction of airfare, hotel, and the
// deterministic ticket-over-car preference X3 = Y1 ∨ (¬Y1 ∧ Y2).
RelQuery RootSynthesisFo() {
  auto v = [](int i) { return Term::Var(i); };
  // Head variables 0..3 = (x_a, x_h, x_t, x_c); 4..7 are local.
  FoFormula airfare = FoFormula::Exists(
      {4, 5, 6}, FoFormula::MakeAtom(ActRelation(1), {v(0), v(4), v(5), v(6)}));
  FoFormula hotel = FoFormula::Exists(
      {4, 5, 6}, FoFormula::MakeAtom(ActRelation(2), {v(4), v(1), v(5), v(6)}));
  FoFormula tickets = FoFormula::Exists(
      {4, 5}, FoFormula::MakeAtom(ActRelation(3), {v(4), v(5), v(2), v(3)}));
  FoFormula any_ticket = FoFormula::Exists(
      {4, 5, 6, 7},
      FoFormula::MakeAtom(ActRelation(3), {v(4), v(5), v(6), v(7)}));
  FoFormula car = FoFormula::Exists(
      {4, 5}, FoFormula::MakeAtom(ActRelation(4), {v(4), v(5), v(2), v(3)}));
  FoFormula local =
      FoFormula::Or(tickets,
                    FoFormula::And(FoFormula::Not(any_ticket), car));
  return RelQuery::Fo(
      FoQuery({v(0), v(1), v(2), v(3)},
              FoFormula::And({airfare, hotel, local})));
}

// The UCQ variant: (airfare ∧ hotel ∧ tickets) ∪ (airfare ∧ hotel ∧ car).
RelQuery RootSynthesisUcq() {
  auto v = [](int i) { return Term::Var(i); };
  auto disjunct = [&](size_t local_act) {
    return ConjunctiveQuery(
        {v(0), v(1), v(2), v(3)},
        {Atom{ActRelation(1), {v(0), v(4), v(5), v(6)}},
         Atom{ActRelation(2), {v(7), v(1), v(8), v(9)}},
         Atom{ActRelation(local_act), {v(10), v(11), v(2), v(3)}}});
  };
  UnionQuery psi(kRoutArity);
  psi.Add(disjunct(3));
  psi.Add(disjunct(4));
  return RelQuery::Ucq(std::move(psi));
}

void AddLeaf(Sws* sws, int state, const char* tag, const std::string& catalog,
             size_t slot) {
  sws->SetTransition(state, {});
  sws->SetSynthesis(state, LeafSynthesis(tag, catalog, slot));
}

}  // namespace

TravelService MakeTravelService() {
  Sws sws(TravelSchema(), kRinArity, kRoutArity);
  int q0 = sws.AddState("q0");
  int qa = sws.AddState("qa");
  int qh = sws.AddState("qh");
  int qt = sws.AddState("qt");
  int qc = sws.AddState("qc");
  sws.SetTransition(q0, {TransitionTarget{qa, SelectTag(kTagAirfare)},
                         TransitionTarget{qh, SelectTag(kTagHotel)},
                         TransitionTarget{qt, SelectTag(kTagTicket)},
                         TransitionTarget{qc, SelectTag(kTagCar)}});
  sws.SetSynthesis(q0, RootSynthesisFo());
  AddLeaf(&sws, qa, kTagAirfare, "Ra", 0);
  AddLeaf(&sws, qh, kTagHotel, "Rh", 1);
  AddLeaf(&sws, qt, kTagTicket, "Rt", 2);
  AddLeaf(&sws, qc, kTagCar, "Rc", 3);
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return TravelService{std::move(sws)};
}

TravelService MakeTravelServiceCqUcq() {
  TravelService service = MakeTravelService();
  service.sws.SetSynthesis(0, RootSynthesisUcq());
  SWS_CHECK(!service.sws.Validate().has_value()) << *service.sws.Validate();
  return service;
}

TravelService MakeTravelServiceRecursive() {
  Sws sws(TravelSchema(), kRinArity, kRoutArity);
  int q0 = sws.AddState("q0");
  int qa = sws.AddState("qa");      // the recursive inquiry chain
  int qf = sws.AddState("qf");      // per-inquiry airfare lookup
  int qh = sws.AddState("qh");
  int qt = sws.AddState("qt");
  int qc = sws.AddState("qc");
  sws.SetTransition(q0, {TransitionTarget{qa, SelectTag(kTagAirfare)},
                         TransitionTarget{qh, SelectTag(kTagHotel)},
                         TransitionTarget{qt, SelectTag(kTagTicket)},
                         TransitionTarget{qc, SelectTag(kTagCar)}});
  sws.SetSynthesis(q0, RootSynthesisFo());
  // q_a → (q_a, φ_a), (q_f, φ_a); ψ'_a = Act1 ∨ (¬∃ Act1 ∧ Act2):
  // the latest successful inquiry wins (Example 2.1, τ2).
  sws.SetTransition(qa, {TransitionTarget{qa, SelectTag(kTagAirfare)},
                         TransitionTarget{qf, SelectTag(kTagAirfare)}});
  {
    auto v = [](int i) { return Term::Var(i); };
    FoFormula deeper =
        FoFormula::MakeAtom(ActRelation(1), {v(0), v(1), v(2), v(3)});
    FoFormula any_deeper = FoFormula::Exists(
        {4, 5, 6, 7},
        FoFormula::MakeAtom(ActRelation(1), {v(4), v(5), v(6), v(7)}));
    FoFormula here =
        FoFormula::MakeAtom(ActRelation(2), {v(0), v(1), v(2), v(3)});
    sws.SetSynthesis(
        qa, RelQuery::Fo(FoQuery(
                {v(0), v(1), v(2), v(3)},
                FoFormula::Or(deeper,
                              FoFormula::And(FoFormula::Not(any_deeper),
                                             here)))));
  }
  AddLeaf(&sws, qf, kTagAirfare, "Ra", 0);
  AddLeaf(&sws, qh, kTagHotel, "Rh", 1);
  AddLeaf(&sws, qt, kTagTicket, "Rt", 2);
  AddLeaf(&sws, qc, kTagCar, "Rc", 3);
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  SWS_CHECK(sws.IsRecursive());
  return TravelService{std::move(sws)};
}

namespace {

// A depth-2 component: root spawns the listed (tag, catalog, slot) legs
// and joins their outputs into one R_out tuple via a CQ (or unions them
// when `union_legs` is true and arities allow). For τ_a a single leg is
// simply copied up.
TravelService MakeComponent(
    const std::vector<std::tuple<const char*, std::string, size_t>>& legs) {
  Sws sws(TravelSchema(), kRinArity, kRoutArity);
  int q0 = sws.AddState("q0");
  std::vector<TransitionTarget> successors;
  for (size_t i = 0; i < legs.size(); ++i) {
    const auto& [tag, catalog, slot] = legs[i];
    int leaf = sws.AddState(std::string("leg_") + tag);
    successors.push_back(TransitionTarget{leaf, SelectTag(tag)});
    AddLeaf(&sws, leaf, tag, catalog, slot);
  }
  sws.SetTransition(q0, std::move(successors));
  // Root synthesis: join the legs — each leg fills its own slot and 0s
  // elsewhere, so the joined tuple takes each slot from its leg.
  auto v = [](int i) { return Term::Var(i); };
  std::vector<Term> head = {v(0), v(1), v(2), v(3)};
  std::vector<Atom> body;
  for (size_t i = 0; i < legs.size(); ++i) {
    const size_t slot = std::get<2>(legs[i]);
    std::vector<Term> args;
    for (size_t a = 0; a < kRoutArity; ++a) {
      args.push_back(a == slot ? v(static_cast<int>(a))
                               : Term::Int(0));
    }
    // Non-slot head positions default to 0 via the head terms below.
    body.push_back(Atom{ActRelation(i + 1), std::move(args)});
  }
  // Head positions not covered by any leg are the constant 0.
  for (size_t a = 0; a < kRoutArity; ++a) {
    bool covered = false;
    for (const auto& [tag, catalog, slot] : legs) {
      if (slot == a) covered = true;
    }
    if (!covered) head[a] = Term::Int(0);
  }
  sws.SetSynthesis(q0, RelQuery::Cq(ConjunctiveQuery(head, body)));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return TravelService{std::move(sws)};
}

}  // namespace

TravelService MakeTravelComponentAirfare() {
  return MakeComponent({{kTagAirfare, "Ra", 0}});
}

TravelService MakeTravelComponentHotelTickets() {
  return MakeComponent({{kTagHotel, "Rh", 1}, {kTagTicket, "Rt", 2}});
}

TravelService MakeTravelComponentHotelCar() {
  return MakeComponent({{kTagHotel, "Rh", 1}, {kTagCar, "Rc", 3}});
}

rel::Database MakeTravelDatabase() {
  rel::Database db(TravelSchema());
  auto add = [&db](const std::string& rel, const std::string& dest,
                   int64_t price) {
    db.GetMutable(rel)->Insert({rel::Value::Str(dest),
                                rel::Value::Int(price)});
  };
  add("Ra", "orlando", 300);
  add("Ra", "paris", 450);
  add("Ra", "tokyo", 900);
  add("Rh", "orlando", 120);
  add("Rh", "paris", 200);
  add("Rt", "orlando", 80);   // tickets only in Orlando
  add("Rc", "orlando", 45);
  add("Rc", "paris", 60);
  return db;
}

rel::Relation MakeTravelRequest(const std::string& dest, int64_t budget) {
  rel::Relation message(kRinArity);
  for (const char* tag : {kTagAirfare, kTagHotel, kTagTicket, kTagCar}) {
    message.Insert({rel::Value::Str(tag), rel::Value::Str(dest),
                    rel::Value::Int(budget)});
  }
  return message;
}

}  // namespace sws::models
