#ifndef SWS_MODELS_ROMAN_H_
#define SWS_MODELS_ROMAN_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "relational/input_sequence.h"
#include "sws/pl_sws.h"
#include "sws/sws.h"

namespace sws::models {

/// The Roman model [6] (Section 3): a Web service is a DFA (an NFA for
/// composite services) over a shared alphabet of *actions*; a string is a
/// legal behavior iff it reaches a final state. This module provides the
/// paper's two embeddings:
///
///  * f_τ into SWS(PL, PL): input variables 0..alphabet-1 encode the
///    action letters (letter a is the singleton message {a}) and variable
///    `alphabet` is the end-of-session delimiter '#'; f_I appends '#'.
///    RomanToPlSws(ω).Run(EncodeRomanPlWord(w)) == ω accepts w.
///
///  * the SWS(CQ, UCQ) variant that *defers commitment*: it outputs the
///    encoded input itself when the action string is legal and ∅
///    otherwise, so the actions are committed only after the whole
///    session is validated (the point of Example 1.1). Input messages are
///    pairs (position, action-id); the delimiter is (n+1, alphabet).

/// f_τ for PL. The automaton may be an NFA (composite service); epsilon
/// transitions are eliminated internally.
core::PlSws RomanToPlSws(const fsa::Nfa& service);
core::PlSws RomanToPlSws(const fsa::Dfa& service);

/// f_I for PL: one singleton message per letter plus the delimiter.
core::PlSws::Word EncodeRomanPlWord(const std::vector<int>& actions,
                                    int alphabet_size);

/// The deferring SWS(CQ, UCQ) embedding.
core::Sws RomanToCqSws(const fsa::Nfa& service);

/// f_I for the CQ embedding: message j is {(j, a_j)}; the final message
/// is {(n+1, alphabet_size)} (the delimiter).
rel::InputSequence EncodeRomanCqWord(const std::vector<int>& actions,
                                     int alphabet_size);

/// The relation the CQ embedding outputs on acceptance: exactly the
/// tuples of EncodeRomanCqWord packed into one relation.
rel::Relation ExpectedRomanCqOutput(const std::vector<int>& actions,
                                    int alphabet_size);

}  // namespace sws::models

#endif  // SWS_MODELS_ROMAN_H_
