#ifndef SWS_MODELS_PEER_H_
#define SWS_MODELS_PEER_H_

#include <string>
#include <vector>

#include "logic/fo.h"
#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/sws.h"

namespace sws::models {

/// A (single-)peer of the data-driven transducer model [13] (Section 3),
/// in the simplified form the paper's embedding uses: a peer has
///  * a fixed local database D over `db_schema`,
///  * one state relation S (arity `state_arity`) accumulating run state,
///  * one user-input relation U (arity `input_arity`),
///  * one action relation A (arity `action_arity`) accumulating actions,
/// and two FO rules evaluated at every step j on (D, S_{j-1}, I_j):
///  * the state rule defines S_j   (head variables 0..state_arity-1),
///  * the action rule defines the actions added to A at step j.
/// Queues/output messages of the full model are subsumed by A here; the
/// asynchronous-channel features of [13] are out of the paper's scope
/// (its Related Work explicitly sets them aside).
///
/// Rules may read the database relations plus the logical relations
/// kPeerState ("S") and kPeerInput ("U").
class Peer {
 public:
  inline static const std::string kPeerState = "S";
  inline static const std::string kPeerInput = "U";

  Peer(rel::Schema db_schema, size_t input_arity, size_t state_arity,
       size_t action_arity);

  void set_state_rule(logic::FoFormula formula);
  void set_action_rule(logic::FoFormula formula);

  const rel::Schema& db_schema() const { return db_schema_; }
  size_t input_arity() const { return input_arity_; }
  size_t state_arity() const { return state_arity_; }
  size_t action_arity() const { return action_arity_; }
  const logic::FoFormula& state_rule() const { return state_rule_; }
  const logic::FoFormula& action_rule() const { return action_rule_; }

  /// Checks rule arities/free variables and relation usage.
  std::optional<std::string> Validate() const;

  struct StepResult {
    rel::Relation next_state;
    rel::Relation actions;  // actions generated at this step
  };

  /// One execution step on (D, S, I_j).
  StepResult Step(const rel::Database& db, const rel::Relation& state,
                  const rel::Relation& input) const;

  struct RunResult {
    std::vector<rel::Relation> states;              // S_1..S_n
    std::vector<rel::Relation> cumulative_actions;  // A after each step
  };

  /// Runs the peer over an input sequence, from the empty initial state.
  RunResult Run(const rel::Database& db,
                const std::vector<rel::Relation>& inputs) const;

 private:
  rel::Schema db_schema_;
  size_t input_arity_;
  size_t state_arity_;
  size_t action_arity_;
  logic::FoFormula state_rule_;
  logic::FoFormula action_rule_;
};

/// f_τ of Section 3: embeds the peer into SWS(FO, FO). The SWS carries
/// the peer state through its message registers: R_in tuples are tagged
/// ("in" for user input, "st" for carried state, "pad" for the liveness
/// padding that keeps registers nonempty); R_out is the action schema.
/// The service is recursive with states q0, qs, qf, exactly as in the
/// paper: q0 → (qs, φ), (qf, φ_f); qs → (qs, φ), (qf, φ_f); ψ(qf) emits
/// the step actions and ψ(q0), ψ(qs) take unions.
///
/// For every database D and inputs I_1..I_n, and every prefix length j,
///   Run(PeerToSws(p), D, EncodePeerInput(I_1..I_j)).output
///     == p.Run(D, I_1..I_n).cumulative_actions[j-1],
/// which is the paper's f_I correspondence (the session list
/// I_1,#,I_1,I_2,#,... replays prefixes; here we expose the per-prefix
/// form directly and sessions come from sws/session.h).
core::Sws PeerToSws(const Peer& peer);

/// Encodes peer inputs for the translated service: message j carries the
/// tagged tuples ("in", I_j-tuple, padding).
rel::InputSequence EncodePeerInput(const Peer& peer,
                                   const std::vector<rel::Relation>& inputs);

}  // namespace sws::models

#endif  // SWS_MODELS_PEER_H_
