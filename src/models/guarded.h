#ifndef SWS_MODELS_GUARDED_H_
#define SWS_MODELS_GUARDED_H_

#include <optional>
#include <string>
#include <vector>

#include "models/peer.h"

namespace sws::models {

/// Guarded automata in the style of the conversation-protocol model [15]
/// and Colombo's guarded transitions [5] (Section 3): an automaton whose
/// transitions fire when an FO *guard* over the local database and the
/// current input message holds, emitting actions via an FO query. The
/// paper observes these models embed into peers [13]; GuardedToPeer is
/// that embedding, and composing with PeerToSws yields the SWS(FO, FO)
/// characterization.
///
/// Semantics: subset (conversation) semantics — a configuration is the
/// set of active states, initially {start} (encoded as "state relation
/// empty"); at each step every enabled transition from an active state
/// fires, the new configuration is the set of targets, and the actions of
/// all fired transitions are emitted.
struct GuardedTransition {
  int from = 0;
  int to = 0;
  /// FO sentence over the database relations and the input relation
  /// Peer::kPeerInput ("U"); no free variables.
  logic::FoFormula guard;
  /// FO query body over the same relations; free variables
  /// 0..action_arity-1 are the emitted action tuple.
  logic::FoFormula action;
};

class GuardedAutomaton {
 public:
  GuardedAutomaton(rel::Schema db_schema, size_t input_arity,
                   size_t action_arity, int num_states, int start_state);

  void AddTransition(GuardedTransition transition);

  const rel::Schema& db_schema() const { return db_schema_; }
  size_t input_arity() const { return input_arity_; }
  size_t action_arity() const { return action_arity_; }
  int num_states() const { return num_states_; }
  int start_state() const { return start_state_; }
  const std::vector<GuardedTransition>& transitions() const {
    return transitions_;
  }

  std::optional<std::string> Validate() const;

  /// Direct subset semantics, for differential testing against the peer
  /// embedding.
  struct StepResult {
    std::set<int> next_states;
    rel::Relation actions;
  };
  StepResult Step(const rel::Database& db, const std::set<int>& states,
                  const rel::Relation& input) const;

  /// The embedding into the peer model: the unary state relation holds
  /// the active-state ids; an empty state relation denotes the initial
  /// configuration {start}. Caveat of the encoding: if a configuration
  /// ever becomes empty (no transition fired), the peer re-activates the
  /// start state on the following step, whereas the direct semantics
  /// stays empty — use automata that always keep one enabled transition
  /// when exact step-by-step agreement matters.
  Peer ToPeer() const;

 private:
  rel::Schema db_schema_;
  size_t input_arity_;
  size_t action_arity_;
  int num_states_;
  int start_state_;
  std::vector<GuardedTransition> transitions_;
};

}  // namespace sws::models

#endif  // SWS_MODELS_GUARDED_H_
