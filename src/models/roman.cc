#include "models/roman.h"

#include "logic/cq.h"
#include "util/common.h"

namespace sws::models {

namespace {

using core::ActRelation;
using core::kInputRelation;
using core::kMsgRelation;
using core::PlSws;
using core::RelQuery;
using core::Sws;
using core::TransitionTarget;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::PlFormula;
using logic::Term;
using logic::UnionQuery;
using F = PlFormula;

// "The input message is exactly the singleton {v}" over num_vars
// variables.
F ExactSingleton(int v, int num_vars) {
  std::vector<F> conjuncts;
  for (int u = 0; u < num_vars; ++u) {
    conjuncts.push_back(u == v ? F::Var(u) : F::Not(F::Var(u)));
  }
  return F::And(std::move(conjuncts));
}

}  // namespace

core::PlSws RomanToPlSws(const fsa::Nfa& service_in) {
  const fsa::Nfa service = service_in.RemoveEpsilons();
  const int sigma = service.alphabet_size();
  const int num_vars = sigma + 1;  // letters + '#'
  const int hash_var = sigma;
  PlSws sws(num_vars);
  // A fresh root replicates the start states' rule (q0 must not appear in
  // any rhs). The paper's translation keeps all states of ω plus q_f.
  int root = sws.AddState("root");
  std::vector<int> state_of(service.num_states());
  for (int q = 0; q < service.num_states(); ++q) {
    state_of[q] = sws.AddState("s" + std::to_string(q));
  }
  int qf = sws.AddState("qf");
  sws.SetTransition(qf, {});
  // Act(q_f) ← Msg(q_f): echo the register bit.
  sws.SetSynthesis(qf, F::Var(sws.msg_var()));

  // Builds the rule of one automaton state (or of the root over a set of
  // start states): successors per outgoing transition, plus q_f when some
  // covered state is final; the synthesis is the disjunction of all
  // successor registers.
  auto build_rule = [&](const std::set<int>& covered, int sws_state) {
    std::vector<PlSws::Successor> successors;
    for (int q : covered) {
      for (int a = 0; a < sigma; ++a) {
        for (int target : service.Successors(q, a)) {
          successors.push_back(PlSws::Successor{
              state_of[target], ExactSingleton(a, num_vars)});
        }
      }
    }
    bool any_final = false;
    for (int q : covered) {
      if (service.IsFinal(q)) any_final = true;
    }
    if (any_final) {
      successors.push_back(
          PlSws::Successor{qf, ExactSingleton(hash_var, num_vars)});
    }
    std::vector<F> acts;
    for (size_t i = 0; i < successors.size(); ++i) {
      acts.push_back(F::Var(static_cast<int>(i)));
    }
    sws.SetTransition(sws_state, std::move(successors));
    sws.SetSynthesis(sws_state, F::Or(std::move(acts)));
  };

  for (int q = 0; q < service.num_states(); ++q) {
    build_rule({q}, state_of[q]);
  }
  build_rule(service.initial(), root);
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

core::PlSws RomanToPlSws(const fsa::Dfa& service) {
  return RomanToPlSws(service.ToNfa());
}

core::PlSws::Word EncodeRomanPlWord(const std::vector<int>& actions,
                                    int alphabet_size) {
  PlSws::Word word;
  for (int a : actions) {
    SWS_CHECK(a >= 0 && a < alphabet_size);
    word.push_back({a});
  }
  word.push_back({alphabet_size});
  return word;
}

namespace {

// CQ "the current input message carries action `a`": selects (t, a) from
// In. Used both as a guard register and as the emitted action.
ConjunctiveQuery SelectAction(int64_t a) {
  return ConjunctiveQuery(
      {Term::Var(0), Term::Int(a)},
      {Atom{kInputRelation, {Term::Var(0), Term::Int(a)}}});
}

}  // namespace

core::Sws RomanToCqSws(const fsa::Nfa& service_in) {
  const fsa::Nfa service = service_in.RemoveEpsilons();
  const int sigma = service.alphabet_size();
  const int64_t hash = sigma;  // delimiter action id
  // R_in = R_out = (position, action).
  Sws sws(rel::Schema{}, /*rin_arity=*/2, /*rout_arity=*/2);
  int root = sws.AddState("root");
  std::vector<int> state_of(service.num_states());
  for (int q = 0; q < service.num_states(); ++q) {
    state_of[q] = sws.AddState("s" + std::to_string(q));
  }
  // The echo leaf: outputs its register (one action or the delimiter).
  int echo = sws.AddState("echo");
  sws.SetTransition(echo, {});
  sws.SetSynthesis(echo, RelQuery::Cq(ConjunctiveQuery(
                             {Term::Var(0), Term::Var(1)},
                             {Atom{kMsgRelation, {Term::Var(0), Term::Var(1)}}})));

  // Rule of a state covering `covered` automaton states: per transition
  // (a, q') a *main* child continuing at q' and an *emit* child holding
  // the action; per covered final state a delimiter child. The synthesis
  // is the union over transitions of
  //   Act(main)  ∪  (Act(emit) guarded by Act(main) nonempty)
  // plus Act(delimiter child) — so actions are only committed when the
  // rest of the session is legal (deferred commitment).
  auto build_rule = [&](const std::set<int>& covered, int sws_state) {
    std::vector<TransitionTarget> successors;
    UnionQuery psi(2);
    auto add_transition = [&](int a, int target) {
      size_t main_index = successors.size() + 1;   // 1-based Act index
      size_t emit_index = successors.size() + 2;
      successors.push_back(
          TransitionTarget{state_of[target], RelQuery::Cq(SelectAction(a))});
      successors.push_back(
          TransitionTarget{echo, RelQuery::Cq(SelectAction(a))});
      // Act(main) passes the rest of the session up.
      psi.Add(ConjunctiveQuery(
          {Term::Var(0), Term::Var(1)},
          {Atom{ActRelation(main_index), {Term::Var(0), Term::Var(1)}}}));
      // Act(emit) joins with an existential Act(main) witness.
      psi.Add(ConjunctiveQuery(
          {Term::Var(0), Term::Var(1)},
          {Atom{ActRelation(emit_index), {Term::Var(0), Term::Var(1)}},
           Atom{ActRelation(main_index), {Term::Var(2), Term::Var(3)}}}));
    };
    for (int q : covered) {
      for (int a = 0; a < sigma; ++a) {
        for (int target : service.Successors(q, a)) {
          add_transition(a, target);
        }
      }
    }
    bool any_final = false;
    for (int q : covered) {
      if (service.IsFinal(q)) any_final = true;
    }
    if (any_final) {
      size_t hash_index = successors.size() + 1;
      successors.push_back(
          TransitionTarget{echo, RelQuery::Cq(SelectAction(hash))});
      psi.Add(ConjunctiveQuery(
          {Term::Var(0), Term::Var(1)},
          {Atom{ActRelation(hash_index), {Term::Var(0), Term::Var(1)}}}));
    }
    sws.SetTransition(sws_state, std::move(successors));
    sws.SetSynthesis(sws_state, RelQuery::Ucq(std::move(psi)));
  };

  for (int q = 0; q < service.num_states(); ++q) {
    build_rule({q}, state_of[q]);
  }
  build_rule(service.initial(), root);
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

rel::InputSequence EncodeRomanCqWord(const std::vector<int>& actions,
                                     int alphabet_size) {
  rel::InputSequence out(2);
  for (size_t j = 0; j < actions.size(); ++j) {
    SWS_CHECK(actions[j] >= 0 && actions[j] < alphabet_size);
    rel::Relation m(2);
    m.Insert({rel::Value::Int(static_cast<int64_t>(j + 1)),
              rel::Value::Int(actions[j])});
    out.Append(std::move(m));
  }
  rel::Relation hash(2);
  hash.Insert({rel::Value::Int(static_cast<int64_t>(actions.size() + 1)),
               rel::Value::Int(alphabet_size)});
  out.Append(std::move(hash));
  return out;
}

rel::Relation ExpectedRomanCqOutput(const std::vector<int>& actions,
                                    int alphabet_size) {
  rel::Relation out(2);
  for (size_t j = 0; j < actions.size(); ++j) {
    out.Insert({rel::Value::Int(static_cast<int64_t>(j + 1)),
                rel::Value::Int(actions[j])});
  }
  out.Insert({rel::Value::Int(static_cast<int64_t>(actions.size() + 1)),
              rel::Value::Int(alphabet_size)});
  return out;
}

}  // namespace sws::models
