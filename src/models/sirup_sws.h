#ifndef SWS_MODELS_SIRUP_SWS_H_
#define SWS_MODELS_SIRUP_SWS_H_

#include "logic/datalog.h"
#include "relational/input_sequence.h"
#include "sws/sws.h"

namespace sws::models {

/// The expressiveness artifact behind the Theorem 4.1(2) lower bound:
/// non-emptiness of SWS(CQ, UCQ) is exptime-hard "by reduction from the
/// problem for deciding whether a single ground fact, single rule
/// datalog program (sirup) accepts a goal [19]". This module embeds a
/// sirup into a recursive SWS(CQ, UCQ):
///
///  * one recursive state `p` stands for the IDB predicate; its action
///    register accumulates nothing — derivations are built by the
///    *synthesis* rules flowing upward: ψ(p) is the UCQ
///      (rule head  :-  Act over the P-children and EDB-children)
///      ∪ (the ground fact via a base child),
///    so Act(p) at a node with h remaining input levels is exactly the
///    set of P-facts with derivation trees of height ≤ ~h;
///  * EDB atoms of the rule body are fetched by echo children whose
///    transition queries read the local database (internal synthesis may
///    not — Definition 2.1 — so the data is routed through registers);
///  * the input sequence is pure fuel: longer inputs admit deeper
///    derivations, the recursive-SWS idiom of Section 5.2.
///
/// For every EDB database D and sufficient fuel,
///   Run(SirupToSws(s), D, SirupFuel(n)).output
///     == the sirup's fixpoint P-relation (padded to the register width).
core::Sws SirupToSws(const logic::Sirup& sirup);

/// Fuel input for the embedding (empty messages of the register width).
rel::InputSequence SirupFuel(const logic::Sirup& sirup, size_t n);

/// A fuel length guaranteeing convergence on `edb`: every fixpoint round
/// adds at least one fact, so #possible-facts + 2 levels suffice.
size_t SirupSufficientFuel(const logic::Sirup& sirup,
                           const rel::Database& edb);

/// The register width m (max arity across the IDB predicate and the
/// rule's EDB atoms); outputs are P-facts padded with Int(0) to width m.
size_t SirupRegisterWidth(const logic::Sirup& sirup);

/// Pads the fixpoint P-relation to the register width, for comparing
/// against the embedding's output.
rel::Relation PadSirupFacts(const logic::Sirup& sirup,
                            const rel::Relation& p_facts);

}  // namespace sws::models

#endif  // SWS_MODELS_SIRUP_SWS_H_
