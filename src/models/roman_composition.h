#ifndef SWS_MODELS_ROMAN_COMPOSITION_H_
#define SWS_MODELS_ROMAN_COMPOSITION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "automata/dfa.h"

namespace sws::models {

/// Composition synthesis in the Roman model [6, 24] — implemented for
/// contrast with SWS composition (Section 5 closes with exactly this
/// comparison: the Roman model interleaves component executions, SWS
/// composition runs components to completion, and the complexities
/// differ: exptime-complete vs 2expspace-hard).
///
/// Problem: given a target DFA T and component DFAs C_1..C_m over one
/// action alphabet, is there an orchestrator that realizes every legal
/// behavior of T by delegating each action to some component, moving only
/// that component? Realizability is the existence of a *simulation*
/// relation S ⊆ Q_T × (Q_1 × ... × Q_m) with
///   * (t, c̄) ∈ S and t final  ⇒  every c_i final (the session may stop),
///   * for every a with t -a-> t' there is a component i and its move
///     c_i -a-> c'_i with (t', c̄[i := c'_i]) ∈ S,
/// containing the initial pair. We compute the greatest such relation by
/// fixpoint over the (exponential) product space — the exptime procedure.

struct RomanCompositionResult {
  bool composable = false;
  /// Orchestrator: (target state, joint component state, action) →
  /// (component index, target successor, component successor). Present
  /// for every reachable simulation pair and action of T.
  std::map<std::tuple<int, std::vector<int>, int>, std::tuple<int, int, int>>
      delegation;
  uint64_t product_states_visited = 0;
  uint64_t fixpoint_iterations = 0;
};

RomanCompositionResult ComposeRoman(const fsa::Dfa& target,
                                    const std::vector<fsa::Dfa>& components);

/// Replays a word of the target through the orchestrator, checking that
/// every step is a legal delegated move and that the final joint state is
/// accepting everywhere when the word is accepted by the target.
/// Returns false if the orchestrator gets stuck (only possible if the
/// word is not in L(target) or the composition result was negative).
bool ExecuteOrchestration(const fsa::Dfa& target,
                          const std::vector<fsa::Dfa>& components,
                          const RomanCompositionResult& result,
                          const std::vector<int>& word);

}  // namespace sws::models

#endif  // SWS_MODELS_ROMAN_COMPOSITION_H_
