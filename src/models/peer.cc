#include "models/peer.h"

#include "util/common.h"

namespace sws::models {

namespace {

using core::ActRelation;
using core::kInputRelation;
using core::kMsgRelation;
using core::RelQuery;
using core::Sws;
using core::TransitionTarget;
using logic::FoFormula;
using logic::FoQuery;
using logic::Term;

}  // namespace

Peer::Peer(rel::Schema db_schema, size_t input_arity, size_t state_arity,
           size_t action_arity)
    : db_schema_(std::move(db_schema)),
      input_arity_(input_arity),
      state_arity_(state_arity),
      action_arity_(action_arity),
      state_rule_(FoFormula::False()),
      action_rule_(FoFormula::False()) {}

void Peer::set_state_rule(logic::FoFormula formula) {
  state_rule_ = std::move(formula);
}

void Peer::set_action_rule(logic::FoFormula formula) {
  action_rule_ = std::move(formula);
}

std::optional<std::string> Peer::Validate() const {
  auto check_rule = [this](const FoFormula& rule, size_t arity,
                           const char* what) -> std::optional<std::string> {
    for (int v : rule.FreeVars()) {
      if (v < 0 || v >= static_cast<int>(arity)) {
        return std::string(what) + " rule has free variable X" +
               std::to_string(v) + " outside head arity " +
               std::to_string(arity);
      }
    }
    for (const auto& [name, rel_arity] : rule.RelationArities()) {
      if (name == kPeerState) {
        if (rel_arity != state_arity_) return "S used with wrong arity";
      } else if (name == kPeerInput) {
        if (rel_arity != input_arity_) return "U used with wrong arity";
      } else if (const auto* schema = db_schema_.Find(name);
                 schema == nullptr || schema->arity() != rel_arity) {
        return std::string(what) + " rule reads unknown relation " + name;
      }
    }
    return std::nullopt;
  };
  if (auto err = check_rule(state_rule_, state_arity_, "state");
      err.has_value()) {
    return err;
  }
  return check_rule(action_rule_, action_arity_, "action");
}

Peer::StepResult Peer::Step(const rel::Database& db,
                            const rel::Relation& state,
                            const rel::Relation& input) const {
  SWS_CHECK_EQ(state.arity(), state_arity_);
  SWS_CHECK_EQ(input.arity(), input_arity_);
  rel::Database env = db;
  env.Set(kPeerState, state);
  env.Set(kPeerInput, input);
  auto head = [](size_t arity) {
    std::vector<Term> terms;
    for (size_t i = 0; i < arity; ++i) {
      terms.push_back(Term::Var(static_cast<int>(i)));
    }
    return terms;
  };
  StepResult result{
      FoQuery(head(state_arity_), state_rule_).Evaluate(env),
      FoQuery(head(action_arity_), action_rule_).Evaluate(env)};
  return result;
}

Peer::RunResult Peer::Run(const rel::Database& db,
                          const std::vector<rel::Relation>& inputs) const {
  RunResult result;
  rel::Relation state(state_arity_);
  rel::Relation actions(action_arity_);
  for (const rel::Relation& input : inputs) {
    StepResult step = Step(db, state, input);
    state = std::move(step.next_state);
    actions = actions.Union(step.actions);
    result.states.push_back(state);
    result.cumulative_actions.push_back(actions);
  }
  return result;
}

namespace {

constexpr const char* kTagInput = "in";
constexpr const char* kTagState = "st";
constexpr const char* kTagPad = "pad";

// Rewrites S(t̄) into Msg("st", t̄, 0..0) and U(t̄) into In("in", t̄, 0..0),
// where p is the shared payload width of the tagged encoding.
FoFormula RewriteRule(const FoFormula& f, size_t p) {
  using Kind = FoFormula::Kind;
  switch (f.kind()) {
    case Kind::kAtom: {
      if (f.relation() != Peer::kPeerState &&
          f.relation() != Peer::kPeerInput) {
        return FoFormula::MakeAtom(f.relation(), f.args());
      }
      bool is_state = f.relation() == Peer::kPeerState;
      std::vector<Term> args;
      args.push_back(Term::Str(is_state ? kTagState : kTagInput));
      args.insert(args.end(), f.args().begin(), f.args().end());
      while (args.size() < p + 1) args.push_back(Term::Int(0));
      return FoFormula::MakeAtom(
          is_state ? kMsgRelation : kInputRelation, std::move(args));
    }
    case Kind::kEq:
      return FoFormula::Eq(f.args()[0], f.args()[1]);
    case Kind::kNot:
      return FoFormula::Not(RewriteRule(f.children()[0], p));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FoFormula> children;
      for (const auto& c : f.children()) {
        children.push_back(RewriteRule(c, p));
      }
      return f.kind() == Kind::kAnd ? FoFormula::And(std::move(children))
                                    : FoFormula::Or(std::move(children));
    }
    case Kind::kExists:
      return FoFormula::Exists(f.bound_var(),
                               RewriteRule(f.children()[0], p));
    case Kind::kForall:
      return FoFormula::Forall(f.bound_var(),
                               RewriteRule(f.children()[0], p));
  }
  return FoFormula::False();
}

}  // namespace

core::Sws PeerToSws(const Peer& peer) {
  SWS_CHECK(!peer.Validate().has_value()) << *peer.Validate();
  const size_t p = std::max(peer.input_arity(), peer.state_arity());
  const size_t rin = p + 1;

  Sws sws(peer.db_schema(), rin, peer.action_arity());
  int q0 = sws.AddState("q0");
  int qs = sws.AddState("qs");
  int qf = sws.AddState("qf");

  // Variable conventions for the rule queries below: the payload head
  // variables are 0..p-1; the tag variable is 1000; spare head variables
  // 1001.. for padding positions.
  const int tag_var = 1000;
  auto register_head = [&]() {
    std::vector<Term> head;
    head.push_back(Term::Var(tag_var));
    for (size_t i = 0; i < p; ++i) {
      head.push_back(Term::Var(static_cast<int>(i)));
    }
    return head;
  };
  auto pin_payload_from = [&](size_t start) {
    std::vector<FoFormula> pins;
    for (size_t i = start; i < p; ++i) {
      pins.push_back(
          FoFormula::Eq(Term::Var(static_cast<int>(i)), Term::Int(0)));
    }
    return pins;
  };

  // φ: the next-state register. ("st", S_j-tuple, 0s) ∪ ("pad", 0s).
  FoFormula state_branch = RewriteRule(peer.state_rule(), p);
  {
    std::vector<FoFormula> conj = {
        FoFormula::Eq(Term::Var(tag_var), Term::Str(kTagState)),
        state_branch};
    auto pins = pin_payload_from(peer.state_arity());
    conj.insert(conj.end(), pins.begin(), pins.end());
    state_branch = FoFormula::And(std::move(conj));
  }
  FoFormula pad_branch;
  {
    std::vector<FoFormula> conj = {
        FoFormula::Eq(Term::Var(tag_var), Term::Str(kTagPad))};
    auto pins = pin_payload_from(0);
    conj.insert(conj.end(), pins.begin(), pins.end());
    pad_branch = FoFormula::And(std::move(conj));
  }
  FoQuery phi(register_head(), FoFormula::Or(state_branch, pad_branch));

  // φ_f: carry the parent register (plus padding for liveness).
  FoFormula carry = FoFormula::MakeAtom(kMsgRelation, register_head());
  FoQuery phi_f(register_head(), FoFormula::Or(carry, pad_branch));

  sws.SetTransition(q0, {TransitionTarget{qs, RelQuery::Fo(phi)},
                         TransitionTarget{qf, RelQuery::Fo(phi_f)}});
  sws.SetTransition(qs, {TransitionTarget{qs, RelQuery::Fo(phi)},
                         TransitionTarget{qf, RelQuery::Fo(phi_f)}});

  // ψ(q0) = ψ(qs) = Act1 ∪ Act2.
  std::vector<Term> action_head;
  for (size_t i = 0; i < peer.action_arity(); ++i) {
    action_head.push_back(Term::Var(static_cast<int>(i)));
  }
  FoFormula union_acts = FoFormula::Or(
      FoFormula::MakeAtom(ActRelation(1), action_head),
      FoFormula::MakeAtom(ActRelation(2), action_head));
  sws.SetSynthesis(q0, RelQuery::Fo(FoQuery(action_head, union_acts)));
  sws.SetSynthesis(qs, RelQuery::Fo(FoQuery(action_head, union_acts)));

  // ψ(qf): the action rule over the carried state and the current input.
  sws.SetTransition(qf, {});
  sws.SetSynthesis(
      qf, RelQuery::Fo(FoQuery(action_head,
                               RewriteRule(peer.action_rule(), p))));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  SWS_CHECK(sws.IsRecursive());
  return sws;
}

rel::InputSequence EncodePeerInput(const Peer& peer,
                                   const std::vector<rel::Relation>& inputs) {
  const size_t p = std::max(peer.input_arity(), peer.state_arity());
  rel::InputSequence out(p + 1);
  for (const rel::Relation& input : inputs) {
    SWS_CHECK_EQ(input.arity(), peer.input_arity());
    rel::Relation message(p + 1);
    for (const rel::Tuple& t : input) {
      rel::Tuple tagged;
      tagged.push_back(rel::Value::Str(kTagInput));
      tagged.insert(tagged.end(), t.begin(), t.end());
      while (tagged.size() < p + 1) tagged.push_back(rel::Value::Int(0));
      message.Insert(std::move(tagged));
    }
    out.Append(std::move(message));
  }
  return out;
}

}  // namespace sws::models
