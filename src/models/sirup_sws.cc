#include "models/sirup_sws.h"

#include <algorithm>

#include "util/common.h"

namespace sws::models {

namespace {
using core::ActRelation;
using core::kMsgRelation;
using core::RelQuery;
using core::Sws;
using core::TransitionTarget;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Sirup;
using logic::Term;
using logic::UnionQuery;
}  // namespace

size_t SirupRegisterWidth(const Sirup& sirup) {
  size_t m = sirup.rule.head.args.size();
  for (const Atom& a : sirup.rule.body) {
    m = std::max(m, a.args.size());
  }
  return m;
}

rel::InputSequence SirupFuel(const Sirup& sirup, size_t n) {
  size_t m = SirupRegisterWidth(sirup);
  rel::InputSequence fuel(m);
  for (size_t i = 0; i < n; ++i) fuel.Append(rel::Relation(m));
  return fuel;
}

size_t SirupSufficientFuel(const Sirup& sirup, const rel::Database& edb) {
  // Derivation height is bounded by the naive fixpoint's round count.
  auto fixpoint = sirup.AsProgram().Evaluate(edb);
  SWS_CHECK(fixpoint.converged);
  return fixpoint.iterations + 3;
}

rel::Relation PadSirupFacts(const Sirup& sirup,
                            const rel::Relation& p_facts) {
  size_t m = SirupRegisterWidth(sirup);
  rel::Relation out(m);
  for (const rel::Tuple& t : p_facts) {
    rel::Tuple padded = t;
    while (padded.size() < m) padded.push_back(rel::Value::Int(0));
    out.Insert(std::move(padded));
  }
  return out;
}

core::Sws SirupToSws(const Sirup& sirup) {
  SWS_CHECK(!sirup.Validate().has_value()) << *sirup.Validate();
  const std::string& p_name = sirup.rule.head.relation;
  const size_t m = SirupRegisterWidth(sirup);

  // EDB schema: the rule-body relations other than P.
  rel::Schema schema;
  for (const Atom& a : sirup.rule.body) {
    if (a.relation != p_name && !schema.Contains(a.relation)) {
      std::vector<std::string> attrs;
      for (size_t i = 0; i < a.args.size(); ++i) {
        attrs.push_back("a" + std::to_string(i));
      }
      schema.Add(rel::RelationSchema(a.relation, attrs));
    }
  }

  Sws sws(schema, /*rin_arity=*/m, /*rout_arity=*/m);
  int root = sws.AddState("q0");
  int p = sws.AddState("p");
  int echo = sws.AddState("echo");

  auto v = [](int i) { return Term::Var(i); };
  auto pad_args = [&](std::vector<Term> args) {
    while (args.size() < m) args.push_back(Term::Int(0));
    return args;
  };
  std::vector<Term> full_head;
  for (size_t i = 0; i < m; ++i) full_head.push_back(v(static_cast<int>(i)));

  // echo: Act ← Msg.
  sws.SetTransition(echo, {});
  sws.SetSynthesis(echo, RelQuery::Cq(ConjunctiveQuery(
                             full_head, {Atom{kMsgRelation, full_head}})));

  // Liveness dummy: a constant register so chains never die.
  ConjunctiveQuery alive(pad_args({}), {});
  // The base fact, padded, routed through an echo child.
  ConjunctiveQuery base(pad_args(sirup.rule.head.args.size() > 0
                                     ? sirup.ground_fact.args
                                     : std::vector<Term>{}),
                        {});

  // p's successors: [0] the base-fact echo; then one child per rule-body
  // atom — P-atoms recurse into p (liveness register), EDB atoms echo
  // the padded relation contents.
  std::vector<TransitionTarget> successors;
  successors.push_back(TransitionTarget{echo, RelQuery::Cq(base)});
  std::vector<size_t> child_of_atom;  // 1-based Act indices per body atom
  for (const Atom& a : sirup.rule.body) {
    if (a.relation == p_name) {
      successors.push_back(TransitionTarget{p, RelQuery::Cq(alive)});
    } else {
      std::vector<Term> fetch_head;
      std::vector<Term> fetch_args;
      for (size_t i = 0; i < a.args.size(); ++i) {
        fetch_head.push_back(v(static_cast<int>(i)));
        fetch_args.push_back(v(static_cast<int>(i)));
      }
      successors.push_back(TransitionTarget{
          echo, RelQuery::Cq(ConjunctiveQuery(
                    pad_args(fetch_head), {Atom{a.relation, fetch_args}}))});
    }
    child_of_atom.push_back(successors.size());
  }
  size_t num_children = successors.size();
  sws.SetTransition(p, std::move(successors));

  // ψ(p): the rule join over child registers, union the base fact.
  UnionQuery psi(m);
  {
    ConjunctiveQuery rule_disjunct(pad_args(sirup.rule.head.args), {});
    for (size_t i = 0; i < sirup.rule.body.size(); ++i) {
      rule_disjunct.mutable_body()->push_back(
          Atom{ActRelation(child_of_atom[i]),
               pad_args(sirup.rule.body[i].args)});
    }
    psi.Add(std::move(rule_disjunct));
    psi.Add(ConjunctiveQuery(full_head, {Atom{ActRelation(1), full_head}}));
  }
  (void)num_children;
  sws.SetSynthesis(p, RelQuery::Ucq(std::move(psi)));

  // Root: a single p-child; copy its register... its action register.
  sws.SetTransition(root, {TransitionTarget{p, RelQuery::Cq(alive)}});
  sws.SetSynthesis(root, RelQuery::Cq(ConjunctiveQuery(
                             full_head, {Atom{ActRelation(1), full_head}})));
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  return sws;
}

}  // namespace sws::models
