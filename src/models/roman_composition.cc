#include "models/roman_composition.h"

#include <deque>
#include <set>

#include "util/common.h"

namespace sws::models {

namespace {

using JointState = std::vector<int>;
using Pair = std::pair<int, JointState>;

}  // namespace

RomanCompositionResult ComposeRoman(const fsa::Dfa& target,
                                    const std::vector<fsa::Dfa>& components) {
  const int sigma = target.alphabet_size();
  for (const auto& c : components) {
    SWS_CHECK_EQ(c.alphabet_size(), sigma)
        << "components must share the target's alphabet";
  }
  RomanCompositionResult result;

  // DFAs here are complete by construction; the Roman model wants partial
  // automata ("no transition" = illegal action). We treat a transition as
  // absent when it leads to a dead state (no final state reachable), the
  // usual completion convention.
  auto dead_states = [](const fsa::Dfa& dfa) {
    // Backward reachability from finals.
    std::vector<std::set<int>> rev(dfa.num_states());
    for (int s = 0; s < dfa.num_states(); ++s) {
      for (int a = 0; a < dfa.alphabet_size(); ++a) {
        rev[dfa.Transition(s, a)].insert(s);
      }
    }
    std::vector<bool> alive(dfa.num_states(), false);
    std::deque<int> queue;
    for (int s = 0; s < dfa.num_states(); ++s) {
      if (dfa.IsFinal(s)) {
        alive[s] = true;
        queue.push_back(s);
      }
    }
    while (!queue.empty()) {
      int s = queue.front();
      queue.pop_front();
      for (int p : rev[s]) {
        if (!alive[p]) {
          alive[p] = true;
          queue.push_back(p);
        }
      }
    }
    return alive;
  };
  std::vector<bool> target_alive = dead_states(target);
  std::vector<std::vector<bool>> comp_alive;
  for (const auto& c : components) comp_alive.push_back(dead_states(c));

  // Enumerate the reachable product space (forward, allowing any
  // delegation), then run the greatest-fixpoint elimination on it.
  std::set<Pair> space;
  std::deque<Pair> queue;
  JointState initial;
  for (const auto& c : components) initial.push_back(c.start());
  Pair start = {target.start(), initial};
  space.insert(start);
  queue.push_back(start);
  while (!queue.empty()) {
    auto [t, js] = queue.front();
    queue.pop_front();
    for (int a = 0; a < sigma; ++a) {
      int t2 = target.Transition(t, a);
      if (!target_alive[t2]) continue;
      for (size_t i = 0; i < components.size(); ++i) {
        int c2 = components[i].Transition(js[i], a);
        if (!comp_alive[i][c2]) continue;
        JointState js2 = js;
        js2[i] = c2;
        Pair next = {t2, js2};
        if (space.insert(next).second) queue.push_back(next);
      }
    }
  }
  result.product_states_visited = space.size();

  // Greatest fixpoint: start from all pairs satisfying the final-state
  // condition; repeatedly remove pairs with an undelegatable action.
  std::set<Pair> sim;
  for (const Pair& p : space) {
    bool ok = true;
    if (target.IsFinal(p.first)) {
      for (size_t i = 0; i < components.size(); ++i) {
        if (!components[i].IsFinal(p.second[i])) ok = false;
      }
    }
    if (ok) sim.insert(p);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.fixpoint_iterations;
    for (auto it = sim.begin(); it != sim.end();) {
      const auto& [t, js] = *it;
      bool good = true;
      for (int a = 0; a < sigma && good; ++a) {
        int t2 = target.Transition(t, a);
        if (!target_alive[t2]) continue;  // action illegal in the target
        bool delegatable = false;
        for (size_t i = 0; i < components.size() && !delegatable; ++i) {
          int c2 = components[i].Transition(js[i], a);
          if (!comp_alive[i][c2]) continue;
          JointState js2 = js;
          js2[i] = c2;
          delegatable = sim.count({t2, js2}) > 0;
        }
        if (!delegatable) good = false;
      }
      if (!good) {
        it = sim.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }

  result.composable = sim.count(start) > 0;
  if (!result.composable) return result;

  // Extract the orchestrator from the simulation.
  for (const Pair& p : sim) {
    const auto& [t, js] = p;
    for (int a = 0; a < sigma; ++a) {
      int t2 = target.Transition(t, a);
      if (!target_alive[t2]) continue;
      for (size_t i = 0; i < components.size(); ++i) {
        int c2 = components[i].Transition(js[i], a);
        if (!comp_alive[i][c2]) continue;
        JointState js2 = js;
        js2[i] = c2;
        if (sim.count({t2, js2}) > 0) {
          result.delegation[{t, js, a}] = {static_cast<int>(i), t2, c2};
          break;
        }
      }
    }
  }
  return result;
}

bool ExecuteOrchestration(const fsa::Dfa& target,
                          const std::vector<fsa::Dfa>& components,
                          const RomanCompositionResult& result,
                          const std::vector<int>& word) {
  int t = target.start();
  JointState js;
  for (const auto& c : components) js.push_back(c.start());
  for (int a : word) {
    auto it = result.delegation.find({t, js, a});
    if (it == result.delegation.end()) return false;
    auto [i, t2, c2] = it->second;
    // Check the delegated move is a real transition of the component.
    if (components[i].Transition(js[i], a) != c2) return false;
    if (target.Transition(t, a) != t2) return false;
    t = t2;
    js[static_cast<size_t>(i)] = c2;
  }
  if (!target.Accepts(word)) return true;  // nothing more to check
  if (!target.IsFinal(t)) return false;
  for (size_t i = 0; i < components.size(); ++i) {
    if (!components[i].IsFinal(js[i])) return false;
  }
  return true;
}

}  // namespace sws::models
