#include "models/guarded.h"

#include "util/common.h"

namespace sws::models {

namespace {
using logic::FoFormula;
using logic::FoQuery;
using logic::Term;
}  // namespace

GuardedAutomaton::GuardedAutomaton(rel::Schema db_schema, size_t input_arity,
                                   size_t action_arity, int num_states,
                                   int start_state)
    : db_schema_(std::move(db_schema)),
      input_arity_(input_arity),
      action_arity_(action_arity),
      num_states_(num_states),
      start_state_(start_state) {
  SWS_CHECK(num_states >= 1);
  SWS_CHECK(start_state >= 0 && start_state < num_states);
}

void GuardedAutomaton::AddTransition(GuardedTransition transition) {
  SWS_CHECK(transition.from >= 0 && transition.from < num_states_);
  SWS_CHECK(transition.to >= 0 && transition.to < num_states_);
  transitions_.push_back(std::move(transition));
}

std::optional<std::string> GuardedAutomaton::Validate() const {
  for (size_t i = 0; i < transitions_.size(); ++i) {
    const GuardedTransition& t = transitions_[i];
    if (!t.guard.FreeVars().empty()) {
      return "guard of transition " + std::to_string(i) +
             " has free variables";
    }
    for (int v : t.action.FreeVars()) {
      if (v < 0 || v >= static_cast<int>(action_arity_)) {
        return "action of transition " + std::to_string(i) +
               " has out-of-range free variable X" + std::to_string(v);
      }
    }
  }
  return std::nullopt;
}

GuardedAutomaton::StepResult GuardedAutomaton::Step(
    const rel::Database& db, const std::set<int>& states,
    const rel::Relation& input) const {
  rel::Database env = db;
  env.Set(Peer::kPeerInput, input);
  std::set<rel::Value> domain = env.ActiveDomain();

  StepResult result;
  result.actions = rel::Relation(action_arity_);
  for (const GuardedTransition& t : transitions_) {
    if (states.count(t.from) == 0) continue;
    std::set<rel::Value> guard_domain = domain;
    for (const rel::Value& c : t.guard.Constants()) guard_domain.insert(c);
    if (!t.guard.Eval(env, guard_domain, {})) continue;
    result.next_states.insert(t.to);
    std::vector<Term> head;
    for (size_t i = 0; i < action_arity_; ++i) {
      head.push_back(Term::Var(static_cast<int>(i)));
    }
    result.actions =
        result.actions.Union(FoQuery(head, t.action).Evaluate(env));
  }
  return result;
}

Peer GuardedAutomaton::ToPeer() const {
  SWS_CHECK(!Validate().has_value()) << *Validate();
  Peer peer(db_schema_, input_arity_, /*state_arity=*/1, action_arity_);

  // "state q is active": S(q), or q = start when S is empty (the encoded
  // initial configuration).
  auto active = [this](int q) {
    FoFormula in_s = FoFormula::MakeAtom(Peer::kPeerState, {Term::Int(q)});
    if (q != start_state_) return in_s;
    FoFormula s_empty = FoFormula::Not(FoFormula::Exists(
        900, FoFormula::MakeAtom(Peer::kPeerState, {Term::Var(900)})));
    return FoFormula::Or(in_s, s_empty);
  };

  std::vector<FoFormula> state_branches;
  std::vector<FoFormula> action_branches;
  for (const GuardedTransition& t : transitions_) {
    FoFormula fires = FoFormula::And(active(t.from), t.guard);
    state_branches.push_back(
        FoFormula::And({fires, FoFormula::Eq(Term::Var(0), Term::Int(t.to))}));
    action_branches.push_back(FoFormula::And(fires, t.action));
  }
  peer.set_state_rule(FoFormula::Or(std::move(state_branches)));
  peer.set_action_rule(FoFormula::Or(std::move(action_branches)));
  SWS_CHECK(!peer.Validate().has_value()) << *peer.Validate();
  return peer;
}

}  // namespace sws::models
