#ifndef SWS_MODELS_TRAVEL_H_
#define SWS_MODELS_TRAVEL_H_

#include <string>

#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/sws.h"

namespace sws::models {

/// The paper's running example (Figure 1, Examples 1.1, 2.1, 2.2): a
/// service for booking travel packages to Disney World Orlando. A
/// customer commits only if (1) a reasonable airfare, (2) a nice hotel,
/// and (3) either (a) Disney tickets or (b) a rental car are all found —
/// with a *deterministic* preference for tickets over cars.
///
/// Schemas:
///  * R_in(tag, dest, budget) — user requirements; tag is one of the
///    string constants "a" (airfare), "h" (hotel), "t" (ticket),
///    "c" (car).
///  * R = { Ra(dest, price), Rh(dest, price), Rt(dest, price),
///          Rc(dest, price) } — offer catalogs.
///  * R_out(x_a, x_h, x_t, x_c) — the booked prices; unused components
///    are 0 in the leaf registers.
///
/// States: q0 → (qa, φa), (qh, φh), (qt, φt), (qc, φc) with φ_tag
/// selecting the user's tag-requirements from the input, leaf syntheses
/// joining the requirement with the matching catalog, and the root
/// synthesis ψ0 enforcing the conjunction and the ticket-over-car
/// preference.
struct TravelService {
  core::Sws sws;
};

/// τ1 of Example 2.1: nonrecursive; transition rules and leaf syntheses
/// in CQ, root synthesis in FO (the deterministic X3 = Y1 ∨ (¬Y1 ∧ Y2)
/// preference needs negation) — the paper places it in SWS(FO, FO).
TravelService MakeTravelService();

/// The CQ/UCQ variant (Section 3 notes the Roman-style services can defer
/// commitment in SWS(CQ, UCQ)): same shape, but the root synthesis is the
/// UCQ  (airfare ∧ hotel ∧ tickets) ∪ (airfare ∧ hotel ∧ car) — union
/// instead of deterministic preference.
TravelService MakeTravelServiceCqUcq();

/// τ2 of Example 2.1: the recursive extension where repeated airfare
/// inquiries are accepted and the *latest* successful inquiry wins. The
/// airfare leg becomes a chain state q_loop → (q_loop, φa), (q_f, φa)
/// with synthesis Act1 ∨ (¬∃ Act1 ∧ Act2).
TravelService MakeTravelServiceRecursive();

/// A sample catalog database: Orlando/Paris offers across all four
/// relations, with some gaps to exercise the conjunctive failure cases.
rel::Database MakeTravelDatabase();

/// A single user request message asking for all four components for
/// `dest` with the given budget (the budget is carried but not used for
/// filtering by the CQ rules).
rel::Relation MakeTravelRequest(const std::string& dest, int64_t budget);

/// Example 5.1's component services, sharing the travel schemas:
///  * τ_a  — flight reservations only,
///  * τ_ht — hotel + Disney tickets,
///  * τ_hc — hotel + rental car.
/// Each is a depth-2 SWSnr service whose root synthesis is a single CQ
/// (so they are CQ-expressible, the Corollary 5.2 class).
TravelService MakeTravelComponentAirfare();
TravelService MakeTravelComponentHotelTickets();
TravelService MakeTravelComponentHotelCar();

/// The input-tuple tag constants.
inline constexpr const char* kTagAirfare = "a";
inline constexpr const char* kTagHotel = "h";
inline constexpr const char* kTagTicket = "t";
inline constexpr const char* kTagCar = "c";

}  // namespace sws::models

#endif  // SWS_MODELS_TRAVEL_H_
