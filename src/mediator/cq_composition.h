#ifndef SWS_MEDIATOR_CQ_COMPOSITION_H_
#define SWS_MEDIATOR_CQ_COMPOSITION_H_

#include <string>

#include "mediator/mediator.h"
#include "mediator/mediator_run.h"
#include "rewriting/cq_rewriting.h"
#include "sws/unfold.h"

namespace sws::med {

/// Composition synthesis for nonrecursive CQ/UCQ services via query
/// rewriting using views (Theorem 5.1(3) and the Corollary 5.2 setting):
/// the goal SWS_nr(CQ, UCQ) unfolds into a UCQ^{≠}; every component in
/// SWS_nr(CQ^r) (CQ-expressible, the corollary's class) unfolds into a
/// single CQ — the view; an equivalent UCQ rewriting of the goal over
/// the views yields a one-level mediator
///   q0 → (s_1, eval(τ_1)), ..., (s_m, eval(τ_m)),
/// with echo leaves and the rewriting as the root synthesis. Since
/// mediator children all run on the same suffix in parallel (Definition
/// 5.1), the mediator computes ψ(τ_1(D, I), ..., τ_m(D, I)) exactly.
///
/// The search computes the maximally-contained UCQ rewriting within the
/// classical atom bound and reports success iff its expansion covers the
/// goal, then re-verifies the fixed rewriting at every input length up
/// to the depth (the mediator must match the goal on *all* lengths).
struct CqCompositionOptions {
  rw::CqRewriteOptions rewrite;
};

struct CqCompositionResult {
  bool found = false;
  /// Why composition failed or was not attempted, for diagnostics.
  std::string reason;
  /// The rewriting over view relations "v0".."v{m-1}" (valid iff found).
  logic::UnionQuery rewriting;
  /// The constructed two-level mediator (valid iff found).
  Mediator mediator;
  /// The unfolding length used for the main search.
  size_t unfold_length = 0;
};

CqCompositionResult ComposeCqOneLevel(
    const core::Sws& goal, const std::vector<const core::Sws*>& components,
    const CqCompositionOptions& options = {});

/// Builds the two-level mediator for a rewriting over views "v<i>":
/// view atom v<i>(x̄) becomes Act(i+1)(x̄) in the root synthesis.
Mediator BuildOneLevelMediator(const logic::UnionQuery& rewriting,
                               size_t num_components, size_t rin_arity,
                               size_t rout_arity);

/// The view name of component i in rewritings ("v<i>").
std::string ComponentViewName(size_t i);

}  // namespace sws::med

#endif  // SWS_MEDIATOR_CQ_COMPOSITION_H_
