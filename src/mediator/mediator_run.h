#ifndef SWS_MEDIATOR_MEDIATOR_RUN_H_
#define SWS_MEDIATOR_MEDIATOR_RUN_H_

#include <cstdint>

#include "mediator/mediator.h"
#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/execution.h"

namespace sws::med {

/// Runs of mediators (Section 5.1). A node v at state q holds a position
/// j — the index of the first unconsumed input message (the root starts
/// at j = 1) — and a message register. For a rule
///   q → (q1, eval(τ_1)), ..., (qk, eval(τ_k)),
/// every child u_i is spawned in parallel on the *same* suffix I^j: the
/// component τ_i runs to completion on (D, I^j) with its start state's
/// register seeded with Msg(v); Msg(u_i) is the component's output and
/// u_i's position is j + l_i, where l_i is the number of input messages
/// the component consumed. Final mediator states synthesize from Msg
/// alone (no D, no input). Commitment of all component actions is
/// deferred to the end of the mediator's run.
///
/// Note on condition (1): a mediator leaf does not read input, so —
/// unlike SWS leaves — an exhausted input does not blank its actions
/// (otherwise Example 5.1's π1 ≡ τ1 would fail on single-message
/// sessions). An empty register at a non-root node still does.
struct MediatorRunResult {
  rel::Relation output;
  size_t num_nodes = 0;
  uint64_t component_invocations = 0;
};

MediatorRunResult RunMediator(const Mediator& mediator,
                              const std::vector<const core::Sws*>& components,
                              const rel::Database& db,
                              const rel::InputSequence& input);

struct PlMediatorRunResult {
  bool output = false;
  size_t num_nodes = 0;
  uint64_t component_invocations = 0;
};

PlMediatorRunResult RunPlMediator(
    const PlMediator& mediator,
    const std::vector<const core::PlSws*>& components,
    const core::PlSws::Word& input);

}  // namespace sws::med

#endif  // SWS_MEDIATOR_MEDIATOR_RUN_H_
