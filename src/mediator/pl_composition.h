#ifndef SWS_MEDIATOR_PL_COMPOSITION_H_
#define SWS_MEDIATOR_PL_COMPOSITION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/pl_analysis.h"
#include "automata/nfa.h"
#include "mediator/kprefix.h"
#include "mediator/mediator.h"
#include "rewriting/regular_rewriting.h"
#include "sws/pl_sws.h"

namespace sws::med {

/// Composition synthesis for PL services (Theorems 5.1(4)/(5) and 5.3).
///
/// Two procedures are provided:
///  * FindPlMediator — bounded mediator enumeration with exhaustive
///    k-prefix equivalence checking. This realizes the decidable cases:
///    a bound on the size of candidate mediators exists whenever the
///    relevant languages are k-prefix recognizable (nonrecursive goal,
///    Thm 5.1(4); or nonrecursive mediators/components, Thm 5.1(5) and
///    MDT_b(PL), Thm 5.3(3)). The enumeration is exponential — exactly
///    the expspace/pspace behavior the Table 2 benchmarks report.
///  * ComposePlViaRegularRewriting — the MDT(∨) route of Theorem 5.3:
///    component languages become views; the maximal regular rewriting of
///    the goal language over those views is computed with [8]'s
///    construction, and exactness tells whether a ∨-mediator skeleton
///    exists at the language level.

struct PlCompositionOptions {
  /// Candidate mediators: chains/trees with up to this many states.
  int max_states = 3;
  /// Max successors (component invocations) per transition rule.
  int max_successors = 2;
  /// Cap on candidates tried.
  uint64_t max_candidates = 200000;
  /// Fallback word length for equivalence when no k-prefix bound exists.
  size_t fallback_length = 4;
};

struct PlCompositionResult {
  bool found = false;
  PlMediator mediator;  // valid iff found; verified equivalent
  uint64_t mediators_tried = 0;
  bool budget_exhausted = false;
  /// Whether the verifying equivalence checks were complete (k-prefix
  /// bounds existed). When false, `found` means "equivalent on all words
  /// up to the fallback length".
  bool verification_complete = true;
};

PlCompositionResult FindPlMediator(
    const core::PlSws& goal,
    const std::vector<const core::PlSws*>& components,
    const PlCompositionOptions& options = {});

/// The SWS(PL, PL) → NFA translation lives in analysis/pl_analysis.h;
/// re-exported here for composition callers.
using analysis::PlSwsToNfa;

struct RegularCompositionResult {
  rw::RegularRewritingResult rewriting;
  /// True iff the goal language decomposes exactly into concatenations
  /// of component languages — the language-level criterion for a
  /// ∨-mediator (Theorem 5.3(1)/(2); the run-level interplay — components
  /// stop at their first acceptance — is verified separately by
  /// MediatorGoalEquivalence on constructed mediators).
  bool composable = false;
  std::vector<core::PlSws::Symbol> alphabet;
};

RegularCompositionResult ComposePlViaRegularRewriting(
    const core::PlSws& goal,
    const std::vector<const core::PlSws*>& components);

}  // namespace sws::med

#endif  // SWS_MEDIATOR_PL_COMPOSITION_H_
