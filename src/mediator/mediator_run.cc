#include "mediator/mediator_run.h"

#include "util/common.h"

namespace sws::med {

namespace {

class RelEngine {
 public:
  RelEngine(const Mediator& mediator,
            const std::vector<const core::Sws*>& components,
            const rel::Database& db, const rel::InputSequence& input)
      : mediator_(mediator), components_(components), db_(db), input_(input) {}

  MediatorRunResult Execute() {
    MediatorRunResult result;
    result.output = Eval(mediator_.start_state(), 1,
                         rel::Relation(mediator_.rin_arity()),
                         /*is_root=*/true);
    result.num_nodes = num_nodes_;
    result.component_invocations = invocations_;
    return result;
  }

 private:
  rel::Relation Eval(int state, size_t j, rel::Relation msg, bool is_root) {
    ++num_nodes_;
    rel::Relation empty(mediator_.rout_arity());
    if (msg.empty() && !is_root) return empty;
    if (is_root && msg.empty() && input_.empty()) return empty;

    const auto& successors = mediator_.Successors(state);
    if (successors.empty()) {
      // ψ reads Msg only.
      rel::Database env;
      env.Set(core::kMsgRelation, std::move(msg));
      return mediator_.Synthesis(state).Evaluate(env);
    }
    rel::Database synth_env;
    for (size_t i = 0; i < successors.size(); ++i) {
      const core::Sws& component = *components_[successors[i].component];
      ++invocations_;
      // The component's start register is seeded with Msg(v) (Section
      // 5.1). The paper assumes one unified schema (R_in = R_out via
      // outer union); when the arities differ the register cannot be
      // forwarded and the component starts with an empty seed.
      rel::Relation seed =
          msg.arity() == component.rin_arity()
              ? msg
              : rel::Relation(component.rin_arity());
      core::RunResult component_run =
          core::RunSeeded(component, db_, input_.Suffix(j), seed);
      size_t child_position = j + component_run.max_timestamp;
      rel::Relation child_act =
          Eval(successors[i].state, child_position,
               std::move(component_run.output), /*is_root=*/false);
      synth_env.Set(core::ActRelation(i + 1), std::move(child_act));
    }
    return mediator_.Synthesis(state).Evaluate(synth_env);
  }

  const Mediator& mediator_;
  const std::vector<const core::Sws*>& components_;
  const rel::Database& db_;
  const rel::InputSequence& input_;
  size_t num_nodes_ = 0;
  uint64_t invocations_ = 0;
};

class PlEngine {
 public:
  PlEngine(const PlMediator& mediator,
           const std::vector<const core::PlSws*>& components,
           const core::PlSws::Word& input)
      : mediator_(mediator), components_(components), input_(input) {}

  PlMediatorRunResult Execute() {
    PlMediatorRunResult result;
    result.output =
        Eval(mediator_.start_state(), 1, /*msg=*/false, /*is_root=*/true);
    result.num_nodes = num_nodes_;
    result.component_invocations = invocations_;
    return result;
  }

 private:
  bool Eval(int state, size_t j, bool msg, bool is_root) {
    ++num_nodes_;
    if (!msg && !is_root) return false;
    if (is_root && !msg && input_.empty()) return false;

    const auto& successors = mediator_.Successors(state);
    if (successors.empty()) {
      return mediator_.Synthesis(state).EvalWith(
          [msg](int v) { return v == PlMediator::kMsgVar ? msg : false; });
    }
    std::vector<bool> child_values(successors.size());
    for (size_t i = 0; i < successors.size(); ++i) {
      const core::PlSws& component = *components_[successors[i].component];
      ++invocations_;
      core::PlSws::Word suffix(
          input_.begin() + static_cast<long>(std::min(j - 1, input_.size())),
          input_.end());
      core::PlSws::RunInfo info = component.RunWithInfo(suffix, msg);
      size_t child_position = j + info.max_consumed;
      child_values[i] = Eval(successors[i].state, child_position, info.value,
                             /*is_root=*/false);
    }
    return mediator_.Synthesis(state).EvalWith(
        [&child_values](int i) { return child_values[i]; });
  }

  const PlMediator& mediator_;
  const std::vector<const core::PlSws*>& components_;
  const core::PlSws::Word& input_;
  size_t num_nodes_ = 0;
  uint64_t invocations_ = 0;
};

}  // namespace

MediatorRunResult RunMediator(const Mediator& mediator,
                              const std::vector<const core::Sws*>& components,
                              const rel::Database& db,
                              const rel::InputSequence& input) {
  SWS_CHECK(!mediator.Validate(components).has_value())
      << *mediator.Validate(components);
  SWS_CHECK_EQ(input.message_arity(), mediator.rin_arity());
  RelEngine engine(mediator, components, db, input);
  return engine.Execute();
}

PlMediatorRunResult RunPlMediator(
    const PlMediator& mediator,
    const std::vector<const core::PlSws*>& components,
    const core::PlSws::Word& input) {
  SWS_CHECK(!mediator.Validate(components).has_value())
      << *mediator.Validate(components);
  PlEngine engine(mediator, components, input);
  return engine.Execute();
}

}  // namespace sws::med
