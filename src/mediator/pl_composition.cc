#include "mediator/pl_composition.h"

#include <functional>
#include <map>

#include "util/common.h"

namespace sws::med {

using core::PlSws;
using logic::PlFormula;
using F = PlFormula;

RegularCompositionResult ComposePlViaRegularRewriting(
    const PlSws& goal, const std::vector<const PlSws*>& components) {
  RegularCompositionResult result;
  // Joint alphabet.
  std::set<int> vars = goal.RelevantInputVars();
  for (const PlSws* c : components) {
    for (int v : c->RelevantInputVars()) vars.insert(v);
  }
  std::vector<int> relevant(vars.begin(), vars.end());
  SWS_CHECK_LE(relevant.size(), 12u) << "alphabet too large";
  for (size_t mask = 0; mask < (size_t{1} << relevant.size()); ++mask) {
    PlSws::Symbol s;
    for (size_t i = 0; i < relevant.size(); ++i) {
      if ((mask >> i) & 1) s.insert(relevant[i]);
    }
    result.alphabet.push_back(std::move(s));
  }
  fsa::Nfa goal_nfa = PlSwsToNfa(goal, result.alphabet);
  std::vector<fsa::Nfa> views;
  for (const PlSws* c : components) {
    views.push_back(PlSwsToNfa(*c, result.alphabet));
  }
  result.rewriting = rw::RewriteRegular(goal_nfa, views);
  result.composable = result.rewriting.exact;
  return result;
}

namespace {

// Synthesis formula templates per successor count.
std::vector<F> InternalTemplates(int k) {
  if (k == 1) {
    return {F::Var(0), F::Not(F::Var(0))};
  }
  if (k == 2) {
    return {F::And(F::Var(0), F::Var(1)),
            F::Or(F::Var(0), F::Var(1)),
            F::And(F::Var(0), F::Not(F::Var(1))),
            F::And(F::Not(F::Var(0)), F::Var(1)),
            F::Or(F::Var(0), F::And(F::Not(F::Var(0)), F::Var(1)))};
  }
  // k >= 3: conjunction / disjunction only (keeps the space sane).
  std::vector<F> vars;
  for (int i = 0; i < k; ++i) vars.push_back(F::Var(i));
  return {F::And(vars), F::Or(vars)};
}

std::vector<F> FinalTemplates() {
  return {F::Var(PlMediator::kMsgVar),
          F::Not(F::Var(PlMediator::kMsgVar))};
}

// Enumerates mediators: per state (in id order), either final (pick a
// final template) or internal (pick 1..max_successors (target, component)
// pairs with target > state, plus an internal template).
class MediatorEnumerator {
 public:
  MediatorEnumerator(const core::PlSws& goal,
                     const std::vector<const PlSws*>& components,
                     const PlCompositionOptions& options)
      : goal_(goal), components_(components), options_(options) {}

  PlCompositionResult Run() {
    for (int states = 1; states <= options_.max_states && !result_.found;
         ++states) {
      num_states_ = states;
      BuildState(0);
      if (result_.budget_exhausted) break;
    }
    return std::move(result_);
  }

 private:
  struct StatePlan {
    bool is_final = false;
    std::vector<MediatorTarget> successors;
    F synthesis;
  };

  void BuildState(int q) {
    if (result_.found || result_.budget_exhausted) return;
    if (q == num_states_) {
      TryCandidate();
      return;
    }
    // Final state (any state except: the root of a >1-state mediator may
    // also be final, that's allowed — a trivial mediator).
    for (const F& f : FinalTemplates()) {
      plan_[q] = StatePlan{true, {}, f};
      BuildState(q + 1);
      if (result_.found || result_.budget_exhausted) return;
    }
    if (q == num_states_ - 1) return;  // last state must be final
    // Internal: successor lists.
    std::vector<MediatorTarget> successors;
    std::function<void(int)> pick = [&](int count) {
      if (result_.found || result_.budget_exhausted) return;
      if (!successors.empty()) {
        for (const F& f :
             InternalTemplates(static_cast<int>(successors.size()))) {
          plan_[q] = StatePlan{false, successors, f};
          BuildState(q + 1);
          if (result_.found || result_.budget_exhausted) return;
        }
      }
      if (count == options_.max_successors) return;
      for (int target = q + 1; target < num_states_; ++target) {
        if (target == 0) continue;
        for (size_t c = 0; c < components_.size(); ++c) {
          successors.push_back(MediatorTarget{target, c});
          pick(count + 1);
          successors.pop_back();
          if (result_.found || result_.budget_exhausted) return;
        }
      }
    };
    pick(0);
  }

  void TryCandidate() {
    if (result_.mediators_tried >= options_.max_candidates) {
      result_.budget_exhausted = true;
      return;
    }
    ++result_.mediators_tried;
    PlMediator mediator;
    for (int q = 0; q < num_states_; ++q) {
      mediator.AddState("m" + std::to_string(q));
    }
    for (int q = 0; q < num_states_; ++q) {
      mediator.SetTransition(q, plan_[q].successors);
      mediator.SetSynthesis(q, plan_[q].synthesis);
    }
    if (mediator.Validate(components_).has_value()) return;
    PrefixEquivalenceResult eq = MediatorGoalEquivalence(
        mediator, components_, goal_, options_.fallback_length);
    if (eq.equivalent) {
      result_.found = true;
      result_.mediator = std::move(mediator);
      result_.verification_complete = eq.complete;
    }
  }

  const core::PlSws& goal_;
  const std::vector<const PlSws*>& components_;
  const PlCompositionOptions& options_;
  int num_states_ = 0;
  std::map<int, StatePlan> plan_;
  PlCompositionResult result_;
};

}  // namespace

PlCompositionResult FindPlMediator(
    const core::PlSws& goal, const std::vector<const PlSws*>& components,
    const PlCompositionOptions& options) {
  SWS_CHECK(!components.empty());
  MediatorEnumerator enumerator(goal, components, options);
  return enumerator.Run();
}

}  // namespace sws::med
