#include "mediator/mediator.h"

#include <functional>
#include <sstream>

#include "util/common.h"

namespace sws::med {

Mediator::Mediator(size_t rin_arity, size_t rout_arity)
    : rin_arity_(rin_arity), rout_arity_(rout_arity) {}

int Mediator::AddState(std::string name) {
  StateRules rules;
  rules.name = std::move(name);
  states_.push_back(std::move(rules));
  return num_states() - 1;
}

const std::string& Mediator::StateName(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].name;
}

void Mediator::SetTransition(int q, std::vector<MediatorTarget> successors) {
  SWS_CHECK(q >= 0 && q < num_states());
  for (const auto& t : successors) {
    SWS_CHECK(t.state >= 0 && t.state < num_states());
  }
  states_[q].successors = std::move(successors);
}

void Mediator::SetSynthesis(int q, core::RelQuery synthesis) {
  SWS_CHECK(q >= 0 && q < num_states());
  states_[q].synthesis = std::move(synthesis);
  states_[q].has_synthesis = true;
}

const std::vector<MediatorTarget>& Mediator::Successors(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].successors;
}

const core::RelQuery& Mediator::Synthesis(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  SWS_CHECK(states_[q].has_synthesis);
  return states_[q].synthesis;
}

std::optional<std::string> Mediator::Validate(
    const std::vector<const core::Sws*>& components) const {
  if (states_.empty()) return "mediator has no states";
  for (const core::Sws* c : components) {
    if (c->rin_arity() != rin_arity_ || c->rout_arity() != rout_arity_) {
      return "component schema mismatch";
    }
  }
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    if (!rules.has_synthesis) {
      return "state " + rules.name + " has no synthesis rule";
    }
    for (const auto& t : rules.successors) {
      if (t.state == start_state()) {
        return "start state appears in the rhs of " + rules.name;
      }
      if (t.component >= components.size()) {
        return "state " + rules.name + " invokes unknown component";
      }
    }
    if (rules.synthesis.head_arity() != rout_arity_) {
      return "synthesis of " + rules.name + " must produce R_out arity";
    }
    std::set<std::string> allowed;
    if (rules.successors.empty()) {
      allowed.insert(core::kMsgRelation);
    } else {
      for (size_t i = 1; i <= rules.successors.size(); ++i) {
        allowed.insert(core::ActRelation(i));
      }
    }
    for (const std::string& r : rules.synthesis.ReadRelations()) {
      if (allowed.count(r) == 0) {
        return "synthesis of " + rules.name + " reads disallowed relation " +
               r + " (mediators never access the database or input)";
      }
    }
  }
  return std::nullopt;
}

namespace {

template <typename StateRulesVector>
std::optional<size_t> DepthOf(const StateRulesVector& states) {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(states.size(), Color::kWhite);
  std::vector<size_t> depth(states.size(), 1);
  bool cyclic = false;
  std::function<void(int)> dfs = [&](int q) {
    color[q] = Color::kGray;
    size_t best = 1;
    for (const auto& t : states[q].successors) {
      if (color[t.state] == Color::kGray) {
        cyclic = true;
        continue;
      }
      if (color[t.state] == Color::kWhite) dfs(t.state);
      best = std::max(best, 1 + depth[t.state]);
    }
    depth[q] = best;
    color[q] = Color::kBlack;
  };
  dfs(0);
  if (cyclic) return std::nullopt;
  return depth[0];
}

}  // namespace

bool Mediator::IsRecursive() const { return !DepthOf(states_).has_value(); }
std::optional<size_t> Mediator::MaxDepth() const { return DepthOf(states_); }

std::string Mediator::ToString(
    const std::vector<const core::Sws*>& components) const {
  std::ostringstream out;
  out << (IsRecursive() ? "MDT" : "MDTnr") << " with " << num_states()
      << " states\n";
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    out << "  " << rules.name << " ->";
    if (rules.successors.empty()) {
      out << " .";
    } else {
      for (const auto& t : rules.successors) {
        out << " (" << states_[t.state].name << ", eval(";
        if (t.component < components.size()) {
          out << "tau_" << t.component;
        } else {
          out << "c" << t.component;
        }
        out << "))";
      }
    }
    out << "\n";
    if (rules.has_synthesis) {
      out << "    Act <- " << rules.synthesis.ToString() << "\n";
    }
  }
  return out.str();
}

int PlMediator::AddState(std::string name) {
  StateRules rules;
  rules.name = std::move(name);
  rules.synthesis = logic::PlFormula::False();
  states_.push_back(std::move(rules));
  return num_states() - 1;
}

const std::string& PlMediator::StateName(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].name;
}

void PlMediator::SetTransition(int q, std::vector<MediatorTarget> successors) {
  SWS_CHECK(q >= 0 && q < num_states());
  for (const auto& t : successors) {
    SWS_CHECK(t.state >= 0 && t.state < num_states());
  }
  states_[q].successors = std::move(successors);
}

void PlMediator::SetSynthesis(int q, logic::PlFormula synthesis) {
  SWS_CHECK(q >= 0 && q < num_states());
  states_[q].synthesis = std::move(synthesis);
  states_[q].has_synthesis = true;
}

const std::vector<MediatorTarget>& PlMediator::Successors(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].successors;
}

const logic::PlFormula& PlMediator::Synthesis(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  SWS_CHECK(states_[q].has_synthesis);
  return states_[q].synthesis;
}

std::optional<std::string> PlMediator::Validate(
    const std::vector<const core::PlSws*>& components) const {
  if (states_.empty()) return "mediator has no states";
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    if (!rules.has_synthesis) {
      return "state " + rules.name + " has no synthesis rule";
    }
    for (const auto& t : rules.successors) {
      if (t.state == start_state()) {
        return "start state appears in the rhs of " + rules.name;
      }
      if (t.component >= components.size()) {
        return "state " + rules.name + " invokes unknown component";
      }
    }
    int max_var = rules.successors.empty()
                      ? kMsgVar
                      : static_cast<int>(rules.successors.size()) - 1;
    for (int v : rules.synthesis.Vars()) {
      if (v > max_var) {
        return "synthesis of " + rules.name + " uses out-of-range variable";
      }
    }
  }
  return std::nullopt;
}

bool PlMediator::IsRecursive() const { return !DepthOf(states_).has_value(); }
std::optional<size_t> PlMediator::MaxDepth() const { return DepthOf(states_); }

bool PlMediator::IsDisjunctionOnly() const {
  using Kind = logic::PlFormula::Kind;
  for (const StateRules& rules : states_) {
    if (!rules.has_synthesis) continue;
    std::function<bool(const logic::PlFormula&)> pure =
        [&](const logic::PlFormula& f) {
          switch (f.kind()) {
            case Kind::kVar:
              return true;
            case Kind::kConst:
              return !f.const_value();  // false = empty disjunction
            case Kind::kOr: {
              for (const auto& c : f.children()) {
                if (!pure(c)) return false;
              }
              return true;
            }
            default:
              return false;
          }
        };
    if (!pure(rules.synthesis)) return false;
  }
  return true;
}

std::string PlMediator::ToString() const {
  std::ostringstream out;
  out << (IsRecursive() ? "MDT(PL)" : "MDTnr(PL)") << " with " << num_states()
      << " states\n";
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    out << "  " << rules.name << " ->";
    if (rules.successors.empty()) {
      out << " .";
    } else {
      for (const auto& t : rules.successors) {
        out << " (" << states_[t.state].name << ", eval(tau_" << t.component
            << "))";
      }
    }
    out << "\n    Act <- " << rules.synthesis.ToString() << "\n";
  }
  return out.str();
}

}  // namespace sws::med
