#include "mediator/cq_composition.h"

#include <algorithm>

#include "logic/containment.h"
#include "util/common.h"

namespace sws::med {

using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Term;
using logic::UnionQuery;

std::string ComponentViewName(size_t i) { return "v" + std::to_string(i); }

Mediator BuildOneLevelMediator(const UnionQuery& rewriting,
                               size_t num_components, size_t rin_arity,
                               size_t rout_arity) {
  Mediator mediator(rin_arity, rout_arity);
  int root = mediator.AddState("q0");
  std::vector<MediatorTarget> successors;
  for (size_t i = 0; i < num_components; ++i) {
    int leaf = mediator.AddState("s" + std::to_string(i));
    successors.push_back(MediatorTarget{leaf, i});
    mediator.SetTransition(leaf, {});
    // Echo the component's output.
    std::vector<Term> head;
    std::vector<Term> args;
    for (size_t a = 0; a < rout_arity; ++a) {
      head.push_back(Term::Var(static_cast<int>(a)));
      args.push_back(Term::Var(static_cast<int>(a)));
    }
    mediator.SetSynthesis(
        leaf, core::RelQuery::Cq(ConjunctiveQuery(
                  head, {Atom{core::kMsgRelation, std::move(args)}})));
  }
  mediator.SetTransition(root, std::move(successors));
  // Root synthesis: view atom v<i> -> Act<i+1>.
  UnionQuery psi(rout_arity);
  for (const ConjunctiveQuery& d : rewriting.disjuncts()) {
    ConjunctiveQuery mapped = d;
    for (Atom& atom : *mapped.mutable_body()) {
      for (size_t i = 0; i < num_components; ++i) {
        if (atom.relation == ComponentViewName(i)) {
          atom.relation = core::ActRelation(i + 1);
          break;
        }
      }
    }
    psi.Add(std::move(mapped));
  }
  mediator.SetSynthesis(root, core::RelQuery::Ucq(std::move(psi)));
  return mediator;
}

namespace {

// The component views at a given unfolding length; nullopt entry = the
// component's unfolding is empty at this length.
std::optional<std::vector<rw::View>> ViewsAt(
    const std::vector<const core::Sws*>& components, size_t n,
    std::string* reason) {
  std::vector<rw::View> views;
  for (size_t i = 0; i < components.size(); ++i) {
    UnionQuery u = core::UnfoldToUcq(*components[i], n);
    if (u.size() > 1) {
      if (reason != nullptr) {
        *reason = "component " + std::to_string(i) +
                  " is not CQ-expressible at length " + std::to_string(n) +
                  " (Corollary 5.2 needs SWSnr(CQ^r) components)";
      }
      return std::nullopt;
    }
    // An empty unfolding: the view produces nothing; represent it by an
    // unsatisfiable CQ so expansions through it are dropped.
    ConjunctiveQuery definition =
        u.size() == 1
            ? u.disjuncts()[0]
            : ConjunctiveQuery(
                  std::vector<Term>(components[i]->rout_arity(),
                                    Term::Int(0)),
                  {}, {logic::Comparison{Term::Int(0), Term::Int(1), true}});
    views.push_back(rw::View{ComponentViewName(i), std::move(definition)});
  }
  return views;
}

}  // namespace

CqCompositionResult ComposeCqOneLevel(
    const core::Sws& goal, const std::vector<const core::Sws*>& components,
    const CqCompositionOptions& options) {
  CqCompositionResult result{false,
                             "",
                             UnionQuery(goal.rout_arity()),
                             Mediator(goal.rin_arity(), goal.rout_arity()),
                             0};
  if (!goal.IsCqUcq() || goal.IsRecursive()) {
    result.reason = "goal must be in SWSnr(CQ, UCQ)";
    return result;
  }
  size_t n = *goal.MaxDepth();
  for (const core::Sws* c : components) {
    if (!c->IsCqUcq() || c->IsRecursive()) {
      result.reason = "components must be in SWSnr(CQ, UCQ)";
      return result;
    }
    if (c->rin_arity() != goal.rin_arity() ||
        c->rout_arity() != goal.rout_arity()) {
      result.reason = "component schemas must match the goal";
      return result;
    }
    n = std::max(n, *c->MaxDepth());
  }
  result.unfold_length = n;

  auto views = ViewsAt(components, n, &result.reason);
  if (!views.has_value()) return result;
  UnionQuery goal_query = core::UnfoldToUcq(goal, n);

  rw::CqRewriteOptions rewrite_options = options.rewrite;
  rewrite_options.stop_when_covering = true;
  // One-level mediators join component outputs only through the root
  // synthesis head; identification patterns between view arguments are
  // unnecessary, and the identity-only search is exponentially cheaper.
  rewrite_options.merge_variables = false;
  if (rewrite_options.max_atoms == 0) {
    // Each goal disjunct mentions at most one Act atom per component in
    // the one-level shape; bound candidates by the component count.
    rewrite_options.max_atoms = components.size();
  }
  UnionQuery rewriting =
      rw::MaximallyContainedRewriting(goal_query, *views, rewrite_options);
  UnionQuery expansion = rw::ExpandViewAtoms(rewriting, *views);
  if (!logic::UcqContainedIn(goal_query, expansion)) {
    result.reason = "no equivalent rewriting within the atom bound";
    return result;
  }
  // The mediator's synthesis is fixed; it must also match the goal at
  // every shorter input length.
  for (size_t shorter = 0; shorter < n; ++shorter) {
    auto short_views = ViewsAt(components, shorter, &result.reason);
    if (!short_views.has_value()) return result;
    UnionQuery short_goal = core::UnfoldToUcq(goal, shorter);
    UnionQuery short_expansion =
        rw::ExpandViewAtoms(rewriting, *short_views);
    if (!logic::UcqEquivalent(short_goal, short_expansion)) {
      result.reason = "rewriting diverges from the goal at input length " +
                      std::to_string(shorter);
      return result;
    }
  }

  result.found = true;
  result.rewriting = rewriting;
  result.mediator = BuildOneLevelMediator(
      rewriting, components.size(), goal.rin_arity(), goal.rout_arity());
  return result;
}

}  // namespace sws::med
