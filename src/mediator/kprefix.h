#ifndef SWS_MEDIATOR_KPREFIX_H_
#define SWS_MEDIATOR_KPREFIX_H_

#include <cstdint>
#include <optional>

#include "mediator/mediator.h"
#include "mediator/mediator_run.h"

namespace sws::med {

/// k-prefix recognizability (Theorem 5.1(4)/(5)): a language is k-prefix
/// recognizable when membership is determined by the first k symbols of
/// the input. Every SWS_nr(PL, PL) service is k-prefix recognizable for
/// a computable k (its execution trees have bounded depth), and so is a
/// nonrecursive mediator over nonrecursive components. These bounds make
/// mediator-goal equivalence decidable by exhaustive comparison on all
/// words up to the bound — the procedure implemented here.

/// Prefix bound for a PL service: inputs beyond this index never reach
/// any rule. nullopt for recursive services (no bound).
std::optional<size_t> PlSwsPrefixBound(const core::PlSws& sws);

/// Prefix bound for a PL mediator over its components: along any path of
/// the (acyclic) mediator, each invocation consumes at most the
/// component's own bound. nullopt if the mediator or any component is
/// recursive.
std::optional<size_t> PlMediatorPrefixBound(
    const PlMediator& mediator,
    const std::vector<const core::PlSws*>& components);

struct PrefixEquivalenceResult {
  bool equivalent = false;
  std::optional<core::PlSws::Word> counterexample;
  uint64_t words_checked = 0;
  /// True iff the check was exhaustive up to a sound bound (both sides
  /// k-prefix recognizable), i.e. the verdict is a proof. When false, a
  /// `true` verdict only covers words up to the tested length.
  bool complete = false;
  size_t tested_length = 0;
};

/// Decides π ≡ τ for a PL mediator and a PL goal by enumerating all
/// words over the relevant alphabet up to the k-prefix bound (or up to
/// `fallback_length` when no bound exists — then `complete` is false).
PrefixEquivalenceResult MediatorGoalEquivalence(
    const PlMediator& mediator,
    const std::vector<const core::PlSws*>& components,
    const core::PlSws& goal, size_t fallback_length = 4);

/// The same exhaustive comparison between two PL services (used to
/// cross-check the pspace procedure on nonrecursive instances).
PrefixEquivalenceResult PrefixEquivalence(const core::PlSws& a,
                                          const core::PlSws& b,
                                          size_t fallback_length = 4);

}  // namespace sws::med

#endif  // SWS_MEDIATOR_KPREFIX_H_
