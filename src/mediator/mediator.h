#ifndef SWS_MEDIATOR_MEDIATOR_H_
#define SWS_MEDIATOR_MEDIATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "sws/pl_sws.h"
#include "sws/sws.h"

namespace sws::med {

/// An SWS mediator π = (Q, δ, σ, q0) in MDT(L_Act) (Definition 5.1): like
/// an SWS, but transition rules embed component services as oracle
/// queries — q → (q1, eval(τ_{c1})), ..., (qk, eval(τ_{ck})). A mediator
/// receives and redirects messages but never touches the local database
/// directly: internal synthesis reads the successors' action registers
/// ("Act1".."Actk"), and *final* synthesis reads only the message
/// register ("Msg") — no D, no input.
///
/// Components are referenced by index into the component vector supplied
/// at run/validation time; all components and the mediator share the
/// schemas R, R_in, R_out (the paper's w.l.o.g. assumption).
struct MediatorTarget {
  int state = 0;
  size_t component = 0;  // index into the component list
};

class Mediator {
 public:
  Mediator(size_t rin_arity, size_t rout_arity);

  size_t rin_arity() const { return rin_arity_; }
  size_t rout_arity() const { return rout_arity_; }

  int AddState(std::string name);
  int num_states() const { return static_cast<int>(states_.size()); }
  int start_state() const { return 0; }
  const std::string& StateName(int q) const;

  void SetTransition(int q, std::vector<MediatorTarget> successors);
  void SetSynthesis(int q, core::RelQuery synthesis);

  const std::vector<MediatorTarget>& Successors(int q) const;
  const core::RelQuery& Synthesis(int q) const;
  bool IsFinalState(int q) const { return Successors(q).empty(); }

  /// Well-formedness against a component list: component indices in
  /// range, matching schemas, q0 not in any rhs, and synthesis reading
  /// only what Definition 5.1 allows.
  std::optional<std::string> Validate(
      const std::vector<const core::Sws*>& components) const;

  /// The dependency graph over mediator states; MDT_nr = acyclic. Note
  /// that components of a nonrecursive mediator may themselves be
  /// recursive (Section 2 / Definition 5.1 remark).
  bool IsRecursive() const;
  std::optional<size_t> MaxDepth() const;

  std::string ToString(
      const std::vector<const core::Sws*>& components = {}) const;

 private:
  struct StateRules {
    std::string name;
    std::vector<MediatorTarget> successors;
    core::RelQuery synthesis;
    bool has_synthesis = false;
  };
  size_t rin_arity_;
  size_t rout_arity_;
  std::vector<StateRules> states_;
};

/// The PL counterpart: mediators over SWS(PL, PL) components. Registers
/// are truth values; internal synthesis formulas use variable i for the
/// i-th successor's action bit; final synthesis uses variable 0 for the
/// message register ("from Msg(q) to Act(q)").
class PlMediator {
 public:
  PlMediator() = default;

  int AddState(std::string name);
  int num_states() const { return static_cast<int>(states_.size()); }
  int start_state() const { return 0; }
  const std::string& StateName(int q) const;

  void SetTransition(int q, std::vector<MediatorTarget> successors);
  void SetSynthesis(int q, logic::PlFormula synthesis);

  const std::vector<MediatorTarget>& Successors(int q) const;
  const logic::PlFormula& Synthesis(int q) const;
  bool IsFinalState(int q) const { return Successors(q).empty(); }

  /// The variable a final state's synthesis uses for its register bit.
  static constexpr int kMsgVar = 0;

  std::optional<std::string> Validate(
      const std::vector<const core::PlSws*>& components) const;

  bool IsRecursive() const;
  std::optional<size_t> MaxDepth() const;

  /// True iff every synthesis formula is a pure disjunction of its
  /// allowed variables — the MDT(∨) subclass of Theorem 5.3.
  bool IsDisjunctionOnly() const;

  std::string ToString() const;

 private:
  struct StateRules {
    std::string name;
    std::vector<MediatorTarget> successors;
    logic::PlFormula synthesis;
    bool has_synthesis = false;
  };
  std::vector<StateRules> states_;
};

}  // namespace sws::med

#endif  // SWS_MEDIATOR_MEDIATOR_H_
