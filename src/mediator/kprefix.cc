#include "mediator/kprefix.h"

#include <functional>

#include "util/common.h"

namespace sws::med {

using core::PlSws;

std::optional<size_t> PlSwsPrefixBound(const PlSws& sws) {
  // A chain of L states touches inputs I_1..I_{L-1} (the root reads
  // nothing itself), so the value is determined by the first L-1 symbols
  // — and for n >= L-1 it no longer depends on the length either.
  auto depth = sws.MaxDepth();
  if (!depth.has_value()) return std::nullopt;
  return *depth == 0 ? 0 : *depth - 1;
}

std::optional<size_t> PlMediatorPrefixBound(
    const PlMediator& mediator,
    const std::vector<const core::PlSws*>& components) {
  auto mediator_depth = mediator.MaxDepth();
  if (!mediator_depth.has_value()) return std::nullopt;
  size_t max_component_bound = 1;
  for (const core::PlSws* c : components) {
    auto bound = PlSwsPrefixBound(*c);
    if (!bound.has_value()) return std::nullopt;
    max_component_bound = std::max(max_component_bound, *bound);
  }
  // Along any root-to-leaf path of the mediator, at most depth-1
  // invocations occur, each advancing the position by at most the
  // component bound; the deepest component then reads at most its own
  // bound further.
  return *mediator_depth * max_component_bound + 1;
}

namespace {

// Relevant variables: goal's plus every component's (mediator formulas
// read only registers).
std::vector<PlSws::Symbol> JointAlphabet(
    const std::vector<const core::PlSws*>& components,
    const core::PlSws* goal_a, const core::PlSws* goal_b) {
  std::set<int> vars;
  auto add = [&vars](const core::PlSws& s) {
    for (int v : s.RelevantInputVars()) vars.insert(v);
  };
  for (const core::PlSws* c : components) add(*c);
  if (goal_a != nullptr) add(*goal_a);
  if (goal_b != nullptr) add(*goal_b);
  std::vector<int> relevant(vars.begin(), vars.end());
  SWS_CHECK_LE(relevant.size(), 16u) << "alphabet too large to enumerate";
  std::vector<PlSws::Symbol> symbols;
  for (size_t mask = 0; mask < (size_t{1} << relevant.size()); ++mask) {
    PlSws::Symbol s;
    for (size_t i = 0; i < relevant.size(); ++i) {
      if ((mask >> i) & 1) s.insert(relevant[i]);
    }
    symbols.push_back(std::move(s));
  }
  return symbols;
}

// Enumerates all words up to max_len; returns false when `differs` found
// one. Fills stats.
bool AgreeOnAllWords(const std::function<bool(const PlSws::Word&)>& differs,
                     const std::vector<PlSws::Symbol>& symbols,
                     size_t max_len, PrefixEquivalenceResult* result) {
  PlSws::Word word;
  std::function<bool(size_t)> explore = [&](size_t remaining) -> bool {
    ++result->words_checked;
    if (differs(word)) {
      result->counterexample = word;
      return false;
    }
    if (remaining == 0) return true;
    for (const PlSws::Symbol& s : symbols) {
      word.push_back(s);
      bool ok = explore(remaining - 1);
      word.pop_back();
      if (!ok) return false;
    }
    return true;
  };
  return explore(max_len);
}

}  // namespace

PrefixEquivalenceResult MediatorGoalEquivalence(
    const PlMediator& mediator,
    const std::vector<const core::PlSws*>& components,
    const core::PlSws& goal, size_t fallback_length) {
  PrefixEquivalenceResult result;
  auto mediator_bound = PlMediatorPrefixBound(mediator, components);
  auto goal_bound = PlSwsPrefixBound(goal);
  if (mediator_bound.has_value() && goal_bound.has_value()) {
    result.complete = true;
    result.tested_length = std::max(*mediator_bound, *goal_bound);
  } else {
    result.complete = false;
    result.tested_length = fallback_length;
  }
  std::vector<PlSws::Symbol> symbols =
      JointAlphabet(components, &goal, nullptr);
  result.equivalent = AgreeOnAllWords(
      [&](const PlSws::Word& word) {
        return RunPlMediator(mediator, components, word).output !=
               goal.Run(word);
      },
      symbols, result.tested_length, &result);
  return result;
}

PrefixEquivalenceResult PrefixEquivalence(const core::PlSws& a,
                                          const core::PlSws& b,
                                          size_t fallback_length) {
  PrefixEquivalenceResult result;
  auto bound_a = PlSwsPrefixBound(a);
  auto bound_b = PlSwsPrefixBound(b);
  if (bound_a.has_value() && bound_b.has_value()) {
    result.complete = true;
    result.tested_length = std::max(*bound_a, *bound_b);
  } else {
    result.complete = false;
    result.tested_length = fallback_length;
  }
  std::vector<PlSws::Symbol> symbols = JointAlphabet({}, &a, &b);
  result.equivalent = AgreeOnAllWords(
      [&](const PlSws::Word& word) { return a.Run(word) != b.Run(word); },
      symbols, result.tested_length, &result);
  return result;
}

}  // namespace sws::med
