#ifndef SWS_UTIL_COMMON_H_
#define SWS_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Project-wide assertion macros. The library does not use exceptions
// (Google style); violated preconditions are programmer errors and abort
// with a diagnostic. Fallible operations on *user input* instead return
// std::optional or a status bool plus message.

namespace sws {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream-collecting helper so CHECK(x) << "context" works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Consumes a CheckMessageBuilder in the non-failing branch of the ternary.
struct CheckVoidify {
  void operator&(const CheckMessageBuilder&) {}
};

}  // namespace internal
}  // namespace sws

#define SWS_CHECK(expr)                                     \
  (expr) ? (void)0                                          \
         : ::sws::internal::CheckVoidify() &                \
               ::sws::internal::CheckMessageBuilder(__FILE__, __LINE__, #expr)

#define SWS_CHECK_EQ(a, b) SWS_CHECK((a) == (b))
#define SWS_CHECK_NE(a, b) SWS_CHECK((a) != (b))
#define SWS_CHECK_LT(a, b) SWS_CHECK((a) < (b))
#define SWS_CHECK_LE(a, b) SWS_CHECK((a) <= (b))
#define SWS_CHECK_GT(a, b) SWS_CHECK((a) > (b))
#define SWS_CHECK_GE(a, b) SWS_CHECK((a) >= (b))

#endif  // SWS_UTIL_COMMON_H_
