#ifndef SWS_UTIL_CANCELLATION_H_
#define SWS_UTIL_CANCELLATION_H_

#include <cstdint>

namespace sws::util {

/// The cooperative-interruption seam between the query-evaluation layer
/// (logic/, relational/) and the resource-governance layer (sws/,
/// runtime/). The lower layers cannot depend on sws::core, so they talk
/// to an abstract gate installed in thread-local state: evaluation loops
/// call StepTick() per unit of work (one candidate tuple, one quantifier
/// domain value, one active-domain value) and unwind when it returns
/// false. The concrete gate — sws::core::ExecutionGovernor — charges the
/// batched steps against its fuel budget and in-query deadline.
///
/// Paying sites keep the fast path to a thread-local load, a decrement
/// and a branch: the gate's Admit() runs only once per kStepBatch ticks.
/// Code that runs with no gate installed (analysis, tests, plain query
/// evaluation) pays a thread-local load and a null check.
class StepGate {
 public:
  virtual ~StepGate() = default;

  /// Charges `steps` units of evaluation work. Returns false iff
  /// evaluation must stop (budget exhausted, deadline passed, or an
  /// external cancellation). Once false, every later call must also
  /// return false (cancellation is sticky) so unwinding loops stop at
  /// their first tick.
  virtual bool Admit(uint64_t steps) = 0;

  /// Tracks cache-byte usage (positive = allocated, negative =
  /// released). Purely accounting — never vetoes; the gate may react on
  /// the next Admit (e.g. cancel a run over its tracked-byte budget).
  virtual void OnBytes(int64_t delta) = 0;
};

/// Ticks between two Admit() calls. Chosen so the slow path (a clock
/// read in the governor) amortizes to noise against per-tuple work while
/// still bounding cancellation latency to a few hundred tuples.
inline constexpr uint32_t kStepBatch = 256;

struct StepGateState {
  StepGate* gate = nullptr;
  uint32_t countdown = 0;  // ticks left before the next Admit
  bool stopped = false;    // the gate said stop; sticky until reinstall
};

inline StepGateState& ThreadStepGate() {
  thread_local StepGateState state;
  return state;
}

/// Per-unit-of-work tick. Returns false iff the installed gate stopped
/// evaluation; callers unwind (their partial results are discarded by
/// the governed caller). With no gate installed, always true.
inline bool StepTick() {
  StepGateState& s = ThreadStepGate();
  if (s.gate == nullptr) return true;
  if (s.stopped) return false;
  if (--s.countdown != 0) return true;
  s.countdown = kStepBatch;
  if (s.gate->Admit(kStepBatch)) return true;
  s.stopped = true;
  return false;
}

/// True iff a gate is installed and has stopped evaluation — for code
/// that must not publish partially-built derived state (e.g. the
/// active-domain cache) after a cancelled build.
inline bool StepGateStopped() {
  const StepGateState& s = ThreadStepGate();
  return s.gate != nullptr && s.stopped;
}

/// Reports cache bytes to the installed gate; no-op without one.
inline void ChargeGateBytes(int64_t delta) {
  StepGateState& s = ThreadStepGate();
  if (s.gate != nullptr && delta != 0) s.gate->OnBytes(delta);
}

/// RAII installer. Scopes nest: the previous gate is restored on exit,
/// and the partially-consumed tick batch is flushed to the outgoing gate
/// so fuel accounting stays accurate to the batch across scopes.
class ScopedStepGate {
 public:
  explicit ScopedStepGate(StepGate* gate) : saved_(ThreadStepGate()) {
    StepGateState& s = ThreadStepGate();
    s.gate = gate;
    s.countdown = kStepBatch;
    s.stopped = false;
  }
  ~ScopedStepGate() {
    StepGateState& s = ThreadStepGate();
    if (s.gate != nullptr && !s.stopped && s.countdown < kStepBatch) {
      s.gate->Admit(kStepBatch - s.countdown);  // flush the partial batch
    }
    s = saved_;
  }

  ScopedStepGate(const ScopedStepGate&) = delete;
  ScopedStepGate& operator=(const ScopedStepGate&) = delete;

 private:
  StepGateState saved_;
};

}  // namespace sws::util

#endif  // SWS_UTIL_CANCELLATION_H_
