#ifndef SWS_PERSISTENCE_RECOVERY_H_
#define SWS_PERSISTENCE_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "persistence/durability.h"
#include "persistence/snapshot.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "sws/fault.h"
#include "sws/status.h"
#include "sws/sws.h"

namespace sws::persistence {

/// An output recomputed during replay whose original callback never
/// fired (no outcome record was journaled before the crash). These are
/// the *unacknowledged* delimiter runs; the recovering caller delivers
/// them exactly once. Acknowledged outputs are replayed for state but
/// suppressed here.
struct ReplayedOutcome {
  std::string session_id;
  uint64_t seq = 0;  // seq of the delimiter input
  core::Status status;
  rel::Relation output;
};

struct RecoveryStats {
  uint64_t snapshots_loaded = 0;
  uint64_t segments_scanned = 0;
  uint64_t torn_tails_truncated = 0;
  uint64_t short_read_retries = 0;
  uint64_t records_scanned = 0;
  uint64_t duplicate_records = 0;
  uint64_t sessions_recovered = 0;
  uint64_t inputs_replayed = 0;
  uint64_t acked_suppressed = 0;  // acknowledged outcomes not re-emitted
  uint64_t discards_applied = 0;
  uint64_t seq_gaps = 0;          // replay stopped early (should be 0)
  uint64_t output_mismatches = 0; // replay disagreed with the journal
};

struct RecoveryResult {
  core::Status status;
  /// Post-replay state per session: db and pending buffer as of the last
  /// journaled input, next_seq = the seq the session expects next (a
  /// resubmitting client continues from here).
  std::map<std::string, SessionImage> sessions;
  /// Unacknowledged outputs recomputed by replay, in (session_id, seq)
  /// order.
  std::vector<ReplayedOutcome> replayed;
  RecoveryStats stats;
  /// The incarnation a restarting runtime should write under.
  uint64_t next_incarnation = 1;
};

struct RecoveryOptions {
  /// Re-check acknowledged outputs against the journal (determinism
  /// audit); a mismatch sets stats.output_mismatches and fails recovery.
  bool verify_replay_outputs = true;
  /// Node budget for replay runs (matches RunOptions::max_nodes).
  size_t run_max_nodes = 50'000'000;
  /// Retries for transiently failing segment reads (injected short
  /// reads) before giving up.
  uint32_t max_read_retries = 3;
};

/// Deterministic crash recovery over a durable directory (DESIGN.md §9):
/// merge every snapshot (per session, the image with the largest
/// next_seq wins — later snapshots subsume earlier ones), scan every
/// journal segment, truncate torn tails, then per session replay the
/// records with seq >= the image's next_seq through SessionRunner::Feed.
/// τ's determinism (the paper's Section 2) makes the replay reproduce
/// the pre-crash registers exactly; journaled outcomes tell replay which
/// outputs were already acknowledged (suppressed) and which delimiter
/// runs failed (emulated as discards, never re-run — a transient fault
/// must not diverge on replay).
///
/// Recover() then writes one consolidated snapshot and deletes the files
/// it subsumes, so recovery is idempotent: a crash *during* recovery
/// just recovers again from either the old files or the consolidated
/// snapshot, never a mix.
class RecoveryManager {
 public:
  /// `seed_db` is the database a brand-new session starts from (the
  /// runtime's shared seed); sessions that appear only in the journal
  /// (never snapshotted) replay on top of it. `fault_injector` may be
  /// null (short-read hook).
  RecoveryManager(std::string dir, const core::Sws* sws, rel::Database seed_db,
                  RecoveryOptions options, core::FaultInjector* fault_injector);

  /// Full recovery: scan + truncate torn tails + replay + consolidated
  /// snapshot + GC of subsumed files.
  RecoveryResult Recover() { return Run(/*mutate=*/true); }

  /// Read-only recovery (no truncation, snapshot or GC) — what the
  /// durable dir *would* recover to; for inspection tooling.
  RecoveryResult Inspect() { return Run(/*mutate=*/false); }

 private:
  RecoveryResult Run(bool mutate);

  std::string dir_;
  const core::Sws* sws_;
  rel::Database seed_db_;
  RecoveryOptions options_;
  core::FaultInjector* fault_injector_;
};

}  // namespace sws::persistence

#endif  // SWS_PERSISTENCE_RECOVERY_H_
