#include "persistence/serde.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "logic/cq.h"
#include "logic/fo.h"
#include "logic/term.h"
#include "logic/ucq.h"

namespace sws::persistence {

namespace {

using logic::Atom;
using logic::Comparison;
using logic::ConjunctiveQuery;
using logic::FoFormula;
using logic::FoQuery;
using logic::Term;
using logic::UnionQuery;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

bool ByteReader::Need(size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

uint8_t ByteReader::GetU8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t ByteReader::GetU32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::GetU64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

std::string ByteReader::GetString() {
  uint32_t len = GetU32();
  if (!Need(len)) return {};
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

bool ByteReader::CheckCount(uint64_t count, uint64_t min_bytes_per_elem) {
  if (failed_ || count > remaining() / std::max<uint64_t>(1, min_bytes_per_elem)) {
    failed_ = true;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Relational layer.

void EncodeValue(const rel::Value& v, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case rel::Value::Kind::kInt:
      w->PutI64(v.AsInt());
      break;
    case rel::Value::Kind::kString:
      w->PutString(v.AsString());
      break;
    case rel::Value::Kind::kNull:
      w->PutI64(v.null_label());
      break;
  }
}

std::optional<rel::Value> DecodeValue(ByteReader* r) {
  switch (r->GetU8()) {
    case static_cast<uint8_t>(rel::Value::Kind::kInt):
      return rel::Value::Int(r->GetI64());
    case static_cast<uint8_t>(rel::Value::Kind::kString):
      return rel::Value::Str(r->GetString());
    case static_cast<uint8_t>(rel::Value::Kind::kNull):
      return rel::Value::Null(r->GetI64());
    default:
      r->MarkFailed();
      return std::nullopt;
  }
}

void EncodeTuple(const rel::Tuple& t, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(t.size()));
  for (const rel::Value& v : t) EncodeValue(v, w);
}

std::optional<rel::Tuple> DecodeTuple(ByteReader* r) {
  uint32_t n = r->GetU32();
  if (!r->CheckCount(n, 1)) return std::nullopt;
  rel::Tuple t;
  t.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto v = DecodeValue(r);
    if (!v) return std::nullopt;
    t.push_back(std::move(*v));
  }
  return t;
}

void EncodeRelation(const rel::Relation& rel, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(rel.arity()));
  w->PutU32(static_cast<uint32_t>(rel.size()));
  for (const rel::Tuple& t : rel) {
    for (const rel::Value& v : t) EncodeValue(v, w);
  }
}

std::optional<rel::Relation> DecodeRelation(ByteReader* r) {
  const uint32_t arity = r->GetU32();
  const uint32_t count = r->GetU32();
  if (arity > (1u << 20)) {
    r->MarkFailed();
    return std::nullopt;
  }
  // A nullary relation's tuples occupy zero bytes, so the byte-backed
  // count guard below cannot apply; it can only hold ∅ or {()}, so the
  // count itself is the guard.
  if (arity == 0) {
    if (count > 1) {
      r->MarkFailed();
      return std::nullopt;
    }
  } else if (!r->CheckCount(count, arity)) {
    return std::nullopt;
  }
  // Tuples were written in set order, so bulk construction applies.
  std::vector<rel::Tuple> tuples;
  tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    rel::Tuple t;
    t.reserve(arity);
    for (uint32_t j = 0; j < arity; ++j) {
      auto v = DecodeValue(r);
      if (!v) return std::nullopt;
      t.push_back(std::move(*v));
    }
    if (!tuples.empty() && !(tuples.back() < t)) {  // must be strictly sorted
      r->MarkFailed();
      return std::nullopt;
    }
    tuples.push_back(std::move(t));
  }
  if (!r->ok()) return std::nullopt;
  return rel::Relation::FromSorted(arity, std::move(tuples));
}

void EncodeDatabase(const rel::Database& db, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(db.relations().size()));
  for (const auto& [name, rel] : db.relations()) {
    w->PutString(name);
    EncodeRelation(rel, w);
  }
}

std::optional<rel::Database> DecodeDatabase(ByteReader* r) {
  const uint32_t n = r->GetU32();
  if (!r->CheckCount(n, 8)) return std::nullopt;
  rel::Database db;
  std::string prev;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = r->GetString();
    auto rel = DecodeRelation(r);
    if (!rel) return std::nullopt;
    if (i > 0 && !(prev < name)) {  // map order ⇒ strictly increasing names
      r->MarkFailed();
      return std::nullopt;
    }
    prev = name;
    db.Set(name, std::move(*rel));
  }
  return db;
}

void EncodeInputSequence(const rel::InputSequence& seq, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(seq.message_arity()));
  w->PutU32(static_cast<uint32_t>(seq.size()));
  for (size_t j = 1; j <= seq.size(); ++j) EncodeRelation(seq.Message(j), w);
}

std::optional<rel::InputSequence> DecodeInputSequence(ByteReader* r) {
  const uint32_t arity = r->GetU32();
  const uint32_t n = r->GetU32();
  if (!r->CheckCount(n, 8)) return std::nullopt;
  std::vector<rel::Relation> messages;
  messages.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto rel = DecodeRelation(r);
    if (!rel) return std::nullopt;
    if (rel->arity() != arity) {
      r->MarkFailed();
      return std::nullopt;
    }
    messages.push_back(std::move(*rel));
  }
  return rel::InputSequence(arity, std::move(messages));
}

void EncodeSchema(const rel::Schema& schema, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.size()));
  for (const rel::RelationSchema& rs : schema.relations()) {
    w->PutString(rs.name());
    w->PutU32(static_cast<uint32_t>(rs.arity()));
    for (const std::string& attr : rs.attributes()) w->PutString(attr);
  }
}

std::optional<rel::Schema> DecodeSchema(ByteReader* r) {
  const uint32_t n = r->GetU32();
  if (!r->CheckCount(n, 8)) return std::nullopt;
  rel::Schema schema;
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = r->GetString();
    const uint32_t arity = r->GetU32();
    if (!r->CheckCount(arity, 4)) return std::nullopt;
    std::vector<std::string> attrs;
    attrs.reserve(arity);
    for (uint32_t j = 0; j < arity; ++j) attrs.push_back(r->GetString());
    if (!r->ok() || schema.Contains(name)) {
      r->MarkFailed();
      return std::nullopt;
    }
    schema.Add(rel::RelationSchema(std::move(name), std::move(attrs)));
  }
  return schema;
}

// ---------------------------------------------------------------------------
// Query ASTs.

namespace {

void EncodeTerm(const Term& t, ByteWriter* w) {
  w->PutU8(t.is_var() ? 0 : 1);
  if (t.is_var()) {
    w->PutI64(t.var());
  } else {
    EncodeValue(t.value(), w);
  }
}

std::optional<Term> DecodeTerm(ByteReader* r) {
  switch (r->GetU8()) {
    case 0:
      return Term::Var(static_cast<int>(r->GetI64()));
    case 1: {
      auto v = DecodeValue(r);
      if (!v) return std::nullopt;
      return Term::Const(std::move(*v));
    }
    default:
      r->MarkFailed();
      return std::nullopt;
  }
}

bool DecodeTerms(ByteReader* r, std::vector<Term>* out) {
  const uint32_t n = r->GetU32();
  if (!r->CheckCount(n, 2)) return false;
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto t = DecodeTerm(r);
    if (!t) return false;
    out->push_back(std::move(*t));
  }
  return true;
}

void EncodeTerms(const std::vector<Term>& terms, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(terms.size()));
  for (const Term& t : terms) EncodeTerm(t, w);
}

void EncodeCq(const ConjunctiveQuery& cq, ByteWriter* w) {
  EncodeTerms(cq.head(), w);
  w->PutU32(static_cast<uint32_t>(cq.body().size()));
  for (const Atom& a : cq.body()) {
    w->PutString(a.relation);
    EncodeTerms(a.args, w);
  }
  w->PutU32(static_cast<uint32_t>(cq.comparisons().size()));
  for (const Comparison& c : cq.comparisons()) {
    EncodeTerm(c.lhs, w);
    EncodeTerm(c.rhs, w);
    w->PutU8(c.is_equality ? 1 : 0);
  }
}

std::optional<ConjunctiveQuery> DecodeCq(ByteReader* r) {
  std::vector<Term> head;
  if (!DecodeTerms(r, &head)) return std::nullopt;
  const uint32_t num_atoms = r->GetU32();
  if (!r->CheckCount(num_atoms, 8)) return std::nullopt;
  std::vector<Atom> body;
  body.reserve(num_atoms);
  for (uint32_t i = 0; i < num_atoms; ++i) {
    Atom a;
    a.relation = r->GetString();
    if (!DecodeTerms(r, &a.args)) return std::nullopt;
    body.push_back(std::move(a));
  }
  const uint32_t num_cmp = r->GetU32();
  if (!r->CheckCount(num_cmp, 5)) return std::nullopt;
  std::vector<Comparison> comparisons;
  comparisons.reserve(num_cmp);
  for (uint32_t i = 0; i < num_cmp; ++i) {
    Comparison c;
    auto lhs = DecodeTerm(r);
    auto rhs = DecodeTerm(r);
    if (!lhs || !rhs) return std::nullopt;
    c.lhs = std::move(*lhs);
    c.rhs = std::move(*rhs);
    c.is_equality = r->GetU8() != 0;
    comparisons.push_back(std::move(c));
  }
  if (!r->ok()) return std::nullopt;
  return ConjunctiveQuery(std::move(head), std::move(body),
                          std::move(comparisons));
}

void EncodeFoFormula(const FoFormula& f, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(f.kind()));
  switch (f.kind()) {
    case FoFormula::Kind::kAtom:
      w->PutString(f.relation());
      EncodeTerms(f.args(), w);
      return;
    case FoFormula::Kind::kEq:
      EncodeTerm(f.args()[0], w);
      EncodeTerm(f.args()[1], w);
      return;
    case FoFormula::Kind::kExists:
    case FoFormula::Kind::kForall:
      w->PutI64(f.bound_var());
      EncodeFoFormula(f.children()[0], w);
      return;
    case FoFormula::Kind::kNot:
      EncodeFoFormula(f.children()[0], w);
      return;
    case FoFormula::Kind::kAnd:
    case FoFormula::Kind::kOr:
      w->PutU32(static_cast<uint32_t>(f.children().size()));
      for (const FoFormula& c : f.children()) EncodeFoFormula(c, w);
      return;
  }
}

std::optional<FoFormula> DecodeFoFormula(ByteReader* r, int depth = 0) {
  if (depth > 512) {  // corrupted nesting guard
    r->MarkFailed();
    return std::nullopt;
  }
  const uint8_t kind = r->GetU8();
  switch (static_cast<FoFormula::Kind>(kind)) {
    case FoFormula::Kind::kAtom: {
      std::string relation = r->GetString();
      std::vector<Term> args;
      if (!DecodeTerms(r, &args)) return std::nullopt;
      return FoFormula::MakeAtom(std::move(relation), std::move(args));
    }
    case FoFormula::Kind::kEq: {
      auto lhs = DecodeTerm(r);
      auto rhs = DecodeTerm(r);
      if (!lhs || !rhs) return std::nullopt;
      return FoFormula::Eq(std::move(*lhs), std::move(*rhs));
    }
    case FoFormula::Kind::kExists:
    case FoFormula::Kind::kForall: {
      const int var = static_cast<int>(r->GetI64());
      auto body = DecodeFoFormula(r, depth + 1);
      if (!body) return std::nullopt;
      return static_cast<FoFormula::Kind>(kind) == FoFormula::Kind::kExists
                 ? FoFormula::Exists(var, std::move(*body))
                 : FoFormula::Forall(var, std::move(*body));
    }
    case FoFormula::Kind::kNot: {
      auto body = DecodeFoFormula(r, depth + 1);
      if (!body) return std::nullopt;
      return FoFormula::Not(std::move(*body));
    }
    case FoFormula::Kind::kAnd:
    case FoFormula::Kind::kOr: {
      const uint32_t n = r->GetU32();
      if (!r->CheckCount(n, 1)) return std::nullopt;
      std::vector<FoFormula> children;
      children.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        auto c = DecodeFoFormula(r, depth + 1);
        if (!c) return std::nullopt;
        children.push_back(std::move(*c));
      }
      return static_cast<FoFormula::Kind>(kind) == FoFormula::Kind::kAnd
                 ? FoFormula::And(std::move(children))
                 : FoFormula::Or(std::move(children));
    }
  }
  r->MarkFailed();
  return std::nullopt;
}

}  // namespace

void EncodeRelQuery(const core::RelQuery& q, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(q.language()));
  switch (q.language()) {
    case core::RelQuery::Language::kCq:
      EncodeCq(q.cq(), w);
      return;
    case core::RelQuery::Language::kUcq: {
      const UnionQuery& u = q.ucq();
      w->PutU32(static_cast<uint32_t>(u.head_arity()));
      w->PutU32(static_cast<uint32_t>(u.disjuncts().size()));
      for (const ConjunctiveQuery& cq : u.disjuncts()) EncodeCq(cq, w);
      return;
    }
    case core::RelQuery::Language::kFo: {
      const FoQuery& fo = q.fo();
      EncodeTerms(fo.head(), w);
      EncodeFoFormula(fo.formula(), w);
      return;
    }
  }
}

std::optional<core::RelQuery> DecodeRelQuery(ByteReader* r) {
  switch (r->GetU8()) {
    case static_cast<uint8_t>(core::RelQuery::Language::kCq): {
      auto cq = DecodeCq(r);
      if (!cq) return std::nullopt;
      return core::RelQuery::Cq(std::move(*cq));
    }
    case static_cast<uint8_t>(core::RelQuery::Language::kUcq): {
      const uint32_t head_arity = r->GetU32();
      const uint32_t n = r->GetU32();
      if (head_arity > (1u << 20) || !r->CheckCount(n, 8)) return std::nullopt;
      UnionQuery u(head_arity);
      for (uint32_t i = 0; i < n; ++i) {
        auto cq = DecodeCq(r);
        if (!cq) return std::nullopt;
        if (cq->head_arity() != head_arity) {  // Add would abort
          r->MarkFailed();
          return std::nullopt;
        }
        u.Add(std::move(*cq));
      }
      return core::RelQuery::Ucq(std::move(u));
    }
    case static_cast<uint8_t>(core::RelQuery::Language::kFo): {
      std::vector<Term> head;
      if (!DecodeTerms(r, &head)) return std::nullopt;
      auto formula = DecodeFoFormula(r);
      if (!formula) return std::nullopt;
      return core::RelQuery::Fo(FoQuery(std::move(head), std::move(*formula)));
    }
    default:
      r->MarkFailed();
      return std::nullopt;
  }
}

void EncodeSws(const core::Sws& sws, ByteWriter* w) {
  EncodeSchema(sws.db_schema(), w);
  w->PutU32(static_cast<uint32_t>(sws.rin_arity()));
  w->PutU32(static_cast<uint32_t>(sws.rout_arity()));
  w->PutU32(static_cast<uint32_t>(sws.num_states()));
  for (int q = 0; q < sws.num_states(); ++q) w->PutString(sws.StateName(q));
  for (int q = 0; q < sws.num_states(); ++q) {
    const auto& successors = sws.Successors(q);
    w->PutU32(static_cast<uint32_t>(successors.size()));
    for (const core::TransitionTarget& t : successors) {
      w->PutU32(static_cast<uint32_t>(t.state));
      EncodeRelQuery(t.query, w);
    }
    EncodeRelQuery(sws.Synthesis(q), w);
  }
}

std::optional<core::Sws> DecodeSws(ByteReader* r) {
  auto schema = DecodeSchema(r);
  if (!schema) return std::nullopt;
  const uint32_t rin = r->GetU32();
  const uint32_t rout = r->GetU32();
  const uint32_t num_states = r->GetU32();
  if (rin > (1u << 20) || rout > (1u << 20) || !r->CheckCount(num_states, 8)) {
    return std::nullopt;
  }
  core::Sws sws(std::move(*schema), rin, rout);
  for (uint32_t q = 0; q < num_states; ++q) {
    std::string name = r->GetString();
    // AddState CHECK-fails on duplicates (a programming error for live
    // construction); corrupted input must be rejected, not aborted on.
    if (!r->ok() || sws.FindState(name) >= 0) {
      r->MarkFailed();
      return std::nullopt;
    }
    sws.AddState(std::move(name));
  }
  for (uint32_t q = 0; q < num_states; ++q) {
    const uint32_t num_succ = r->GetU32();
    if (!r->CheckCount(num_succ, 5)) return std::nullopt;
    std::vector<core::TransitionTarget> successors;
    successors.reserve(num_succ);
    for (uint32_t i = 0; i < num_succ; ++i) {
      const uint32_t target = r->GetU32();
      auto query = DecodeRelQuery(r);
      if (!query || target >= num_states) {
        r->MarkFailed();
        return std::nullopt;
      }
      successors.push_back(
          core::TransitionTarget{static_cast<int>(target), std::move(*query)});
    }
    auto synthesis = DecodeRelQuery(r);
    if (!synthesis) return std::nullopt;
    sws.SetTransition(static_cast<int>(q), std::move(successors));
    sws.SetSynthesis(static_cast<int>(q), std::move(*synthesis));
  }
  if (!r->ok()) return std::nullopt;
  return sws;
}

uint64_t SwsFingerprint(const core::Sws& sws) {
  ByteWriter w;
  EncodeSws(sws, &w);
  const std::string& bytes = w.str();
  // 64-bit FNV-1a over the canonical encoding.
  uint64_t h = 1469598103934665603ull;
  for (char ch : bytes) {
    h = (h ^ static_cast<uint8_t>(ch)) * 1099511628211ull;
  }
  return h;
}

}  // namespace sws::persistence
