#ifndef SWS_PERSISTENCE_DURABILITY_H_
#define SWS_PERSISTENCE_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "persistence/journal.h"
#include "persistence/snapshot.h"
#include "sws/fault.h"
#include "sws/status.h"

namespace sws::persistence {

/// Durability knobs, carried by rt::RuntimeOptions::durability. An empty
/// dir disables the whole subsystem — the shards then hold a null
/// ShardDurability pointer and the non-durable hot path is untouched.
struct DurabilityOptions {
  /// Directory for journal segments and snapshots; "" = durability off.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Under kBatch: sync after this many un-synced input appends (outcome
  /// appends always sync before the ack, under kBatch and kAlways alike).
  uint32_t fsync_batch_appends = 64;
  /// Rotate to a fresh journal segment past this many bytes.
  uint64_t segment_bytes = 4ull << 20;
  /// Capture a shard snapshot (and GC its older files) every this many
  /// journal appends.
  uint64_t snapshot_interval_appends = 1024;
  /// Recovery re-runs acknowledged sessions and checks the recomputed
  /// output byte-for-byte against the journaled one (determinism audit).
  bool verify_replay_outputs = true;

  bool enabled() const { return !dir.empty(); }
};

core::Status ValidateDurabilityOptions(const DurabilityOptions& options);

/// Durable-file naming: wal-i<incarnation>-s<shard>-n<counter>.log and
/// snap-i<incarnation>-s<shard>-n<counter>.snap under options.dir.
std::string WalFileName(uint64_t incarnation, uint64_t shard, uint64_t n);
std::string SnapFileName(uint64_t incarnation, uint64_t shard, uint64_t n);

struct DurableFile {
  std::string name;  // basename within the durable dir
  bool is_snapshot = false;
  uint64_t incarnation = 0;
  uint64_t shard = 0;
  uint64_t n = 0;
};

/// Parses a durable-file basename; returns false for foreign files
/// (including .tmp leftovers), which recovery ignores.
bool ParseDurableFileName(const std::string& name, DurableFile* out);

/// All recognized durable files in `dir`, name-sorted (deterministic).
core::Status ListDurableFiles(const std::string& dir,
                              std::vector<DurableFile>* out);

/// 1 + the largest incarnation among existing durable files (1 for an
/// empty dir) — the incarnation a restarting runtime writes under.
core::Status NextIncarnation(const std::string& dir, uint64_t* out);

/// Creates `dir` if absent (one level).
core::Status EnsureDir(const std::string& dir);

/// Outcome of one durable append. `persisted` is the caller's
/// feed/apply decision: true means the whole CRC-framed record reached
/// the segment file, so recovery WILL replay it — even when `status`
/// carries a sync error (the record is in the page cache; a process
/// crash still recovers it, only its OS-crash durability is forfeit).
/// false means no intact frame exists on disk (nothing was written, the
/// partial frame was truncated away, or what remains is CRC-invalid),
/// so recovery will never see it and its seq may be safely reissued.
/// The two must never be conflated: acting as if a persisted record
/// were absent forks the journal — the same seq gets re-journaled with
/// a different payload and replay diverges from the live run.
struct AppendResult {
  core::Status status;
  bool persisted = false;
  bool ok() const { return status.ok(); }
};

/// One shard's durable state: the current journal segment plus rotation,
/// fsync batching, and snapshot bookkeeping. Like the shard's session
/// map, it is only ever touched by the shard's drain-role holder, so it
/// needs no lock (see runtime/session_shard.h).
///
/// The write-ahead contract it maintains:
///  * AppendInput runs *before* the message is fed to the session; the
///    message is fed iff the record persisted (the journal and the live
///    session always agree on the consumed-input sequence);
///  * AppendOutcomeAndAck runs after a delimiter run and *before* the
///    callback — under kAlways/kBatch it syncs, so an acknowledged
///    output is always recoverable (and recovery suppresses its
///    re-emission).
///
/// A poisoned segment (torn write, failed append truncation, failed
/// fsync) is abandoned at the next append: the shard rotates to a fresh
/// segment and the torn tail is left for recovery to truncate, so one
/// storage incident costs one record, never the shard.
class ShardDurability {
 public:
  ShardDurability(const DurabilityOptions& options, SegmentHeader header,
                  uint64_t first_segment_n, core::FaultInjector* fault_injector);

  /// Journals one input record (and possibly rotates / batch-syncs).
  /// The caller feeds the message iff `persisted`, regardless of
  /// `status` — see AppendResult.
  AppendResult AppendInput(const JournalRecord& record);

  /// Journals an outcome record and makes it durable per the fsync
  /// policy; only after this returns ok() may the callback acknowledge.
  /// When `persisted` but not ok() (append landed, fsync failed) the
  /// caller must still withhold the ack — but recovery may see the
  /// record and treat the seq as acknowledged; see the ack-barrier
  /// comment in runtime/session_shard.cc for the resulting semantics.
  AppendResult AppendOutcomeAndAck(const JournalRecord& record);

  /// Journals a discard marker (circuit-breaker shed of buffered input).
  /// The caller applies the discard iff `persisted`.
  AppendResult AppendDiscard(const JournalRecord& record);

  /// True once enough appends have accumulated that the shard should
  /// capture a snapshot at its next safe point.
  bool ShouldSnapshot() const;

  /// Writes the shard's snapshot atomically, rotates to a fresh journal
  /// segment, and garbage-collects this shard's older segments and
  /// snapshots (safe: the new snapshot subsumes them).
  core::Status WriteShardSnapshot(std::vector<SessionImage> sessions);

  /// Replication GC pin. A snapshot normally subsumes this shard's older
  /// segments, but a replication cursor may still be shipping records out
  /// of them — reclaiming such a segment would strand a lagging follower
  /// with no retransmit source. WriteShardSnapshot therefore never
  /// unlinks a journal segment with counter >= `segment_n`; pass
  /// kNoSegmentPin (the default) to release the pin. Snapshot files are
  /// never pinned (followers receive records, not snapshots). Thread-safe
  /// (an atomic): the replicator publishes, the drain-role holder reads.
  static constexpr uint64_t kNoSegmentPin = ~uint64_t{0};
  void PinSegmentsFrom(uint64_t segment_n) {
    gc_pin_.store(segment_n, std::memory_order_relaxed);
  }
  uint64_t segment_pin() const {
    return gc_pin_.load(std::memory_order_relaxed);
  }

  /// Counter of the currently open segment — the one the last persisted
  /// append landed in (the next segment to open, if none is). The
  /// replication cursor stamps this into each shipment.
  uint64_t current_segment_n() const {
    return writer_ ? segment_n_ - 1 : segment_n_;
  }

  uint64_t appends() const { return appends_; }
  uint64_t snapshots_written() const { return snapshots_written_; }
  /// Failed fsyncs (appends, ack barriers, rotation flushes). Each one
  /// forfeits the OS-crash durability of one segment's unsynced tail;
  /// process-crash recoverability is unaffected.
  uint64_t sync_failures() const { return sync_failures_; }
  /// True while the *current* segment is poisoned; the next append
  /// rotates it away, so this is transient, not a terminal shard state.
  bool poisoned() const { return writer_ && writer_->poisoned(); }

 private:
  core::Status EnsureWriter();
  AppendResult Append(const JournalRecord& record);
  core::Status RotateSegment();

  DurabilityOptions options_;
  SegmentHeader header_;
  core::FaultInjector* fault_injector_;
  std::unique_ptr<JournalWriter> writer_;
  uint64_t segment_n_;        // counter for the *next* segment to open
  uint64_t snapshot_n_ = 0;   // counter for the next snapshot
  uint64_t appends_ = 0;      // lifetime appends (all record types)
  uint64_t appends_since_snapshot_ = 0;
  uint32_t unsynced_inputs_ = 0;
  uint64_t snapshots_written_ = 0;
  uint64_t sync_failures_ = 0;
  std::atomic<uint64_t> gc_pin_{kNoSegmentPin};
};

}  // namespace sws::persistence

#endif  // SWS_PERSISTENCE_DURABILITY_H_
