#ifndef SWS_PERSISTENCE_JOURNAL_H_
#define SWS_PERSISTENCE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "sws/fault.h"
#include "sws/status.h"

namespace sws::persistence {

/// When the journal fsyncs. The write-ahead contract ("acknowledged ⇒
/// durable") holds under kAlways and kBatch — both sync an outcome
/// record before its callback is acknowledged; kBatch defers input
/// syncs to every Nth append. kNever leaves flushing to the OS: fastest,
/// and a crash may lose acknowledged tail records (replay then treats
/// them as never-submitted).
enum class FsyncPolicy : uint8_t { kNever = 0, kBatch = 1, kAlways = 2 };

const char* FsyncPolicyName(FsyncPolicy policy);

/// One journal record. The WAL discipline (see DESIGN.md §9):
///  * kInput  — appended *before* a message is fed to its session:
///              (session_id, seq, input, priority, deadline);
///  * kOutcome — appended after a delimiter run, before the callback is
///              invoked: (session_id, seq, status, output). Its presence
///              marks the seq as acknowledged — recovery replays the
///              input for state but suppresses re-emission;
///  * kDiscard — the session's buffered inputs were discarded without a
///              run (circuit-breaker shedding); carries the session's
///              input count at discard time so replay can order it.
struct JournalRecord {
  enum class Type : uint8_t { kInput = 1, kOutcome = 2, kDiscard = 3 };

  Type type = Type::kInput;
  std::string session_id;
  uint64_t seq = 0;
  uint8_t priority = 1;      // kInput: rt::Priority as u8
  int64_t deadline_ns = -1;  // kInput: remaining at append; -1 = none
  uint8_t status_code = 0;   // kOutcome: core::RunError as u8
  rel::Relation payload;     // kInput: the message; kOutcome: the output
};

/// Identity stamped into every segment and snapshot header.
struct SegmentHeader {
  uint64_t incarnation = 0;  // runtime incarnation that wrote the file
  uint64_t shard = 0;        // owning shard (kRecoveryShard for recovery)
  uint64_t service_fingerprint = 0;  // SwsFingerprint of the service
};

/// The shard index recovery stamps into its consolidated snapshot.
inline constexpr uint64_t kRecoveryShard = ~uint64_t{0};

/// Appends CRC32-framed records to one segment file. Not thread-safe: a
/// writer is owned by its shard and only ever touched by the shard's
/// drain-role holder (see runtime/session_shard.h).
///
/// Failure handling: a short or failed write leaves the file in an
/// unknown state, so the writer first tries to truncate back to the last
/// record boundary (the error is then transient — the append simply did
/// not happen); if even that fails, or a torn write was injected (which
/// deliberately leaves a partial frame on disk, simulating a crash in
/// mid-append), or an fsync failed (the segment's unsynced tail has lost
/// its OS-crash durability guarantee, though its whole frames remain
/// readable and survive a *process* crash), the writer is *poisoned*:
/// every later append fails fast with kStorageFailure. The owning
/// ShardDurability then rotates to a fresh segment, leaving this one for
/// recovery to mend — poisoning quarantines a segment, not the shard.
class JournalWriter {
 public:
  /// `fault_injector` may be null; it is consulted once per append for
  /// torn-write injection and once per Sync for fsync-failure injection.
  JournalWriter(std::string path, SegmentHeader header,
                core::FaultInjector* fault_injector);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates the file (must not exist) and writes the segment header.
  core::Status Open();

  /// Frames, checksums and appends one record.
  core::Status Append(const JournalRecord& record);

  /// fsync(2) of everything appended so far. On failure the writer is
  /// poisoned: the kernel may have dropped the dirty pages' error state,
  /// so no later sync on this fd could be trusted to cover them — the
  /// caller rotates to a fresh segment instead. Appended frames remain
  /// readable (and recoverable after a process crash) either way.
  core::Status Sync();

  /// Flushed-to-OS size; the segment-rotation trigger.
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }
  bool poisoned() const { return poisoned_; }

  void Close();

 private:
  std::string path_;
  SegmentHeader header_;
  core::FaultInjector* fault_injector_;
  int fd_ = -1;
  uint64_t bytes_written_ = 0;
  bool poisoned_ = false;
};

/// A fully parsed segment plus where its valid prefix ends.
struct SegmentContents {
  SegmentHeader header;
  std::vector<JournalRecord> records;
  /// Offset one past the last intact record; anything beyond is a torn
  /// tail (crash mid-append) to be truncated by recovery.
  uint64_t valid_bytes = 0;
  bool torn = false;
};

/// Reads a whole segment, stopping cleanly at the first torn/corrupt
/// record (that is a normal crash artifact, not an error). Hard errors:
/// unreadable file, foreign magic/version, or an injected short read
/// (`fault_injector`, transient — the caller retries).
core::Status ReadSegment(const std::string& path,
                         core::FaultInjector* fault_injector,
                         SegmentContents* out);

/// Truncates the file to its valid prefix (recovery's torn-tail repair).
core::Status TruncateTornTail(const std::string& path, uint64_t valid_bytes);

/// Encodes the segment header (shared with snapshot files).
void EncodeSegmentHeader(const SegmentHeader& header, const char magic[8],
                         std::string* out);

/// Encodes `record` as one CRC32-framed journal frame —
/// [u32 len][u32 crc][payload], the exact bytes JournalWriter appends.
/// This framed unit is also what the replication transport ships, so a
/// follower persists byte-identical records to the primary's segment.
std::string EncodeRecordFrame(const JournalRecord& record);

/// Decodes one frame produced by EncodeRecordFrame. Returns false on a
/// short, oversized, CRC-mismatching or malformed frame (a corrupted
/// shipment — the receiver drops it and waits for the retransmit).
bool DecodeRecordFrame(std::string_view frame, JournalRecord* out);

}  // namespace sws::persistence

#endif  // SWS_PERSISTENCE_JOURNAL_H_
