#include "persistence/durability.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "persistence/serde.h"

namespace sws::persistence {

namespace {

core::Status IoError(const std::string& what, const std::string& path) {
  return core::Status::Error(
      core::RunError::kStorageFailure,
      what + " failed for " + path + ": " + std::strerror(errno));
}

}  // namespace

core::Status ValidateDurabilityOptions(const DurabilityOptions& options) {
  if (!options.enabled()) return core::Status::Ok();
  if (options.fsync_batch_appends == 0) {
    return core::Status::Error(
        core::RunError::kStorageFailure,
        "DurabilityOptions::fsync_batch_appends must be >= 1");
  }
  if (options.segment_bytes < 4096) {
    return core::Status::Error(
        core::RunError::kStorageFailure,
        "DurabilityOptions::segment_bytes must be >= 4096");
  }
  if (options.snapshot_interval_appends == 0) {
    return core::Status::Error(
        core::RunError::kStorageFailure,
        "DurabilityOptions::snapshot_interval_appends must be >= 1");
  }
  return core::Status::Ok();
}

std::string WalFileName(uint64_t incarnation, uint64_t shard, uint64_t n) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "wal-i%06" PRIu64 "-s%05" PRIu64 "-n%06" PRIu64 ".log",
                incarnation, shard, n);
  return buf;
}

std::string SnapFileName(uint64_t incarnation, uint64_t shard, uint64_t n) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "snap-i%06" PRIu64 "-s%05" PRIu64 "-n%06" PRIu64 ".snap",
                incarnation, shard, n);
  return buf;
}

bool ParseDurableFileName(const std::string& name, DurableFile* out) {
  uint64_t inc = 0, shard = 0, n = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(),
                  "wal-i%" SCNu64 "-s%" SCNu64 "-n%" SCNu64 ".log%n", &inc,
                  &shard, &n, &consumed) == 3 &&
      static_cast<size_t>(consumed) == name.size()) {
    *out = DurableFile{name, /*is_snapshot=*/false, inc, shard, n};
    return true;
  }
  consumed = 0;
  if (std::sscanf(name.c_str(),
                  "snap-i%" SCNu64 "-s%" SCNu64 "-n%" SCNu64 ".snap%n", &inc,
                  &shard, &n, &consumed) == 3 &&
      static_cast<size_t>(consumed) == name.size()) {
    *out = DurableFile{name, /*is_snapshot=*/true, inc, shard, n};
    return true;
  }
  return false;
}

core::Status ListDurableFiles(const std::string& dir,
                              std::vector<DurableFile>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return IoError("opendir", dir);
  while (dirent* entry = ::readdir(d)) {
    DurableFile file;
    if (ParseDurableFileName(entry->d_name, &file)) {
      out->push_back(std::move(file));
    }
  }
  ::closedir(d);
  std::sort(out->begin(), out->end(),
            [](const DurableFile& a, const DurableFile& b) {
              return a.name < b.name;
            });
  return core::Status::Ok();
}

core::Status NextIncarnation(const std::string& dir, uint64_t* out) {
  std::vector<DurableFile> files;
  core::Status status = ListDurableFiles(dir, &files);
  if (!status.ok()) return status;
  uint64_t max_inc = 0;
  for (const DurableFile& f : files) max_inc = std::max(max_inc, f.incarnation);
  *out = max_inc + 1;
  return core::Status::Ok();
}

core::Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return core::Status::Ok();
  }
  return IoError("mkdir", dir);
}

ShardDurability::ShardDurability(const DurabilityOptions& options,
                                 SegmentHeader header, uint64_t first_segment_n,
                                 core::FaultInjector* fault_injector)
    : options_(options),
      header_(header),
      fault_injector_(fault_injector),
      segment_n_(first_segment_n) {}

core::Status ShardDurability::EnsureWriter() {
  if (writer_) return core::Status::Ok();
  const std::string path =
      options_.dir + "/" + WalFileName(header_.incarnation, header_.shard,
                                       segment_n_);
  auto writer =
      std::make_unique<JournalWriter>(path, header_, fault_injector_);
  core::Status status = writer->Open();
  if (!status.ok()) return status;
  writer_ = std::move(writer);
  ++segment_n_;
  return core::Status::Ok();
}

AppendResult ShardDurability::Append(const JournalRecord& record) {
  AppendResult result;
  // Rotate at the record boundary *before* the append — when the
  // segment is full (so it never grows past the cap by more than one
  // record), or when it is poisoned: a torn/sync-failed segment is
  // abandoned to recovery (which truncates its torn tail) instead of
  // failing every later append, so one storage incident costs one
  // record, not the shard.
  if (writer_ && (writer_->poisoned() ||
                  writer_->bytes_written() >= options_.segment_bytes)) {
    result.status = RotateSegment();
    if (!result.status.ok()) return result;
  }
  result.status = EnsureWriter();
  if (!result.status.ok()) return result;
  result.status = writer_->Append(record);
  if (!result.status.ok()) return result;
  result.persisted = true;
  ++appends_;
  ++appends_since_snapshot_;
  return result;
}

core::Status ShardDurability::RotateSegment() {
  if (writer_) {
    // Flush the outgoing segment's unsynced tail. A failure here only
    // forfeits that tail's OS-crash durability (the frames are in the
    // file and survive a process crash), so rotation proceeds; the
    // event is recorded in sync_failures().
    if (!writer_->poisoned() && options_.fsync != FsyncPolicy::kNever &&
        unsynced_inputs_ > 0 && !writer_->Sync().ok()) {
      ++sync_failures_;
    }
    unsynced_inputs_ = 0;
    writer_->Close();
    writer_.reset();
  }
  return EnsureWriter();
}

AppendResult ShardDurability::AppendInput(const JournalRecord& record) {
  AppendResult result = Append(record);
  if (!result.persisted) return result;
  core::Status synced;
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      synced = writer_->Sync();
      break;
    case FsyncPolicy::kBatch:
      if (++unsynced_inputs_ >= options_.fsync_batch_appends) {
        unsynced_inputs_ = 0;
        synced = writer_->Sync();
      }
      break;
    case FsyncPolicy::kNever:
      break;
  }
  if (!synced.ok()) {
    // The record is on disk but its fsync failed: report the error with
    // persisted=true so the caller still feeds the message — treating
    // the record as absent would reuse its seq and fork the journal.
    // The poisoned segment rotates away at the next append.
    ++sync_failures_;
    result.status = std::move(synced);
  }
  return result;
}

AppendResult ShardDurability::AppendOutcomeAndAck(const JournalRecord& record) {
  AppendResult result = Append(record);
  if (!result.persisted) return result;
  if (options_.fsync == FsyncPolicy::kNever) return result;
  unsynced_inputs_ = 0;
  if (core::Status synced = writer_->Sync(); !synced.ok()) {
    ++sync_failures_;
    result.status = std::move(synced);
  }
  return result;
}

AppendResult ShardDurability::AppendDiscard(const JournalRecord& record) {
  // A discard changes replay semantics (it sheds buffered inputs), so it
  // is made durable like an outcome.
  return AppendOutcomeAndAck(record);
}

bool ShardDurability::ShouldSnapshot() const {
  return appends_since_snapshot_ >= options_.snapshot_interval_appends;
}

core::Status ShardDurability::WriteShardSnapshot(
    std::vector<SessionImage> sessions) {
  // Re-arm the interval up front: a failed snapshot retries only after
  // another snapshot_interval_appends, not after every drained envelope
  // — encoding every session plus the file IO is exactly the load an
  // already-failing disk cannot absorb. Nothing is lost by waiting: the
  // journal keeps the state recoverable without the snapshot.
  appends_since_snapshot_ = 0;
  SnapshotData data;
  data.header = header_;
  data.sessions = std::move(sessions);
  const uint64_t snap_n = snapshot_n_;
  const std::string path =
      options_.dir + "/" + SnapFileName(header_.incarnation, header_.shard,
                                        snap_n);
  core::Status status = WriteSnapshot(path, data, fault_injector_);
  if (!status.ok()) return status;
  ++snapshot_n_;
  ++snapshots_written_;

  // The snapshot subsumes this shard's journal so far: rotate to a fresh
  // segment, then drop this shard's older segments and snapshots. Other
  // shards' files and recovery's consolidated snapshot are untouched.
  status = RotateSegment();
  if (!status.ok()) return status;
  std::vector<DurableFile> files;
  status = ListDurableFiles(options_.dir, &files);
  if (!status.ok()) return status;
  const uint64_t live_segment_n = segment_n_ - 1;  // the one just opened
  // Segments at or past the replication pin survive the GC even though
  // the snapshot subsumes them: a replication cursor still references
  // them as its retransmit source (see PinSegmentsFrom).
  const uint64_t pin = gc_pin_.load(std::memory_order_relaxed);
  for (const DurableFile& f : files) {
    if (f.incarnation != header_.incarnation || f.shard != header_.shard) {
      continue;
    }
    const bool stale =
        f.is_snapshot ? f.n < snap_n : f.n < live_segment_n && f.n < pin;
    if (stale) ::unlink((options_.dir + "/" + f.name).c_str());
  }
  return core::Status::Ok();
}

}  // namespace sws::persistence
