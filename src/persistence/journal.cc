#include "persistence/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "persistence/serde.h"
#include "util/common.h"

namespace sws::persistence {

namespace {

constexpr char kWalMagic[8] = {'S', 'W', 'S', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;  // magic|version|inc|shard|fp
constexpr uint32_t kMaxRecordBytes = 64u << 20;

core::Status IoError(const std::string& what, const std::string& path) {
  return core::Status::Error(
      core::RunError::kStorageFailure,
      what + " failed for " + path + ": " + std::strerror(errno));
}

/// fsyncs the directory containing `path` so a freshly created or
/// renamed entry survives a crash (POSIX requires syncing the dirent
/// separately from the file).
void SyncParentDir(const std::string& path) {
  std::string dir = ".";
  if (size_t slash = path.rfind('/'); slash != std::string::npos) {
    dir = path.substr(0, slash == 0 ? 1 : slash);
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

std::string EncodeRecordPayload(const JournalRecord& record) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(record.type));
  w.PutString(record.session_id);
  w.PutU64(record.seq);
  switch (record.type) {
    case JournalRecord::Type::kInput:
      w.PutU8(record.priority);
      w.PutI64(record.deadline_ns);
      EncodeRelation(record.payload, &w);
      break;
    case JournalRecord::Type::kOutcome:
      w.PutU8(record.status_code);
      EncodeRelation(record.payload, &w);
      break;
    case JournalRecord::Type::kDiscard:
      break;
  }
  return w.Take();
}

bool DecodeRecordPayload(std::string_view payload, JournalRecord* out) {
  ByteReader r(payload);
  const uint8_t type = r.GetU8();
  out->session_id = r.GetString();
  out->seq = r.GetU64();
  switch (type) {
    case static_cast<uint8_t>(JournalRecord::Type::kInput): {
      out->type = JournalRecord::Type::kInput;
      out->priority = r.GetU8();
      out->deadline_ns = r.GetI64();
      auto rel = DecodeRelation(&r);
      if (!rel) return false;
      out->payload = std::move(*rel);
      break;
    }
    case static_cast<uint8_t>(JournalRecord::Type::kOutcome): {
      out->type = JournalRecord::Type::kOutcome;
      out->status_code = r.GetU8();
      auto rel = DecodeRelation(&r);
      if (!rel) return false;
      out->payload = std::move(*rel);
      break;
    }
    case static_cast<uint8_t>(JournalRecord::Type::kDiscard):
      out->type = JournalRecord::Type::kDiscard;
      break;
    default:
      return false;
  }
  return r.AtEnd();
}

/// Loops ::write over EINTR; returns bytes actually written (< size on
/// hard error or disk-full).
size_t WriteFully(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  return done;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

std::string EncodeRecordFrame(const JournalRecord& record) {
  const std::string payload = EncodeRecordPayload(record);
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  std::string bytes = frame.Take();
  bytes += payload;
  return bytes;
}

bool DecodeRecordFrame(std::string_view frame, JournalRecord* out) {
  if (frame.size() < 8) return false;
  ByteReader header(frame.substr(0, 8));
  const uint32_t len = header.GetU32();
  const uint32_t crc = header.GetU32();
  if (len > kMaxRecordBytes || frame.size() - 8 != len) return false;
  std::string_view payload = frame.substr(8);
  if (Crc32(payload) != crc) return false;
  return DecodeRecordPayload(payload, out);
}

void EncodeSegmentHeader(const SegmentHeader& header, const char magic[8],
                         std::string* out) {
  out->append(magic, 8);
  ByteWriter w;
  w.PutU32(kFormatVersion);
  w.PutU64(header.incarnation);
  w.PutU64(header.shard);
  w.PutU64(header.service_fingerprint);
  out->append(w.str());
}

JournalWriter::JournalWriter(std::string path, SegmentHeader header,
                             core::FaultInjector* fault_injector)
    : path_(std::move(path)),
      header_(header),
      fault_injector_(fault_injector) {}

JournalWriter::~JournalWriter() { Close(); }

core::Status JournalWriter::Open() {
  SWS_CHECK(fd_ < 0) << "journal segment opened twice: " << path_;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) return IoError("open", path_);
  std::string header;
  EncodeSegmentHeader(header_, kWalMagic, &header);
  if (WriteFully(fd_, header.data(), header.size()) != header.size()) {
    poisoned_ = true;
    return IoError("write(header)", path_);
  }
  bytes_written_ = header.size();
  if (::fsync(fd_) != 0) return IoError("fsync(header)", path_);
  SyncParentDir(path_);
  return core::Status::Ok();
}

core::Status JournalWriter::Append(const JournalRecord& record) {
  if (poisoned_) {
    return core::Status::Error(core::RunError::kStorageFailure,
                               "journal segment is poisoned: " + path_);
  }
  SWS_CHECK(fd_ >= 0) << "append to unopened journal segment " << path_;
  const std::string bytes = EncodeRecordFrame(record);

  // Injected torn write: deliberately leave a partial frame on disk —
  // exactly what a crash in mid-append leaves behind — and poison the
  // writer (the simulated process is as good as dead to this segment).
  if (fault_injector_ && fault_injector_->OnJournalAppend()) {
    const size_t torn = std::max<size_t>(1, bytes.size() / 2);
    WriteFully(fd_, bytes.data(), torn);
    bytes_written_ += torn;
    poisoned_ = true;
    return core::Status::Error(core::RunError::kStorageFailure,
                               "injected torn write in " + path_);
  }

  const size_t written = WriteFully(fd_, bytes.data(), bytes.size());
  if (written != bytes.size()) {
    // Try to restore the last-record-boundary invariant; if that works
    // the error is transient (the append simply did not happen).
    if (::ftruncate(fd_, static_cast<off_t>(bytes_written_)) == 0 &&
        ::lseek(fd_, static_cast<off_t>(bytes_written_), SEEK_SET) >= 0) {
      return IoError("write(record)", path_);
    }
    poisoned_ = true;
    return IoError("write(record, unrecovered)", path_);
  }
  bytes_written_ += bytes.size();
  return core::Status::Ok();
}

core::Status JournalWriter::Sync() {
  if (poisoned_) {
    return core::Status::Error(core::RunError::kStorageFailure,
                               "journal segment is poisoned: " + path_);
  }
  SWS_CHECK(fd_ >= 0) << "sync of unopened journal segment " << path_;
  // Injected fsync failure: models fsync(2) returning EIO — the appended
  // frames are in the page cache (a process crash still recovers them)
  // but their OS-crash durability is gone, and Linux marks the dirty
  // pages clean afterwards, so no retry on this fd can be trusted.
  // Poison the segment; the shard rotates to a fresh one.
  if (fault_injector_ && fault_injector_->OnJournalSync()) {
    poisoned_ = true;
    return core::Status::Error(core::RunError::kStorageFailure,
                               "injected fsync failure in " + path_);
  }
  if (::fsync(fd_) != 0) {
    poisoned_ = true;
    return IoError("fsync", path_);
  }
  return core::Status::Ok();
}

void JournalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

core::Status ReadSegment(const std::string& path,
                         core::FaultInjector* fault_injector,
                         SegmentContents* out) {
  if (fault_injector && fault_injector->OnJournalRead()) {
    return core::Status::Error(core::RunError::kStorageFailure,
                               "injected short read of " + path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read", path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  *out = SegmentContents{};
  if (data.size() < kHeaderBytes) {
    // Crash while the segment header was being written; nothing usable.
    out->torn = true;
    return core::Status::Ok();
  }
  if (std::memcmp(data.data(), kWalMagic, 8) != 0) {
    return core::Status::Error(core::RunError::kStorageFailure,
                               "not a journal segment: " + path);
  }
  ByteReader header(std::string_view(data).substr(8, kHeaderBytes - 8));
  const uint32_t version = header.GetU32();
  if (version != kFormatVersion) {
    return core::Status::Error(
        core::RunError::kStorageFailure,
        "unsupported journal format version " + std::to_string(version) +
            " in " + path);
  }
  out->header.incarnation = header.GetU64();
  out->header.shard = header.GetU64();
  out->header.service_fingerprint = header.GetU64();
  out->valid_bytes = kHeaderBytes;

  size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < 8) break;  // torn frame header
    ByteReader frame(std::string_view(data).substr(pos, 8));
    const uint32_t len = frame.GetU32();
    const uint32_t crc = frame.GetU32();
    if (len > kMaxRecordBytes || data.size() - pos - 8 < len) break;
    std::string_view payload = std::string_view(data).substr(pos + 8, len);
    if (Crc32(payload) != crc) break;
    JournalRecord record;
    if (!DecodeRecordPayload(payload, &record)) break;
    out->records.push_back(std::move(record));
    pos += 8 + len;
    out->valid_bytes = pos;
  }
  out->torn = out->valid_bytes != data.size();
  return core::Status::Ok();
}

core::Status TruncateTornTail(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return IoError("truncate", path);
  }
  return core::Status::Ok();
}

}  // namespace sws::persistence
