#ifndef SWS_PERSISTENCE_SNAPSHOT_H_
#define SWS_PERSISTENCE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persistence/journal.h"
#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/fault.h"
#include "sws/status.h"

namespace sws::persistence {

/// Everything needed to rebuild one session mid-stream: its private
/// database, the buffered (uncommitted) prefix of the current session,
/// and the journal seq of the next input it expects. Replay feeds the
/// journaled inputs with seq >= next_seq through SessionRunner::Feed.
struct SessionImage {
  std::string session_id;
  rel::Database db;
  rel::InputSequence pending{1};
  uint64_t next_seq = 0;
};

/// One snapshot file: the writing shard's identity plus its sessions'
/// images at capture time.
struct SnapshotData {
  SegmentHeader header;
  std::vector<SessionImage> sessions;
};

/// Writes a snapshot atomically: encode to `path + ".tmp"`, fsync,
/// rename(2) into place, fsync the directory. A crash at any point
/// leaves either the old state or the new file — never a torn snapshot
/// under the final name (a stray .tmp is ignored by recovery). The body
/// is CRC32-framed like a journal record, so ReadSnapshot rejects
/// silent corruption. `fault_injector` may be null (torn-write hook).
core::Status WriteSnapshot(const std::string& path, const SnapshotData& data,
                           core::FaultInjector* fault_injector);

/// Reads a snapshot written by WriteSnapshot. Any corruption is a hard
/// error — the atomic-rename protocol means a valid snapshot name must
/// hold a complete file. An injected short read (`fault_injector`) is
/// transient; the caller retries.
core::Status ReadSnapshot(const std::string& path,
                          core::FaultInjector* fault_injector,
                          SnapshotData* out);

}  // namespace sws::persistence

#endif  // SWS_PERSISTENCE_SNAPSHOT_H_
