#ifndef SWS_PERSISTENCE_SNAPSHOT_H_
#define SWS_PERSISTENCE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persistence/journal.h"
#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/fault.h"
#include "sws/status.h"

namespace sws::persistence {

/// Everything needed to rebuild one session mid-stream: its private
/// database, the buffered (uncommitted) prefix of the current session,
/// and the journal seq of the next input it expects. Replay feeds the
/// journaled inputs with seq >= next_seq through SessionRunner::Feed.
struct SessionImage {
  std::string session_id;
  rel::Database db;
  rel::InputSequence pending{1};
  uint64_t next_seq = 0;
};

/// One snapshot file: the writing shard's identity plus its sessions'
/// images at capture time.
struct SnapshotData {
  SegmentHeader header;
  std::vector<SessionImage> sessions;
};

/// Encodes `data` to the exact byte string a snapshot file holds:
/// magic + versioned segment header + [u32 len][u32 crc32] + sessions.
/// This is also the catch-up transfer unit — a primary ships these bytes
/// to a joining node, which persists them as a snapshot file in its own
/// dir, so the wire format and the disk format cannot drift.
void EncodeSnapshotPayload(const SnapshotData& data, std::string* out);

/// Decodes bytes produced by EncodeSnapshotPayload (equivalently: a
/// complete snapshot file's contents). `what` names the source in error
/// messages. Rejects any truncation or corruption via the CRC frame.
core::Status DecodeSnapshotPayload(std::string_view bytes,
                                   const std::string& what, SnapshotData* out);

/// Writes a snapshot atomically: encode to `path + ".tmp"`, fsync,
/// rename(2) into place, fsync the directory. A crash at any point
/// leaves either the old state or the new file — never a torn snapshot
/// under the final name (a stray .tmp is ignored by recovery). The body
/// is CRC32-framed like a journal record, so ReadSnapshot rejects
/// silent corruption. `fault_injector` may be null (torn-write hook).
core::Status WriteSnapshot(const std::string& path, const SnapshotData& data,
                           core::FaultInjector* fault_injector);

/// Reads a snapshot written by WriteSnapshot. Any corruption is a hard
/// error — the atomic-rename protocol means a valid snapshot name must
/// hold a complete file. An injected short read (`fault_injector`) is
/// transient; the caller retries.
core::Status ReadSnapshot(const std::string& path,
                          core::FaultInjector* fault_injector,
                          SnapshotData* out);

/// A node's durable fencing state (replication failover, DESIGN.md §13):
/// the highest group epoch this node has adopted and the highest epoch
/// it has granted an election vote at. Persisted before acting so a
/// restarted node can neither accept a deposed primary's stale-epoch
/// writes nor vote twice in one epoch.
struct FencingState {
  uint64_t epoch = 0;
  uint64_t last_vote_epoch = 0;
};

/// Atomically writes `dir + "/epoch.fence"` (tmp + fsync + rename, CRC-
/// framed). The file name is ignored by ParseDurableFileName, so journal
/// recovery never confuses it for a segment or snapshot. A write failure
/// (including an injected torn write) leaves the previous state intact.
core::Status WriteFencingState(const std::string& dir,
                               const FencingState& state,
                               core::FaultInjector* fault_injector);

/// Reads the fencing state; a missing file is Ok and leaves `out` at
/// epoch 0 (a node that never adopted an epoch). Corruption is a hard
/// error — fencing safety depends on not silently regressing the epoch.
core::Status ReadFencingState(const std::string& dir, FencingState* out);

}  // namespace sws::persistence

#endif  // SWS_PERSISTENCE_SNAPSHOT_H_
