#include "persistence/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "persistence/serde.h"

namespace sws::persistence {

namespace {

constexpr char kSnapMagic[8] = {'S', 'W', 'S', 'S', 'N', 'P', '0', '1'};

core::Status IoError(const std::string& what, const std::string& path) {
  return core::Status::Error(
      core::RunError::kStorageFailure,
      what + " failed for " + path + ": " + std::strerror(errno));
}

core::Status Corrupt(const std::string& path, const std::string& why) {
  return core::Status::Error(core::RunError::kStorageFailure,
                             "corrupt snapshot " + path + ": " + why);
}

void SyncParentDir(const std::string& path) {
  std::string dir = ".";
  if (size_t slash = path.rfind('/'); slash != std::string::npos) {
    dir = path.substr(0, slash == 0 ? 1 : slash);
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

size_t WriteFully(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  return done;
}

}  // namespace

void EncodeSnapshotPayload(const SnapshotData& data, std::string* out) {
  ByteWriter body;
  body.PutU64(data.sessions.size());
  for (const SessionImage& image : data.sessions) {
    body.PutString(image.session_id);
    body.PutU64(image.next_seq);
    EncodeDatabase(image.db, &body);
    EncodeInputSequence(image.pending, &body);
  }
  const std::string payload = body.Take();

  out->clear();
  EncodeSegmentHeader(data.header, kSnapMagic, out);
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  *out += frame.str();
  *out += payload;
}

core::Status DecodeSnapshotPayload(std::string_view data,
                                   const std::string& what,
                                   SnapshotData* out) {
  constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;
  if (data.size() < kHeaderBytes + 8) return Corrupt(what, "short file");
  if (std::memcmp(data.data(), kSnapMagic, 8) != 0) {
    return Corrupt(what, "bad magic");
  }
  ByteReader header(data.substr(8, kHeaderBytes - 8));
  const uint32_t version = header.GetU32();
  if (version != kFormatVersion) {
    return Corrupt(what, "format version " + std::to_string(version));
  }
  *out = SnapshotData{};
  out->header.incarnation = header.GetU64();
  out->header.shard = header.GetU64();
  out->header.service_fingerprint = header.GetU64();

  ByteReader frame(data.substr(kHeaderBytes, 8));
  const uint32_t len = frame.GetU32();
  const uint32_t crc = frame.GetU32();
  if (data.size() - kHeaderBytes - 8 != len) return Corrupt(what, "bad length");
  std::string_view payload = data.substr(kHeaderBytes + 8);
  if (Crc32(payload) != crc) return Corrupt(what, "checksum mismatch");

  ByteReader r(payload);
  const uint64_t count = r.GetU64();
  if (!r.CheckCount(count, 1)) return Corrupt(what, "bad session count");
  out->sessions.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SessionImage image;
    image.session_id = r.GetString();
    image.next_seq = r.GetU64();
    auto db = DecodeDatabase(&r);
    if (!db) return Corrupt(what, "bad session database");
    image.db = std::move(*db);
    auto pending = DecodeInputSequence(&r);
    if (!pending) return Corrupt(what, "bad session pending buffer");
    image.pending = std::move(*pending);
    out->sessions.push_back(std::move(image));
  }
  if (!r.AtEnd()) return Corrupt(what, "trailing bytes");
  return core::Status::Ok();
}

core::Status WriteSnapshot(const std::string& path, const SnapshotData& data,
                           core::FaultInjector* fault_injector) {
  std::string bytes;
  EncodeSnapshotPayload(data, &bytes);

  const std::string tmp = path + ".tmp";
  ::unlink(tmp.c_str());  // a stale .tmp from an earlier crash
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return IoError("open", tmp);

  // Injected torn write: leave a partial .tmp behind (a crash mid-
  // snapshot) — it is never renamed, so the previous snapshot survives.
  if (fault_injector && fault_injector->OnJournalAppend()) {
    WriteFully(fd, bytes.data(), std::max<size_t>(1, bytes.size() / 2));
    ::close(fd);
    return core::Status::Error(core::RunError::kStorageFailure,
                               "injected torn write in " + tmp);
  }

  if (WriteFully(fd, bytes.data(), bytes.size()) != bytes.size()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoError("write", tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoError("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return IoError("rename", path);
  }
  SyncParentDir(path);
  return core::Status::Ok();
}

core::Status ReadSnapshot(const std::string& path,
                          core::FaultInjector* fault_injector,
                          SnapshotData* out) {
  if (fault_injector && fault_injector->OnJournalRead()) {
    return core::Status::Error(core::RunError::kStorageFailure,
                               "injected short read of " + path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read", path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  return DecodeSnapshotPayload(data, path, out);
}

namespace {
constexpr char kFenceMagic[8] = {'S', 'W', 'S', 'F', 'N', 'C', '0', '1'};
}  // namespace

core::Status WriteFencingState(const std::string& dir,
                               const FencingState& state,
                               core::FaultInjector* fault_injector) {
  ByteWriter body;
  body.PutU64(state.epoch);
  body.PutU64(state.last_vote_epoch);
  const std::string payload = body.Take();

  std::string bytes(kFenceMagic, 8);
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  bytes += frame.str();
  bytes += payload;

  const std::string path = dir + "/epoch.fence";
  const std::string tmp = path + ".tmp";
  ::unlink(tmp.c_str());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return IoError("open", tmp);
  if (fault_injector && fault_injector->OnJournalAppend()) {
    WriteFully(fd, bytes.data(), std::max<size_t>(1, bytes.size() / 2));
    ::close(fd);
    return core::Status::Error(core::RunError::kStorageFailure,
                               "injected torn write in " + tmp);
  }
  if (WriteFully(fd, bytes.data(), bytes.size()) != bytes.size()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoError("write", tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoError("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return IoError("rename", path);
  }
  SyncParentDir(path);
  return core::Status::Ok();
}

core::Status ReadFencingState(const std::string& dir, FencingState* out) {
  *out = FencingState{};
  const std::string path = dir + "/epoch.fence";
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return core::Status::Ok();
    return IoError("open", path);
  }
  std::string data;
  char buf[256];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read", path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  if (data.size() < 8 + 8) return Corrupt(path, "short file");
  if (std::memcmp(data.data(), kFenceMagic, 8) != 0) {
    return Corrupt(path, "bad magic");
  }
  ByteReader frame(std::string_view(data).substr(8, 8));
  const uint32_t len = frame.GetU32();
  const uint32_t crc = frame.GetU32();
  if (data.size() - 16 != len) return Corrupt(path, "bad length");
  std::string_view payload = std::string_view(data).substr(16);
  if (Crc32(payload) != crc) return Corrupt(path, "checksum mismatch");
  ByteReader r(payload);
  out->epoch = r.GetU64();
  out->last_vote_epoch = r.GetU64();
  if (!r.AtEnd()) return Corrupt(path, "trailing bytes");
  return core::Status::Ok();
}

}  // namespace sws::persistence
