#ifndef SWS_PERSISTENCE_SERDE_H_
#define SWS_PERSISTENCE_SERDE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "relational/database.h"
#include "relational/input_sequence.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "sws/query.h"
#include "sws/sws.h"

namespace sws::persistence {

/// The on-disk format version shared by journal segments and snapshots.
/// Bumped on any incompatible change to the encodings below; readers
/// reject files from a different major version instead of misparsing.
inline constexpr uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// string — the per-record checksum of the journal and snapshot formats.
uint32_t Crc32(std::string_view data);

/// An append-only little-endian byte sink. All multi-byte integers are
/// fixed-width little-endian (the build targets are little-endian; the
/// explicit byte assembly below keeps the format well-defined anyway).
/// Strings and blobs are u32-length-prefixed and may contain any bytes.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutString(std::string_view s);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// The matching reader. Decoding never aborts on malformed input: any
/// short read, bad tag or implausible count trips the failure flag, after
/// which every getter returns a zero value and ok() is false. Callers
/// check ok() once at the end of a decode.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  std::string GetString();

  /// Guards a decoded element count against the bytes actually left:
  /// fails (and returns false) unless count * min_bytes_per_elem fits in
  /// the remainder — so a corrupted count cannot drive a giant
  /// allocation or a quadratic parse.
  bool CheckCount(uint64_t count, uint64_t min_bytes_per_elem);

  bool ok() const { return !failed_; }
  void MarkFailed() { failed_ = true; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return ok() && pos_ == data_.size(); }

 private:
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// ---------------------------------------------------------------------------
// Relational layer. Every DecodeX mirrors its EncodeX; a decode returns
// nullopt (or a zero value with reader.ok() == false) on any corruption.

void EncodeValue(const rel::Value& v, ByteWriter* w);
std::optional<rel::Value> DecodeValue(ByteReader* r);

void EncodeTuple(const rel::Tuple& t, ByteWriter* w);
std::optional<rel::Tuple> DecodeTuple(ByteReader* r);

void EncodeRelation(const rel::Relation& rel, ByteWriter* w);
std::optional<rel::Relation> DecodeRelation(ByteReader* r);

void EncodeDatabase(const rel::Database& db, ByteWriter* w);
std::optional<rel::Database> DecodeDatabase(ByteReader* r);

void EncodeInputSequence(const rel::InputSequence& seq, ByteWriter* w);
std::optional<rel::InputSequence> DecodeInputSequence(ByteReader* r);

void EncodeSchema(const rel::Schema& schema, ByteWriter* w);
std::optional<rel::Schema> DecodeSchema(ByteReader* r);

// ---------------------------------------------------------------------------
// Service definitions: the full rule ASTs (terms, CQ/UCQ/FO, per-state
// transition and synthesis rules), so a service can be persisted next to
// the data it produced and recovery can verify it is replaying through
// the same τ.

void EncodeRelQuery(const core::RelQuery& q, ByteWriter* w);
std::optional<core::RelQuery> DecodeRelQuery(ByteReader* r);

void EncodeSws(const core::Sws& sws, ByteWriter* w);
/// Requires a fully built service (every state has its synthesis rule
/// set, as Sws::Validate demands); returns nullopt on corruption.
std::optional<core::Sws> DecodeSws(ByteReader* r);

/// A stable fingerprint of a service definition — stamped into journal
/// and snapshot headers so RecoveryManager refuses to replay a journal
/// through a different τ than the one that wrote it.
uint64_t SwsFingerprint(const core::Sws& sws);

}  // namespace sws::persistence

#endif  // SWS_PERSISTENCE_SERDE_H_
