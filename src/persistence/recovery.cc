#include "persistence/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "persistence/serde.h"
#include "sws/execution.h"
#include "sws/session.h"

namespace sws::persistence {

namespace {

/// Journaled history of one session, keyed by seq with keep-first dedup
/// (a record can at most repeat across a consolidation crash window; the
/// first copy is as good as any — they are byte-identical).
struct SessionEvents {
  std::map<uint64_t, JournalRecord> inputs;
  std::map<uint64_t, JournalRecord> outcomes;
  std::map<uint64_t, JournalRecord> discards;
};

bool InsertKeepFirst(std::map<uint64_t, JournalRecord>* events,
                     JournalRecord record) {
  return events->emplace(record.seq, std::move(record)).second;
}

}  // namespace

RecoveryManager::RecoveryManager(std::string dir, const core::Sws* sws,
                                 rel::Database seed_db,
                                 RecoveryOptions options,
                                 core::FaultInjector* fault_injector)
    : dir_(std::move(dir)),
      sws_(sws),
      seed_db_(std::move(seed_db)),
      options_(options),
      fault_injector_(fault_injector) {}

RecoveryResult RecoveryManager::Run(bool mutate) {
  RecoveryResult result;
  const uint64_t fingerprint = SwsFingerprint(*sws_);

  auto read_with_retry = [&](auto&& read) {
    core::Status status;
    for (uint32_t attempt = 0;; ++attempt) {
      status = read();
      if (status.ok() || attempt >= options_.max_read_retries) return status;
      ++result.stats.short_read_retries;
    }
  };

  std::vector<DurableFile> files;
  result.status = ListDurableFiles(dir_, &files);
  if (!result.status.ok()) return result;

  // Phase 1 — merge snapshots. Per session the image with the largest
  // next_seq wins: a later snapshot subsumes an earlier one, and across
  // a consolidation crash window both the consolidated and the subsumed
  // per-shard snapshots may coexist.
  uint64_t max_incarnation = 0;
  for (const DurableFile& file : files) {
    if (!file.is_snapshot) continue;
    const std::string path = dir_ + "/" + file.name;
    SnapshotData snap;
    result.status = read_with_retry(
        [&] { return ReadSnapshot(path, fault_injector_, &snap); });
    if (!result.status.ok()) return result;
    if (snap.header.service_fingerprint != fingerprint) {
      result.status = core::Status::Error(
          core::RunError::kStorageFailure,
          "snapshot " + file.name + " was written by a different service");
      return result;
    }
    max_incarnation = std::max(max_incarnation, snap.header.incarnation);
    ++result.stats.snapshots_loaded;
    for (SessionImage& image : snap.sessions) {
      auto [it, inserted] =
          result.sessions.try_emplace(image.session_id, std::move(image));
      if (!inserted && image.next_seq > it->second.next_seq) {
        it->second = std::move(image);
      }
    }
  }

  // Phase 2 — scan journal segments, truncating torn tails.
  std::map<std::string, SessionEvents> events;
  for (const DurableFile& file : files) {
    if (file.is_snapshot) continue;
    const std::string path = dir_ + "/" + file.name;
    SegmentContents seg;
    result.status = read_with_retry(
        [&] { return ReadSegment(path, fault_injector_, &seg); });
    if (!result.status.ok()) return result;
    ++result.stats.segments_scanned;
    if (seg.valid_bytes > 0 &&
        seg.header.service_fingerprint != fingerprint) {
      result.status = core::Status::Error(
          core::RunError::kStorageFailure,
          "segment " + file.name + " was written by a different service");
      return result;
    }
    max_incarnation = std::max(max_incarnation, seg.header.incarnation);
    if (seg.torn && mutate) {
      result.status = TruncateTornTail(path, seg.valid_bytes);
      if (!result.status.ok()) return result;
      ++result.stats.torn_tails_truncated;
    }
    for (JournalRecord& record : seg.records) {
      ++result.stats.records_scanned;
      SessionEvents& se = events[record.session_id];
      std::map<uint64_t, JournalRecord>* bucket = nullptr;
      switch (record.type) {
        case JournalRecord::Type::kInput:
          bucket = &se.inputs;
          break;
        case JournalRecord::Type::kOutcome:
          bucket = &se.outcomes;
          break;
        case JournalRecord::Type::kDiscard:
          bucket = &se.discards;
          break;
      }
      if (!InsertKeepFirst(bucket, std::move(record))) {
        ++result.stats.duplicate_records;
      }
    }
  }
  result.next_incarnation = max_incarnation + 1;

  // Phase 3 — deterministic replay. Events at seq < the merged image's
  // next_seq are already reflected in the snapshot; the rest re-run
  // through the same SessionRunner::Feed path the live runtime uses,
  // with a clean RunOptions (no injector, no retry, no deadline —
  // replay must be the pure τ).
  core::RunOptions run_options;
  run_options.memoize = true;
  run_options.max_nodes = options_.run_max_nodes;
  for (auto& [session_id, se] : events) {
    auto [it, inserted] = result.sessions.try_emplace(
        session_id,
        SessionImage{session_id, seed_db_,
                     rel::InputSequence(sws_->rin_arity()), 0});
    SessionImage& image = it->second;
    core::SessionRunner runner(sws_, std::move(image.db),
                               std::move(image.pending));
    uint64_t next_seq = image.next_seq;

    // Merge inputs and discards in (seq, discard-before-input) order: a
    // discard at seq s happened after inputs [0, s) and before input s.
    auto input_it = se.inputs.lower_bound(next_seq);
    auto discard_it = se.discards.lower_bound(next_seq);
    bool gap = false;
    while (!gap && (input_it != se.inputs.end() ||
                    discard_it != se.discards.end())) {
      const bool discard_first =
          discard_it != se.discards.end() &&
          (input_it == se.inputs.end() ||
           discard_it->first <= input_it->first);
      if (discard_first) {
        // Idempotent: if the snapshot already reflects the discard the
        // pending buffer is simply empty here.
        runner.DiscardPending();
        ++result.stats.discards_applied;
        ++discard_it;
        continue;
      }
      const uint64_t seq = input_it->first;
      if (seq != next_seq) {
        // A hole in the input history — the WAL discipline makes this
        // impossible (inputs journal before seqs advance); stop rather
        // than replay a wrong suffix.
        ++result.stats.seq_gaps;
        gap = true;
        break;
      }
      const JournalRecord& input = input_it->second;
      auto outcome_it = se.outcomes.find(seq);
      if (!core::SessionRunner::IsDelimiter(input.payload)) {
        runner.Feed(input.payload, run_options);
      } else if (outcome_it == se.outcomes.end()) {
        // Unacknowledged delimiter: the crash ate its callback. Re-run
        // and emit exactly once.
        auto outcome = runner.Feed(input.payload, run_options);
        result.replayed.push_back(ReplayedOutcome{
            session_id, seq, outcome->status, std::move(outcome->output)});
      } else if (outcome_it->second.status_code == 0) {
        // Acknowledged success: replay for state, suppress re-emission,
        // and audit determinism against the journaled output.
        auto outcome = runner.Feed(input.payload, run_options);
        ++result.stats.acked_suppressed;
        if (options_.verify_replay_outputs &&
            (!outcome->status.ok() ||
             !(outcome->output == outcome_it->second.payload))) {
          ++result.stats.output_mismatches;
          result.status = core::Status::Error(
              core::RunError::kStorageFailure,
              "replay of " + session_id + " seq " + std::to_string(seq) +
                  " diverged from the journaled output");
          return result;
        }
      } else {
        // Acknowledged failure: the live run committed nothing and
        // dropped the buffer. Do NOT re-run — a transient fault there
        // must not become a success on replay. Emulate the effect.
        runner.DiscardPending();
        ++result.stats.acked_suppressed;
      }
      ++result.stats.inputs_replayed;
      next_seq = seq + 1;
      ++input_it;
    }

    image.db = runner.db();
    image.pending = runner.pending();
    image.next_seq = next_seq;
  }
  result.stats.sessions_recovered = result.sessions.size();

  // Phase 4 — consolidate: one snapshot that subsumes everything read,
  // then delete the subsumed files. Ordering makes a crash here benign:
  // until the rename lands the old files fully describe the state, and
  // after it the consolidated snapshot wins every next_seq merge.
  if (mutate && !files.empty()) {
    SnapshotData snap;
    snap.header = SegmentHeader{result.next_incarnation, kRecoveryShard,
                                fingerprint};
    snap.sessions.reserve(result.sessions.size());
    for (const auto& [session_id, image] : result.sessions) {
      snap.sessions.push_back(image);
    }
    const std::string snap_path =
        dir_ + "/" +
        SnapFileName(result.next_incarnation, kRecoveryShard, 0);
    result.status = WriteSnapshot(snap_path, snap, fault_injector_);
    if (!result.status.ok()) return result;
    for (const DurableFile& file : files) {
      ::unlink((dir_ + "/" + file.name).c_str());
    }
  }
  return result;
}

}  // namespace sws::persistence
