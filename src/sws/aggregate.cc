#include "sws/aggregate.h"

#include <algorithm>

#include "util/common.h"

namespace sws::core {

double CostModel::Cost(const rel::Tuple& tuple) const {
  double cost = 0;
  for (size_t i = 0; i < tuple.size() && i < column_weights.size(); ++i) {
    if (tuple[i].is_int()) {
      cost += column_weights[i] * static_cast<double>(tuple[i].AsInt());
    }
  }
  return cost;
}

namespace {

rel::Relation SelectOptimal(const rel::Relation& relation,
                            const CostModel& model, bool minimize) {
  rel::Relation out(relation.arity());
  if (relation.empty()) return out;
  std::optional<double> best;
  for (const rel::Tuple& t : relation) {
    double c = model.Cost(t);
    if (!best.has_value() || (minimize ? c < *best : c > *best)) best = c;
  }
  for (const rel::Tuple& t : relation) {
    if (model.Cost(t) == *best) out.Insert(t);
  }
  return out;
}

}  // namespace

rel::Relation SelectMinCost(const rel::Relation& relation,
                            const CostModel& model) {
  return SelectOptimal(relation, model, /*minimize=*/true);
}

rel::Relation SelectMaxCost(const rel::Relation& relation,
                            const CostModel& model) {
  return SelectOptimal(relation, model, /*minimize=*/false);
}

rel::Relation ApplyAggregation(const rel::Relation& output,
                               const Aggregation& aggregation) {
  switch (aggregation.kind) {
    case AggregateKind::kMinCost:
      return SelectMinCost(output, aggregation.cost_model);
    case AggregateKind::kMaxCost:
      return SelectMaxCost(output, aggregation.cost_model);
    case AggregateKind::kCount: {
      rel::Relation out(1);
      out.Insert({rel::Value::Int(static_cast<int64_t>(output.size()))});
      return out;
    }
    case AggregateKind::kSum: {
      SWS_CHECK_LT(aggregation.column, output.arity());
      int64_t sum = 0;
      for (const rel::Tuple& t : output) {
        if (t[aggregation.column].is_int()) {
          sum += t[aggregation.column].AsInt();
        }
      }
      rel::Relation out(1);
      out.Insert({rel::Value::Int(sum)});
      return out;
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      SWS_CHECK_LT(aggregation.column, output.arity());
      std::optional<int64_t> best;
      for (const rel::Tuple& t : output) {
        if (!t[aggregation.column].is_int()) continue;
        int64_t v = t[aggregation.column].AsInt();
        if (!best.has_value() ||
            (aggregation.kind == AggregateKind::kMin ? v < *best
                                                     : v > *best)) {
          best = v;
        }
      }
      rel::Relation out(1);
      if (best.has_value()) out.Insert({rel::Value::Int(*best)});
      return out;
    }
  }
  return rel::Relation(output.arity());
}

RunResult AggregateSws::Run(const rel::Database& db,
                            const rel::InputSequence& input,
                            const RunOptions& options) const {
  RunResult result = core::Run(*sws_, db, input, options);
  result.output = ApplyAggregation(result.output, aggregation_);
  return result;
}

}  // namespace sws::core
