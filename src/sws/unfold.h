#ifndef SWS_SWS_UNFOLD_H_
#define SWS_SWS_UNFOLD_H_

#include <string>

#include "logic/ucq.h"
#include "relational/input_sequence.h"
#include "sws/sws.h"

namespace sws::core {

/// Name of the j-th input message relation in unfolded queries:
/// "In@1", "In@2", ... (1-indexed, matching timestamps).
std::string InputRelationAt(size_t j);

/// Packs a database D and an input sequence I into one evaluation
/// database over R ∪ {In@1..In@n}, suitable for evaluating unfolded
/// queries.
rel::Database PackDatabaseAndInput(const rel::Database& db,
                                   const rel::InputSequence& input);

/// Unfolds an SWS(CQ, UCQ) service into an equivalent UCQ^{≠} over
/// R ∪ {In@1..In@n}, for input sequences of length exactly n. The
/// construction referenced by Theorem 4.1(2) ("SWS's in SWSnr(CQ, UCQ)
/// can be converted to UCQ queries with inequality", Section 5.2) —
/// exponential in the depth of the service.
///
/// Recursive services are supported for a *fixed* n: every level of the
/// execution tree consumes a timestamp, so the unfolding terminates at
/// depth n regardless of cycles in the dependency graph. (This is
/// exactly why the recursive decision problems are harder: no single n
/// covers all inputs.)
///
/// Semantics preserved exactly, including the ∅-register rules: for every
/// database D and input I with |I| = n,
///   Run(sws, D, I).output == UnfoldNonrecursive(sws, n)
///                                .Evaluate(PackDatabaseAndInput(D, I)).
///
/// Since a nonrecursive service never reads past I_depth, the family
/// { UnfoldNonrecursive(sws, n) : n ≤ MaxDepth() } together with the
/// n = MaxDepth() query for all longer inputs characterizes the service's
/// full behavior. Aborts if the service is not CQ/UCQ.
logic::UnionQuery UnfoldToUcq(const Sws& sws, size_t n);

/// Backward-compatible name for nonrecursive callers.
inline logic::UnionQuery UnfoldNonrecursive(const Sws& sws, size_t n) {
  return UnfoldToUcq(sws, n);
}

/// Number of UCQ disjuncts the unfolding would produce before
/// unsatisfiable-disjunct pruning (growth statistic for the Table 1
/// benchmarks).
size_t UnfoldDisjunctBound(const Sws& sws, size_t n);

}  // namespace sws::core

#endif  // SWS_SWS_UNFOLD_H_
