#ifndef SWS_SWS_FAULT_H_
#define SWS_SWS_FAULT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "sws/status.h"

namespace sws::core {

class ExecutionGovernor;

/// Every place a fault can be injected. Each point owns one independent
/// deterministic decision stream (see the seed-derivation rule on
/// FaultInjector::Draw), so points never perturb each other's schedules
/// and new callsites can reuse a point without seeding drift.
enum class FaultPoint : uint8_t {
  kRunFailure = 0,      // engine run attempt aborts with kInjectedFault
  kRunDelay,            // latency injected before a run attempt
  kDrainStall,          // a shard drain step stalls holding the role
  kTornWrite,           // a journal append leaves a partial frame
  kSyncFailure,         // a journal fsync fails (EIO model)
  kShortRead,           // a journal segment read fails transiently
  kTransportDrop,       // a replication shipment/ack is dropped
  kTransportDuplicate,  // a replication shipment is delivered twice
  kTransportReorder,    // a replication shipment is delayed past later ones
  kTransportDelay,      // a replication shipment is delivered late
};
inline constexpr size_t kNumFaultPoints = 10;

/// What a FaultInjector may do, and how often. Rates are probabilities
/// in [0, 1] evaluated on an independent deterministic stream per fault
/// point, so a given seed reproduces the same fault schedule (exactly
/// under a single worker; the same draw *sequence* under many).
struct FaultOptions {
  uint64_t seed = 1;
  /// Probability that a run attempt aborts with kInjectedFault.
  double fail_rate = 0.0;
  /// Deterministically fail the first N run attempts, then defer to
  /// fail_rate — for exact retry/circuit-breaker unit tests.
  uint32_t fail_first_runs = 0;
  /// Probability of artificial latency injected before a run attempt.
  double delay_rate = 0.0;
  std::chrono::microseconds delay{0};
  /// Probability that a shard drain step stalls while holding the drain
  /// role — models a slow shard backing up its sessions.
  double stall_rate = 0.0;
  std::chrono::microseconds stall{0};
  /// Probability that a journal append tears: a partial frame is left on
  /// disk (as a crash in mid-write would leave) and the writer is
  /// poisoned. See persistence::JournalWriter.
  double torn_write_rate = 0.0;
  /// Probability that a journal fsync fails (models fsync(2) returning
  /// EIO: the record reached the file's page cache — a process crash
  /// still recovers it — but its OS-crash durability is forfeit and the
  /// writer is poisoned so the segment rotates away).
  double sync_fail_rate = 0.0;
  /// Probability that a journal segment read fails transiently (short
  /// read); recovery retries the read.
  double short_read_rate = 0.0;
  /// Replication-transport faults (see replication/transport.h): each
  /// shipment event draws drop, duplicate, reorder and delay decisions
  /// from its own stream. A reorder holds one shipment back past later
  /// ones; a delay delivers it `transport_delay` late.
  double transport_drop_rate = 0.0;
  double transport_duplicate_rate = 0.0;
  double transport_reorder_rate = 0.0;
  double transport_delay_rate = 0.0;
  std::chrono::microseconds transport_delay{0};
};

/// A deterministic, seeded fault-injection hook threaded through query
/// evaluation (engine run attempts) and shard scheduling (drain steps).
/// Thread-safe: decisions are pure functions of (seed, hook, draw index)
/// with the draw index a relaxed atomic counter per hook. The injector
/// is wired as a nullable pointer everywhere it appears — a disabled
/// injector is a null pointer, and the only hot-path cost is that one
/// branch (see bench_runtime_throughput's faults-disabled run).
class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options);

  /// Engine hook, called once per run attempt: possibly sleeps (injected
  /// latency), then decides whether this attempt fails with
  /// kInjectedFault. Returns true iff the attempt must fail. With a
  /// governor, the injected sleep is interruptible: a cancelled run (or
  /// one whose deadline passes mid-sleep) wakes immediately instead of
  /// sleeping out the full injected delay.
  bool OnRunAttempt(ExecutionGovernor* governor = nullptr);

  /// Shard-scheduling hook, called once per drained envelope: possibly
  /// stalls the calling worker while it holds the shard's drain role.
  /// With a governor, the stall is interruptible (as OnRunAttempt).
  void OnDrainStep(ExecutionGovernor* governor = nullptr);

  /// Storage hook, called once per journal append: returns true iff this
  /// append must tear (a dead disk and armed tears fire before the
  /// probabilistic stream).
  bool OnJournalAppend();

  /// Storage hook, called once per journal fsync: returns true iff this
  /// sync must fail (armed failures fire before the probabilistic
  /// stream).
  bool OnJournalSync();

  /// Storage hook, called once per segment read: returns true iff this
  /// read must fail transiently (armed short reads fire first).
  bool OnJournalRead();

  /// The one seed-derivation rule every fault point obeys. The n-th
  /// arrival at point p fires iff
  ///
  ///   UnitFromDraw(SplitMix64(seed ^ salt(p) ^ n · 0x9e3779b97f4a7c15)) < rate
  ///
  /// where salt(p) is a fixed per-point constant (fault.cc) and n is the
  /// point's own atomic arrival counter — advanced on every call, hit or
  /// miss. Because each point owns its counter and salt, a callsite can
  /// share a point (or a new subsystem can adopt one, as the replication
  /// transport does) without shifting any other point's schedule, and
  /// the same seed reproduces the same per-point decision sequence
  /// regardless of how draws on different points interleave.
  bool Draw(FaultPoint point, double rate);

  /// Arrivals at / fired decisions of one point (telemetry; the named
  /// getters below are aliases for the pre-transport points).
  uint64_t draws(FaultPoint point) const {
    return point_draws_[static_cast<size_t>(point)].load(
        std::memory_order_relaxed);
  }
  uint64_t hits(FaultPoint point) const {
    return point_hits_[static_cast<size_t>(point)].load(
        std::memory_order_relaxed);
  }

  /// Arms the next `n` journal appends / fsyncs / segment reads to fail
  /// deterministically, independent of seed and draw position — for
  /// tests that must hit an exact append (e.g. a breaker probe).
  void ArmTornWrites(uint32_t n) {
    armed_torn_.store(n, std::memory_order_relaxed);
  }
  void ArmSyncFailures(uint32_t n) {
    armed_sync_fail_.store(n, std::memory_order_relaxed);
  }
  void ArmShortReads(uint32_t n) {
    armed_short_read_.store(n, std::memory_order_relaxed);
  }

  /// The dead-disk model: after `healthy` more journal appends, every
  /// subsequent append tears, permanently — segment rotation cannot
  /// revive it. For crash drills where storage death precedes process
  /// death (a lone armed tear only kills one append now that a poisoned
  /// segment rotates away).
  void KillStorageAfter(uint32_t healthy) {
    storage_kill_.store(healthy + 1, std::memory_order_relaxed);
  }

  /// Re-arms dead storage as healthy — an in-process "node" that killed
  /// its disk to crash can restart a fresh life against the same injector.
  void ReviveStorage() { storage_kill_.store(0, std::memory_order_relaxed); }

  const FaultOptions& options() const { return options_; }

  // Telemetry (for tests and reports); aliases over draws()/hits().
  uint64_t injected_failures() const { return hits(FaultPoint::kRunFailure); }
  uint64_t injected_delays() const { return hits(FaultPoint::kRunDelay); }
  uint64_t injected_stalls() const { return hits(FaultPoint::kDrainStall); }
  uint64_t run_attempts() const { return draws(FaultPoint::kRunFailure); }
  uint64_t injected_torn_writes() const {
    return hits(FaultPoint::kTornWrite);
  }
  uint64_t injected_sync_failures() const {
    return hits(FaultPoint::kSyncFailure);
  }
  uint64_t injected_short_reads() const {
    return hits(FaultPoint::kShortRead);
  }

 private:
  /// Advances `point`'s arrival counter; returns the index fed to the
  /// derivation rule.
  uint64_t NextIndex(FaultPoint point) {
    return point_draws_[static_cast<size_t>(point)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void RecordHit(FaultPoint point) {
    point_hits_[static_cast<size_t>(point)].fetch_add(
        1, std::memory_order_relaxed);
  }
  /// The pure decision function of (seed, salt(point), index) vs `rate`;
  /// counts a hit when it fires.
  bool Decide(FaultPoint point, double rate, uint64_t index);

  FaultOptions options_;
  std::array<std::atomic<uint64_t>, kNumFaultPoints> point_draws_{};
  std::array<std::atomic<uint64_t>, kNumFaultPoints> point_hits_{};
  std::atomic<uint32_t> armed_torn_{0};
  std::atomic<uint32_t> armed_sync_fail_{0};
  std::atomic<uint32_t> armed_short_read_{0};
  /// 0 = inactive; > 1 = that many healthy appends left; 1 = dead.
  std::atomic<uint32_t> storage_kill_{0};
};

/// SplitMix64 — a tiny, high-quality mixing function; used to derive
/// independent deterministic streams from (seed, salt, counter).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) from a 64-bit draw (top 53 bits).
inline double UnitFromDraw(uint64_t draw) {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

/// Per-request retry of failed session runs. Retrying is replay-safe by
/// construction: a failed run commits nothing and the session buffer is
/// kept until the final attempt, so a retry re-runs the exact same
/// (D, I_session) — the paper's determinism makes the replay idempotent.
struct RetryPolicy {
  /// Total run attempts per request; 1 = no retry.
  uint32_t max_attempts = 1;
  /// First backoff, and the cap for the exponential growth.
  std::chrono::microseconds initial_backoff{50};
  std::chrono::microseconds max_backoff{5'000};
  /// Seed for the decorrelated jitter stream.
  uint64_t jitter_seed = 1;
};

/// Only transient faults are worth re-running. A budget trip is a
/// deterministic function of (D, I) — retrying cannot change it — and
/// deadline/queue/shutdown conditions are terminal for the request.
inline bool IsRetryable(RunError error) {
  return error == RunError::kInjectedFault;
}

/// Capped exponential backoff with decorrelated jitter: each wait is
/// uniform in [initial, 3 × previous), clamped to max_backoff — spreads
/// synchronized retries apart instead of letting them thundering-herd.
/// Deterministic given (policy.jitter_seed, stream).
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, uint64_t stream);
  std::chrono::microseconds Next();

 private:
  RetryPolicy policy_;
  std::chrono::microseconds prev_;
  uint64_t state_;
  uint64_t n_ = 0;
};

}  // namespace sws::core

#endif  // SWS_SWS_FAULT_H_
