#include "sws/unfold.h"

#include <map>
#include <optional>

#include "util/common.h"

namespace sws::core {

std::string InputRelationAt(size_t j) {
  SWS_CHECK_GE(j, 1u);
  return "In@" + std::to_string(j);
}

rel::Database PackDatabaseAndInput(const rel::Database& db,
                                   const rel::InputSequence& input) {
  rel::Database packed = db;
  for (size_t j = 1; j <= input.size(); ++j) {
    packed.Set(InputRelationAt(j), input.Message(j));
  }
  return packed;
}

namespace {

using logic::Atom;
using logic::Comparison;
using logic::ConjunctiveQuery;
using logic::Term;
using logic::UnionQuery;

// Parses "Act<i>" into i; 0 if the name is not an Act register.
size_t ParseActIndex(const std::string& relation) {
  if (relation.size() <= 3 || relation.compare(0, 3, "Act") != 0) return 0;
  size_t i = 0;
  for (size_t pos = 3; pos < relation.size(); ++pos) {
    char c = relation[pos];
    if (c < '0' || c > '9') return 0;
    i = i * 10 + static_cast<size_t>(c - '0');
  }
  return i;
}

class Unfolder {
 public:
  Unfolder(const Sws& sws, size_t n) : sws_(sws), n_(n) {}

  UnionQuery Root() {
    return ActQuery(sws_.start_state(), 0, std::nullopt, /*is_root=*/true);
  }

 private:
  // Rewrites q's variables to globally fresh ones.
  ConjunctiveQuery Freshen(const ConjunctiveQuery& q) {
    std::map<int, Term> map;
    for (int v : q.Vars()) map.emplace(v, Term::Var(next_var_++));
    return q.Substitute(map);
  }

  // Inlines a rule CQ written over R ∪ {In, Msg} reading input message
  // I_{input_level}: "In" atoms become "In@level"; "Msg" atoms are
  // replaced by the node's msg-defining query (body copied, head unified
  // via '=' comparisons). Returns nullopt if the CQ reads Msg but the
  // register is definitely empty, or reads In at level 0 (the root's
  // empty message I_0).
  std::optional<ConjunctiveQuery> InlineBase(
      const ConjunctiveQuery& rule, size_t input_level,
      const std::optional<ConjunctiveQuery>& msg) {
    ConjunctiveQuery q = Freshen(rule);
    ConjunctiveQuery out(q.head(), {}, q.comparisons());
    for (const Atom& atom : q.body()) {
      if (atom.relation == kInputRelation) {
        if (input_level == 0) return std::nullopt;
        out.mutable_body()->push_back(
            Atom{InputRelationAt(input_level), atom.args});
      } else if (atom.relation == kMsgRelation) {
        if (!msg.has_value()) return std::nullopt;
        ConjunctiveQuery m = Freshen(*msg);
        SWS_CHECK_EQ(m.head_arity(), atom.args.size());
        for (const Atom& a : m.body()) out.mutable_body()->push_back(a);
        for (const Comparison& c : m.comparisons()) {
          out.mutable_comparisons()->push_back(c);
        }
        for (size_t l = 0; l < atom.args.size(); ++l) {
          out.mutable_comparisons()->push_back(
              Comparison{m.head()[l], atom.args[l], /*is_equality=*/true});
        }
      } else {
        out.mutable_body()->push_back(atom);
      }
    }
    return out;
  }

  // Conjoins the nonemptiness guard "∃ msg": a copy of the msg-defining
  // body (head ignored) — the Msg(v) = ∅ ⇒ Act(v) = ∅ run rule.
  void ConjoinGuard(ConjunctiveQuery* q, const ConjunctiveQuery& msg) {
    ConjunctiveQuery m = Freshen(msg);
    for (const Atom& a : m.body()) q->mutable_body()->push_back(a);
    for (const Comparison& c : m.comparisons()) {
      q->mutable_comparisons()->push_back(c);
    }
  }

  void FinalizeDisjunct(ConjunctiveQuery disjunct, bool is_root,
                        const std::optional<ConjunctiveQuery>& msg,
                        UnionQuery* out) {
    if (!is_root && msg.has_value()) ConjoinGuard(&disjunct, *msg);
    if (auto norm = disjunct.Normalize(); norm.has_value()) {
      out->Add(*norm);
    }
  }

  // Expands the Act atoms of a synthesis disjunct by all combinations of
  // child-act disjuncts.
  void ExpandSynth(const ConjunctiveQuery& d, size_t atom_index,
                   ConjunctiveQuery acc,
                   const std::vector<UnionQuery>& child_acts, bool is_root,
                   const std::optional<ConjunctiveQuery>& msg,
                   UnionQuery* out) {
    if (atom_index == d.body().size()) {
      FinalizeDisjunct(std::move(acc), is_root, msg, out);
      return;
    }
    const Atom& atom = d.body()[atom_index];
    size_t act_index = ParseActIndex(atom.relation);
    SWS_CHECK(act_index >= 1 && act_index <= child_acts.size())
        << "internal synthesis atom reads " << atom.relation;
    for (const ConjunctiveQuery& choice :
         child_acts[act_index - 1].disjuncts()) {
      ConjunctiveQuery c = Freshen(choice);
      SWS_CHECK_EQ(c.head_arity(), atom.args.size());
      ConjunctiveQuery next = acc;
      for (const Atom& a : c.body()) next.mutable_body()->push_back(a);
      for (const Comparison& cmp : c.comparisons()) {
        next.mutable_comparisons()->push_back(cmp);
      }
      for (size_t l = 0; l < atom.args.size(); ++l) {
        next.mutable_comparisons()->push_back(
            Comparison{c.head()[l], atom.args[l], /*is_equality=*/true});
      }
      ExpandSynth(d, atom_index + 1, std::move(next), child_acts, is_root,
                  msg, out);
    }
  }

  // The UCQ defining Act(q) for a node at timestamp j whose message
  // register is defined by `msg` (nullopt = definitely empty). The root
  // is at timestamp 0; a node at timestamp j reads I_j in a final state
  // and spawns children whose registers read I_{j+1}.
  UnionQuery ActQuery(int state, size_t j,
                      const std::optional<ConjunctiveQuery>& msg,
                      bool is_root) {
    UnionQuery out(sws_.rout_arity());
    if (j > n_) return out;                      // input exhausted
    if (!is_root && !msg.has_value()) return out;  // empty register
    if (is_root && n_ == 0) return out;          // root needs nonempty I

    const auto& successors = sws_.Successors(state);
    if (successors.empty()) {
      // Final state: Act = ψ(D, I_j, Msg).
      UnionQuery psi = sws_.Synthesis(state).AsUcq();
      for (const ConjunctiveQuery& d : psi.disjuncts()) {
        auto inlined = InlineBase(d, j, msg);
        if (!inlined.has_value()) continue;
        FinalizeDisjunct(std::move(*inlined), is_root, msg, &out);
      }
      return out;
    }

    // Child registers, then child action queries.
    std::vector<UnionQuery> child_acts;
    for (const TransitionTarget& t : successors) {
      std::optional<ConjunctiveQuery> child_msg =
          InlineBase(t.query.cq(), j + 1, msg);
      if (child_msg.has_value()) {
        // Prune definitely-empty registers early.
        child_msg = child_msg->Normalize();
      }
      child_acts.push_back(
          ActQuery(t.state, j + 1, child_msg, /*is_root=*/false));
    }

    UnionQuery psi = sws_.Synthesis(state).AsUcq();
    for (const ConjunctiveQuery& d_raw : psi.disjuncts()) {
      ConjunctiveQuery d = Freshen(d_raw);
      ConjunctiveQuery acc(d.head(), {}, d.comparisons());
      ExpandSynth(d, 0, std::move(acc), child_acts, is_root, msg, &out);
    }
    return out;
  }

  const Sws& sws_;
  const size_t n_;
  int next_var_ = 0;
};

}  // namespace

UnionQuery UnfoldToUcq(const Sws& sws, size_t n) {
  SWS_CHECK(sws.IsCqUcq()) << "unfolding needs an SWS(CQ, UCQ) service";
  SWS_CHECK(!sws.Validate().has_value()) << *sws.Validate();
  Unfolder unfolder(sws, n);
  return unfolder.Root();
}

namespace {

size_t DisjunctBound(const Sws& sws, int state, size_t j, size_t n) {
  if (j > n || n == 0) return 0;
  const auto& successors = sws.Successors(state);
  UnionQuery psi = sws.Synthesis(state).AsUcq();
  if (successors.empty()) return psi.size();
  std::vector<size_t> child_bounds;
  for (const TransitionTarget& t : successors) {
    child_bounds.push_back(DisjunctBound(sws, t.state, j + 1, n));
  }
  size_t total = 0;
  for (const ConjunctiveQuery& d : psi.disjuncts()) {
    size_t product = 1;
    for (const Atom& atom : d.body()) {
      size_t act_index = ParseActIndex(atom.relation);
      if (act_index >= 1 && act_index <= child_bounds.size()) {
        product *= child_bounds[act_index - 1];
      }
      if (product == 0) break;
    }
    total += product;
  }
  return total;
}

}  // namespace

size_t UnfoldDisjunctBound(const Sws& sws, size_t n) {
  return DisjunctBound(sws, sws.start_state(), 0, n);
}

}  // namespace sws::core
