#include "sws/governor.h"

#include <utility>

namespace sws::core {

bool ExecutionGovernor::Admit(uint64_t steps) {
  if (code_.load(std::memory_order_acquire) != RunError::kNone) return false;

  const uint64_t total =
      steps_.fetch_add(steps, std::memory_order_relaxed) + steps;
  if (limits_.max_eval_steps != 0 && total > limits_.max_eval_steps) {
    Cancel(RunError::kFuelExhausted,
           "evaluation fuel exhausted (max_eval_steps)");
    return false;
  }
  if (limits_.max_tracked_bytes != 0 &&
      tracked_bytes_.load(std::memory_order_relaxed) >
          static_cast<int64_t>(limits_.max_tracked_bytes)) {
    Cancel(RunError::kFuelExhausted,
           "tracked cache bytes over budget (max_tracked_bytes)");
    return false;
  }
  if (limits_.deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() > limits_.deadline) {
    Cancel(RunError::kDeadlineExceeded, "in-query deadline exceeded");
    return false;
  }
  if (parent_ != nullptr && !parent_->Admit(steps)) {
    // Adopt the ancestor's cancellation so status() is typed even when
    // observed through this child.
    Status up = parent_->status();
    Cancel(up.code(), up.message());
    return false;
  }
  return true;
}

void ExecutionGovernor::OnBytes(int64_t delta) {
  const int64_t now =
      tracked_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta > 0) {
    int64_t peak = tracked_bytes_peak_.load(std::memory_order_relaxed);
    while (now > peak && !tracked_bytes_peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  if (parent_ != nullptr) parent_->OnBytes(delta);
}

bool ExecutionGovernor::Cancel(RunError error, std::string message) {
  if (error == RunError::kNone) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RunError expected = RunError::kNone;
    // message_ must be in place before code_ publishes (acq/rel pair
    // with the load in status()); both happen under mu_ for simplicity.
    if (!code_.compare_exchange_strong(expected, error,
                                       std::memory_order_acq_rel)) {
      return false;
    }
    message_ = std::move(message);
  }
  cv_.notify_all();
  return true;
}

Status ExecutionGovernor::status() const {
  const RunError code = code_.load(std::memory_order_acquire);
  if (code != RunError::kNone) {
    std::lock_guard<std::mutex> lock(mu_);
    return Status::Error(code, message_);
  }
  if (parent_ != nullptr) return parent_->status();
  return Status::Ok();
}

bool ExecutionGovernor::SleepInterruptible(std::chrono::nanoseconds duration) {
  if (duration.count() <= 0) return !cancelled();
  const auto wake = std::chrono::steady_clock::now() + duration;
  std::unique_lock<std::mutex> lock(mu_);
  while (!cancelled()) {
    auto until = wake;
    if (limits_.deadline < until) until = limits_.deadline;
    if (std::chrono::steady_clock::now() >= until) break;
    // A cancelled ancestor notifies its own cv, not ours, so poll with a
    // short cap instead of waiting the full interval on this cv alone.
    auto cap = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
    cv_.wait_until(lock, until < cap ? until : cap);
  }
  if (cancelled()) return false;
  if (limits_.deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= limits_.deadline &&
      std::chrono::steady_clock::now() < wake) {
    lock.unlock();
    Cancel(RunError::kDeadlineExceeded, "deadline passed during injected wait");
    return false;
  }
  return true;
}

}  // namespace sws::core
