#ifndef SWS_SWS_PL_SWS_H_
#define SWS_SWS_PL_SWS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "logic/pl_formula.h"
#include "relational/input_sequence.h"
#include "sws/sws.h"

namespace sws::core {

/// A synthesized Web service in SWS(PL, PL) (Section 2, "SWS classes"):
/// the service is not data-driven; an input message is a truth assignment
/// over propositional variables (represented as the set of true
/// variables), and the message/action registers hold single truth values.
///
/// Variable conventions inside rule formulas:
///  * transition formulas φ_i and final-state synthesis formulas ψ use
///    variables 0..num_input_vars-1 for the current input message, and
///    the dedicated variable msg_var() == num_input_vars for the node's
///    message register;
///  * internal-state synthesis formulas ψ use variable i (0-based) for
///    the action register of the i-th successor in the transition rule.
///
/// A PlSws denotes, for each input word over the alphabet of truth
/// assignments, a Boolean output — i.e. it defines a language (run
/// semantics below mirror Section 2 with ∅/"nonempty" read as
/// false/true).
class PlSws {
 public:
  explicit PlSws(int num_input_vars);

  int num_input_vars() const { return num_input_vars_; }
  /// The variable standing for Msg(q) in transition and final-synthesis
  /// formulas.
  int msg_var() const { return num_input_vars_; }

  /// Adds a state; the first state added is the start state q0.
  int AddState(std::string name);
  int num_states() const { return static_cast<int>(states_.size()); }
  int start_state() const { return 0; }
  const std::string& StateName(int q) const;
  int FindState(const std::string& name) const;

  struct Successor {
    int state = 0;
    logic::PlFormula guard;  // φ_i over input vars and msg_var()
  };

  void SetTransition(int q, std::vector<Successor> successors);
  void SetSynthesis(int q, logic::PlFormula synthesis);

  const std::vector<Successor>& Successors(int q) const;
  const logic::PlFormula& Synthesis(int q) const;
  bool IsFinalState(int q) const { return Successors(q).empty(); }

  std::optional<std::string> Validate() const;

  bool IsRecursive() const;
  /// Longest state-chain from q0 (nonrecursive only): inputs beyond this
  /// prefix length never influence the output.
  std::optional<size_t> MaxDepth() const;

  /// "SWS(PL, PL)" or "SWSnr(PL, PL)".
  std::string Classify() const;

  /// An input message: the set of true propositional variables.
  using Symbol = std::set<int>;
  using Word = std::vector<Symbol>;

  /// τ(I): the Boolean output of the run on input word `input`.
  bool Run(const Word& input) const;
  /// Run with the root's message register seeded (mediator semantics).
  bool RunSeeded(const Word& input, bool initial_msg) const;

  /// Run result with consumption bookkeeping for mediators (Section
  /// 5.1): max_consumed is the largest input index any node of the
  /// execution tree read — I_{max_consumed+1} is the first unconsumed
  /// message.
  struct RunInfo {
    bool value = false;
    size_t max_consumed = 0;
  };
  RunInfo RunWithInfo(const Word& input, bool initial_msg) const;

  // --- Value-vector machinery (the engine behind both Run and the
  // --- decision procedures of analysis/pl_analysis.h).
  //
  // Timestamps follow the run engine: the root is at timestamp 0; a node
  // at timestamp j had its register bit computed from I_j; a final state
  // at timestamp j reads I_j; an internal state at timestamp j computes
  // its successors' bits from I_{j+1}.
  //
  // The word is folded right-to-left over "carry vectors": after the
  // suffix I_j..I_n has been folded, entry q of the carry is the value an
  // *internal* node at state q, timestamp j-1, with a true register,
  // produces (its subtree lives in the folded suffix). Final-state
  // entries of the carry are unused (false); their value needs the next
  // symbol and is computed inside the following StepBack/RootValue.

  /// The carry for the empty suffix: internal states see all-false
  /// children (they live past the end of the input).
  std::vector<bool> InitialCarry() const;

  /// Folds input message `a` = I_j into the carry for suffix I_{j+1}..I_n,
  /// yielding the carry for suffix I_j..I_n.
  std::vector<bool> StepBack(const std::vector<bool>& carry,
                             const Symbol& a) const;

  /// The root's value when I_1 = `a` and `carry` is the fold of I_2..I_n;
  /// `root_msg` is the seeded register (false for a standalone service —
  /// Msg(r) = ∅). A final-state root reads I_0 = the empty message.
  bool RootValue(const std::vector<bool>& carry, const Symbol& a,
                 bool root_msg) const;

  /// Input variables actually mentioned by some rule formula — the
  /// alphabet the decision procedures need to enumerate (2^|relevant|
  /// symbols suffice).
  std::set<int> RelevantInputVars() const;

  std::string ToString(const logic::PlVarPool* pool = nullptr) const;

 private:
  // Value of a final state reading input `a` with register bit `msg`.
  bool FinalValue(int state, const Symbol& a, bool msg) const;
  // Value of an internal state with register bit `msg` whose children are
  // spawned on input `a` (= I_{j+1}) against the timestamp-(j+1) value
  // vector `next_values`.
  bool InternalValue(int state, const Symbol& a, bool msg,
                     const std::vector<bool>& next_values) const;
  // The timestamp-j value vector (register bit true) from the carry of
  // I_{j+1}..I_n and a = I_j.
  std::vector<bool> ValuesAt(const std::vector<bool>& carry,
                             const Symbol& a) const;

  struct StateRules {
    std::string name;
    std::vector<Successor> successors;
    logic::PlFormula synthesis;
    bool has_synthesis = false;
  };

  int num_input_vars_;
  std::vector<StateRules> states_;
};

/// Encodes a PlSws as a data-driven Sws over an empty database schema:
/// an input message {v1, ..., vk} becomes the unary relation In =
/// {(v1), ..., (vk)}; registers become unary relations that are nonempty
/// iff the Boolean register is true (output tuple (1)). For every word I,
///   pl.Run(I) == true  iff  Run(encoded, D_empty, EncodePlWord(I)) ≠ ∅.
/// This realizes the paper's uniform treatment of PL services in the
/// relational framework.
Sws PlSwsToRelational(const PlSws& pl);

/// Encodes a PL input word for the relational simulation.
rel::InputSequence EncodePlWord(const PlSws::Word& word);

}  // namespace sws::core

#endif  // SWS_SWS_PL_SWS_H_
