#ifndef SWS_SWS_STATUS_H_
#define SWS_SWS_STATUS_H_

#include <cstdint>
#include <string>

namespace sws::core {

/// The error taxonomy of the serving stack. The paper's execution model
/// is all-or-nothing — a run either completes and yields τ(D, I) or it
/// does not — so every failure mode below is a *serving* condition
/// layered on top of the paper's semantics, never a partial result:
/// a failed run commits nothing and produces an empty output.
enum class RunError : uint8_t {
  kNone = 0,          // success
  kBudgetExceeded,    // the run tripped RunOptions::max_nodes
  kInjectedFault,     // a FaultInjector aborted the run (tests/chaos)
  kDeadlineExceeded,  // the request missed its deadline
  kQueueRejected,     // admission refused the request (full queue / shed)
  kCircuitOpen,       // the session's circuit breaker is fast-failing
  kShutdown,          // the runtime is shut down
  kStorageFailure,    // the durability layer could not journal/persist
  kFuelExhausted,     // the run tripped an evaluation-fuel / byte budget
  kReplicationTimeout,  // the follower ack quorum was not reached in time
};

const char* RunErrorName(RunError error);

/// A Status-style result: ok() or a RunError plus an optional message.
/// The library does not use exceptions (Google style); fallible
/// operations return a Status (or embed one in their outcome struct).
/// The default-constructed Status is OK and allocates nothing.
class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(RunError code, std::string message = {}) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == RunError::kNone; }
  explicit operator bool() const { return ok(); }
  RunError code() const { return code_; }
  const std::string& message() const { return message_; }
  /// "OK" or "<error name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  RunError code_ = RunError::kNone;
  std::string message_;
};

}  // namespace sws::core

#endif  // SWS_SWS_STATUS_H_
