#ifndef SWS_SWS_SWS_H_
#define SWS_SWS_SWS_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "sws/query.h"

namespace sws::core {

/// One successor entry (q_i, φ_i) of a transition rule (Definition 2.1).
struct TransitionTarget {
  int state = 0;
  RelQuery query;  // φ_i : R, R_in, Msg(q) → Msg(q_i)
};

/// A synthesized Web service τ = (Q, δ, σ, q0) over a database schema R,
/// an input schema R_in and an external schema R_out (Definition 2.1).
///
/// Each state q has exactly one transition rule
///     q → (q_1, φ_1), ..., (q_k, φ_k)
/// and one synthesis rule  Act(q) ← ψ. For k > 0 the synthesis query ψ
/// reads only the successors' action registers (exposed as relations
/// "Act1".."Actk"); for k = 0 ("final" states) it reads the database, the
/// current input ("In") and the message register ("Msg").
///
/// State 0 is the start state q0; it must not occur on the right-hand
/// side of any transition rule.
///
/// The class of the service — SWS(PL,PL) is modeled separately by PlSws;
/// here the rule languages are CQ/UCQ/FO — is reported by Classify().
///
/// Thread-safety (audited for src/runtime): a fully built Sws is
/// immutable through its const interface — Successors/Synthesis/
/// Validate/Classify and query evaluation keep no mutable caches — so
/// one service definition may be shared read-only by any number of
/// concurrent runs (core::Run takes it by const reference and the
/// runtime's workers all point at one instance). Mutators (AddState,
/// SetTransition, SetSynthesis) must not race with reads: build the
/// service first, then share it.
class Sws {
 public:
  /// `rin_arity`/`rout_arity` are the payload arities of the input and
  /// external schemas (the timestamp attribute of R_in is implicit: the
  /// run engine slices the sequence).
  Sws(rel::Schema db_schema, size_t rin_arity, size_t rout_arity);

  const rel::Schema& db_schema() const { return db_schema_; }
  size_t rin_arity() const { return rin_arity_; }
  size_t rout_arity() const { return rout_arity_; }

  /// Adds a state; returns its id. The first state added is q0.
  int AddState(std::string name);
  int num_states() const { return static_cast<int>(states_.size()); }
  int start_state() const { return 0; }
  const std::string& StateName(int q) const;
  /// State id by name; -1 if absent.
  int FindState(const std::string& name) const;

  /// Sets the transition rule of q (replacing any previous one). An empty
  /// vector makes q a final state.
  void SetTransition(int q, std::vector<TransitionTarget> successors);
  /// Sets the synthesis rule of q.
  void SetSynthesis(int q, RelQuery synthesis);

  const std::vector<TransitionTarget>& Successors(int q) const;
  const RelQuery& Synthesis(int q) const;
  bool IsFinalState(int q) const { return Successors(q).empty(); }

  /// Whole-service well-formedness: arities, q0 not in any rhs, and each
  /// rule reading only the relations its position allows. Returns an
  /// error message or nullopt.
  std::optional<std::string> Validate() const;

  /// The dependency graph G_τ has an edge q → q_i per successor entry;
  /// τ is recursive iff G_τ is cyclic (Section 2, "SWS classes").
  bool IsRecursive() const;

  /// For nonrecursive services: the number of levels of any execution
  /// tree, i.e. the longest state-chain from q0 (timestamps range over
  /// 1..depth, so inputs beyond I_depth are never read). nullopt if
  /// recursive.
  std::optional<size_t> MaxDepth() const;

  /// Class name per the paper's notation, e.g. "SWS(CQ, UCQ)" or
  /// "SWSnr(FO, FO)". L_Msg is the join of the transition-rule languages,
  /// L_Act of the synthesis-rule languages (CQ < UCQ < FO).
  std::string Classify() const;
  /// True iff every transition rule is CQ and every synthesis rule is
  /// CQ or UCQ (the SWS(CQ, UCQ) class of Theorem 4.1(2)).
  bool IsCqUcq() const;
  /// True iff any rule uses FO.
  bool UsesFo() const;

  std::string ToString() const;

 private:
  struct StateRules {
    std::string name;
    std::vector<TransitionTarget> successors;
    RelQuery synthesis;
    bool has_synthesis = false;
  };

  rel::Schema db_schema_;
  size_t rin_arity_;
  size_t rout_arity_;
  std::vector<StateRules> states_;
};

}  // namespace sws::core

#endif  // SWS_SWS_SWS_H_
