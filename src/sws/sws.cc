#include "sws/sws.h"

#include <functional>
#include <sstream>

#include "util/common.h"

namespace sws::core {

Sws::Sws(rel::Schema db_schema, size_t rin_arity, size_t rout_arity)
    : db_schema_(std::move(db_schema)),
      rin_arity_(rin_arity),
      rout_arity_(rout_arity) {}

int Sws::AddState(std::string name) {
  SWS_CHECK(FindState(name) < 0) << "duplicate state name " << name;
  StateRules rules;
  rules.name = std::move(name);
  states_.push_back(std::move(rules));
  return num_states() - 1;
}

const std::string& Sws::StateName(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].name;
}

int Sws::FindState(const std::string& name) const {
  for (int q = 0; q < num_states(); ++q) {
    if (states_[q].name == name) return q;
  }
  return -1;
}

void Sws::SetTransition(int q, std::vector<TransitionTarget> successors) {
  SWS_CHECK(q >= 0 && q < num_states());
  for (const auto& t : successors) {
    SWS_CHECK(t.state >= 0 && t.state < num_states())
        << "transition to unknown state " << t.state;
  }
  states_[q].successors = std::move(successors);
}

void Sws::SetSynthesis(int q, RelQuery synthesis) {
  SWS_CHECK(q >= 0 && q < num_states());
  states_[q].synthesis = std::move(synthesis);
  states_[q].has_synthesis = true;
}

const std::vector<TransitionTarget>& Sws::Successors(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].successors;
}

const RelQuery& Sws::Synthesis(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  SWS_CHECK(states_[q].has_synthesis)
      << "state " << states_[q].name << " has no synthesis rule";
  return states_[q].synthesis;
}

std::optional<std::string> Sws::Validate() const {
  if (states_.empty()) return "service has no states";
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    if (!rules.has_synthesis) {
      return "state " + rules.name + " has no synthesis rule";
    }
    // q0 must not appear in any rhs.
    for (const auto& t : rules.successors) {
      if (t.state == start_state()) {
        return "start state appears in the rhs of " + rules.name;
      }
    }
    // Transition queries: head arity R_in; may read DB ∪ {In, Msg}.
    for (const auto& t : rules.successors) {
      if (auto err = t.query.Validate(); err.has_value()) {
        return "transition query of " + rules.name + ": " + *err;
      }
      if (t.query.head_arity() != rin_arity_) {
        return "transition query of " + rules.name +
               " must produce R_in arity " + std::to_string(rin_arity_);
      }
      for (const std::string& r : t.query.ReadRelations()) {
        if (r != kInputRelation && r != kMsgRelation &&
            !db_schema_.Contains(r)) {
          return "transition query of " + rules.name +
                 " reads unknown relation " + r;
        }
      }
    }
    // Synthesis query: head arity R_out; final states read DB ∪ {In,
    // Msg}, internal states read Act1..Actk only.
    if (auto err = rules.synthesis.Validate(); err.has_value()) {
      return "synthesis query of " + rules.name + ": " + *err;
    }
    if (rules.synthesis.head_arity() != rout_arity_) {
      return "synthesis query of " + rules.name +
             " must produce R_out arity " + std::to_string(rout_arity_);
    }
    std::set<std::string> allowed;
    if (rules.successors.empty()) {
      allowed.insert(kInputRelation);
      allowed.insert(kMsgRelation);
      for (const auto& r : db_schema_.relations()) allowed.insert(r.name());
    } else {
      for (size_t i = 1; i <= rules.successors.size(); ++i) {
        allowed.insert(ActRelation(i));
      }
    }
    for (const std::string& r : rules.synthesis.ReadRelations()) {
      if (allowed.count(r) == 0) {
        return "synthesis query of " + rules.name +
               " reads disallowed relation " + r;
      }
    }
  }
  return std::nullopt;
}

bool Sws::IsRecursive() const { return !MaxDepth().has_value(); }

std::optional<size_t> Sws::MaxDepth() const {
  // Longest path (in states) from q0 in the dependency graph; cycle
  // detection via DFS colors.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(num_states(), Color::kWhite);
  std::vector<size_t> depth(num_states(), 1);
  bool cyclic = false;
  std::function<void(int)> dfs = [&](int q) {
    color[q] = Color::kGray;
    size_t best = 1;
    for (const auto& t : states_[q].successors) {
      if (color[t.state] == Color::kGray) {
        cyclic = true;
        continue;
      }
      if (color[t.state] == Color::kWhite) dfs(t.state);
      best = std::max(best, 1 + depth[t.state]);
    }
    depth[q] = best;
    color[q] = Color::kBlack;
  };
  if (num_states() == 0) return 0;
  dfs(start_state());
  if (cyclic) return std::nullopt;
  return depth[start_state()];
}

namespace {
int LanguageRank(RelQuery::Language lang) {
  switch (lang) {
    case RelQuery::Language::kCq:
      return 0;
    case RelQuery::Language::kUcq:
      return 1;
    case RelQuery::Language::kFo:
      return 2;
  }
  return 2;
}
const char* LanguageName(int rank) {
  switch (rank) {
    case 0:
      return "CQ";
    case 1:
      return "UCQ";
    default:
      return "FO";
  }
}
}  // namespace

std::string Sws::Classify() const {
  int msg_rank = 0;
  int act_rank = 0;
  for (const StateRules& rules : states_) {
    for (const auto& t : rules.successors) {
      msg_rank = std::max(msg_rank, LanguageRank(t.query.language()));
    }
    if (rules.has_synthesis) {
      act_rank = std::max(act_rank, LanguageRank(rules.synthesis.language()));
    }
  }
  std::string name = IsRecursive() ? "SWS(" : "SWSnr(";
  name += LanguageName(msg_rank);
  name += ", ";
  name += LanguageName(act_rank);
  name += ")";
  return name;
}

bool Sws::IsCqUcq() const {
  for (const StateRules& rules : states_) {
    for (const auto& t : rules.successors) {
      if (!t.query.is_cq()) return false;
    }
    if (rules.has_synthesis && rules.synthesis.is_fo()) return false;
  }
  return true;
}

bool Sws::UsesFo() const {
  for (const StateRules& rules : states_) {
    for (const auto& t : rules.successors) {
      if (t.query.is_fo()) return true;
    }
    if (rules.has_synthesis && rules.synthesis.is_fo()) return true;
  }
  return false;
}

std::string Sws::ToString() const {
  std::ostringstream out;
  out << Classify() << " over R=" << db_schema_.ToString() << ", |R_in|="
      << rin_arity_ << ", |R_out|=" << rout_arity_ << "\n";
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    out << "  " << rules.name << " ->";
    if (rules.successors.empty()) {
      out << " .";
    } else {
      for (const auto& t : rules.successors) {
        out << " (" << states_[t.state].name << ", " << t.query.ToString()
            << ")";
      }
    }
    out << "\n";
    if (rules.has_synthesis) {
      out << "    Act(" << rules.name << ") <- " << rules.synthesis.ToString()
          << "\n";
    }
  }
  return out.str();
}

}  // namespace sws::core
