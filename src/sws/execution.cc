#include "sws/execution.h"

#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/common.h"

namespace sws::core {

std::string ExecNode::ToString(const Sws& sws, int indent) const {
  std::ostringstream out;
  for (int i = 0; i < indent; ++i) out << "  ";
  out << sws.StateName(state) << " @" << timestamp
      << " Msg=" << msg.ToString() << " Act=" << act.ToString() << "\n";
  for (const auto& c : children) out << c->ToString(sws, indent + 1);
  return out.str();
}

namespace {

// The recursive engine. Timestamp convention (matching Example 2.2 of the
// paper): the root is at timestamp 0; a node at timestamp j had its
// message register computed from input I_j, reads I_j in a final-state
// synthesis, and spawns children at timestamp j+1 whose registers are
// computed from I_{j+1}.
//
// One environment database is shared across the run: "In" and "Msg" are
// overwritten per node *before* any query of that node is evaluated and
// never read after recursion into children, so the sharing is safe.
// Internal-node synthesis runs against a separate tiny environment
// holding only the successors' action registers.
class Engine {
 public:
  Engine(const Sws& sws, const rel::Database& db,
         const rel::InputSequence& input, const RunOptions& options)
      : sws_(sws), input_(input), options_(options), env_(db) {}

  RunResult Execute(const rel::Relation& initial_msg) {
    RunResult result;
    if (options_.fault_injector && options_.fault_injector->OnRunAttempt()) {
      result.status = Status::Error(RunError::kInjectedFault,
                                    "fault injector aborted the run");
      result.output = rel::Relation(sws_.rout_arity());
      return result;
    }
    auto root = std::make_unique<ExecNode>();
    bool ok = Eval(sws_.start_state(), 0, initial_msg, /*is_root=*/true,
                   root.get());
    if (!ok) {
      result.status = Status::Error(RunError::kBudgetExceeded,
                                    "run exceeded RunOptions::max_nodes");
    }
    result.output = ok ? root->act : rel::Relation(sws_.rout_arity());
    result.num_nodes = num_nodes_;
    result.max_timestamp = max_consumed_;
    result.memo_hits = memo_hits_;
    result.memo_misses = memo_misses_;
    result.memo_entries = memo_.size();
    if (options_.keep_tree) result.tree = std::move(root);
    return result;
  }

 private:
  // I_j, with I_0 and I_{j>n} empty.
  rel::Relation MessageAt(size_t j) const {
    if (j == 0 || j > input_.size()) return rel::Relation(sws_.rin_arity());
    return input_.Message(j);
  }

  // Fills node->act; returns false if the node budget was exhausted.
  //
  // Memoization: given fixed (D, I), the engine computes node->act as a
  // deterministic function of (state, j, msg) — conditions (1)-(4) below
  // consult nothing else — so identical labels yield identical subtrees
  // and the cache replays them at the cost of a single node. The root is
  // excluded (RunSeeded's seed makes it a different function), and
  // entries are only inserted after a subtree completes, so a budget
  // abort never caches a partial result. max_consumed_ needs no
  // replaying on a hit: it is a global max, and the first (cached)
  // evaluation of the subtree already applied its contributions.
  bool Eval(int state, size_t j, rel::Relation msg, bool is_root,
            ExecNode* node) {
    if (++num_nodes_ > options_.max_nodes) return false;
    node->state = state;
    node->timestamp = j;
    // Keep a copy of the register only if the caller retains the tree —
    // the evaluation itself reads the local `msg` (one copy per node at
    // most, where the seed version always copied).
    if (options_.keep_tree) node->msg = msg;
    node->act = rel::Relation(sws_.rout_arity());
    if (!memoize_ || is_root) {
      return EvalInner(state, j, std::move(msg), is_root, node);
    }
    MemoKey key{state, j, std::move(msg)};
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++memo_hits_;
      node->act = it->second;
      return true;
    }
    ++memo_misses_;
    // The key keeps the register alive; evaluate against a reference so
    // insertion below can still move the key into the map.
    if (!EvalInner(state, j, key.msg, is_root, node)) return false;
    memo_.emplace(std::move(key), node->act);
    return true;
  }

  bool EvalInner(int state, size_t j, rel::Relation msg, bool is_root,
                 ExecNode* node) {
    const size_t n = input_.size();
    // Condition (1): exhausted input, or an empty register at a non-root
    // node. The root (empty register by construction, or an empty seed)
    // proceeds only when I is nonempty — the special case of Section 2.
    if (j > n || (msg.empty() && !is_root)) return true;
    if (is_root && msg.empty() && n == 0) return true;
    if (j >= 1) max_consumed_ = std::max(max_consumed_, j);

    const std::vector<TransitionTarget>& successors = sws_.Successors(state);
    if (successors.empty()) {
      // Condition (3): final state, Act = ψ(D, I_j, Msg).
      env_.Set(kInputRelation, MessageAt(j));
      env_.Set(kMsgRelation, std::move(msg));
      node->act = sws_.Synthesis(state).Evaluate(env_);
      return true;
    }

    // Condition (2): spawn children at timestamp j+1; their registers are
    // computed from I_{j+1}. Compute all child registers before recursing
    // (recursion overwrites "In"/"Msg" in the shared env).
    if (j + 1 <= n) max_consumed_ = std::max(max_consumed_, j + 1);
    env_.Set(kInputRelation, MessageAt(j + 1));
    env_.Set(kMsgRelation, std::move(msg));
    std::vector<rel::Relation> child_msgs;
    child_msgs.reserve(successors.size());
    for (const auto& t : successors) {
      child_msgs.push_back(t.query.Evaluate(env_));
    }
    for (size_t i = 0; i < successors.size(); ++i) {
      node->children.push_back(std::make_unique<ExecNode>());
      if (!Eval(successors[i].state, j + 1, std::move(child_msgs[i]),
                /*is_root=*/false, node->children.back().get())) {
        return false;
      }
    }
    // Condition (4): synthesize from the children's action registers.
    rel::Database synth_env;
    for (size_t i = 0; i < successors.size(); ++i) {
      synth_env.Set(ActRelation(i + 1), node->children[i]->act);
    }
    node->act = sws_.Synthesis(state).Evaluate(synth_env);
    if (!options_.keep_tree) node->children.clear();
    return true;
  }

  // Subtree cache: (state, timestamp, Msg) -> Act. Per-run only — a new
  // (D, I) pair gets a fresh Engine, so no cross-run invalidation is
  // needed.
  struct MemoKey {
    int state;
    size_t timestamp;
    rel::Relation msg;

    friend bool operator==(const MemoKey& a, const MemoKey& b) {
      return a.state == b.state && a.timestamp == b.timestamp &&
             a.msg == b.msg;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      size_t h = std::hash<int>()(k.state);
      h = h * 1099511628211ull ^ std::hash<size_t>()(k.timestamp);
      return h * 1099511628211ull ^ k.msg.Hash();
    }
  };

  const Sws& sws_;
  const rel::InputSequence& input_;
  const RunOptions& options_;
  rel::Database env_;
  size_t num_nodes_ = 0;
  size_t max_consumed_ = 0;
  const bool memoize_ = options_.memoize && !options_.keep_tree;
  std::unordered_map<MemoKey, rel::Relation, MemoKeyHash> memo_;
  size_t memo_hits_ = 0;
  size_t memo_misses_ = 0;
};

}  // namespace

RunResult Run(const Sws& sws, const rel::Database& db,
              const rel::InputSequence& input, const RunOptions& options) {
  return RunSeeded(sws, db, input, rel::Relation(sws.rin_arity()), options);
}

RunResult RunSeeded(const Sws& sws, const rel::Database& db,
                    const rel::InputSequence& input,
                    const rel::Relation& initial_msg,
                    const RunOptions& options) {
  SWS_CHECK_EQ(input.message_arity(), sws.rin_arity())
      << "input message arity mismatch";
  SWS_CHECK_EQ(initial_msg.arity(), sws.rin_arity());
  Engine engine(sws, db, input, options);
  return engine.Execute(initial_msg);
}

}  // namespace sws::core
