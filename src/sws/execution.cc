#include "sws/execution.h"

#include <list>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/cancellation.h"
#include "util/common.h"

namespace sws::core {

std::string ExecNode::ToString(const Sws& sws, int indent) const {
  std::ostringstream out;
  for (int i = 0; i < indent; ++i) out << "  ";
  out << sws.StateName(state) << " @" << timestamp
      << " Msg=" << msg.ToString() << " Act=" << act.ToString() << "\n";
  for (const auto& c : children) out << c->ToString(sws, indent + 1);
  return out.str();
}

namespace {

// The recursive engine. Timestamp convention (matching Example 2.2 of the
// paper): the root is at timestamp 0; a node at timestamp j had its
// message register computed from input I_j, reads I_j in a final-state
// synthesis, and spawns children at timestamp j+1 whose registers are
// computed from I_{j+1}.
//
// One environment database is shared across the run: "In" and "Msg" are
// overwritten per node *before* any query of that node is evaluated and
// never read after recursion into children, so the sharing is safe.
// Internal-node synthesis runs against a separate tiny environment
// holding only the successors' action registers.
class Engine {
 public:
  Engine(const Sws& sws, const rel::Database& db,
         const rel::InputSequence& input, const RunOptions& options)
      : sws_(sws), input_(input), options_(options), env_(db) {
    if (options.index_budget.max_bytes != 0 ||
        options.index_budget.max_indexes != 0) {
      env_.SetIndexBudget(options.index_budget);
    }
  }

  RunResult Execute(const rel::Relation& initial_msg) {
    RunResult result;
    // Governor selection: the caller's (runtime-threaded, cancellable
    // from other threads), else a run-local one iff some governed limit
    // is set, else none — ungoverned runs pay only null checks.
    ExecutionGovernor* gov = options_.governor;
    std::optional<ExecutionGovernor> local_gov;
    if (gov == nullptr &&
        (options_.deadline != std::chrono::steady_clock::time_point::max() ||
         options_.max_eval_steps != 0 || options_.max_tracked_bytes != 0)) {
      ExecutionGovernor::Limits limits;
      limits.deadline = options_.deadline;
      limits.max_eval_steps = options_.max_eval_steps;
      limits.max_tracked_bytes = options_.max_tracked_bytes;
      local_gov.emplace(limits);
      gov = &*local_gov;
    }

    bool ok;
    auto root = std::make_unique<ExecNode>();
    {
      // The gate stays installed until every governed cache is released
      // below, so the governor's tracked-byte gauge returns to zero even
      // though env_ itself outlives the scope (~Engine's releases would
      // otherwise land after the gate is gone and be lost).
      util::ScopedStepGate scoped(gov);
      if (options_.fault_injector &&
          options_.fault_injector->OnRunAttempt(gov)) {
        result.status = Status::Error(RunError::kInjectedFault,
                                      "fault injector aborted the run");
        result.output = rel::Relation(sws_.rout_arity());
        return result;
      }
      ok = Eval(sws_.start_state(), 0, initial_msg, /*is_root=*/true,
                root.get());
      // Capture the typed status before the scope flushes its partial
      // tick batch: the flush may trip the fuel budget retroactively,
      // which must not fail a run whose work already completed.
      if (gov != nullptr && gov->cancelled()) {
        ok = false;
        result.status = gov->status();
      } else if (!ok) {
        result.status = Status::Error(RunError::kBudgetExceeded,
                                      "run exceeded RunOptions::max_nodes");
      }
      result.memo_entries = memo_.size();
      result.memo_evictions = memo_evictions_;
      result.memo_bytes_peak = memo_bytes_peak_;
      result.index_evictions = env_.IndexEvictions();
      ReleaseMemo();
      env_.DropIndexCaches();
    }
    result.output = ok ? root->act : rel::Relation(sws_.rout_arity());
    result.num_nodes = num_nodes_;
    result.logical_nodes = logical_nodes_;
    result.max_timestamp = max_consumed_;
    result.memo_hits = memo_hits_;
    result.memo_misses = memo_misses_;
    if (options_.keep_tree) result.tree = std::move(root);
    return result;
  }

 private:
  // Subtree cache: (state, timestamp, Msg) -> entry. Per-run only — a
  // new (D, I) pair gets a fresh Engine, so no cross-run invalidation is
  // needed. Declared ahead of the evaluation methods that name them in
  // their signatures.
  struct MemoKey {
    int state;
    size_t timestamp;
    rel::Relation msg;

    friend bool operator==(const MemoKey& a, const MemoKey& b) {
      return a.state == b.state && a.timestamp == b.timestamp &&
             a.msg == b.msg;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      size_t h = std::hash<int>()(k.state);
      h = h * 1099511628211ull ^ std::hash<size_t>()(k.timestamp);
      return h * 1099511628211ull ^ k.msg.Hash();
    }
  };
  struct MemoEntry {
    rel::Relation act;
    size_t logical_nodes = 1;  // subtree size replayed by a hit
    size_t bytes = 0;          // accounted against max_memo_bytes
    std::list<const MemoKey*>::iterator lru_it;
  };
  // Per-entry map/list bookkeeping beyond the key/act payload.
  static constexpr size_t kMemoEntryOverhead = 128;

  // I_j, with I_0 and I_{j>n} empty.
  rel::Relation MessageAt(size_t j) const {
    if (j == 0 || j > input_.size()) return rel::Relation(sws_.rin_arity());
    return input_.Message(j);
  }

  static size_t SatAdd(size_t a, size_t b) {
    const size_t r = a + b;
    return r < a ? ~size_t{0} : r;
  }

  // Fills node->act; returns false if the node budget was exhausted or
  // the governor cancelled the run (the caller distinguishes via
  // governor->cancelled()).
  //
  // Memoization: given fixed (D, I), the engine computes node->act as a
  // deterministic function of (state, j, msg) — conditions (1)-(4) below
  // consult nothing else — so identical labels yield identical subtrees
  // and the cache replays them at the cost of a single node. The root is
  // excluded (RunSeeded's seed makes it a different function), and
  // entries are only inserted after a subtree completes, so a budget
  // abort never caches a partial result. max_consumed_ needs no
  // replaying on a hit: it is a global max, and the first (cached)
  // evaluation of the subtree already applied its contributions.
  //
  // Budget: max_nodes bounds logical_nodes_ — the size the un-memoized
  // tree would have — so a memo hit charges its whole replayed subtree
  // and the budget cannot be bypassed through the cache. num_nodes_
  // still counts evaluated nodes (hits count as one), preserving
  // num_nodes == 1 + memo_hits + memo_misses.
  bool Eval(int state, size_t j, rel::Relation msg, bool is_root,
            ExecNode* node) {
    // One governance tick per tree node (a node is a unit of evaluation
    // work even before its queries run); sticky once tripped, so a
    // cancelled run unwinds in O(depth) node visits.
    if (!util::StepTick()) return false;
    ++num_nodes_;
    logical_nodes_ = SatAdd(logical_nodes_, 1);
    if (logical_nodes_ > options_.max_nodes) return false;
    node->state = state;
    node->timestamp = j;
    // Keep a copy of the register only if the caller retains the tree —
    // the evaluation itself reads the local `msg` (one copy per node at
    // most, where the seed version always copied).
    if (options_.keep_tree) node->msg = msg;
    node->act = rel::Relation(sws_.rout_arity());
    if (!memoize_ || is_root) {
      return EvalInner(state, j, std::move(msg), is_root, node);
    }
    MemoKey key{state, j, std::move(msg)};
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++memo_hits_;
      node->act = it->second.act;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // mark recent
      // Charge the replayed subtree (minus this node, already counted).
      logical_nodes_ = SatAdd(logical_nodes_, it->second.logical_nodes - 1);
      return logical_nodes_ <= options_.max_nodes;
    }
    ++memo_misses_;
    const size_t logical_before = logical_nodes_;
    // The key keeps the register alive; evaluate against a reference so
    // insertion below can still move the key into the map.
    if (!EvalInner(state, j, key.msg, is_root, node)) return false;
    MemoEntry entry;
    entry.act = node->act;
    // Subtree size including this node; replayed in full on every hit.
    entry.logical_nodes = SatAdd(logical_nodes_ - logical_before, 1);
    entry.bytes = rel::ApproxBytes(key.msg) + rel::ApproxBytes(entry.act) +
                  kMemoEntryOverhead;
    InsertMemo(std::move(key), std::move(entry));
    return true;
  }

  void InsertMemo(MemoKey key, MemoEntry entry) {
    const size_t bytes = entry.bytes;
    auto [it, inserted] = memo_.emplace(std::move(key), std::move(entry));
    SWS_CHECK(inserted);  // a hit would have returned above
    lru_.push_front(&it->first);
    it->second.lru_it = lru_.begin();
    memo_bytes_ += bytes;
    util::ChargeGateBytes(static_cast<int64_t>(bytes));
    if (memo_bytes_ > memo_bytes_peak_) memo_bytes_peak_ = memo_bytes_;
    // Size-accounted LRU eviction — but never the entry just inserted
    // (its caller may hit it next; an over-cap single entry just means
    // the cache holds one entry).
    while (options_.max_memo_bytes != 0 &&
           memo_bytes_ > options_.max_memo_bytes && memo_.size() > 1) {
      auto victim = memo_.find(*lru_.back());
      SWS_CHECK(victim != memo_.end());
      memo_bytes_ -= victim->second.bytes;
      util::ChargeGateBytes(-static_cast<int64_t>(victim->second.bytes));
      lru_.pop_back();
      memo_.erase(victim);
      ++memo_evictions_;
    }
  }

  void ReleaseMemo() {
    if (memo_bytes_ != 0) {
      util::ChargeGateBytes(-static_cast<int64_t>(memo_bytes_));
      memo_bytes_ = 0;
    }
    lru_.clear();
    memo_.clear();
  }

  bool EvalInner(int state, size_t j, rel::Relation msg, bool is_root,
                 ExecNode* node) {
    const size_t n = input_.size();
    // Condition (1): exhausted input, or an empty register at a non-root
    // node. The root (empty register by construction, or an empty seed)
    // proceeds only when I is nonempty — the special case of Section 2.
    if (j > n || (msg.empty() && !is_root)) return true;
    if (is_root && msg.empty() && n == 0) return true;
    if (j >= 1) max_consumed_ = std::max(max_consumed_, j);

    const std::vector<TransitionTarget>& successors = sws_.Successors(state);
    if (successors.empty()) {
      // Condition (3): final state, Act = ψ(D, I_j, Msg).
      env_.Set(kInputRelation, MessageAt(j));
      env_.Set(kMsgRelation, std::move(msg));
      node->act = sws_.Synthesis(state).Evaluate(env_);
      return true;
    }

    // Condition (2): spawn children at timestamp j+1; their registers are
    // computed from I_{j+1}. Compute all child registers before recursing
    // (recursion overwrites "In"/"Msg" in the shared env).
    if (j + 1 <= n) max_consumed_ = std::max(max_consumed_, j + 1);
    env_.Set(kInputRelation, MessageAt(j + 1));
    env_.Set(kMsgRelation, std::move(msg));
    std::vector<rel::Relation> child_msgs;
    child_msgs.reserve(successors.size());
    for (const auto& t : successors) {
      child_msgs.push_back(t.query.Evaluate(env_));
    }
    for (size_t i = 0; i < successors.size(); ++i) {
      node->children.push_back(std::make_unique<ExecNode>());
      if (!Eval(successors[i].state, j + 1, std::move(child_msgs[i]),
                /*is_root=*/false, node->children.back().get())) {
        return false;
      }
    }
    // Condition (4): synthesize from the children's action registers.
    rel::Database synth_env;
    for (size_t i = 0; i < successors.size(); ++i) {
      synth_env.Set(ActRelation(i + 1), node->children[i]->act);
    }
    node->act = sws_.Synthesis(state).Evaluate(synth_env);
    if (!options_.keep_tree) node->children.clear();
    return true;
  }

  const Sws& sws_;
  const rel::InputSequence& input_;
  const RunOptions& options_;
  rel::Database env_;
  size_t num_nodes_ = 0;
  size_t logical_nodes_ = 0;
  size_t max_consumed_ = 0;
  const bool memoize_ = options_.memoize && !options_.keep_tree;
  std::unordered_map<MemoKey, MemoEntry, MemoKeyHash> memo_;
  // LRU order over memo_ keys (front = most recent); key pointers stay
  // valid across rehashes (unordered_map never moves elements).
  std::list<const MemoKey*> lru_;
  size_t memo_bytes_ = 0;
  size_t memo_bytes_peak_ = 0;
  size_t memo_evictions_ = 0;
  size_t memo_hits_ = 0;
  size_t memo_misses_ = 0;
};

}  // namespace

RunResult Run(const Sws& sws, const rel::Database& db,
              const rel::InputSequence& input, const RunOptions& options) {
  return RunSeeded(sws, db, input, rel::Relation(sws.rin_arity()), options);
}

RunResult RunSeeded(const Sws& sws, const rel::Database& db,
                    const rel::InputSequence& input,
                    const rel::Relation& initial_msg,
                    const RunOptions& options) {
  SWS_CHECK_EQ(input.message_arity(), sws.rin_arity())
      << "input message arity mismatch";
  SWS_CHECK_EQ(initial_msg.arity(), sws.rin_arity());
  Engine engine(sws, db, input, options);
  return engine.Execute(initial_msg);
}

}  // namespace sws::core
