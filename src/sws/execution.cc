#include "sws/execution.h"

#include <sstream>

#include "util/common.h"

namespace sws::core {

std::string ExecNode::ToString(const Sws& sws, int indent) const {
  std::ostringstream out;
  for (int i = 0; i < indent; ++i) out << "  ";
  out << sws.StateName(state) << " @" << timestamp
      << " Msg=" << msg.ToString() << " Act=" << act.ToString() << "\n";
  for (const auto& c : children) out << c->ToString(sws, indent + 1);
  return out.str();
}

namespace {

// The recursive engine. Timestamp convention (matching Example 2.2 of the
// paper): the root is at timestamp 0; a node at timestamp j had its
// message register computed from input I_j, reads I_j in a final-state
// synthesis, and spawns children at timestamp j+1 whose registers are
// computed from I_{j+1}.
//
// One environment database is shared across the run: "In" and "Msg" are
// overwritten per node *before* any query of that node is evaluated and
// never read after recursion into children, so the sharing is safe.
// Internal-node synthesis runs against a separate tiny environment
// holding only the successors' action registers.
class Engine {
 public:
  Engine(const Sws& sws, const rel::Database& db,
         const rel::InputSequence& input, const RunOptions& options)
      : sws_(sws), input_(input), options_(options), env_(db) {}

  RunResult Execute(const rel::Relation& initial_msg) {
    RunResult result;
    if (options_.fault_injector && options_.fault_injector->OnRunAttempt()) {
      result.status = Status::Error(RunError::kInjectedFault,
                                    "fault injector aborted the run");
      result.output = rel::Relation(sws_.rout_arity());
      return result;
    }
    auto root = std::make_unique<ExecNode>();
    bool ok = Eval(sws_.start_state(), 0, initial_msg, /*is_root=*/true,
                   root.get());
    if (!ok) {
      result.status = Status::Error(RunError::kBudgetExceeded,
                                    "run exceeded RunOptions::max_nodes");
    }
    result.output = ok ? root->act : rel::Relation(sws_.rout_arity());
    result.num_nodes = num_nodes_;
    result.max_timestamp = max_consumed_;
    if (options_.keep_tree) result.tree = std::move(root);
    return result;
  }

 private:
  // I_j, with I_0 and I_{j>n} empty.
  rel::Relation MessageAt(size_t j) const {
    if (j == 0 || j > input_.size()) return rel::Relation(sws_.rin_arity());
    return input_.Message(j);
  }

  // Fills node->act; returns false if the node budget was exhausted.
  bool Eval(int state, size_t j, rel::Relation msg, bool is_root,
            ExecNode* node) {
    if (++num_nodes_ > options_.max_nodes) return false;
    node->state = state;
    node->timestamp = j;
    node->msg = msg;
    node->act = rel::Relation(sws_.rout_arity());

    const size_t n = input_.size();
    // Condition (1): exhausted input, or an empty register at a non-root
    // node. The root (empty register by construction, or an empty seed)
    // proceeds only when I is nonempty — the special case of Section 2.
    if (j > n || (msg.empty() && !is_root)) return true;
    if (is_root && msg.empty() && n == 0) return true;
    if (j >= 1) max_consumed_ = std::max(max_consumed_, j);

    const std::vector<TransitionTarget>& successors = sws_.Successors(state);
    if (successors.empty()) {
      // Condition (3): final state, Act = ψ(D, I_j, Msg).
      env_.Set(kInputRelation, MessageAt(j));
      env_.Set(kMsgRelation, std::move(msg));
      node->act = sws_.Synthesis(state).Evaluate(env_);
      return true;
    }

    // Condition (2): spawn children at timestamp j+1; their registers are
    // computed from I_{j+1}. Compute all child registers before recursing
    // (recursion overwrites "In"/"Msg" in the shared env).
    if (j + 1 <= n) max_consumed_ = std::max(max_consumed_, j + 1);
    env_.Set(kInputRelation, MessageAt(j + 1));
    env_.Set(kMsgRelation, std::move(msg));
    std::vector<rel::Relation> child_msgs;
    child_msgs.reserve(successors.size());
    for (const auto& t : successors) {
      child_msgs.push_back(t.query.Evaluate(env_));
    }
    for (size_t i = 0; i < successors.size(); ++i) {
      node->children.push_back(std::make_unique<ExecNode>());
      if (!Eval(successors[i].state, j + 1, std::move(child_msgs[i]),
                /*is_root=*/false, node->children.back().get())) {
        return false;
      }
    }
    // Condition (4): synthesize from the children's action registers.
    rel::Database synth_env;
    for (size_t i = 0; i < successors.size(); ++i) {
      synth_env.Set(ActRelation(i + 1), node->children[i]->act);
    }
    node->act = sws_.Synthesis(state).Evaluate(synth_env);
    if (!options_.keep_tree) node->children.clear();
    return true;
  }

  const Sws& sws_;
  const rel::InputSequence& input_;
  const RunOptions& options_;
  rel::Database env_;
  size_t num_nodes_ = 0;
  size_t max_consumed_ = 0;
};

}  // namespace

RunResult Run(const Sws& sws, const rel::Database& db,
              const rel::InputSequence& input, const RunOptions& options) {
  return RunSeeded(sws, db, input, rel::Relation(sws.rin_arity()), options);
}

RunResult RunSeeded(const Sws& sws, const rel::Database& db,
                    const rel::InputSequence& input,
                    const rel::Relation& initial_msg,
                    const RunOptions& options) {
  SWS_CHECK_EQ(input.message_arity(), sws.rin_arity())
      << "input message arity mismatch";
  SWS_CHECK_EQ(initial_msg.arity(), sws.rin_arity());
  Engine engine(sws, db, input, options);
  return engine.Execute(initial_msg);
}

}  // namespace sws::core
