#ifndef SWS_SWS_EXECUTION_H_
#define SWS_SWS_EXECUTION_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/fault.h"
#include "sws/governor.h"
#include "sws/status.h"
#include "sws/sws.h"

namespace sws::core {

/// A node of an execution tree (Section 2, "Runs of SWS's"): labeled with
/// a state, a timestamp, a message register and an action register.
/// Retained only when RunOptions::keep_tree is set.
struct ExecNode {
  int state = 0;
  size_t timestamp = 0;
  rel::Relation msg;
  rel::Relation act;
  std::vector<std::unique_ptr<ExecNode>> children;

  /// Pretty-prints the subtree (for examples and debugging).
  std::string ToString(const Sws& sws, int indent = 0) const;
};

struct RunOptions {
  /// Retain the full execution tree in RunResult::tree.
  bool keep_tree = false;
  /// Memoize identical subtrees within the run: given fixed (D, I), a
  /// node's action register is a deterministic function of its
  /// (state, timestamp, Msg) label, so repeated labels — ubiquitous in
  /// recursive services, whose trees otherwise grow exponentially — are
  /// evaluated once and replayed. Sound by construction (Section 2:
  /// runs are deterministic in (D, I)); the output never changes, only
  /// num_nodes. Ignored when keep_tree is set, since a retained tree
  /// must materialize every subtree. Hit/miss counts are reported in
  /// RunResult.
  bool memoize = true;
  /// Abort the run (kBudgetExceeded) if more nodes than this would be
  /// created — a guard for recursive services on long inputs.
  size_t max_nodes = 50'000'000;
  /// Fault-injection hook consulted at each run attempt; null = disabled
  /// (the only cost on the hot path is this null check).
  FaultInjector* fault_injector = nullptr;
  /// Retry of failed runs at the session layer (SessionRunner::Feed);
  /// the default (max_attempts = 1) never retries.
  RetryPolicy retry;
  /// Absolute deadline for the whole request. Enforced *inside* query
  /// evaluation (the engine installs a governor that cancels the run
  /// cooperatively, within a bounded number of tuples, once the deadline
  /// passes — kDeadlineExceeded) and by the retry loop (no backoff
  /// sleeps or re-attempts past the deadline); ::max() = none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  // Resource governance (see DESIGN.md §10). All zero-valued caps mean
  // "unlimited"; with every cap unlimited, no deadline, and no governor,
  // runs pay nothing for governance.
  /// Evaluation-fuel budget: total steps (candidate tuples probed,
  /// quantifier domain values tried, tree nodes evaluated) before the
  /// run aborts with kFuelExhausted. 0 = unlimited.
  uint64_t max_eval_steps = 0;
  /// Cap on the run's memo-cache bytes; past it, least-recently-used
  /// entries are evicted (size-accounted LRU). 0 = unlimited.
  size_t max_memo_bytes = 0;
  /// Cap on total tracked cache bytes (memo + relation indexes)
  /// attributed to the run's governor; past it, the run aborts with
  /// kFuelExhausted at its next tick. 0 = unlimited.
  size_t max_tracked_bytes = 0;
  /// Per-relation index-pool caps, stamped onto the run's environment
  /// database (and every relation Set into it). Zeros = unlimited.
  rel::IndexBudget index_budget;
  /// External governor for this run (not owned): the runtime threads a
  /// per-request governor here so a watchdog can cancel the run
  /// mid-query and so steps/bytes roll up to the runtime root. When
  /// null, the engine builds a local governor iff a deadline or a
  /// fuel/byte cap above is set.
  ExecutionGovernor* governor = nullptr;
};

/// Result of running an SWS on (D, I).
struct RunResult {
  /// ok() iff the run completed; on error (kBudgetExceeded,
  /// kInjectedFault, kDeadlineExceeded or kFuelExhausted) the output is
  /// empty, never partial.
  Status status;
  rel::Relation output;           // Act(root) = τ(D, I)
  size_t num_nodes = 0;           // nodes evaluated (hits count as one)
  size_t max_timestamp = 0;       // l: inputs I_1..I_l were consumed
  std::unique_ptr<ExecNode> tree; // populated iff keep_tree
  /// Memoization counters (all zero when RunOptions::memoize is off or
  /// keep_tree suppressed it). For a successful memoized run,
  /// num_nodes == 1 + memo_hits + memo_misses.
  size_t memo_hits = 0;    // subtrees replayed from the cache
  size_t memo_misses = 0;  // subtrees evaluated and cached
  size_t memo_entries = 0; // cache size at end of run
  /// Logical tree size: nodes the un-memoized tree would have (a memo
  /// hit charges its whole replayed subtree). Saturates at SIZE_MAX.
  /// RunOptions::max_nodes bounds *this* count, so the budget cannot be
  /// bypassed through the cache; for un-memoized runs it equals
  /// num_nodes.
  size_t logical_nodes = 0;
  // Governance counters (see DESIGN.md §10).
  size_t memo_evictions = 0;   // memo entries evicted under max_memo_bytes
  size_t memo_bytes_peak = 0;  // high-water of accounted memo bytes
  uint64_t index_evictions = 0;  // index-pool LRU evictions in the run env
};

/// The run of τ on (D, I): builds the execution tree top-down (one input
/// message per level, following the Generating rules) and gathers actions
/// bottom-up (Gathering rules). The output is Act(root).
///
/// Timestamps follow Example 2.2 of the paper: the root is at timestamp
/// 0, and a node at timestamp j had its message register computed from
/// I_j. Node semantics, with j the node's timestamp and n = |I|:
///  (1) if j > n, or Msg(v) = ∅ at a non-root node, Act(v) = ∅ — the
///      root's empty register does not stop the run unless I is empty
///      (the special case of Section 2);
///  (2) otherwise a non-final state spawns one child per successor entry,
///      child i carrying Msg = φ_i(D, I_{j+1}, Msg(v)) and timestamp j+1;
///  (3) a final state computes Act(v) = ψ(D, I_j, Msg(v)) — at the root,
///      I_0 is the empty message;
///  (4) a non-final state synthesizes Act(v) = ψ(Act(u_1), ..., Act(u_k)).
///
/// RunResult::max_timestamp is the largest j of a node that read an input
/// (so I_{max_timestamp+1} is the first unconsumed message — the l_i of
/// the mediator semantics, Section 5.1).
RunResult Run(const Sws& sws, const rel::Database& db,
              const rel::InputSequence& input, const RunOptions& options = {});

/// As Run, but the start state's message register is seeded with
/// `initial_msg` instead of ∅ — the mediator semantics of Section 5.1
/// ("the message register of the start state of τ_i is instantiated with
/// Msg(v)"). The root proceeds regardless of the seed's emptiness, as
/// long as I is nonempty.
RunResult RunSeeded(const Sws& sws, const rel::Database& db,
                    const rel::InputSequence& input,
                    const rel::Relation& initial_msg,
                    const RunOptions& options = {});

}  // namespace sws::core

#endif  // SWS_SWS_EXECUTION_H_
