#include "sws/generator.h"

#include "util/common.h"

namespace sws::core {

namespace {
using logic::Atom;
using logic::Comparison;
using logic::ConjunctiveQuery;
using logic::PlFormula;
using logic::Term;
using logic::UnionQuery;
}  // namespace

PlFormula WorkloadGenerator::RandomPlFormula(int depth, int num_vars,
                                             bool include_msg_var,
                                             int msg_var) {
  std::uniform_int_distribution<int> kind_dist(0, depth <= 0 ? 1 : 4);
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> coin(0, 9);
  switch (kind_dist(rng_)) {
    case 0:
      if (include_msg_var && coin(rng_) < 2) return PlFormula::Var(msg_var);
      if (num_vars == 0) return PlFormula::Constant(coin(rng_) < 5);
      return PlFormula::Var(var_dist(rng_));
    case 1:
      return PlFormula::Constant(coin(rng_) < 5);
    case 2:
      return PlFormula::Not(
          RandomPlFormula(depth - 1, num_vars, include_msg_var, msg_var));
    case 3:
      return PlFormula::And(
          RandomPlFormula(depth - 1, num_vars, include_msg_var, msg_var),
          RandomPlFormula(depth - 1, num_vars, include_msg_var, msg_var));
    default:
      return PlFormula::Or(
          RandomPlFormula(depth - 1, num_vars, include_msg_var, msg_var),
          RandomPlFormula(depth - 1, num_vars, include_msg_var, msg_var));
  }
}

PlSws WorkloadGenerator::RandomPlSws(const PlSwsParams& params) {
  SWS_CHECK_GE(params.num_states, 1);
  PlSws out(params.num_input_vars);
  for (int q = 0; q < params.num_states; ++q) {
    out.AddState("q" + std::to_string(q));
  }
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> succ_count(1, params.max_successors);
  for (int q = 0; q < params.num_states; ++q) {
    bool is_last = q == params.num_states - 1;
    bool is_final =
        is_last || (q != 0 && unit(rng_) < params.final_state_prob);
    if (is_final) {
      out.SetTransition(q, {});
      out.SetSynthesis(
          q, RandomPlFormula(params.max_formula_depth, params.num_input_vars,
                             /*include_msg_var=*/true, out.msg_var()));
      continue;
    }
    int k = succ_count(rng_);
    std::vector<PlSws::Successor> successors;
    for (int i = 0; i < k; ++i) {
      int target;
      if (params.allow_recursion) {
        // Any state except q0.
        std::uniform_int_distribution<int> t(1, params.num_states - 1);
        target = t(rng_);
      } else {
        // Strictly larger id: the dependency graph is a DAG.
        std::uniform_int_distribution<int> t(q + 1, params.num_states - 1);
        target = t(rng_);
      }
      successors.push_back(PlSws::Successor{
          target,
          RandomPlFormula(params.max_formula_depth, params.num_input_vars,
                          /*include_msg_var=*/true, out.msg_var())});
    }
    int num_successors = static_cast<int>(successors.size());
    out.SetTransition(q, std::move(successors));
    out.SetSynthesis(q, RandomPlFormula(params.max_formula_depth,
                                        num_successors,
                                        /*include_msg_var=*/false, -1));
  }
  SWS_CHECK(!out.Validate().has_value()) << *out.Validate();
  return out;
}

PlSws::Word WorkloadGenerator::RandomPlWord(int length, int num_vars) {
  PlSws::Word word;
  std::uniform_int_distribution<int> coin(0, 1);
  for (int j = 0; j < length; ++j) {
    PlSws::Symbol symbol;
    for (int v = 0; v < num_vars; ++v) {
      if (coin(rng_) == 1) symbol.insert(v);
    }
    word.push_back(std::move(symbol));
  }
  return word;
}

ConjunctiveQuery WorkloadGenerator::RandomRuleCq(const CqSwsParams& params,
                                                 bool allow_msg,
                                                 size_t head_arity) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> var_dist(0, 4);
  std::uniform_int_distribution<int> rel_dist(0, params.num_db_relations - 1);
  std::uniform_int_distribution<int> extra_atoms(0, params.max_body_atoms);

  std::vector<Atom> body;
  auto random_args = [&](size_t arity) {
    std::vector<Term> args;
    for (size_t i = 0; i < arity; ++i) args.push_back(Term::Var(var_dist(rng_)));
    return args;
  };
  // Always read the current input so the rule is input-driven.
  body.push_back(Atom{kInputRelation, random_args(params.rin_arity)});
  if (allow_msg && unit(rng_) < params.use_msg_prob) {
    body.push_back(Atom{kMsgRelation, random_args(params.rin_arity)});
  }
  int extras = extra_atoms(rng_);
  for (int i = 0; i < extras; ++i) {
    int r = rel_dist(rng_);
    body.push_back(Atom{"R" + std::to_string(r), random_args(params.db_arity)});
  }
  // Collect body variables for a safe head.
  std::set<int> body_vars;
  for (const Atom& a : body) {
    for (const Term& t : a.args) {
      if (t.is_var()) body_vars.insert(t.var());
    }
  }
  std::vector<int> pool(body_vars.begin(), body_vars.end());
  std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
  std::vector<Term> head;
  for (size_t i = 0; i < head_arity; ++i) {
    if (unit(rng_) < 0.15) {
      std::uniform_int_distribution<int64_t> c(0, 2);
      head.push_back(Term::Int(c(rng_)));
    } else {
      head.push_back(Term::Var(pool[pick(rng_)]));
    }
  }
  std::vector<Comparison> comparisons;
  if (pool.size() >= 2 && unit(rng_) < params.inequality_prob) {
    size_t i = pick(rng_);
    size_t j = pick(rng_);
    if (i != j) {
      comparisons.push_back(Comparison{Term::Var(pool[i]),
                                       Term::Var(pool[j]),
                                       /*is_equality=*/false});
    }
  }
  return ConjunctiveQuery(std::move(head), std::move(body),
                          std::move(comparisons));
}

Sws WorkloadGenerator::RandomCqSws(const CqSwsParams& params) {
  SWS_CHECK_GE(params.num_states, 1);
  rel::Schema schema;
  for (int r = 0; r < params.num_db_relations; ++r) {
    std::vector<std::string> attrs;
    for (size_t i = 0; i < params.db_arity; ++i) {
      attrs.push_back("a" + std::to_string(i));
    }
    schema.Add(rel::RelationSchema("R" + std::to_string(r), attrs));
  }
  Sws out(schema, params.rin_arity, params.rout_arity);
  for (int q = 0; q < params.num_states; ++q) {
    out.AddState("q" + std::to_string(q));
  }
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> succ_count(1, params.max_successors);
  std::uniform_int_distribution<int> disjuncts(1, params.max_ucq_disjuncts);
  std::uniform_int_distribution<int> var_dist(0, 4);

  for (int q = 0; q < params.num_states; ++q) {
    bool is_last = q == params.num_states - 1;
    bool is_final =
        is_last || (q != 0 && unit(rng_) < params.final_state_prob);
    if (is_final) {
      out.SetTransition(q, {});
      UnionQuery psi(params.rout_arity);
      int nd = disjuncts(rng_);
      for (int d = 0; d < nd; ++d) {
        psi.Add(RandomRuleCq(params, /*allow_msg=*/true, params.rout_arity));
      }
      out.SetSynthesis(q, RelQuery::Ucq(std::move(psi)));
      continue;
    }
    int k = succ_count(rng_);
    std::vector<TransitionTarget> successors;
    for (int i = 0; i < k; ++i) {
      std::uniform_int_distribution<int> t(q + 1, params.num_states - 1);
      successors.push_back(TransitionTarget{
          t(rng_), RelQuery::Cq(RandomRuleCq(params, /*allow_msg=*/true,
                                             params.rin_arity))});
    }
    size_t num_successors = successors.size();
    out.SetTransition(q, std::move(successors));
    // Internal synthesis: disjuncts over Act1..Actk.
    UnionQuery psi(params.rout_arity);
    int nd = disjuncts(rng_);
    std::uniform_int_distribution<size_t> act_pick(1, num_successors);
    std::uniform_int_distribution<int> atom_count(
        1, static_cast<int>(num_successors));
    for (int d = 0; d < nd; ++d) {
      std::vector<Atom> body;
      int atoms = atom_count(rng_);
      for (int a = 0; a < atoms; ++a) {
        std::vector<Term> args;
        for (size_t i = 0; i < params.rout_arity; ++i) {
          args.push_back(Term::Var(var_dist(rng_)));
        }
        body.push_back(Atom{ActRelation(act_pick(rng_)), std::move(args)});
      }
      std::set<int> body_vars;
      for (const Atom& a : body) {
        for (const Term& t : a.args) {
          if (t.is_var()) body_vars.insert(t.var());
        }
      }
      std::vector<int> pool(body_vars.begin(), body_vars.end());
      std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
      std::vector<Term> head;
      for (size_t i = 0; i < params.rout_arity; ++i) {
        head.push_back(Term::Var(pool[pick(rng_)]));
      }
      psi.Add(ConjunctiveQuery(std::move(head), std::move(body)));
    }
    out.SetSynthesis(q, RelQuery::Ucq(std::move(psi)));
  }
  SWS_CHECK(!out.Validate().has_value()) << *out.Validate();
  return out;
}

rel::Database WorkloadGenerator::RandomDatabase(const rel::Schema& schema,
                                                size_t tuples_per_rel,
                                                int64_t domain_size) {
  SWS_CHECK_GE(domain_size, 1);
  std::uniform_int_distribution<int64_t> value(0, domain_size - 1);
  rel::Database db(schema);
  for (const auto& r : schema.relations()) {
    rel::Relation* rel = db.GetMutable(r.name());
    for (size_t t = 0; t < tuples_per_rel; ++t) {
      rel::Tuple tuple;
      for (size_t i = 0; i < r.arity(); ++i) {
        tuple.push_back(rel::Value::Int(value(rng_)));
      }
      rel->Insert(std::move(tuple));
    }
  }
  return db;
}

rel::InputSequence WorkloadGenerator::RandomInput(size_t arity, size_t length,
                                                  size_t tuples_per_msg,
                                                  int64_t domain_size) {
  SWS_CHECK_GE(domain_size, 1);
  std::uniform_int_distribution<int64_t> value(0, domain_size - 1);
  rel::InputSequence out(arity);
  for (size_t j = 0; j < length; ++j) {
    rel::Relation message(arity);
    for (size_t t = 0; t < tuples_per_msg; ++t) {
      rel::Tuple tuple;
      for (size_t i = 0; i < arity; ++i) {
        tuple.push_back(rel::Value::Int(value(rng_)));
      }
      message.Insert(std::move(tuple));
    }
    out.Append(std::move(message));
  }
  return out;
}

}  // namespace sws::core
