#include "sws/query.h"

#include "util/common.h"

namespace sws::core {

std::string ActRelation(size_t successor_index_1based) {
  SWS_CHECK_GE(successor_index_1based, 1u);
  return "Act" + std::to_string(successor_index_1based);
}

RelQuery::Language RelQuery::language() const {
  if (std::holds_alternative<logic::ConjunctiveQuery>(query_)) {
    return Language::kCq;
  }
  if (std::holds_alternative<logic::UnionQuery>(query_)) {
    return Language::kUcq;
  }
  return Language::kFo;
}

const logic::ConjunctiveQuery& RelQuery::cq() const {
  SWS_CHECK(is_cq());
  return std::get<logic::ConjunctiveQuery>(query_);
}

const logic::UnionQuery& RelQuery::ucq() const {
  SWS_CHECK(is_ucq());
  return std::get<logic::UnionQuery>(query_);
}

const logic::FoQuery& RelQuery::fo() const {
  SWS_CHECK(is_fo());
  return std::get<logic::FoQuery>(query_);
}

logic::UnionQuery RelQuery::AsUcq() const {
  switch (language()) {
    case Language::kCq:
      return logic::UnionQuery::Single(cq());
    case Language::kUcq:
      return ucq();
    case Language::kFo:
      SWS_CHECK(false) << "FO query is not a UCQ";
  }
  return logic::UnionQuery();
}

logic::FoQuery RelQuery::AsFo() const {
  switch (language()) {
    case Language::kCq:
      return logic::FoQuery::FromCq(cq());
    case Language::kUcq: {
      const logic::UnionQuery& u = ucq();
      // Head of the FO query: fresh variables y_0..y_{k-1}; each disjunct
      // contributes Exists(vars) (body & head-match).
      int offset = u.MaxVar() + 1;
      std::vector<logic::Term> head;
      for (size_t i = 0; i < u.head_arity(); ++i) {
        head.push_back(logic::Term::Var(offset + static_cast<int>(i)));
      }
      std::vector<logic::FoFormula> branches;
      for (const auto& d : u.disjuncts()) {
        logic::FoQuery dq = logic::FoQuery::FromCq(d);
        // Match the disjunct head to the shared head variables.
        std::vector<logic::FoFormula> conj;
        conj.push_back(dq.formula());
        std::vector<int> inner;
        std::set<int> seen;
        for (size_t i = 0; i < d.head().size(); ++i) {
          const logic::Term& t = d.head()[i];
          conj.push_back(logic::FoFormula::Eq(head[i], t));
          if (t.is_var() && seen.insert(t.var()).second) {
            inner.push_back(t.var());
          }
        }
        branches.push_back(logic::FoFormula::Exists(
            inner, logic::FoFormula::And(std::move(conj))));
      }
      return logic::FoQuery(head, logic::FoFormula::Or(std::move(branches)));
    }
    case Language::kFo:
      return fo();
  }
  return logic::FoQuery();
}

size_t RelQuery::head_arity() const {
  switch (language()) {
    case Language::kCq:
      return cq().head_arity();
    case Language::kUcq:
      return ucq().head_arity();
    case Language::kFo:
      return fo().head_arity();
  }
  return 0;
}

std::set<std::string> RelQuery::ReadRelations() const {
  switch (language()) {
    case Language::kCq:
      return cq().BodyRelations();
    case Language::kUcq: {
      std::set<std::string> out;
      for (const auto& d : ucq().disjuncts()) {
        auto names = d.BodyRelations();
        out.insert(names.begin(), names.end());
      }
      return out;
    }
    case Language::kFo: {
      std::set<std::string> out;
      for (const auto& [name, arity] : fo().formula().RelationArities()) {
        out.insert(name);
      }
      return out;
    }
  }
  return {};
}

std::optional<std::string> RelQuery::Validate() const {
  switch (language()) {
    case Language::kCq:
      return cq().Validate();
    case Language::kUcq:
      return ucq().Validate();
    case Language::kFo:
      return fo().Validate();
  }
  return std::nullopt;
}

rel::Relation RelQuery::Evaluate(const rel::Database& env) const {
  switch (language()) {
    case Language::kCq:
      return cq().Evaluate(env);
    case Language::kUcq:
      return ucq().Evaluate(env);
    case Language::kFo:
      return fo().Evaluate(env);
  }
  return rel::Relation(0);
}

bool RelQuery::EvaluatesNonempty(const rel::Database& env) const {
  switch (language()) {
    case Language::kCq:
      return cq().EvaluatesNonempty(env);
    case Language::kUcq:
      return ucq().EvaluatesNonempty(env);
    case Language::kFo:
      return !fo().Evaluate(env).empty();
  }
  return false;
}

std::string RelQuery::ToString() const {
  switch (language()) {
    case Language::kCq:
      return "[CQ] " + cq().ToString();
    case Language::kUcq:
      return "[UCQ] " + ucq().ToString();
    case Language::kFo:
      return "[FO] " + fo().ToString();
  }
  return "?";
}

}  // namespace sws::core
