#ifndef SWS_SWS_QUERY_H_
#define SWS_SWS_QUERY_H_

#include <optional>
#include <set>
#include <string>
#include <variant>

#include "logic/cq.h"
#include "logic/fo.h"
#include "logic/ucq.h"

namespace sws::core {

/// Names under which the run engine exposes the evaluation environment to
/// rule queries (Definition 2.1): the local database relations keep their
/// own names; additionally:
///  * kInputRelation — the current input message I_j,
///  * kMsgRelation   — the node's message register Msg(q),
///  * kActRelation(i) — "Act1", "Act2", ...: the successors' action
///    registers, positional, available to synthesis rules of non-final
///    states only.
inline constexpr const char* kInputRelation = "In";
inline constexpr const char* kMsgRelation = "Msg";
std::string ActRelation(size_t successor_index_1based);

/// A relational query usable in SWS transition/synthesis rules: a CQ, a
/// UCQ, or an FO query. The variant kind determines which SWS class
/// (Section 2) a service belongs to.
class RelQuery {
 public:
  enum class Language { kCq, kUcq, kFo };

  RelQuery() : query_(logic::ConjunctiveQuery()) {}

  static RelQuery Cq(logic::ConjunctiveQuery q) { return RelQuery(std::move(q)); }
  static RelQuery Ucq(logic::UnionQuery q) { return RelQuery(std::move(q)); }
  static RelQuery Fo(logic::FoQuery q) { return RelQuery(std::move(q)); }

  Language language() const;
  bool is_cq() const { return language() == Language::kCq; }
  bool is_ucq() const { return language() == Language::kUcq; }
  bool is_fo() const { return language() == Language::kFo; }

  const logic::ConjunctiveQuery& cq() const;
  const logic::UnionQuery& ucq() const;
  const logic::FoQuery& fo() const;

  /// The query as a UCQ: a CQ converts exactly; an FO query aborts.
  logic::UnionQuery AsUcq() const;
  /// The query as FO (always possible).
  logic::FoQuery AsFo() const;

  size_t head_arity() const;

  /// Relation names the query reads.
  std::set<std::string> ReadRelations() const;

  /// Well-formedness of the underlying query.
  std::optional<std::string> Validate() const;

  rel::Relation Evaluate(const rel::Database& env) const;
  bool EvaluatesNonempty(const rel::Database& env) const;

  std::string ToString() const;

 private:
  explicit RelQuery(logic::ConjunctiveQuery q) : query_(std::move(q)) {}
  explicit RelQuery(logic::UnionQuery q) : query_(std::move(q)) {}
  explicit RelQuery(logic::FoQuery q) : query_(std::move(q)) {}

  std::variant<logic::ConjunctiveQuery, logic::UnionQuery, logic::FoQuery>
      query_;
};

}  // namespace sws::core

#endif  // SWS_SWS_QUERY_H_
