#ifndef SWS_SWS_SESSION_H_
#define SWS_SWS_SESSION_H_

#include <optional>
#include <vector>

#include "relational/actions.h"
#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/execution.h"
#include "sws/sws.h"

namespace sws::core {

/// Session management (Section 2, "An overview"): a long (possibly
/// unending) input stream is treated as a list of consecutive sessions
/// separated by a delimiter message '#'; at each delimiter the service is
/// run on the buffered session and its actions are committed — external
/// messages sent, updates applied to the local database. The database
/// stays fixed *within* a session, per the paper's assumption.
///
/// Thread-safety: a SessionRunner is a single conversation and must be
/// driven by one thread at a time. The pointed-to Sws is only read, so
/// any number of runners (on any threads) may share one service — the
/// basis of the concurrent runtime in src/runtime/.
class SessionRunner {
 public:
  SessionRunner(const Sws* sws, rel::Database initial_db);

  /// Restores a runner to a mid-stream point: `pending` is the buffered
  /// (uncommitted) prefix of the current session — exactly what
  /// pending() returned when the state was captured. Used by crash
  /// recovery (src/persistence/) to rebuild sessions from a snapshot.
  SessionRunner(const Sws* sws, rel::Database db, rel::InputSequence pending);

  /// The delimiter: a message containing exactly one tuple whose first
  /// attribute is the string "#" (remaining attributes are nulls).
  static rel::Relation DelimiterMessage(size_t arity);
  static bool IsDelimiter(const rel::Relation& message);

  struct SessionOutcome {
    /// ok() iff the run completed and committed. On error
    /// (kBudgetExceeded, kInjectedFault, or kDeadlineExceeded when the
    /// retry loop ran out of deadline) the output is empty, nothing is
    /// committed, and the buffered session is discarded so the stream
    /// can continue.
    Status status;
    rel::Relation output;       // τ(D, I_session)
    rel::CommitResult commit;   // applied to the local database
    size_t session_length = 0;  // messages in the session (delimiter excl.)
    /// Run attempts made (1 + retries). Retries happen only for
    /// transient errors under RunOptions::retry, and are replay-safe:
    /// a failed run commits nothing, so each attempt re-runs the same
    /// (D, I_session).
    uint32_t attempts = 1;
    /// Execution-tree accounting for the final run attempt (see
    /// RunResult): nodes evaluated and subtree-memoization hit/miss
    /// counts. For a successful memoized run,
    /// run_nodes == 1 + memo_hits + memo_misses.
    size_t run_nodes = 0;
    size_t memo_hits = 0;
    size_t memo_misses = 0;
    /// Governance accounting for the final run attempt (see RunResult):
    /// logical (un-memoized) tree size bounded by max_nodes, and cache
    /// evictions under the run's memo/index byte caps.
    size_t logical_nodes = 0;
    size_t memo_evictions = 0;
    uint64_t index_evictions = 0;
  };

  /// Feeds one message. A delimiter closes the current session: the
  /// service runs on the buffered messages against the current database
  /// under `options` (retrying transient failures per `options.retry`,
  /// within `options.deadline`), the output is committed, and the
  /// outcome is returned. Non-delimiter messages buffer and return
  /// nullopt.
  std::optional<SessionOutcome> Feed(rel::Relation message,
                                     const RunOptions& options = {});

  /// Drops the buffered (uncommitted) session, as a failed run would —
  /// used by the runtime's circuit breaker to shed an open session's
  /// stream without running it.
  void DiscardPending();

  /// Feeds a whole stream; returns one outcome per delimiter encountered.
  std::vector<SessionOutcome> FeedStream(
      const std::vector<rel::Relation>& stream,
      const RunOptions& options = {});

  const rel::Database& db() const { return db_; }
  size_t buffered() const { return pending_.size(); }
  /// The buffered (uncommitted) session prefix — snapshot material.
  const rel::InputSequence& pending() const { return pending_; }

 private:
  const Sws* sws_;
  rel::Database db_;
  rel::InputSequence pending_;
};

}  // namespace sws::core

#endif  // SWS_SWS_SESSION_H_
