#include "sws/fault.h"

#include <algorithm>
#include <thread>

#include "sws/governor.h"
#include "util/common.h"

namespace sws::core {

namespace {

/// Injected latency: interruptible when the run is governed — a
/// watchdog cancel or an in-sleep deadline must not wait out the full
/// injected delay — plain sleep otherwise.
void InjectedSleep(std::chrono::microseconds duration,
                   ExecutionGovernor* governor) {
  if (governor != nullptr) {
    governor->SleepInterruptible(duration);
  } else {
    std::this_thread::sleep_for(duration);
  }
}

// Per-point stream salts (arbitrary odd constants), indexed by
// FaultPoint. The first six predate the FaultPoint table and must never
// change: existing seeded tests depend on their schedules.
constexpr uint64_t kPointSalt[kNumFaultPoints] = {
    0x9d5c1f8a3b2e7641ULL,  // kRunFailure
    0x71c3a9e5d207b8f3ULL,  // kRunDelay
    0x5e8b2d94c6a1f037ULL,  // kDrainStall
    0x2f6e4c8a1d3b9075ULL,  // kTornWrite
    0x4b9d2e7f8c135a60ULL,  // kSyncFailure
    0x8a1f5c3e7b2d6490ULL,  // kShortRead
    0x3c7e9a1b5d2f8064ULL,  // kTransportDrop
    0x6f2d8c4a9e1b7350ULL,  // kTransportDuplicate
    0x1a9e3c5f7b2d8642ULL,  // kTransportReorder
    0xd4b8f1a6c3e97025ULL,  // kTransportDelay
};

/// Decrements a countdown of deterministically armed faults; returns
/// true iff one was armed (and thus consumed).
bool ConsumeArmed(std::atomic<uint32_t>* armed) {
  uint32_t n = armed->load(std::memory_order_relaxed);
  while (n > 0) {
    if (armed->compare_exchange_weak(n, n - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

double UnitAt(uint64_t seed, uint64_t salt, uint64_t index) {
  return UnitFromDraw(SplitMix64(seed ^ salt ^ (index * 0x9e3779b97f4a7c15ULL)));
}

void ValidateRate(double rate, const char* name) {
  SWS_CHECK(rate >= 0.0 && rate <= 1.0)
      << "FaultOptions::" << name << " must be in [0, 1], got " << rate;
}

}  // namespace

FaultInjector::FaultInjector(FaultOptions options) : options_(options) {
  ValidateRate(options_.fail_rate, "fail_rate");
  ValidateRate(options_.delay_rate, "delay_rate");
  ValidateRate(options_.stall_rate, "stall_rate");
  ValidateRate(options_.torn_write_rate, "torn_write_rate");
  ValidateRate(options_.sync_fail_rate, "sync_fail_rate");
  ValidateRate(options_.short_read_rate, "short_read_rate");
  ValidateRate(options_.transport_drop_rate, "transport_drop_rate");
  ValidateRate(options_.transport_duplicate_rate, "transport_duplicate_rate");
  ValidateRate(options_.transport_reorder_rate, "transport_reorder_rate");
  ValidateRate(options_.transport_delay_rate, "transport_delay_rate");
  SWS_CHECK_GE(options_.delay.count(), 0);
  SWS_CHECK_GE(options_.stall.count(), 0);
  SWS_CHECK_GE(options_.transport_delay.count(), 0);
}

bool FaultInjector::Decide(FaultPoint point, double rate, uint64_t index) {
  if (rate <= 0.0 ||
      UnitAt(options_.seed, kPointSalt[static_cast<size_t>(point)], index) >=
          rate) {
    return false;
  }
  RecordHit(point);
  return true;
}

bool FaultInjector::Draw(FaultPoint point, double rate) {
  return Decide(point, rate, NextIndex(point));
}

bool FaultInjector::OnRunAttempt(ExecutionGovernor* governor) {
  // The delay and failure streams advance in lockstep (one arrival at
  // each per attempt), preserving the pre-FaultPoint schedules.
  const uint64_t delay_index = NextIndex(FaultPoint::kRunDelay);
  if (options_.delay.count() > 0 &&
      Decide(FaultPoint::kRunDelay, options_.delay_rate, delay_index)) {
    InjectedSleep(options_.delay, governor);
  }
  const uint64_t n = NextIndex(FaultPoint::kRunFailure);
  if (n < options_.fail_first_runs) {
    RecordHit(FaultPoint::kRunFailure);
    return true;
  }
  return Decide(FaultPoint::kRunFailure, options_.fail_rate, n);
}

void FaultInjector::OnDrainStep(ExecutionGovernor* governor) {
  if (options_.stall_rate == 0.0 || options_.stall.count() == 0) return;
  if (Draw(FaultPoint::kDrainStall, options_.stall_rate)) {
    InjectedSleep(options_.stall, governor);
  }
}

bool FaultInjector::OnJournalAppend() {
  const uint64_t n = NextIndex(FaultPoint::kTornWrite);
  // Dead-disk countdown: > 1 consumes one healthy append, 1 means the
  // disk is dead — every append tears from here on.
  uint32_t kill = storage_kill_.load(std::memory_order_relaxed);
  while (kill > 1 && !storage_kill_.compare_exchange_weak(
                         kill, kill - 1, std::memory_order_relaxed)) {
  }
  if (kill == 1 || ConsumeArmed(&armed_torn_)) {
    RecordHit(FaultPoint::kTornWrite);
    return true;
  }
  return Decide(FaultPoint::kTornWrite, options_.torn_write_rate, n);
}

bool FaultInjector::OnJournalSync() {
  const uint64_t n = NextIndex(FaultPoint::kSyncFailure);
  if (ConsumeArmed(&armed_sync_fail_)) {
    RecordHit(FaultPoint::kSyncFailure);
    return true;
  }
  return Decide(FaultPoint::kSyncFailure, options_.sync_fail_rate, n);
}

bool FaultInjector::OnJournalRead() {
  const uint64_t n = NextIndex(FaultPoint::kShortRead);
  if (ConsumeArmed(&armed_short_read_)) {
    RecordHit(FaultPoint::kShortRead);
    return true;
  }
  return Decide(FaultPoint::kShortRead, options_.short_read_rate, n);
}

Backoff::Backoff(const RetryPolicy& policy, uint64_t stream)
    : policy_(policy),
      prev_(policy.initial_backoff),
      state_(policy.jitter_seed ^ SplitMix64(stream)) {
  SWS_CHECK_GE(policy_.max_attempts, 1u);
  SWS_CHECK_GE(policy_.initial_backoff.count(), 0);
  SWS_CHECK_GE(policy_.max_backoff.count(), policy_.initial_backoff.count());
}

std::chrono::microseconds Backoff::Next() {
  const int64_t base = policy_.initial_backoff.count();
  const int64_t cap = policy_.max_backoff.count();
  // Decorrelated jitter: uniform in [base, 3 × prev), capped.
  const int64_t hi = std::max(base + 1, 3 * prev_.count());
  const double u = UnitFromDraw(SplitMix64(state_ ^ n_++));
  int64_t wait = base + static_cast<int64_t>(u * static_cast<double>(hi - base));
  wait = std::min(wait, cap);
  prev_ = std::chrono::microseconds(wait);
  return prev_;
}

}  // namespace sws::core
