#ifndef SWS_SWS_GOVERNOR_H_
#define SWS_SWS_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "sws/status.h"
#include "util/cancellation.h"

namespace sws::core {

/// A cancellation token plus a hierarchy of resource budgets for one
/// governed scope of work (typically one Engine::Execute run, parented
/// to a runtime-wide root governor).
///
/// Three budgets, all optional (zero / time_point::max() = unlimited):
///   - deadline:        a steady-clock point after which Admit cancels
///                      the run with kDeadlineExceeded;
///   - max_eval_steps:  "fuel" — total evaluation steps (candidate
///                      tuples probed, quantifier domain values tried,
///                      …) before Admit cancels with kFuelExhausted;
///   - max_tracked_bytes: cache bytes attributed to this governor
///                      (memo entries + relation indexes) before the
///                      *next* Admit cancels with kFuelExhausted.
///
/// Cancellation is sticky and first-writer-wins: the first Cancel()
/// (internal from a tripped budget, or external from a watchdog) fixes
/// the status every later observer sees. Steps and bytes propagate to
/// the parent so a runtime root governor sees live global usage, and a
/// cancelled parent cancels every child at the child's next Admit.
///
/// Thread-safety: fully thread-safe. Admit/OnBytes are called from the
/// worker thread running the evaluation; Cancel/SleepInterruptible/
/// status/tracked_bytes may race from watchdog or client threads.
class ExecutionGovernor final : public util::StepGate {
 public:
  struct Limits {
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    uint64_t max_eval_steps = 0;   // 0 = unlimited
    uint64_t max_tracked_bytes = 0;  // 0 = unlimited
  };

  // (A default argument of Limits{} trips a gcc quirk — NSDMI of a
  // nested class in an enclosing class's default argument — so the
  // unlimited case gets its own delegating constructor.)
  ExecutionGovernor() : ExecutionGovernor(Limits{}, nullptr) {}
  explicit ExecutionGovernor(Limits limits,
                             ExecutionGovernor* parent = nullptr)
      : limits_(limits), parent_(parent) {}

  // StepGate -----------------------------------------------------------

  /// Charges `steps` against fuel, checks deadline / byte budget /
  /// external cancellation, and propagates the charge to the parent.
  /// Returns false iff this governor (or an ancestor) is cancelled.
  bool Admit(uint64_t steps) override;

  /// Attributes cache bytes (delta may be negative on release) to this
  /// governor and every ancestor. Never blocks, never cancels directly;
  /// an exceeded byte budget trips at the next Admit.
  void OnBytes(int64_t delta) override;

  // Cancellation -------------------------------------------------------

  /// Cancels this scope with the given typed error. Sticky: only the
  /// first call records its error; later calls are no-ops. Returns true
  /// iff this call was the one that cancelled (so callers can count
  /// "watchdog cancels" without double-counting). Wakes any
  /// SleepInterruptible waiter.
  bool Cancel(RunError error, std::string message);

  bool cancelled() const {
    return code_.load(std::memory_order_acquire) != RunError::kNone ||
           (parent_ != nullptr && parent_->cancelled());
  }

  /// Ok() until cancelled; afterwards the sticky typed error. If only an
  /// ancestor is cancelled, returns the ancestor's status.
  Status status() const;

  // Interruptible waiting ---------------------------------------------

  /// Sleeps up to `duration`, waking early when this governor (or an
  /// ancestor) is cancelled. Also enforces the deadline: if it passes
  /// mid-sleep the governor self-cancels with kDeadlineExceeded and the
  /// sleep returns. Returns true iff the full duration elapsed without
  /// cancellation — i.e. the caller may proceed.
  bool SleepInterruptible(std::chrono::nanoseconds duration);

  // Introspection ------------------------------------------------------

  /// Live cache bytes currently attributed to this governor (including
  /// descendants' charges, which propagate up).
  int64_t tracked_bytes() const {
    return tracked_bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of tracked_bytes() over this governor's lifetime.
  int64_t tracked_bytes_peak() const {
    return tracked_bytes_peak_.load(std::memory_order_relaxed);
  }
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  const Limits& limits() const { return limits_; }
  ExecutionGovernor* parent() const { return parent_; }

 private:
  const Limits limits_;
  ExecutionGovernor* const parent_;

  // kNone until the first Cancel; the winning error code. message_ is
  // written once under mu_ by the winner before code_ is published.
  std::atomic<RunError> code_{RunError::kNone};
  std::string message_;

  std::atomic<uint64_t> steps_{0};
  std::atomic<int64_t> tracked_bytes_{0};
  std::atomic<int64_t> tracked_bytes_peak_{0};

  mutable std::mutex mu_;  // guards message_ and the sleep cv
  std::condition_variable cv_;
};

}  // namespace sws::core

#endif  // SWS_SWS_GOVERNOR_H_
