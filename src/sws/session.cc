#include "sws/session.h"

#include <algorithm>
#include <thread>

#include "util/common.h"

namespace sws::core {

SessionRunner::SessionRunner(const Sws* sws, rel::Database initial_db)
    : sws_(sws), db_(std::move(initial_db)), pending_(sws->rin_arity()) {
  SWS_CHECK(sws != nullptr);
}

SessionRunner::SessionRunner(const Sws* sws, rel::Database db,
                             rel::InputSequence pending)
    : sws_(sws), db_(std::move(db)), pending_(std::move(pending)) {
  SWS_CHECK(sws != nullptr);
  SWS_CHECK_EQ(pending_.message_arity(), sws->rin_arity())
      << "restored pending buffer has the wrong message arity";
}

rel::Relation SessionRunner::DelimiterMessage(size_t arity) {
  SWS_CHECK_GE(arity, 1u) << "delimiters need at least one attribute";
  rel::Tuple t;
  t.push_back(rel::Value::Str("#"));
  for (size_t i = 1; i < arity; ++i) t.push_back(rel::Value::Null(0));
  rel::Relation message(arity);
  message.Insert(std::move(t));
  return message;
}

bool SessionRunner::IsDelimiter(const rel::Relation& message) {
  if (message.size() != 1 || message.arity() == 0) return false;
  const rel::Value& v = message.At(0, 0);
  return v.is_string() && v.AsString() == "#";
}

std::optional<SessionRunner::SessionOutcome> SessionRunner::Feed(
    rel::Relation message, const RunOptions& options) {
  if (!IsDelimiter(message)) {
    pending_.Append(std::move(message));
    return std::nullopt;
  }
  SessionOutcome outcome;
  outcome.session_length = pending_.size();
  RunResult run = Run(*sws_, db_, pending_, options);
  // Retry transient failures with capped backoff + decorrelated jitter,
  // never past the deadline. Replay-safe: a failed run committed nothing
  // and `pending_` is still intact, so each attempt re-runs the same
  // (D, I_session) — by the paper's determinism, an idempotent replay.
  Backoff backoff(options.retry, outcome.session_length);
  while (!run.status.ok() && IsRetryable(run.status.code()) &&
         outcome.attempts < options.retry.max_attempts) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= options.deadline) {
      run.status = Status::Error(RunError::kDeadlineExceeded,
                                 "deadline expired during retry");
      break;
    }
    auto wait = backoff.Next();
    if (options.deadline != std::chrono::steady_clock::time_point::max()) {
      wait = std::min(wait, std::chrono::duration_cast<std::chrono::microseconds>(
                                options.deadline - now));
    }
    if (wait.count() > 0) {
      // Governed requests sleep interruptibly: a watchdog cancel (or the
      // deadline passing mid-backoff) ends the retry loop immediately
      // with the governor's typed status instead of sleeping it out.
      if (options.governor != nullptr) {
        if (!options.governor->SleepInterruptible(wait)) {
          run.status = options.governor->status();
          break;
        }
      } else {
        std::this_thread::sleep_for(wait);
      }
    }
    run = Run(*sws_, db_, pending_, options);
    ++outcome.attempts;
  }
  outcome.status = run.status;
  outcome.run_nodes = run.num_nodes;
  outcome.memo_hits = run.memo_hits;
  outcome.memo_misses = run.memo_misses;
  outcome.logical_nodes = run.logical_nodes;
  outcome.memo_evictions = run.memo_evictions;
  outcome.index_evictions = run.index_evictions;
  if (run.status.ok()) {
    outcome.output = run.output;
    outcome.commit = rel::CommitOutput(run.output, &db_);
  } else {
    outcome.output = rel::Relation(sws_->rout_arity());
  }
  pending_ = rel::InputSequence(sws_->rin_arity());
  return outcome;
}

void SessionRunner::DiscardPending() {
  pending_ = rel::InputSequence(sws_->rin_arity());
}

std::vector<SessionRunner::SessionOutcome> SessionRunner::FeedStream(
    const std::vector<rel::Relation>& stream, const RunOptions& options) {
  std::vector<SessionOutcome> outcomes;
  for (const rel::Relation& message : stream) {
    if (auto outcome = Feed(message, options); outcome.has_value()) {
      outcomes.push_back(std::move(*outcome));
    }
  }
  return outcomes;
}

}  // namespace sws::core
