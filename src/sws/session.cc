#include "sws/session.h"

#include "util/common.h"

namespace sws::core {

SessionRunner::SessionRunner(const Sws* sws, rel::Database initial_db)
    : sws_(sws), db_(std::move(initial_db)), pending_(sws->rin_arity()) {
  SWS_CHECK(sws != nullptr);
}

rel::Relation SessionRunner::DelimiterMessage(size_t arity) {
  SWS_CHECK_GE(arity, 1u) << "delimiters need at least one attribute";
  rel::Tuple t;
  t.push_back(rel::Value::Str("#"));
  for (size_t i = 1; i < arity; ++i) t.push_back(rel::Value::Null(0));
  rel::Relation message(arity);
  message.Insert(std::move(t));
  return message;
}

bool SessionRunner::IsDelimiter(const rel::Relation& message) {
  if (message.size() != 1) return false;
  const rel::Tuple& t = *message.begin();
  return !t.empty() && t[0].is_string() && t[0].AsString() == "#";
}

std::optional<SessionRunner::SessionOutcome> SessionRunner::Feed(
    rel::Relation message, const RunOptions& options) {
  if (!IsDelimiter(message)) {
    pending_.Append(std::move(message));
    return std::nullopt;
  }
  SessionOutcome outcome;
  outcome.session_length = pending_.size();
  RunResult run = Run(*sws_, db_, pending_, options);
  outcome.ok = run.ok;
  if (run.ok) {
    outcome.output = run.output;
    outcome.commit = rel::CommitOutput(run.output, &db_);
  } else {
    outcome.output = rel::Relation(sws_->rout_arity());
  }
  pending_ = rel::InputSequence(sws_->rin_arity());
  return outcome;
}

std::vector<SessionRunner::SessionOutcome> SessionRunner::FeedStream(
    const std::vector<rel::Relation>& stream, const RunOptions& options) {
  std::vector<SessionOutcome> outcomes;
  for (const rel::Relation& message : stream) {
    if (auto outcome = Feed(message, options); outcome.has_value()) {
      outcomes.push_back(std::move(*outcome));
    }
  }
  return outcomes;
}

}  // namespace sws::core
