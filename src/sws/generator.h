#ifndef SWS_SWS_GENERATOR_H_
#define SWS_SWS_GENERATOR_H_

#include <cstdint>
#include <random>

#include "relational/database.h"
#include "relational/input_sequence.h"
#include "sws/pl_sws.h"
#include "sws/sws.h"

namespace sws::core {

/// Seeded random workload generation: services, databases and input
/// sequences for the test suites (differential/property testing) and the
/// Table 1 / Table 2 benchmark families. All generation is deterministic
/// given the seed.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(uint64_t seed) : rng_(seed) {}

  struct PlSwsParams {
    int num_states = 4;
    int num_input_vars = 2;
    int max_successors = 3;      // per transition rule
    double final_state_prob = 0.4;
    int max_formula_depth = 3;
    bool allow_recursion = false;
  };

  /// A random well-formed PlSws (Validate() passes). Recursion, if
  /// allowed, is introduced by letting non-start states target any state
  /// except q0.
  PlSws RandomPlSws(const PlSwsParams& params);

  /// A random input word over the first `num_vars` propositional
  /// variables.
  PlSws::Word RandomPlWord(int length, int num_vars);

  struct CqSwsParams {
    int num_states = 4;
    size_t rin_arity = 2;
    size_t rout_arity = 2;
    int num_db_relations = 2;
    size_t db_arity = 2;
    int max_successors = 2;
    double final_state_prob = 0.45;
    int max_body_atoms = 2;        // extra atoms besides In/Msg uses
    int max_ucq_disjuncts = 2;
    double use_msg_prob = 0.6;     // chance a rule reads the register
    double inequality_prob = 0.25; // chance of adding one ≠ comparison
  };

  /// A random well-formed *nonrecursive* SWS(CQ, UCQ) service over DB
  /// relations "R0".."R{k-1}".
  Sws RandomCqSws(const CqSwsParams& params);

  /// A random database over the service's schema with `tuples_per_rel`
  /// tuples drawn from an integer domain of the given size.
  rel::Database RandomDatabase(const rel::Schema& schema,
                               size_t tuples_per_rel, int64_t domain_size);

  /// A random input sequence of `length` messages, `tuples_per_msg`
  /// tuples each.
  rel::InputSequence RandomInput(size_t arity, size_t length,
                                 size_t tuples_per_msg, int64_t domain_size);

  std::mt19937_64& rng() { return rng_; }

 private:
  logic::PlFormula RandomPlFormula(int depth, int num_vars,
                                   bool include_msg_var, int msg_var);
  logic::ConjunctiveQuery RandomRuleCq(const CqSwsParams& params,
                                       bool allow_msg, size_t head_arity);

  std::mt19937_64 rng_;
};

}  // namespace sws::core

#endif  // SWS_SWS_GENERATOR_H_
