#include "sws/status.h"

namespace sws::core {

const char* RunErrorName(RunError error) {
  switch (error) {
    case RunError::kNone:
      return "OK";
    case RunError::kBudgetExceeded:
      return "BUDGET_EXCEEDED";
    case RunError::kInjectedFault:
      return "INJECTED_FAULT";
    case RunError::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case RunError::kQueueRejected:
      return "QUEUE_REJECTED";
    case RunError::kCircuitOpen:
      return "CIRCUIT_OPEN";
    case RunError::kShutdown:
      return "SHUTDOWN";
    case RunError::kStorageFailure:
      return "STORAGE_FAILURE";
    case RunError::kFuelExhausted:
      return "FUEL_EXHAUSTED";
    case RunError::kReplicationTimeout:
      return "REPLICATION_TIMEOUT";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = RunErrorName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sws::core
