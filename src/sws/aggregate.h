#ifndef SWS_SWS_AGGREGATE_H_
#define SWS_SWS_AGGREGATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "sws/execution.h"
#include "sws/sws.h"

namespace sws::core {

/// Aggregation and cost models in action synthesis — the extension the
/// paper's Conclusion calls for explicitly: "a practical topic for
/// future work is to extend SWS's by incorporating aggregation and a
/// cost model into action synthesis to find, e.g., a travel package
/// with minimum total cost when airfare, hotel and other components are
/// all taken together. While aggregation on composed services is
/// certainly needed in practice, we are not aware of any formal study."
///
/// A CostModel assigns a linear cost to each output tuple: the weighted
/// sum of its integer columns (non-integer columns contribute 0, or can
/// be priced per string value). An AggregateSws wraps a service and an
/// aggregation to apply to τ(D, I):
///  * kMinCost / kMaxCost — keep exactly the tuples attaining the
///    optimum (deterministic: ties keep all optimal tuples, preserving
///    the SWS's "backward determinism": the result is still a function
///    of (D, I));
///  * kSum / kCount / kMin / kMax over one column — a single-tuple
///    summary relation.
///
/// Aggregation happens *after* root synthesis and *before* commitment,
/// so the committed actions are exactly the optimal package — the
/// deferred-commitment discipline extends to the aggregate.
struct CostModel {
  /// Weight per output column (missing trailing weights = 0).
  std::vector<double> column_weights;

  /// Cost of one tuple: Σ weight_i · value_i over integer columns.
  double Cost(const rel::Tuple& tuple) const;
};

/// Tuples of `relation` attaining the minimum (or maximum) cost. The
/// empty relation aggregates to itself.
rel::Relation SelectMinCost(const rel::Relation& relation,
                            const CostModel& model);
rel::Relation SelectMaxCost(const rel::Relation& relation,
                            const CostModel& model);

enum class AggregateKind {
  kMinCost,  // keep the argmin tuples under the cost model
  kMaxCost,  // keep the argmax tuples
  kSum,      // single tuple: (sum of column `column`)
  kCount,    // single tuple: (|τ(D, I)|)
  kMin,      // single tuple: (min of column `column`), empty if no tuples
  kMax,      // single tuple: (max of column `column`), empty if no tuples
};

struct Aggregation {
  AggregateKind kind = AggregateKind::kMinCost;
  CostModel cost_model;   // for kMinCost / kMaxCost
  size_t column = 0;      // for kSum / kMin / kMax
};

/// Applies the aggregation to an output relation. For kSum/kCount the
/// result has arity 1; for the cost selections it keeps the arity.
rel::Relation ApplyAggregation(const rel::Relation& output,
                               const Aggregation& aggregation);

/// A service with aggregation on its synthesized actions: runs the
/// underlying SWS, then aggregates the root's action register. The
/// composite is still a deterministic function of (D, I).
class AggregateSws {
 public:
  AggregateSws(const Sws* sws, Aggregation aggregation)
      : sws_(sws), aggregation_(std::move(aggregation)) {}

  const Sws& sws() const { return *sws_; }
  const Aggregation& aggregation() const { return aggregation_; }

  RunResult Run(const rel::Database& db, const rel::InputSequence& input,
                const RunOptions& options = {}) const;

 private:
  const Sws* sws_;
  Aggregation aggregation_;
};

}  // namespace sws::core

#endif  // SWS_SWS_AGGREGATE_H_
