#include "sws/pl_sws.h"

#include <functional>
#include <sstream>

#include "logic/fo.h"
#include "util/common.h"

namespace sws::core {

PlSws::PlSws(int num_input_vars) : num_input_vars_(num_input_vars) {
  SWS_CHECK_GE(num_input_vars, 0);
}

int PlSws::AddState(std::string name) {
  SWS_CHECK(FindState(name) < 0) << "duplicate state name " << name;
  StateRules rules;
  rules.name = std::move(name);
  rules.synthesis = logic::PlFormula::False();
  states_.push_back(std::move(rules));
  return num_states() - 1;
}

const std::string& PlSws::StateName(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].name;
}

int PlSws::FindState(const std::string& name) const {
  for (int q = 0; q < num_states(); ++q) {
    if (states_[q].name == name) return q;
  }
  return -1;
}

void PlSws::SetTransition(int q, std::vector<Successor> successors) {
  SWS_CHECK(q >= 0 && q < num_states());
  for (const auto& s : successors) {
    SWS_CHECK(s.state >= 0 && s.state < num_states());
  }
  states_[q].successors = std::move(successors);
}

void PlSws::SetSynthesis(int q, logic::PlFormula synthesis) {
  SWS_CHECK(q >= 0 && q < num_states());
  states_[q].synthesis = std::move(synthesis);
  states_[q].has_synthesis = true;
}

const std::vector<PlSws::Successor>& PlSws::Successors(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  return states_[q].successors;
}

const logic::PlFormula& PlSws::Synthesis(int q) const {
  SWS_CHECK(q >= 0 && q < num_states());
  SWS_CHECK(states_[q].has_synthesis)
      << "state " << states_[q].name << " has no synthesis rule";
  return states_[q].synthesis;
}

std::optional<std::string> PlSws::Validate() const {
  if (states_.empty()) return "service has no states";
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    if (!rules.has_synthesis) {
      return "state " + rules.name + " has no synthesis rule";
    }
    for (const auto& s : rules.successors) {
      if (s.state == start_state()) {
        return "start state appears in the rhs of " + rules.name;
      }
      for (int v : s.guard.Vars()) {
        if (v > msg_var()) {
          return "transition formula of " + rules.name +
                 " uses out-of-range variable x" + std::to_string(v);
        }
      }
    }
    for (int v : rules.synthesis.Vars()) {
      if (rules.successors.empty()) {
        if (v > msg_var()) {
          return "final synthesis of " + rules.name +
                 " uses out-of-range variable x" + std::to_string(v);
        }
      } else if (v >= static_cast<int>(rules.successors.size())) {
        return "synthesis of " + rules.name + " references successor " +
               std::to_string(v) + " but rule has only " +
               std::to_string(rules.successors.size()) + " successors";
      }
    }
  }
  return std::nullopt;
}

bool PlSws::IsRecursive() const { return !MaxDepth().has_value(); }

std::optional<size_t> PlSws::MaxDepth() const {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(num_states(), Color::kWhite);
  std::vector<size_t> depth(num_states(), 1);
  bool cyclic = false;
  std::function<void(int)> dfs = [&](int q) {
    color[q] = Color::kGray;
    size_t best = 1;
    for (const auto& s : states_[q].successors) {
      if (color[s.state] == Color::kGray) {
        cyclic = true;
        continue;
      }
      if (color[s.state] == Color::kWhite) dfs(s.state);
      best = std::max(best, 1 + depth[s.state]);
    }
    depth[q] = best;
    color[q] = Color::kBlack;
  };
  dfs(start_state());
  if (cyclic) return std::nullopt;
  return depth[start_state()];
}

std::string PlSws::Classify() const {
  return IsRecursive() ? "SWS(PL, PL)" : "SWSnr(PL, PL)";
}

bool PlSws::FinalValue(int state, const Symbol& a, bool msg) const {
  const StateRules& rules = states_[state];
  SWS_CHECK(rules.successors.empty());
  return rules.synthesis.EvalWith([this, &a, msg](int v) {
    if (v == msg_var()) return msg;
    return a.count(v) > 0;
  });
}

bool PlSws::InternalValue(int state, const Symbol& a, bool msg,
                          const std::vector<bool>& next_values) const {
  const StateRules& rules = states_[state];
  SWS_CHECK(!rules.successors.empty());
  auto input_assignment = [this, &a, msg](int v) {
    if (v == msg_var()) return msg;
    return a.count(v) > 0;
  };
  std::vector<bool> child_values(rules.successors.size());
  for (size_t i = 0; i < rules.successors.size(); ++i) {
    const Successor& s = rules.successors[i];
    bool child_msg = s.guard.EvalWith(input_assignment);
    child_values[i] = child_msg && next_values[s.state];
  }
  return rules.synthesis.EvalWith(
      [&child_values](int i) { return child_values[i]; });
}

std::vector<bool> PlSws::ValuesAt(const std::vector<bool>& carry,
                                  const Symbol& a) const {
  SWS_CHECK_EQ(carry.size(), static_cast<size_t>(num_states()));
  std::vector<bool> values(num_states());
  for (int q = 0; q < num_states(); ++q) {
    values[q] = states_[q].successors.empty() ? FinalValue(q, a, /*msg=*/true)
                                              : carry[q];
  }
  return values;
}

std::vector<bool> PlSws::InitialCarry() const {
  // Internal states whose children live past the end of the input: the
  // children's values are all false.
  std::vector<bool> all_false(num_states(), false);
  std::vector<bool> carry(num_states(), false);
  for (int q = 0; q < num_states(); ++q) {
    if (!states_[q].successors.empty()) {
      // The input message is irrelevant: children are dead regardless.
      carry[q] = InternalValue(q, Symbol{}, /*msg=*/true, all_false);
    }
  }
  return carry;
}

std::vector<bool> PlSws::StepBack(const std::vector<bool>& carry,
                                  const Symbol& a) const {
  std::vector<bool> values = ValuesAt(carry, a);
  std::vector<bool> out(num_states(), false);
  for (int q = 0; q < num_states(); ++q) {
    if (!states_[q].successors.empty()) {
      out[q] = InternalValue(q, a, /*msg=*/true, values);
    }
  }
  return out;
}

bool PlSws::RootValue(const std::vector<bool>& carry, const Symbol& a,
                      bool root_msg) const {
  if (states_[start_state()].successors.empty()) {
    // A final-state root reads I_0, the empty message.
    return FinalValue(start_state(), Symbol{}, root_msg);
  }
  std::vector<bool> values = ValuesAt(carry, a);
  return InternalValue(start_state(), a, root_msg, values);
}

bool PlSws::Run(const Word& input) const {
  return RunSeeded(input, false);
}

bool PlSws::RunSeeded(const Word& input, bool initial_msg) const {
  if (input.empty() && !initial_msg) return false;  // Act(r) = ∅
  if (input.empty()) {
    // Seeded register, no input: only a final-state root can act.
    if (!states_[start_state()].successors.empty()) {
      // Children would live past the end of the input.
      return InternalValue(start_state(), Symbol{}, initial_msg,
                           std::vector<bool>(num_states(), false));
    }
    return FinalValue(start_state(), Symbol{}, initial_msg);
  }
  std::vector<bool> carry = InitialCarry();
  for (size_t j = input.size(); j >= 2; --j) {
    carry = StepBack(carry, input[j - 1]);
  }
  return RootValue(carry, input[0], initial_msg);
}

namespace {
// Mirrors the relational engine's consumption accounting (execution.cc).
struct TreeEval {
  const PlSws& sws;
  const PlSws::Word& input;
  size_t max_consumed = 0;

  bool Eval(int state, size_t j, bool msg, bool is_root) {
    const size_t n = input.size();
    if (j > n) return false;
    if (!msg && !is_root) return false;
    if (is_root && !msg && n == 0) return false;
    if (j >= 1) max_consumed = std::max(max_consumed, j);
    const PlSws::Symbol empty;
    const PlSws::Symbol& here = (j >= 1 && j <= n) ? input[j - 1] : empty;
    if (sws.Successors(state).empty()) {
      return FinalValueOf(state, here, msg);
    }
    if (j + 1 <= n) max_consumed = std::max(max_consumed, j + 1);
    const PlSws::Symbol& next = (j + 1 <= n) ? input[j] : empty;
    const auto& successors = sws.Successors(state);
    std::vector<bool> child_values(successors.size());
    for (size_t i = 0; i < successors.size(); ++i) {
      bool child_msg = successors[i].guard.EvalWith([&](int v) {
        if (v == sws.msg_var()) return msg;
        return next.count(v) > 0;
      });
      child_values[i] =
          Eval(successors[i].state, j + 1, child_msg, /*is_root=*/false);
    }
    return sws.Synthesis(state).EvalWith(
        [&child_values](int i) { return child_values[i]; });
  }

  bool FinalValueOf(int state, const PlSws::Symbol& a, bool msg) const {
    return sws.Synthesis(state).EvalWith([&](int v) {
      if (v == sws.msg_var()) return msg;
      return a.count(v) > 0;
    });
  }
};
}  // namespace

PlSws::RunInfo PlSws::RunWithInfo(const Word& input, bool initial_msg) const {
  TreeEval eval{*this, input};
  RunInfo info;
  info.value = eval.Eval(start_state(), 0, initial_msg, /*is_root=*/true);
  info.max_consumed = eval.max_consumed;
  return info;
}

std::set<int> PlSws::RelevantInputVars() const {
  std::set<int> vars;
  for (const StateRules& rules : states_) {
    for (const auto& s : rules.successors) {
      for (int v : s.guard.Vars()) {
        if (v < num_input_vars_) vars.insert(v);
      }
    }
    if (rules.has_synthesis && rules.successors.empty()) {
      for (int v : rules.synthesis.Vars()) {
        if (v < num_input_vars_) vars.insert(v);
      }
    }
  }
  return vars;
}

std::string PlSws::ToString(const logic::PlVarPool* pool) const {
  std::function<std::string(int)> name;
  if (pool != nullptr) {
    auto namer = pool->Namer();
    int msg = msg_var();
    name = [namer, msg](int v) {
      if (v == msg) return std::string("Msg");
      return namer(v);
    };
  }
  std::ostringstream out;
  out << Classify() << " with " << num_input_vars_ << " input variables\n";
  for (int q = 0; q < num_states(); ++q) {
    const StateRules& rules = states_[q];
    out << "  " << rules.name << " ->";
    if (rules.successors.empty()) {
      out << " .";
    } else {
      for (const auto& s : rules.successors) {
        out << " (" << states_[s.state].name << ", "
            << s.guard.ToString(name) << ")";
      }
    }
    out << "\n    Act(" << rules.name << ") <- ";
    if (rules.successors.empty()) {
      out << rules.synthesis.ToString(name) << "\n";
    } else {
      out << rules.synthesis.ToString() << "  /* vars = successor acts */\n";
    }
  }
  return out.str();
}

namespace {

// FO rendition of a PL formula under the relational encoding: input
// variable v becomes the ground atom In(v); msg_var becomes Ex Msg(x).
logic::FoFormula PlToFo(const logic::PlFormula& f, int msg_var,
                        const std::string& msg_relation) {
  using Kind = logic::PlFormula::Kind;
  switch (f.kind()) {
    case Kind::kConst:
      return f.const_value() ? logic::FoFormula::True()
                             : logic::FoFormula::False();
    case Kind::kVar:
      if (f.var() == msg_var) {
        // Ex x: Msg(x). Variable id 0 is safe: the formula is closed.
        return logic::FoFormula::Exists(
            0, logic::FoFormula::MakeAtom(msg_relation,
                                          {logic::Term::Var(0)}));
      }
      return logic::FoFormula::MakeAtom(
          kInputRelation, {logic::Term::Int(f.var())});
    case Kind::kNot:
      return logic::FoFormula::Not(
          PlToFo(f.children()[0], msg_var, msg_relation));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<logic::FoFormula> children;
      children.reserve(f.children().size());
      for (const auto& c : f.children()) {
        children.push_back(PlToFo(c, msg_var, msg_relation));
      }
      return f.kind() == Kind::kAnd
                 ? logic::FoFormula::And(std::move(children))
                 : logic::FoFormula::Or(std::move(children));
    }
  }
  return logic::FoFormula::False();
}

// Internal-synthesis formulas: variable i refers to Act{i+1}.
logic::FoFormula SynthToFo(const logic::PlFormula& f) {
  using Kind = logic::PlFormula::Kind;
  switch (f.kind()) {
    case Kind::kConst:
      return f.const_value() ? logic::FoFormula::True()
                             : logic::FoFormula::False();
    case Kind::kVar:
      return logic::FoFormula::Exists(
          0, logic::FoFormula::MakeAtom(ActRelation(f.var() + 1),
                                        {logic::Term::Var(0)}));
    case Kind::kNot:
      return logic::FoFormula::Not(SynthToFo(f.children()[0]));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<logic::FoFormula> children;
      children.reserve(f.children().size());
      for (const auto& c : f.children()) {
        children.push_back(SynthToFo(c));
      }
      return f.kind() == Kind::kAnd
                 ? logic::FoFormula::And(std::move(children))
                 : logic::FoFormula::Or(std::move(children));
    }
  }
  return logic::FoFormula::False();
}

logic::FoQuery BoolQuery(logic::FoFormula condition) {
  // Output tuple (1) iff the closed condition holds.
  return logic::FoQuery({logic::Term::Int(1)}, std::move(condition));
}

}  // namespace

Sws PlSwsToRelational(const PlSws& pl) {
  Sws out(rel::Schema{}, /*rin_arity=*/1, /*rout_arity=*/1);
  for (int q = 0; q < pl.num_states(); ++q) {
    out.AddState(pl.StateName(q));
  }
  for (int q = 0; q < pl.num_states(); ++q) {
    std::vector<TransitionTarget> successors;
    for (const auto& s : pl.Successors(q)) {
      successors.push_back(TransitionTarget{
          s.state, RelQuery::Fo(BoolQuery(
                       PlToFo(s.guard, pl.msg_var(), kMsgRelation)))});
    }
    bool is_final = successors.empty();
    out.SetTransition(q, std::move(successors));
    if (is_final) {
      out.SetSynthesis(q, RelQuery::Fo(BoolQuery(PlToFo(
                              pl.Synthesis(q), pl.msg_var(), kMsgRelation))));
    } else {
      out.SetSynthesis(q, RelQuery::Fo(BoolQuery(SynthToFo(pl.Synthesis(q)))));
    }
  }
  return out;
}

rel::InputSequence EncodePlWord(const PlSws::Word& word) {
  rel::InputSequence out(1);
  for (const auto& symbol : word) {
    rel::Relation message(1);
    for (int v : symbol) {
      message.Insert({rel::Value::Int(v)});
    }
    out.Append(std::move(message));
  }
  return out;
}

}  // namespace sws::core
