#ifndef SWS_RELATIONAL_SCHEMA_H_
#define SWS_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

namespace sws::rel {

/// Schema of a single relation: a name plus named attributes.
///
/// Per Section 2 of the paper an SWS is defined over a database schema R,
/// an input schema R_in (whose first attribute is the timestamp `ts`), and
/// an external schema R_out.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<std::string> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Index of the attribute with the given name, if present.
  std::optional<size_t> AttributeIndex(const std::string& attribute) const;

  std::string ToString() const;

  friend bool operator==(const RelationSchema&, const RelationSchema&) =
      default;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
};

/// A database schema: an ordered collection of relation schemas with
/// unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<RelationSchema> relations);

  /// Adds a relation schema. Aborts if the name is already present.
  void Add(RelationSchema relation);

  const std::vector<RelationSchema>& relations() const { return relations_; }
  const RelationSchema* Find(const std::string& name) const;
  bool Contains(const std::string& name) const { return Find(name) != nullptr; }
  size_t size() const { return relations_.size(); }

  std::string ToString() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<RelationSchema> relations_;
};

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_SCHEMA_H_
