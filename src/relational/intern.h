#ifndef SWS_RELATIONAL_INTERN_H_
#define SWS_RELATIONAL_INTERN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sws::rel {

/// The process-wide value intern table behind rel::Value.
///
/// Scope decision (documented per DESIGN.md §12): the table is
/// process-wide, not per-Database. Values flow freely across databases —
/// session registers, memo keys, serde decode, replication shipments —
/// so a per-Database table would force an id translation at every one of
/// those boundaries and reintroduce string compares exactly where the
/// interning is supposed to remove them. The cost of the global scope is
/// that the table only grows (ids must stay stable for the lifetime of
/// every Value in flight); constants in real workloads come from schemas
/// and finite domains, so the table size tracks the vocabulary, not the
/// data volume.
///
/// Concurrency: interning takes a sharded lock (16 shards by payload
/// hash; novel payloads additionally take the append lock). Lookups by
/// id — the hot direction: Value ordering, ToString, serde encode — are
/// lock-free reads of append-only chunked storage. Chunks are never
/// moved or freed, so `const std::string&` returned by StringAt stays
/// valid forever (Value::AsString relies on this). The acquire-load of
/// the published size pairs with the appender's release-store, making
/// the payload bytes visible to any thread that legitimately holds the
/// id.
///
/// Ids are dense indexes starting at 0, assigned in first-intern order.
/// They are NOT stable across processes and never appear in any
/// persisted encoding — serde writes the boxed payload (kind + bytes),
/// so the on-disk format is byte-identical to the pre-interning format.
class Interner {
 public:
  /// The process-wide instance (leaky singleton, never destroyed).
  static Interner& Global();

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `s`, interning it on first sight. Equal strings
  /// always yield equal ids; distinct strings always yield distinct ids
  /// (this injectivity is what makes Value equality a single integer
  /// compare).
  uint64_t InternString(std::string_view s);

  /// The interned string for a valid id. Aborts on an id never handed
  /// out (an id cannot be forged through the Value API; serde decodes
  /// re-intern payload bytes rather than trusting raw ids).
  const std::string& StringAt(uint64_t id) const;

  /// Side table for int64 payloads that do not fit Value's 61-bit
  /// inline range (large ints and labeled-null labels). Same contract
  /// as the string table.
  uint64_t InternInt(int64_t v);
  int64_t IntAt(uint64_t id) const;

  /// Table sizes (monotone; for stats and tests).
  size_t num_strings() const {
    return string_size_.load(std::memory_order_acquire);
  }
  size_t num_ints() const { return int_size_.load(std::memory_order_acquire); }

  /// Approximate heap footprint of the tables (payload bytes + fixed
  /// per-entry overhead) — observability only, never governed: the
  /// table is shared state, not per-run cache.
  size_t ApproxTableBytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

 private:
  Interner() = default;

  // Chunked append-only storage: chunk pointers are published with a
  // release store and never change afterwards, so readers index without
  // locks. 4096 entries per chunk.
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxStringChunks = size_t{1} << 15;  // 134M ids
  static constexpr size_t kMaxIntChunks = size_t{1} << 12;     // 16M ids
  static constexpr size_t kNumShards = 16;

  struct Shard {
    std::mutex mu;
    // Keys view into chunk-stored strings (stable addresses).
    std::unordered_map<std::string_view, uint64_t> map;
  };

  Shard shards_[kNumShards];
  std::mutex append_mu_;  // guards id assignment + chunk allocation
  std::atomic<std::string*> string_chunks_[kMaxStringChunks] = {};
  std::atomic<uint64_t> string_size_{0};

  std::mutex int_mu_;
  std::unordered_map<int64_t, uint64_t> int_map_;
  std::atomic<int64_t*> int_chunks_[kMaxIntChunks] = {};
  std::atomic<uint64_t> int_size_{0};

  std::atomic<size_t> approx_bytes_{0};
};

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_INTERN_H_
