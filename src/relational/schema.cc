#include "relational/schema.h"

#include <sstream>

#include "util/common.h"

namespace sws::rel {

std::optional<size_t> RelationSchema::AttributeIndex(
    const std::string& attribute) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attribute) return i;
  }
  return std::nullopt;
}

std::string RelationSchema::ToString() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out << ", ";
    out << attributes_[i];
  }
  out << ")";
  return out.str();
}

Schema::Schema(std::vector<RelationSchema> relations) {
  for (auto& r : relations) Add(std::move(r));
}

void Schema::Add(RelationSchema relation) {
  SWS_CHECK(Find(relation.name()) == nullptr)
      << "duplicate relation schema: " << relation.name();
  relations_.push_back(std::move(relation));
}

const RelationSchema* Schema::Find(const std::string& name) const {
  for (const auto& r : relations_) {
    if (r.name() == name) return &r;
  }
  return nullptr;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out << "; ";
    out << relations_[i].ToString();
  }
  out << "}";
  return out.str();
}

}  // namespace sws::rel
