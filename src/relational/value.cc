#include "relational/value.h"

#include "util/common.h"

namespace sws::rel {

int64_t Value::AsInt() const {
  SWS_CHECK(is_int()) << "Value is not an int: " << ToString();
  return IntPayload();
}

const std::string& Value::AsString() const {
  SWS_CHECK(is_string()) << "Value is not a string: " << ToString();
  return Interner::Global().StringAt(bits_ & kPayloadMask);
}

int64_t Value::null_label() const {
  SWS_CHECK(is_null()) << "Value is not a null: " << ToString();
  return IntPayload();
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kInt:
      return std::to_string(IntPayload());
    case Kind::kString:
      return "'" + Interner::Global().StringAt(bits_ & kPayloadMask) + "'";
    case Kind::kNull:
      return "_N" + std::to_string(IntPayload());
  }
  return "?";
}

std::strong_ordering Value::CompareSlow(const Value& a, const Value& b) {
  // Kind-major order (kInt < kString < kNull) matches the pre-interning
  // boxed comparison, keeping sorted iteration — and therefore ToString
  // and the persisted encoding of relations — byte-identical.
  const Kind ka = a.kind(), kb = b.kind();
  if (ka != kb) {
    return static_cast<uint8_t>(ka) <=> static_cast<uint8_t>(kb);
  }
  if (ka == Kind::kString) {
    const Interner& interner = Interner::Global();
    return interner.StringAt(a.bits_ & kPayloadMask)
               .compare(interner.StringAt(b.bits_ & kPayloadMask)) <=> 0;
  }
  return a.IntPayload() <=> b.IntPayload();  // ints and null labels
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace sws::rel
