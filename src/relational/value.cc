#include "relational/value.h"

#include <sstream>

#include "util/common.h"

namespace sws::rel {

int64_t Value::AsInt() const {
  SWS_CHECK(kind_ == Kind::kInt) << "Value is not an int: " << ToString();
  return int_;
}

const std::string& Value::AsString() const {
  SWS_CHECK(kind_ == Kind::kString)
      << "Value is not a string: " << ToString();
  return str_;
}

int64_t Value::null_label() const {
  SWS_CHECK(kind_ == Kind::kNull) << "Value is not a null: " << ToString();
  return int_;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kString:
      return "'" + str_ + "'";
    case Kind::kNull:
      return "_N" + std::to_string(int_);
  }
  return "?";
}

std::string TupleToString(const Tuple& t) {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out << ", ";
    out << t[i].ToString();
  }
  out << ")";
  return out.str();
}

}  // namespace sws::rel
