#include "relational/intern.h"

#include "util/common.h"

namespace sws::rel {

Interner& Interner::Global() {
  static Interner* instance = new Interner();  // leaky: ids live forever
  return *instance;
}

uint64_t Interner::InternString(std::string_view s) {
  const size_t shard_index =
      std::hash<std::string_view>()(s) & (kNumShards - 1);
  Shard& shard = shards_[shard_index];
  std::lock_guard<std::mutex> shard_lock(shard.mu);
  auto it = shard.map.find(s);
  if (it != shard.map.end()) return it->second;

  const std::string* stored;
  uint64_t id;
  {
    std::lock_guard<std::mutex> append_lock(append_mu_);
    id = string_size_.load(std::memory_order_relaxed);
    const size_t chunk = id >> kChunkShift;
    SWS_CHECK_LT(chunk, kMaxStringChunks) << "intern string table overflow";
    std::string* base = string_chunks_[chunk].load(std::memory_order_acquire);
    if (base == nullptr) {
      base = new std::string[kChunkSize];
      string_chunks_[chunk].store(base, std::memory_order_release);
    }
    base[id & kChunkMask].assign(s.data(), s.size());
    stored = &base[id & kChunkMask];
    // Publish after the payload is fully constructed: readers pair an
    // acquire load of the size with this store.
    string_size_.store(id + 1, std::memory_order_release);
  }
  approx_bytes_.fetch_add(sizeof(std::string) + s.size() + 64,
                          std::memory_order_relaxed);
  shard.map.emplace(std::string_view(*stored), id);
  return id;
}

const std::string& Interner::StringAt(uint64_t id) const {
  SWS_CHECK_LT(id, string_size_.load(std::memory_order_acquire))
      << "intern id out of range";
  const std::string* base =
      string_chunks_[id >> kChunkShift].load(std::memory_order_acquire);
  return base[id & kChunkMask];
}

uint64_t Interner::InternInt(int64_t v) {
  std::lock_guard<std::mutex> lock(int_mu_);
  auto it = int_map_.find(v);
  if (it != int_map_.end()) return it->second;
  const uint64_t id = int_size_.load(std::memory_order_relaxed);
  const size_t chunk = id >> kChunkShift;
  SWS_CHECK_LT(chunk, kMaxIntChunks) << "intern int table overflow";
  int64_t* base = int_chunks_[chunk].load(std::memory_order_acquire);
  if (base == nullptr) {
    base = new int64_t[kChunkSize];
    int_chunks_[chunk].store(base, std::memory_order_release);
  }
  base[id & kChunkMask] = v;
  int_size_.store(id + 1, std::memory_order_release);
  approx_bytes_.fetch_add(sizeof(int64_t) + 48, std::memory_order_relaxed);
  int_map_.emplace(v, id);
  return id;
}

int64_t Interner::IntAt(uint64_t id) const {
  SWS_CHECK_LT(id, int_size_.load(std::memory_order_acquire))
      << "intern id out of range";
  const int64_t* base =
      int_chunks_[id >> kChunkShift].load(std::memory_order_acquire);
  return base[id & kChunkMask];
}

}  // namespace sws::rel
