#include "relational/database.h"

#include <sstream>

#include "util/cancellation.h"
#include "util/common.h"

namespace sws::rel {

Database::Database(const Schema& schema) {
  for (const auto& r : schema.relations()) {
    relations_.emplace(r.name(), Relation(r.arity()));
  }
}

Database::Database(const Database& other)
    : relations_(other.relations_), index_budget_(other.index_budget_) {}

Database& Database::operator=(const Database& other) {
  if (this != &other) {
    relations_ = other.relations_;
    index_budget_ = other.index_budget_;
    ++structural_gen_;
  }
  return *this;
}

Database::Database(Database&& other) noexcept
    : relations_(std::move(other.relations_)),
      index_budget_(other.index_budget_) {
  ++other.structural_gen_;
}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) {
    relations_ = std::move(other.relations_);
    index_budget_ = other.index_budget_;
    ++structural_gen_;
    ++other.structural_gen_;
  }
  return *this;
}

void Database::Set(const std::string& name, Relation relation) {
  relation.set_index_budget(index_budget_);
  relations_.insert_or_assign(name, std::move(relation));
  ++structural_gen_;
}

void Database::SetIndexBudget(IndexBudget budget) {
  index_budget_ = budget;
  for (auto& [name, rel] : relations_) rel.set_index_budget(budget);
}

size_t Database::TrackedIndexBytes() const {
  size_t bytes = 0;
  for (const auto& [name, rel] : relations_) bytes += rel.cached_index_bytes();
  return bytes;
}

uint64_t Database::IndexEvictions() const {
  uint64_t evictions = 0;
  for (const auto& [name, rel] : relations_) {
    evictions += rel.index_evictions();
  }
  return evictions;
}

void Database::DropIndexCaches() {
  for (auto& [name, rel] : relations_) rel.DropIndexCache();
}

const Relation& Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  SWS_CHECK(it != relations_.end()) << "no relation named " << name;
  return it->second;
}

Relation* Database::GetMutable(const std::string& name) {
  auto it = relations_.find(name);
  SWS_CHECK(it != relations_.end()) << "no relation named " << name;
  return &it->second;
}

Relation Database::GetOrEmpty(const std::string& name, size_t arity) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Relation(arity);
  return it->second;
}

bool Database::empty() const {
  for (const auto& [name, rel] : relations_) {
    if (!rel.empty()) return false;
  }
  return true;
}

std::pair<uint64_t, uint64_t> Database::Generation() const {
  uint64_t sum = 0;
  for (const auto& [name, rel] : relations_) sum += rel.generation();
  return {structural_gen_, sum};
}

std::set<Value> Database::ActiveDomain() const {
  return *ActiveDomainShared();
}

std::shared_ptr<const std::set<Value>> Database::ActiveDomainShared() const {
  const std::pair<uint64_t, uint64_t> key = Generation();
  std::lock_guard<std::mutex> lock(adom_mu_);
  if (adom_cache_ != nullptr && adom_key_ == key) return adom_cache_;
  auto adom = std::make_shared<std::set<Value>>();
  for (const auto& [name, rel] : relations_) rel.CollectValues(adom.get());
  // A cancelled build (governor deadline/fuel tripped inside
  // CollectValues) yields a partial domain: return it so the caller's
  // unwind has something well-formed to iterate, but never cache it —
  // the next un-cancelled caller must rebuild the real domain.
  if (sws::util::StepGateStopped()) return adom;
  adom_cache_ = std::move(adom);
  adom_key_ = key;
  return adom_cache_;
}

std::string Database::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, rel] : relations_) {
    if (!first) out << "\n";
    first = false;
    out << name << " = " << rel.ToString();
  }
  return out.str();
}

uint64_t Database::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& [name, rel] : relations_) {
    uint64_t entry = std::hash<std::string>{}(name);
    entry = entry * 0x100000001b3ULL ^ static_cast<uint64_t>(rel.Hash());
    h = h * 0x100000001b3ULL ^ entry;
  }
  return h;
}

}  // namespace sws::rel
