#include "relational/database.h"

#include <sstream>

#include "util/common.h"

namespace sws::rel {

Database::Database(const Schema& schema) {
  for (const auto& r : schema.relations()) {
    relations_.emplace(r.name(), Relation(r.arity()));
  }
}

void Database::Set(const std::string& name, Relation relation) {
  relations_.insert_or_assign(name, std::move(relation));
}

const Relation& Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  SWS_CHECK(it != relations_.end()) << "no relation named " << name;
  return it->second;
}

Relation* Database::GetMutable(const std::string& name) {
  auto it = relations_.find(name);
  SWS_CHECK(it != relations_.end()) << "no relation named " << name;
  return &it->second;
}

Relation Database::GetOrEmpty(const std::string& name, size_t arity) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Relation(arity);
  return it->second;
}

bool Database::empty() const {
  for (const auto& [name, rel] : relations_) {
    if (!rel.empty()) return false;
  }
  return true;
}

std::set<Value> Database::ActiveDomain() const {
  std::set<Value> adom;
  for (const auto& [name, rel] : relations_) rel.CollectValues(&adom);
  return adom;
}

std::string Database::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, rel] : relations_) {
    if (!first) out << "\n";
    first = false;
    out << name << " = " << rel.ToString();
  }
  return out.str();
}

}  // namespace sws::rel
