#include "relational/actions.h"

#include <sstream>

#include "util/common.h"

namespace sws::rel {

std::string Action::ToString() const {
  std::ostringstream out;
  switch (op) {
    case Op::kInsert:
      out << "ins";
      break;
    case Op::kDelete:
      out << "del";
      break;
    case Op::kMessage:
      out << "msg";
      break;
  }
  out << " " << target << " " << TupleToString(payload);
  return out.str();
}

std::vector<Action> ParseActions(const Relation& output,
                                 std::vector<Tuple>* malformed) {
  std::vector<Action> actions;
  for (const Tuple& t : output) {
    bool ok = t.size() >= 2 && t[0].is_string() && t[1].is_string();
    Action::Op op = Action::Op::kMessage;
    if (ok) {
      const std::string& op_name = t[0].AsString();
      if (op_name == "ins") {
        op = Action::Op::kInsert;
      } else if (op_name == "del") {
        op = Action::Op::kDelete;
      } else if (op_name == "msg") {
        op = Action::Op::kMessage;
      } else {
        ok = false;
      }
    }
    if (!ok) {
      if (malformed != nullptr) malformed->push_back(t);
      continue;
    }
    actions.push_back(
        Action{op, t[1].AsString(), Tuple(t.begin() + 2, t.end())});
  }
  return actions;
}

CommitResult CommitOutput(const Relation& output, Database* db) {
  SWS_CHECK(db != nullptr);
  CommitResult result;
  std::vector<Action> actions = ParseActions(output, &result.malformed);

  // Insertions first, then deletions, so the commit is independent of the
  // (set) order of action tuples.
  for (const Action& a : actions) {
    if (a.op != Action::Op::kInsert) continue;
    if (!db->Contains(a.target)) {
      db->Set(a.target, Relation(a.payload.size()));
    }
    Relation* rel = db->GetMutable(a.target);
    if (a.payload.size() != rel->arity()) {
      result.malformed.push_back(a.payload);
      continue;
    }
    if (rel->Insert(a.payload)) ++result.inserted;
  }
  for (const Action& a : actions) {
    if (a.op != Action::Op::kDelete) continue;
    if (!db->Contains(a.target)) continue;
    Relation* rel = db->GetMutable(a.target);
    if (a.payload.size() != rel->arity()) {
      result.malformed.push_back(a.payload);
      continue;
    }
    if (rel->Erase(a.payload)) ++result.deleted;
  }
  for (Action& a : actions) {
    if (a.op == Action::Op::kMessage) result.messages.push_back(std::move(a));
  }
  return result;
}

}  // namespace sws::rel
