#include "relational/relation.h"

#include <algorithm>
#include <sstream>

#include "util/cancellation.h"
#include "util/common.h"

namespace sws::rel {

namespace {

/// Byte estimate for one cached index — computed once at build time so
/// eviction accounting never re-walks buckets. The constant stands in
/// for unordered_map node overhead.
size_t IndexApproxBytes(const Relation::Index& index) {
  size_t bytes = sizeof(Relation::Index) + index.cols.size() * sizeof(size_t);
  for (const auto& [key, bucket] : index.buckets) {
    bytes += ApproxBytes(key) + bucket.size() * sizeof(const Tuple*) + 48;
  }
  return bytes;
}

}  // namespace

Relation::Relation(size_t arity, std::vector<Tuple> tuples) : arity_(arity) {
  for (auto& t : tuples) Insert(std::move(t));
}

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      tuples_(other.tuples_),
      index_budget_(other.index_budget_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = other.tuples_;
    index_budget_ = other.index_budget_;
    Touch();
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      tuples_(std::move(other.tuples_)),
      index_budget_(other.index_budget_) {
  other.Touch();
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    index_budget_ = other.index_budget_;
    Touch();
    other.Touch();
  }
  return *this;
}

Relation::~Relation() {
  // Release the cached indexes' tracked bytes so a governor's byte gauge
  // does not drift when governed relations die (Engine's working copies).
  if (cached_index_bytes_ != 0) {
    sws::util::ChargeGateBytes(-static_cast<int64_t>(cached_index_bytes_));
  }
}

void Relation::ReleaseIndexesLocked() {
  indexes_.clear();
  if (cached_index_bytes_ != 0) {
    sws::util::ChargeGateBytes(-static_cast<int64_t>(cached_index_bytes_));
    cached_index_bytes_ = 0;
  }
}

void Relation::Touch() {
  ++generation_;
  // No lock needed: mutation may not race with reads by contract.
  ReleaseIndexesLocked();
}

void Relation::DropIndexCache() {
  std::lock_guard<std::mutex> lock(index_mu_);
  ReleaseIndexesLocked();
}

size_t Relation::cached_index_bytes() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return cached_index_bytes_;
}

uint64_t Relation::index_evictions() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_evictions_;
}

bool Relation::Insert(Tuple t) {
  SWS_CHECK_EQ(t.size(), arity_) << "arity mismatch inserting "
                                 << TupleToString(t);
  bool inserted = tuples_.insert(std::move(t)).second;
  if (inserted) Touch();
  return inserted;
}

bool Relation::Erase(const Tuple& t) {
  bool erased = tuples_.erase(t) > 0;
  if (erased) Touch();
  return erased;
}

void Relation::Clear() {
  tuples_.clear();
  Touch();
}

Relation Relation::FromSorted(size_t arity, std::vector<Tuple> sorted) {
  Relation r(arity);
  // Hinted insertion at end(): O(1) amortized per tuple for sorted input.
  for (auto& t : sorted) {
    SWS_CHECK_EQ(t.size(), arity);
    r.tuples_.insert(r.tuples_.end(), std::move(t));
  }
  return r;
}

void Relation::MergeFrom(Relation&& other) {
  SWS_CHECK_EQ(arity_, other.arity_);
  tuples_.merge(std::move(other.tuples_));  // node splicing, no copies
  Touch();
  other.Touch();
}

Relation Relation::Union(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(merged));
  return FromSorted(arity_, std::move(merged));
}

Relation Relation::Intersect(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  std::vector<Tuple> merged;
  std::set_intersection(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                        other.tuples_.end(), std::back_inserter(merged));
  return FromSorted(arity_, std::move(merged));
}

Relation Relation::Difference(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  std::vector<Tuple> merged;
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(merged));
  return FromSorted(arity_, std::move(merged));
}

bool Relation::SubsetOf(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  return std::includes(other.tuples_.begin(), other.tuples_.end(),
                       tuples_.begin(), tuples_.end());
}

void Relation::CollectValues(std::set<Value>* out) const {
  for (const auto& t : tuples_) {
    // Cooperative cancellation: active-domain construction over a huge
    // relation must not outlive the run's deadline/fuel budget.
    if (!sws::util::StepTick()) return;
    for (const auto& v : t) out->insert(v);
  }
}

size_t Relation::Hash() const {
  size_t h = 1469598103934665603ull ^ arity_;
  TupleHash tuple_hash;
  for (const Tuple& t : tuples_) {
    h = (h ^ tuple_hash(t)) * 1099511628211ull;
  }
  return h;
}

std::shared_ptr<const Relation::Index> Relation::GetIndex(
    uint64_t mask) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  // Linear scan is fine: the pool holds one entry per distinct mask and
  // the budget keeps it small. Front = most recently used.
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i]->mask == mask) {
      std::shared_ptr<const Index> hit = indexes_[i];
      if (i != 0) {
        indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(i));
        indexes_.insert(indexes_.begin(), hit);
      }
      return hit;
    }
  }
  auto index = std::make_shared<Index>();
  index->mask = mask;
  for (size_t c = 0; c < arity_ && c < 64; ++c) {
    if ((mask >> c) & 1) index->cols.push_back(c);
  }
  for (const Tuple& t : tuples_) {
    Tuple key;
    key.reserve(index->cols.size());
    for (size_t c : index->cols) key.push_back(t[c]);
    index->buckets[std::move(key)].push_back(&t);
  }
  index->approx_bytes = IndexApproxBytes(*index);
  cached_index_bytes_ += index->approx_bytes;
  sws::util::ChargeGateBytes(static_cast<int64_t>(index->approx_bytes));
  std::shared_ptr<const Index> result = index;
  indexes_.insert(indexes_.begin(), std::move(index));
  // Evict LRU entries past the budget — but never the index just built,
  // since the caller is about to probe it (an instantly-evicted index
  // would still be correct via the shared_ptr, just pointlessly cold).
  auto over_budget = [&] {
    if (index_budget_.max_indexes != 0 &&
        indexes_.size() > index_budget_.max_indexes) {
      return true;
    }
    return index_budget_.max_bytes != 0 &&
           cached_index_bytes_ > index_budget_.max_bytes;
  };
  while (indexes_.size() > 1 && over_budget()) {
    const size_t bytes = indexes_.back()->approx_bytes;
    indexes_.pop_back();
    cached_index_bytes_ -= bytes;
    sws::util::ChargeGateBytes(-static_cast<int64_t>(bytes));
    ++index_evictions_;
  }
  return result;
}

std::string Relation::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& t : tuples_) {
    if (!first) out << ", ";
    first = false;
    out << TupleToString(t);
  }
  out << "}";
  return out.str();
}

}  // namespace sws::rel
