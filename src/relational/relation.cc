#include "relational/relation.h"

#include <algorithm>
#include <sstream>

#include "util/common.h"

namespace sws::rel {

Relation::Relation(size_t arity, std::vector<Tuple> tuples) : arity_(arity) {
  for (auto& t : tuples) Insert(std::move(t));
}

Relation::Relation(const Relation& other)
    : arity_(other.arity_), tuples_(other.tuples_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = other.tuples_;
    Touch();
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_), tuples_(std::move(other.tuples_)) {
  other.Touch();
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    Touch();
    other.Touch();
  }
  return *this;
}

void Relation::Touch() {
  ++generation_;
  // No lock needed: mutation may not race with reads by contract.
  indexes_.clear();
}

bool Relation::Insert(Tuple t) {
  SWS_CHECK_EQ(t.size(), arity_) << "arity mismatch inserting "
                                 << TupleToString(t);
  bool inserted = tuples_.insert(std::move(t)).second;
  if (inserted) Touch();
  return inserted;
}

bool Relation::Erase(const Tuple& t) {
  bool erased = tuples_.erase(t) > 0;
  if (erased) Touch();
  return erased;
}

void Relation::Clear() {
  tuples_.clear();
  Touch();
}

Relation Relation::FromSorted(size_t arity, std::vector<Tuple> sorted) {
  Relation r(arity);
  // Hinted insertion at end(): O(1) amortized per tuple for sorted input.
  for (auto& t : sorted) {
    SWS_CHECK_EQ(t.size(), arity);
    r.tuples_.insert(r.tuples_.end(), std::move(t));
  }
  return r;
}

void Relation::MergeFrom(Relation&& other) {
  SWS_CHECK_EQ(arity_, other.arity_);
  tuples_.merge(std::move(other.tuples_));  // node splicing, no copies
  Touch();
  other.Touch();
}

Relation Relation::Union(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(merged));
  return FromSorted(arity_, std::move(merged));
}

Relation Relation::Intersect(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  std::vector<Tuple> merged;
  std::set_intersection(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                        other.tuples_.end(), std::back_inserter(merged));
  return FromSorted(arity_, std::move(merged));
}

Relation Relation::Difference(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  std::vector<Tuple> merged;
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(merged));
  return FromSorted(arity_, std::move(merged));
}

bool Relation::SubsetOf(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  return std::includes(other.tuples_.begin(), other.tuples_.end(),
                       tuples_.begin(), tuples_.end());
}

void Relation::CollectValues(std::set<Value>* out) const {
  for (const auto& t : tuples_) {
    for (const auto& v : t) out->insert(v);
  }
}

size_t Relation::Hash() const {
  size_t h = 1469598103934665603ull ^ arity_;
  TupleHash tuple_hash;
  for (const Tuple& t : tuples_) {
    h = (h ^ tuple_hash(t)) * 1099511628211ull;
  }
  return h;
}

const Relation::Index* Relation::GetIndex(uint64_t mask) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  for (const auto& index : indexes_) {
    if (index->mask == mask) return index.get();
  }
  auto index = std::make_shared<Index>();
  index->mask = mask;
  for (size_t c = 0; c < arity_ && c < 64; ++c) {
    if ((mask >> c) & 1) index->cols.push_back(c);
  }
  for (const Tuple& t : tuples_) {
    Tuple key;
    key.reserve(index->cols.size());
    for (size_t c : index->cols) key.push_back(t[c]);
    index->buckets[std::move(key)].push_back(&t);
  }
  indexes_.push_back(std::move(index));
  return indexes_.back().get();
}

std::string Relation::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& t : tuples_) {
    if (!first) out << ", ";
    first = false;
    out << TupleToString(t);
  }
  out << "}";
  return out.str();
}

}  // namespace sws::rel
