#include "relational/relation.h"

#include <sstream>

#include "util/common.h"

namespace sws::rel {

Relation::Relation(size_t arity, std::vector<Tuple> tuples) : arity_(arity) {
  for (auto& t : tuples) Insert(std::move(t));
}

bool Relation::Insert(Tuple t) {
  SWS_CHECK_EQ(t.size(), arity_) << "arity mismatch inserting "
                                 << TupleToString(t);
  return tuples_.insert(std::move(t)).second;
}

Relation Relation::Union(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  Relation r = *this;
  for (const auto& t : other.tuples_) r.tuples_.insert(t);
  return r;
}

Relation Relation::Intersect(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  Relation r(arity_);
  for (const auto& t : tuples_) {
    if (other.Contains(t)) r.tuples_.insert(t);
  }
  return r;
}

Relation Relation::Difference(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  Relation r(arity_);
  for (const auto& t : tuples_) {
    if (!other.Contains(t)) r.tuples_.insert(t);
  }
  return r;
}

bool Relation::SubsetOf(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  for (const auto& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

void Relation::CollectValues(std::set<Value>* out) const {
  for (const auto& t : tuples_) {
    for (const auto& v : t) out->insert(v);
  }
}

std::string Relation::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& t : tuples_) {
    if (!first) out << ", ";
    first = false;
    out << TupleToString(t);
  }
  out << "}";
  return out.str();
}

}  // namespace sws::rel
