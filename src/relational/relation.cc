#include "relational/relation.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/cancellation.h"
#include "util/common.h"

namespace sws::rel {

namespace {

/// Byte estimate for one cached index — computed once at build time so
/// eviction accounting never re-walks buckets. The constant stands in
/// for unordered_map node overhead.
size_t IndexApproxBytes(const Relation::Index& index) {
  size_t bytes = sizeof(Relation::Index) + index.cols.size() * sizeof(size_t);
  for (const auto& [key, bucket] : index.buckets) {
    bytes += ApproxBytes(key) + bucket.size() * sizeof(uint32_t) + 48;
  }
  return bytes;
}

/// Three-way lexicographic compare of row ra of a against row rb of b.
std::strong_ordering CompareRows(const Relation& a, size_t ra,
                                 const Relation& b, size_t rb) {
  for (size_t c = 0; c < a.arity(); ++c) {
    auto cmp = a.At(ra, c) <=> b.At(rb, c);
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  return std::strong_ordering::equal;
}

}  // namespace

Relation::Relation(size_t arity, std::vector<Tuple> tuples)
    : Relation(FromSorted(arity, std::move(tuples))) {}

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      rows_(other.rows_),
      capacity_(other.rows_),  // compact copy: no slack carried over
      arena_(other.arity_ * other.rows_),
      index_budget_(other.index_budget_) {
  for (size_t c = 0; c < arity_; ++c) {
    if (rows_ != 0) {
      std::memcpy(arena_.data() + c * capacity_, other.ColumnData(c),
                  rows_ * sizeof(Value));
    }
  }
}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    arity_ = other.arity_;
    rows_ = other.rows_;
    capacity_ = other.rows_;
    arena_.assign(arity_ * rows_, Value());
    for (size_t c = 0; c < arity_; ++c) {
      if (rows_ != 0) {
        std::memcpy(arena_.data() + c * capacity_, other.ColumnData(c),
                    rows_ * sizeof(Value));
      }
    }
    index_budget_ = other.index_budget_;
    Touch();
  }
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      rows_(other.rows_),
      capacity_(other.capacity_),
      arena_(std::move(other.arena_)),
      index_budget_(other.index_budget_) {
  other.rows_ = 0;
  other.capacity_ = 0;
  other.Touch();
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    arity_ = other.arity_;
    rows_ = other.rows_;
    capacity_ = other.capacity_;
    arena_ = std::move(other.arena_);
    index_budget_ = other.index_budget_;
    other.rows_ = 0;
    other.capacity_ = 0;
    Touch();
    other.Touch();
  }
  return *this;
}

Relation::~Relation() {
  // Release the cached indexes' tracked bytes so a governor's byte gauge
  // does not drift when governed relations die (Engine's working copies).
  if (cached_index_bytes_ != 0) {
    sws::util::ChargeGateBytes(-static_cast<int64_t>(cached_index_bytes_));
  }
}

void Relation::ReleaseIndexesLocked() {
  indexes_.clear();
  if (cached_index_bytes_ != 0) {
    sws::util::ChargeGateBytes(-static_cast<int64_t>(cached_index_bytes_));
    cached_index_bytes_ = 0;
  }
}

void Relation::Touch() {
  ++generation_;
  // No lock needed: mutation may not race with reads by contract.
  ReleaseIndexesLocked();
}

void Relation::DropIndexCache() {
  std::lock_guard<std::mutex> lock(index_mu_);
  ReleaseIndexesLocked();
}

size_t Relation::cached_index_bytes() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return cached_index_bytes_;
}

uint64_t Relation::index_evictions() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_evictions_;
}

void Relation::Reserve(size_t min_rows) {
  if (min_rows <= capacity_) return;
  size_t new_cap = capacity_ == 0 ? 8 : capacity_ * 2;
  while (new_cap < min_rows) new_cap *= 2;
  std::vector<Value> grown(arity_ * new_cap);
  for (size_t c = 0; c < arity_; ++c) {
    if (rows_ != 0) {
      std::memcpy(grown.data() + c * new_cap, arena_.data() + c * capacity_,
                  rows_ * sizeof(Value));
    }
  }
  arena_ = std::move(grown);
  capacity_ = new_cap;
}

std::strong_ordering Relation::CompareRow(size_t r, const Tuple& t) const {
  for (size_t c = 0; c < arity_; ++c) {
    auto cmp = At(r, c) <=> t[c];
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  return std::strong_ordering::equal;
}

size_t Relation::LowerBound(const Tuple& t) const {
  size_t lo = 0, hi = rows_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareRow(mid, t) == std::strong_ordering::less) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void Relation::AppendRow(const Value* vals) {
  for (size_t c = 0; c < arity_; ++c) {
    arena_[c * capacity_ + rows_] = vals[c];
  }
  ++rows_;
}

bool Relation::Insert(Tuple t) {
  SWS_CHECK_EQ(t.size(), arity_)
      << "arity mismatch inserting " << TupleToString(t);
  const size_t pos = LowerBound(t);
  if (pos < rows_ && CompareRow(pos, t) == std::strong_ordering::equal) {
    return false;
  }
  Reserve(rows_ + 1);
  for (size_t c = 0; c < arity_; ++c) {
    Value* col = arena_.data() + c * capacity_;
    if (const size_t tail = rows_ - pos; tail != 0) {
      std::memmove(col + pos + 1, col + pos, tail * sizeof(Value));
    }
    col[pos] = t[c];
  }
  ++rows_;
  Touch();
  return true;
}

bool Relation::Erase(const Tuple& t) {
  const size_t pos = LowerBound(t);
  if (pos == rows_ || CompareRow(pos, t) != std::strong_ordering::equal) {
    return false;
  }
  for (size_t c = 0; c < arity_; ++c) {
    Value* col = arena_.data() + c * capacity_;
    if (const size_t tail = rows_ - pos - 1; tail != 0) {
      std::memmove(col + pos, col + pos + 1, tail * sizeof(Value));
    }
  }
  --rows_;
  Touch();
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  // Small relations: linear equality scan over the column arena. Packed
  // values are canonical, so equality is a one-word bit compare — unlike
  // the binary search, whose three-way CompareRow falls back to interner
  // ordering lookups for strings and big ints. The FO interpreter probes
  // tiny runtime relations (peer state/input) millions of times per run.
  if (rows_ <= 8) {
    for (size_t r = 0; r < rows_; ++r) {
      size_t c = 0;
      while (c < arity_ && At(r, c) == t[c]) ++c;
      if (c == arity_) return true;
    }
    return false;
  }
  const size_t pos = LowerBound(t);
  return pos < rows_ && CompareRow(pos, t) == std::strong_ordering::equal;
}

void Relation::Clear() {
  rows_ = 0;
  Touch();
}

Relation Relation::FromSorted(size_t arity, std::vector<Tuple> sorted) {
  for (const Tuple& t : sorted) SWS_CHECK_EQ(t.size(), arity);
  // The columnar transpose requires genuinely sorted, deduplicated input;
  // tolerate anything (callers outside the set algebra pass arbitrary
  // tuple vectors) by normalizing off the fast path.
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    std::sort(sorted.begin(), sorted.end());
  }
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  Relation r(arity);
  r.Reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t c = 0; c < arity; ++c) {
      r.arena_[c * r.capacity_ + i] = sorted[i][c];
    }
  }
  r.rows_ = sorted.size();
  return r;
}

Relation Relation::FromRowMajor(size_t arity, const std::vector<Value>& rows) {
  SWS_CHECK_GT(arity, 0u);
  SWS_CHECK_EQ(rows.size() % arity, 0u);
  const size_t n = rows.size() / arity;
  SWS_CHECK_LE(n, size_t{UINT32_MAX});

  // Already-sorted distinct input (the grouped join emitter in
  // logic/cq.cc produces rows in final order): one linear verification
  // pass replaces the sort. On unsorted input the scan exits at the
  // first inversion, so the speculative check stays cheap.
  {
    bool sorted_distinct = true;
    for (size_t i = 1; i < n && sorted_distinct; ++i) {
      const Value* a = rows.data() + (i - 1) * arity;
      const Value* b = rows.data() + i * arity;
      std::strong_ordering cmp = std::strong_ordering::equal;
      for (size_t c = 0; c < arity && cmp == 0; ++c) cmp = a[c] <=> b[c];
      sorted_distinct = cmp < 0;
    }
    if (sorted_distinct) {
      Relation r(arity);
      r.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Value* src = rows.data() + i * arity;
        for (size_t c = 0; c < arity; ++c) r.arena_[c * r.capacity_ + i] = src[c];
      }
      r.rows_ = n;
      return r;
    }
  }

  // Fast path: when every value carries an inline order key (inline
  // ints / inline nulls — the overwhelming case for join outputs), row
  // order is plain unsigned comparison of transformed words. Sorting
  // contiguous (key..., row) structs beats the generic permutation sort
  // by avoiding both value decoding and indirection per compare.
  bool inline_keys = true;
  for (const Value& v : rows) {
    if (!v.HasInlineOrderKey()) {
      inline_keys = false;
      break;
    }
  }
  if (inline_keys && arity <= 2 && n > 1) {
    // The keys are invertible (Value::FromInlineOrderKey), so the sort
    // carries no row ids: bare u64s / u64 pairs sort with trivial
    // compares and swaps, and the rows are reconstructed from the keys.
    Relation r(arity);
    if (arity == 1) {
      std::vector<uint64_t> keyed(n);
      for (size_t i = 0; i < n; ++i) keyed[i] = rows[i].InlineOrderKey();
      std::sort(keyed.begin(), keyed.end());
      keyed.erase(std::unique(keyed.begin(), keyed.end()), keyed.end());
      r.Reserve(keyed.size());
      for (size_t i = 0; i < keyed.size(); ++i) {
        r.arena_[i] = Value::FromInlineOrderKey(keyed[i]);
      }
      r.rows_ = keyed.size();
    } else {
      std::vector<std::pair<uint64_t, uint64_t>> keyed(n);
      for (size_t i = 0; i < n; ++i) {
        keyed[i] = {rows[i * 2].InlineOrderKey(),
                    rows[i * 2 + 1].InlineOrderKey()};
      }
      std::sort(keyed.begin(), keyed.end());
      keyed.erase(std::unique(keyed.begin(), keyed.end()), keyed.end());
      r.Reserve(keyed.size());
      for (size_t i = 0; i < keyed.size(); ++i) {
        r.arena_[i] = Value::FromInlineOrderKey(keyed[i].first);
        r.arena_[r.capacity_ + i] = Value::FromInlineOrderKey(keyed[i].second);
      }
      r.rows_ = keyed.size();
    }
    return r;
  }

  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  const Value* data = rows.data();
  auto row_cmp = [data, arity, inline_keys](uint32_t a, uint32_t b) {
    const Value* ra = data + size_t{a} * arity;
    const Value* rb = data + size_t{b} * arity;
    if (inline_keys) {  // arity >= 3, still no decoding per compare
      for (size_t c = 0; c < arity; ++c) {
        const uint64_t ka = ra[c].InlineOrderKey(), kb = rb[c].InlineOrderKey();
        if (ka != kb) return ka < kb;
      }
      return false;
    }
    for (size_t c = 0; c < arity; ++c) {
      auto cmp = ra[c] <=> rb[c];
      if (cmp != std::strong_ordering::equal) return cmp < 0;
    }
    return false;
  };
  std::sort(order.begin(), order.end(), row_cmp);
  auto row_eq = [&](uint32_t a, uint32_t b) {
    return std::memcmp(rows.data() + size_t{a} * arity,
                       rows.data() + size_t{b} * arity,
                       arity * sizeof(Value)) == 0;
  };
  order.erase(std::unique(order.begin(), order.end(), row_eq), order.end());
  Relation r(arity);
  r.Reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const Value* src = rows.data() + size_t{order[i]} * arity;
    for (size_t c = 0; c < arity; ++c) {
      r.arena_[c * r.capacity_ + i] = src[c];
    }
  }
  r.rows_ = order.size();
  return r;
}

void Relation::MergeFrom(Relation&& other) {
  SWS_CHECK_EQ(arity_, other.arity_);
  // Mirror the pre-columnar set-splice contract: this ends with the
  // union, other keeps only the duplicates (tuples both sides had).
  Relation merged = Union(other);
  Relation dupes = Intersect(other);
  *this = std::move(merged);
  other = std::move(dupes);
}

Relation Relation::Union(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  Relation out(arity_);
  out.Reserve(rows_ + other.rows_);
  size_t i = 0, j = 0;
  Tuple scratch;
  scratch.resize(arity_);
  auto copy_row = [&](const Relation& src, size_t row) {
    for (size_t c = 0; c < arity_; ++c) scratch[c] = src.At(row, c);
    out.AppendRow(scratch.data());
  };
  while (i < rows_ && j < other.rows_) {
    const auto cmp = CompareRows(*this, i, other, j);
    if (cmp == std::strong_ordering::less) {
      copy_row(*this, i++);
    } else if (cmp == std::strong_ordering::greater) {
      copy_row(other, j++);
    } else {
      copy_row(*this, i++);
      ++j;
    }
  }
  while (i < rows_) copy_row(*this, i++);
  while (j < other.rows_) copy_row(other, j++);
  return out;
}

Relation Relation::Intersect(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  Relation out(arity_);
  out.Reserve(std::min(rows_, other.rows_));
  size_t i = 0, j = 0;
  Tuple scratch;
  scratch.resize(arity_);
  while (i < rows_ && j < other.rows_) {
    const auto cmp = CompareRows(*this, i, other, j);
    if (cmp == std::strong_ordering::less) {
      ++i;
    } else if (cmp == std::strong_ordering::greater) {
      ++j;
    } else {
      for (size_t c = 0; c < arity_; ++c) scratch[c] = At(i, c);
      out.AppendRow(scratch.data());
      ++i;
      ++j;
    }
  }
  return out;
}

Relation Relation::Difference(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  Relation out(arity_);
  out.Reserve(rows_);
  size_t i = 0, j = 0;
  Tuple scratch;
  scratch.resize(arity_);
  while (i < rows_) {
    if (j == other.rows_) {
      for (size_t c = 0; c < arity_; ++c) scratch[c] = At(i, c);
      out.AppendRow(scratch.data());
      ++i;
      continue;
    }
    const auto cmp = CompareRows(*this, i, other, j);
    if (cmp == std::strong_ordering::less) {
      for (size_t c = 0; c < arity_; ++c) scratch[c] = At(i, c);
      out.AppendRow(scratch.data());
      ++i;
    } else if (cmp == std::strong_ordering::greater) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return out;
}

bool Relation::SubsetOf(const Relation& other) const {
  SWS_CHECK_EQ(arity_, other.arity_);
  size_t i = 0, j = 0;
  while (i < rows_) {
    if (j == other.rows_) return false;
    const auto cmp = CompareRows(*this, i, other, j);
    if (cmp == std::strong_ordering::less) return false;
    if (cmp == std::strong_ordering::greater) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return true;
}

void Relation::CollectValues(std::set<Value>* out) const {
  for (size_t r = 0; r < rows_; ++r) {
    // Cooperative cancellation: active-domain construction over a huge
    // relation must not outlive the run's deadline/fuel budget.
    if (!sws::util::StepTick()) return;
    for (size_t c = 0; c < arity_; ++c) out->insert(At(r, c));
  }
}

size_t Relation::Hash() const {
  size_t h = 1469598103934665603ull ^ arity_;
  for (size_t r = 0; r < rows_; ++r) {
    // Row hash matches TupleHash over the materialized tuple, so memo
    // keys are stable across the columnar refactor.
    size_t th = 1469598103934665603ull;
    for (size_t c = 0; c < arity_; ++c) {
      th = (th ^ At(r, c).Hash()) * 1099511628211ull;
    }
    h = (h ^ th) * 1099511628211ull;
  }
  return h;
}

std::shared_ptr<const Relation::Index> Relation::GetIndex(
    uint64_t mask) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  // Linear scan is fine: the pool holds one entry per distinct mask and
  // the budget keeps it small. Front = most recently used.
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i]->mask == mask) {
      std::shared_ptr<const Index> hit = indexes_[i];
      if (i != 0) {
        indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(i));
        indexes_.insert(indexes_.begin(), hit);
      }
      return hit;
    }
  }
  SWS_CHECK_LE(rows_, size_t{UINT32_MAX}) << "row ids are 32-bit";
  auto index = std::make_shared<Index>();
  index->mask = mask;
  for (size_t c = 0; c < arity_ && c < 64; ++c) {
    if ((mask >> c) & 1) index->cols.push_back(c);
  }
  Tuple key;
  for (size_t r = 0; r < rows_; ++r) {
    key.clear();
    for (size_t c : index->cols) key.push_back(At(r, c));
    index->buckets[key].push_back(static_cast<uint32_t>(r));
  }
  index->approx_bytes = IndexApproxBytes(*index);
  cached_index_bytes_ += index->approx_bytes;
  sws::util::ChargeGateBytes(static_cast<int64_t>(index->approx_bytes));
  std::shared_ptr<const Index> result = index;
  indexes_.insert(indexes_.begin(), std::move(index));
  // Evict LRU entries past the budget — but never the index just built,
  // since the caller is about to probe it (an instantly-evicted index
  // would still be correct via the shared_ptr, just pointlessly cold).
  auto over_budget = [&] {
    if (index_budget_.max_indexes != 0 &&
        indexes_.size() > index_budget_.max_indexes) {
      return true;
    }
    return index_budget_.max_bytes != 0 &&
           cached_index_bytes_ > index_budget_.max_bytes;
  };
  while (indexes_.size() > 1 && over_budget()) {
    const size_t bytes = indexes_.back()->approx_bytes;
    indexes_.pop_back();
    cached_index_bytes_ -= bytes;
    sws::util::ChargeGateBytes(-static_cast<int64_t>(bytes));
    ++index_evictions_;
  }
  return result;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_ || a.rows_ != b.rows_) return false;
  for (size_t c = 0; c < a.arity_; ++c) {
    // Values are canonical packed words, so column equality is memcmp.
    if (a.rows_ != 0 &&
        std::memcmp(a.ColumnData(c), b.ColumnData(c),
                    a.rows_ * sizeof(Value)) != 0) {
      return false;
    }
  }
  return true;
}

std::string Relation::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t r = 0; r < rows_; ++r) {
    if (r != 0) out << ", ";
    out << TupleToString(Row(r));
  }
  out << "}";
  return out.str();
}

}  // namespace sws::rel
