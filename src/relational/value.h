#ifndef SWS_RELATIONAL_VALUE_H_
#define SWS_RELATIONAL_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sws::rel {

/// A data value from the (conceptually infinite) domain D of the paper.
///
/// Three kinds are supported:
///  * kInt    — integers (also used for timestamps),
///  * kString — symbolic constants ("orlando", "a", "h", ...),
///  * kNull   — *labeled nulls*, i.e. fresh values distinct from all
///              constants and from each other. These represent the frozen
///              variables of canonical databases used by the containment
///              and validation procedures (Sections 4 and 5 of the paper).
///
/// Values are totally ordered (kind-major) so relations can be kept as
/// ordered sets with deterministic iteration.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kString = 1, kNull = 2 };

  Value() : kind_(Kind::kInt), int_(0) {}

  static Value Int(int64_t v) {
    Value r;
    r.kind_ = Kind::kInt;
    r.int_ = v;
    return r;
  }
  static Value Str(std::string s) {
    Value r;
    r.kind_ = Kind::kString;
    r.int_ = 0;
    r.str_ = std::move(s);
    return r;
  }
  /// A labeled null with the given label. Nulls with distinct labels are
  /// distinct values; nulls never compare equal to ints or strings.
  static Value Null(int64_t label) {
    Value r;
    r.kind_ = Kind::kNull;
    r.int_ = label;
    return r;
  }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Integer payload; valid for kInt values only.
  int64_t AsInt() const;
  /// String payload; valid for kString values only.
  const std::string& AsString() const;
  /// Null label; valid for kNull values only.
  int64_t null_label() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.int_ == b.int_ && a.str_ == b.str_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ <=> b.kind_;
    if (a.kind_ == Kind::kString) return a.str_ <=> b.str_;
    return a.int_ <=> b.int_;
  }

  size_t Hash() const {
    size_t h = std::hash<int64_t>()(int_) * 31 + static_cast<size_t>(kind_);
    if (kind_ == Kind::kString) h = h * 31 + std::hash<std::string>()(str_);
    return h;
  }

 private:
  Kind kind_;
  int64_t int_;       // int payload or null label
  std::string str_;   // string payload
};

/// A database tuple: a fixed-arity vector of values.
using Tuple = std::vector<Value>;

std::string TupleToString(const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 1469598103934665603ull;
    for (const Value& v : t) h = (h ^ v.Hash()) * 1099511628211ull;
    return h;
  }
};

/// Approximate heap footprint of a value/tuple, used by the resource
/// governor to account cache bytes (memo entries, relation indexes).
/// Deliberately cheap and deterministic — `capacity` would vary across
/// allocators, so only logical sizes count.
inline size_t ApproxBytes(const Value& v) {
  size_t bytes = sizeof(Value);
  if (v.is_string()) bytes += v.AsString().size();
  return bytes;
}

inline size_t ApproxBytes(const Tuple& t) {
  size_t bytes = sizeof(Tuple);
  for (const Value& v : t) bytes += ApproxBytes(v);
  return bytes;
}

}  // namespace sws::rel

/// std::hash support so Value/Tuple can key std::unordered_map directly
/// (relation indexes, the execution-tree memo cache).
template <>
struct std::hash<sws::rel::Value> {
  size_t operator()(const sws::rel::Value& v) const noexcept {
    return v.Hash();
  }
};

template <>
struct std::hash<sws::rel::Tuple> {
  size_t operator()(const sws::rel::Tuple& t) const noexcept {
    return sws::rel::TupleHash()(t);
  }
};

#endif  // SWS_RELATIONAL_VALUE_H_
