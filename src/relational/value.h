#ifndef SWS_RELATIONAL_VALUE_H_
#define SWS_RELATIONAL_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/intern.h"

namespace sws::rel {

/// A data value from the (conceptually infinite) domain D of the paper.
///
/// Three kinds are supported:
///  * kInt    — integers (also used for timestamps),
///  * kString — symbolic constants ("orlando", "a", "h", ...),
///  * kNull   — *labeled nulls*, i.e. fresh values distinct from all
///              constants and from each other. These represent the frozen
///              variables of canonical databases used by the containment
///              and validation procedures (Sections 4 and 5 of the paper).
///
/// Representation (the PR 7 interning refactor): a Value is a single
/// packed 64-bit word — 3 tag bits plus a 61-bit payload. Small ints and
/// null labels (the overwhelmingly common case) are stored inline;
/// strings and out-of-range ints/labels hold an id into the process-wide
/// rel::Interner. The packing is *canonical* — every abstract value has
/// exactly one bit pattern — so equality and hashing in join probe loops
/// are single integer ops with no string traffic. The boxed view
/// (AsString/ToString/serde) reads payloads back through the interner,
/// keeping printed forms and the CRC-framed persistence encoding
/// byte-identical to the pre-interning format.
///
/// Values remain totally ordered (kind-major, then by payload value —
/// strings lexicographically via the intern table) so relations keep
/// deterministic iteration order. Raw-word order is NOT value order;
/// operator<=> decodes.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kString = 1, kNull = 2 };

  Value() : bits_(0) {}  // Int(0): tag kInlineInt, payload 0

  static Value Int(int64_t v) {
    Value r;
    if (FitsInline(v)) {
      r.bits_ = Pack(kTagInlineInt, static_cast<uint64_t>(v) & kPayloadMask);
    } else {
      r.bits_ = Pack(kTagBigInt, Interner::Global().InternInt(v));
    }
    return r;
  }
  static Value Str(std::string_view s) {
    Value r;
    r.bits_ = Pack(kTagString, Interner::Global().InternString(s));
    return r;
  }
  /// A labeled null with the given label. Nulls with distinct labels are
  /// distinct values; nulls never compare equal to ints or strings.
  static Value Null(int64_t label) {
    Value r;
    if (FitsInline(label)) {
      r.bits_ =
          Pack(kTagInlineNull, static_cast<uint64_t>(label) & kPayloadMask);
    } else {
      r.bits_ = Pack(kTagBigNull, Interner::Global().InternInt(label));
    }
    return r;
  }

  Kind kind() const {
    switch (tag()) {
      case kTagInlineInt:
      case kTagBigInt:
        return Kind::kInt;
      case kTagString:
        return Kind::kString;
      default:
        return Kind::kNull;
    }
  }
  bool is_int() const { return tag() <= kTagBigInt; }
  bool is_string() const { return tag() == kTagString; }
  bool is_null() const { return tag() >= kTagInlineNull; }

  /// Integer payload; valid for kInt values only.
  int64_t AsInt() const;
  /// String payload; valid for kString values only. The reference is to
  /// the interned copy and stays valid for the process lifetime.
  const std::string& AsString() const;
  /// Null label; valid for kNull values only.
  int64_t null_label() const;

  std::string ToString() const;

  /// The packed word. Canonical: equal values have equal bits. Exposed
  /// for the bytecode executor and tests; not stable across processes.
  uint64_t bits() const { return bits_; }

  friend bool operator==(const Value& a, const Value& b) {
    return a.bits_ == b.bits_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) {
    if (a.bits_ == b.bits_) return std::strong_ordering::equal;
    // Fast path for the common case: two inline ints decode without
    // touching the intern table.
    if (a.tag() == kTagInlineInt && b.tag() == kTagInlineInt) {
      return a.InlinePayload() <=> b.InlinePayload();
    }
    return CompareSlow(a, b);
  }

  size_t Hash() const {
    // Fibonacci multiplicative mix: ids and small ints are dense, and
    // this spreads them across the hash range in one multiply.
    return static_cast<size_t>(bits_ * 0x9E3779B97F4A7C15ull);
  }

  /// True iff InlineOrderKey() is meaningful for this value: inline ints
  /// and inline labeled nulls only. When every value in a batch passes,
  /// the batch can be sorted by unsigned key compares (no decoding) —
  /// the bulk-build fast path in Relation::FromRowMajor.
  bool HasInlineOrderKey() const {
    return tag() == kTagInlineInt || tag() == kTagInlineNull;
  }
  /// Order-isomorphic u64: flipping the payload's sign bit (bit 60)
  /// makes unsigned order match the 61-bit two's-complement payload
  /// order, and the untouched tag bits keep kind-major order (inline
  /// ints tag 0 < inline nulls tag 3; strings and big payloads are
  /// excluded by HasInlineOrderKey, so the string/big tags between and
  /// above never appear in a key batch).
  uint64_t InlineOrderKey() const { return bits_ ^ (uint64_t{1} << 60); }
  /// Inverse of InlineOrderKey — lets bulk sorts carry bare keys (no
  /// row ids) and reconstruct the values afterwards. The key must have
  /// come from InlineOrderKey in this process.
  static Value FromInlineOrderKey(uint64_t key) {
    Value v;
    v.bits_ = key ^ (uint64_t{1} << 60);
    return v;
  }

 private:
  // Tag values group by kind so kind() is two compares; inline/interned
  // variants of one kind are adjacent.
  static constexpr uint64_t kTagInlineInt = 0;
  static constexpr uint64_t kTagBigInt = 1;
  static constexpr uint64_t kTagString = 2;
  static constexpr uint64_t kTagInlineNull = 3;
  static constexpr uint64_t kTagBigNull = 4;
  static constexpr int kTagShift = 61;
  static constexpr uint64_t kPayloadMask = (uint64_t{1} << kTagShift) - 1;

  static constexpr uint64_t Pack(uint64_t tag, uint64_t payload) {
    return (tag << kTagShift) | (payload & kPayloadMask);
  }
  static constexpr bool FitsInline(int64_t v) {
    // Round-trips through a 61-bit field: shift out the tag bits and
    // sign-extend back (unsigned left shift avoids signed overflow).
    return (static_cast<int64_t>(static_cast<uint64_t>(v) << 3) >> 3) == v;
  }

  uint64_t tag() const { return bits_ >> kTagShift; }
  int64_t InlinePayload() const {  // sign-extend the low 61 bits
    return static_cast<int64_t>(bits_ << 3) >> 3;
  }
  int64_t IntPayload() const {  // inline or interned int/label
    return (tag() == kTagBigInt || tag() == kTagBigNull)
               ? Interner::Global().IntAt(bits_ & kPayloadMask)
               : InlinePayload();
  }

  static std::strong_ordering CompareSlow(const Value& a, const Value& b);

  uint64_t bits_;
};

static_assert(sizeof(Value) == 8, "Value must stay one packed word");
static_assert(std::is_trivially_copyable_v<Value>,
              "columnar relations memmove Values");

/// A database tuple: a fixed-arity vector of values.
using Tuple = std::vector<Value>;

std::string TupleToString(const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 1469598103934665603ull;
    for (const Value& v : t) h = (h ^ v.Hash()) * 1099511628211ull;
    return h;
  }
};

/// Approximate heap footprint of a value/tuple, used by the resource
/// governor to account cache bytes (memo entries, relation indexes).
/// Deliberately cheap and deterministic. Interned payloads (strings,
/// big ints) are shared process-wide and live forever, so copies of a
/// Value cost exactly one packed word — the intern table itself is
/// observable via Interner::ApproxTableBytes but is not per-run cache.
inline size_t ApproxBytes(const Value&) { return sizeof(Value); }

inline size_t ApproxBytes(const Tuple& t) {
  return sizeof(Tuple) + t.size() * sizeof(Value);
}

}  // namespace sws::rel

/// std::hash support so Value/Tuple can key std::unordered_map directly
/// (relation indexes, the execution-tree memo cache).
template <>
struct std::hash<sws::rel::Value> {
  size_t operator()(const sws::rel::Value& v) const noexcept {
    return v.Hash();
  }
};

template <>
struct std::hash<sws::rel::Tuple> {
  size_t operator()(const sws::rel::Tuple& t) const noexcept {
    return sws::rel::TupleHash()(t);
  }
};

#endif  // SWS_RELATIONAL_VALUE_H_
