#ifndef SWS_RELATIONAL_RELATION_H_
#define SWS_RELATIONAL_RELATION_H_

#include <set>
#include <string>
#include <vector>

#include "relational/value.h"

namespace sws::rel {

/// A relation instance: a set of tuples of a fixed arity.
///
/// Tuples are kept in an ordered set so iteration order is deterministic —
/// important because SWS runs must be deterministic functions of (D, I)
/// (the paper's central modeling point) and because tests compare printed
/// forms.
class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// A relation holding the given tuples; all must share one arity.
  Relation(size_t arity, std::vector<Tuple> tuples);

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple. Aborts on arity mismatch. Returns true if new.
  bool Insert(Tuple t);
  /// Removes a tuple if present; returns true if it was present.
  bool Erase(const Tuple& t) { return tuples_.erase(t) > 0; }
  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  void Clear() { tuples_.clear(); }

  const std::set<Tuple>& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// Set operations; operands must share the arity.
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Difference(const Relation& other) const;
  bool SubsetOf(const Relation& other) const;

  /// All values occurring in any tuple (contribution to the active domain).
  void CollectValues(std::set<Value>* out) const;

  std::string ToString() const;

  friend bool operator==(const Relation&, const Relation&) = default;

 private:
  size_t arity_;
  std::set<Tuple> tuples_;
};

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_RELATION_H_
