#ifndef SWS_RELATIONAL_RELATION_H_
#define SWS_RELATIONAL_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace sws::rel {

/// Caps on a relation's lazy index cache (0 = unlimited). When a cap is
/// exceeded after building a new index, the least-recently-used cached
/// indexes are evicted (never the one just built) — the cache stays a
/// cache: eviction only costs a rebuild on the next probe.
struct IndexBudget {
  size_t max_bytes = 0;
  size_t max_indexes = 0;
};

/// A relation instance: a set of tuples of a fixed arity.
///
/// Storage (the PR 7 columnar refactor): tuples live in one arena of
/// packed 8-byte Values laid out column-major — column c occupies
/// [c*capacity, c*capacity + rows) — with rows kept in lexicographic
/// tuple order. Iteration order is therefore still deterministic and
/// identical to the previous std::set representation (important because
/// SWS runs must be deterministic functions of (D, I), and because
/// ToString and the persisted encoding walk tuples in order). Point
/// mutation is a binary search plus a per-column memmove — O(arity·n),
/// same contiguous-shift cost class as a B-tree leaf, and in exchange
/// scans and joins touch dense cache lines of POD ints instead of
/// chasing set nodes.
///
/// On top of the sorted arena, a relation lazily builds hash indexes
/// keyed by bound-column masks (see GetIndex) so the join engine in
/// logic/cq.cc and logic/bytecode.cc can probe matching rows in O(1)
/// instead of scanning. Indexes are a cache: any mutation invalidates
/// them and bumps generation().
///
/// Thread-safety (audited for src/runtime): concurrent const readers are
/// safe, including concurrent GetIndex calls (the lazy build is guarded
/// by an internal mutex); mutations must not race with reads, as before.
class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// A relation holding the given tuples; all must share one arity.
  Relation(size_t arity, std::vector<Tuple> tuples);

  /// Copies/moves transfer arity and tuples but not the index cache
  /// (rebuilt on demand). Assignment bumps the destination's generation
  /// so callers caching derived state per generation notice the change.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  size_t arity() const { return arity_; }
  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Inserts a tuple. Aborts on arity mismatch. Returns true if new.
  bool Insert(Tuple t);
  /// Removes a tuple if present; returns true if it was present.
  bool Erase(const Tuple& t);
  bool Contains(const Tuple& t) const;
  void Clear();

  /// The value at (row, column); rows are in lexicographic tuple order.
  /// The hot accessor for the bytecode executor — one indexed load.
  Value At(size_t row, size_t col) const {
    return arena_[col * capacity_ + row];
  }
  /// The contiguous column vector for column c ([c][0..size())); valid
  /// until the next mutation.
  const Value* ColumnData(size_t col) const {
    return arena_.data() + col * capacity_;
  }
  /// Materializes row r as a boxed tuple.
  Tuple Row(size_t r) const {
    Tuple t;
    t.reserve(arity_);
    for (size_t c = 0; c < arity_; ++c) t.push_back(At(r, c));
    return t;
  }

  /// Input iterator over tuples in lexicographic order. Dereferencing
  /// materializes the row BY VALUE (the columnar arena has no resident
  /// Tuple to reference); `for (const Tuple& t : rel)` still works via
  /// temporary lifetime extension.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Tuple;
    using difference_type = ptrdiff_t;
    using pointer = void;
    using reference = const Tuple&;

    const_iterator() : rel_(nullptr), row_(0) {}
    const_iterator(const Relation* rel, size_t row) : rel_(rel), row_(row) {}

    /// Returns a reference to an internal row buffer, refilled lazily
    /// per row and reused across increments — iteration allocates once,
    /// not once per row. Standard input-iterator caveat: the reference
    /// is invalidated by ++ and by destroying the iterator; copy the
    /// Tuple to keep it.
    const Tuple& operator*() const {
      if (!cached_) {
        current_.assign(rel_->arity_, Value());
        for (size_t c = 0; c < rel_->arity_; ++c) {
          current_[c] = rel_->At(row_, c);
        }
        cached_ = true;
      }
      return current_;
    }
    const_iterator& operator++() {
      ++row_;
      cached_ = false;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++row_;
      cached_ = false;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.row_ == b.row_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.row_ != b.row_;
    }

   private:
    const Relation* rel_;
    size_t row_;
    mutable Tuple current_;
    mutable bool cached_ = false;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, rows_); }

  /// Set operations; operands must share the arity. All three run in
  /// O(|this| + |other|) via sorted column-arena merges.
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Difference(const Relation& other) const;
  bool SubsetOf(const Relation& other) const;

  /// Moves all of `other`'s tuples into this relation. `other` is left
  /// holding the duplicates (tuples already present here), matching the
  /// pre-columnar set-splice semantics.
  void MergeFrom(Relation&& other);

  /// Bulk construction from a sorted, deduplicated tuple vector in O(n)
  /// (straight transposition into the arena) — the fast path behind the
  /// set algebra and serde decode. Unsorted or duplicated input is
  /// tolerated (sorted + deduplicated first) but forfeits the fast path.
  static Relation FromSorted(size_t arity, std::vector<Tuple> sorted);

  /// Bulk construction from rows packed row-major in one flat vector
  /// (`rows.size()` must be a multiple of `arity`, which must be > 0).
  /// Input need not be sorted or unique: rows are permutation-sorted and
  /// deduplicated, then transposed into the arena — no per-tuple
  /// allocation. The emit path of the bytecode join executor.
  static Relation FromRowMajor(size_t arity, const std::vector<Value>& rows);

  /// All values occurring in any tuple (contribution to the active domain).
  void CollectValues(std::set<Value>* out) const;

  /// Deterministic FNV-style hash of (arity, tuple set); rows are
  /// ordered, so equal relations hash equal. Keys the execution-tree
  /// memo cache (sws/execution.cc).
  size_t Hash() const;

  /// Bumped on every mutation (and on assignment); lets callers cache
  /// derived state — e.g. Database's active domain — per version.
  uint64_t generation() const { return generation_; }

  /// A hash index over the columns set in `mask` (bit i ⇒ column i;
  /// columns ≥ 64 cannot be indexed). The probe key is the tuple of
  /// values at those columns, ascending. Built lazily on first request
  /// and cached until the next mutation — or until evicted under an
  /// IndexBudget. Bucket vectors list row ids in row (set) order
  /// (deterministic). Callers hold the returned shared_ptr for as long
  /// as they probe it: eviction only drops the cache's reference, so an
  /// in-flight join plan keeps its index alive even if the pool evicts
  /// it mid-run. The row ids inside stay valid only until the relation
  /// is mutated, assigned over, or destroyed (unchanged contract).
  struct Index {
    uint64_t mask = 0;
    std::vector<size_t> cols;  // the set bits of mask, ascending
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> buckets;
    size_t approx_bytes = 0;  // computed once at build time
  };
  std::shared_ptr<const Index> GetIndex(uint64_t mask) const;

  /// Installs index-cache caps. Applies on the next GetIndex (an
  /// already-oversized cache shrinks then). Mutation-contract: must not
  /// race with concurrent readers.
  void set_index_budget(IndexBudget budget) { index_budget_ = budget; }
  const IndexBudget& index_budget() const { return index_budget_; }

  /// Approximate bytes currently held by cached indexes, and how many
  /// cache entries were evicted over this relation's lifetime (LRU under
  /// the budget; invalidation by mutation does not count). Reported to
  /// the installed util::StepGate as the bytes change.
  size_t cached_index_bytes() const;
  uint64_t index_evictions() const;

  /// Drops every cached index (releasing their tracked bytes) without
  /// bumping the generation. Used by the runtime's memory-pressure
  /// degradation; safe only under the mutation contract (no concurrent
  /// readers).
  void DropIndexCache();

  std::string ToString() const;

  friend bool operator==(const Relation& a, const Relation& b);

  ~Relation();

 private:
  /// Records a mutation: bumps the generation and drops cached indexes.
  void Touch();
  /// Drops all cached indexes and reports the byte release to the
  /// thread's StepGate. Caller must hold index_mu_ or own the mutation.
  void ReleaseIndexesLocked();

  /// Grows the arena to hold at least min_rows rows per column,
  /// re-laying out existing columns at the new stride.
  void Reserve(size_t min_rows);
  /// Three-way compare of resident row r against a boxed tuple.
  std::strong_ordering CompareRow(size_t r, const Tuple& t) const;
  /// First row not lexicographically less than t (binary search).
  size_t LowerBound(const Tuple& t) const;
  /// Appends a row of `arity_` values; caller guarantees capacity and
  /// that the row sorts strictly after every resident row.
  void AppendRow(const Value* vals);

  size_t arity_;
  size_t rows_ = 0;
  size_t capacity_ = 0;
  /// Column-major arena: column c at [c*capacity_, c*capacity_+rows_).
  std::vector<Value> arena_;
  uint64_t generation_ = 0;
  IndexBudget index_budget_;
  /// Lazily-built per-mask indexes in LRU order (front = most recently
  /// used); guarded so concurrent const readers may trigger the build
  /// safely. Small (one entry per distinct mask under the budget).
  mutable std::mutex index_mu_;
  mutable std::vector<std::shared_ptr<const Index>> indexes_;
  mutable size_t cached_index_bytes_ = 0;
  mutable uint64_t index_evictions_ = 0;
};

/// Approximate heap footprint of a relation's tuple storage (cache-byte
/// accounting for the execution-tree memo). Columnar arena: one packed
/// word per value, plus a small per-row constant standing in for the
/// arena slack and bookkeeping.
inline size_t ApproxBytes(const Relation& r) {
  return sizeof(Relation) + r.size() * (r.arity() * sizeof(Value) + 16);
}

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_RELATION_H_
