#ifndef SWS_RELATIONAL_RELATION_H_
#define SWS_RELATIONAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace sws::rel {

/// Caps on a relation's lazy index cache (0 = unlimited). When a cap is
/// exceeded after building a new index, the least-recently-used cached
/// indexes are evicted (never the one just built) — the cache stays a
/// cache: eviction only costs a rebuild on the next probe.
struct IndexBudget {
  size_t max_bytes = 0;
  size_t max_indexes = 0;
};

/// A relation instance: a set of tuples of a fixed arity.
///
/// Tuples are kept in an ordered set so iteration order is deterministic —
/// important because SWS runs must be deterministic functions of (D, I)
/// (the paper's central modeling point) and because tests compare printed
/// forms.
///
/// On top of the ordered set, a relation lazily builds hash indexes keyed
/// by bound-column masks (see GetIndex) so the join engine in logic/cq.cc
/// can probe matching tuples in O(1) instead of scanning. Indexes are a
/// cache: any mutation invalidates them and bumps generation().
///
/// Thread-safety (audited for src/runtime): concurrent const readers are
/// safe, including concurrent GetIndex calls (the lazy build is guarded
/// by an internal mutex); mutations must not race with reads, as before.
class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// A relation holding the given tuples; all must share one arity.
  Relation(size_t arity, std::vector<Tuple> tuples);

  /// Copies/moves transfer arity and tuples but not the index cache
  /// (rebuilt on demand). Assignment bumps the destination's generation
  /// so callers caching derived state per generation notice the change.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple. Aborts on arity mismatch. Returns true if new.
  bool Insert(Tuple t);
  /// Removes a tuple if present; returns true if it was present.
  bool Erase(const Tuple& t);
  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  void Clear();

  const std::set<Tuple>& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// Set operations; operands must share the arity. All three run in
  /// O(|this| + |other|) via sorted merges + bulk construction.
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Difference(const Relation& other) const;
  bool SubsetOf(const Relation& other) const;

  /// Moves all of `other`'s tuples into this relation by set-node
  /// splicing (no tuple copies, no re-balancing per tuple). `other` is
  /// left holding the duplicates (tuples already present here).
  void MergeFrom(Relation&& other);

  /// Bulk construction from an already sorted, deduplicated tuple vector
  /// in O(n) (hinted insertion) — the fast path behind the set algebra.
  static Relation FromSorted(size_t arity, std::vector<Tuple> sorted);

  /// All values occurring in any tuple (contribution to the active domain).
  void CollectValues(std::set<Value>* out) const;

  /// Deterministic FNV-style hash of (arity, tuple set); tuples_ is
  /// ordered, so equal relations hash equal. Keys the execution-tree
  /// memo cache (sws/execution.cc).
  size_t Hash() const;

  /// Bumped on every mutation (and on assignment); lets callers cache
  /// derived state — e.g. Database's active domain — per version.
  uint64_t generation() const { return generation_; }

  /// A hash index over the columns set in `mask` (bit i ⇒ column i;
  /// columns ≥ 64 cannot be indexed). The probe key is the tuple of
  /// values at those columns, ascending. Built lazily on first request
  /// and cached until the next mutation — or until evicted under an
  /// IndexBudget. Bucket vectors list tuples in set order
  /// (deterministic). Callers hold the returned shared_ptr for as long
  /// as they probe it: eviction only drops the cache's reference, so an
  /// in-flight join plan keeps its index alive even if the pool evicts
  /// it mid-run. The tuple pointers inside stay valid only until the
  /// relation is mutated, assigned over, or destroyed (unchanged).
  struct Index {
    uint64_t mask = 0;
    std::vector<size_t> cols;  // the set bits of mask, ascending
    std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> buckets;
    size_t approx_bytes = 0;  // computed once at build time
  };
  std::shared_ptr<const Index> GetIndex(uint64_t mask) const;

  /// Installs index-cache caps. Applies on the next GetIndex (an
  /// already-oversized cache shrinks then). Mutation-contract: must not
  /// race with concurrent readers.
  void set_index_budget(IndexBudget budget) { index_budget_ = budget; }
  const IndexBudget& index_budget() const { return index_budget_; }

  /// Approximate bytes currently held by cached indexes, and how many
  /// cache entries were evicted over this relation's lifetime (LRU under
  /// the budget; invalidation by mutation does not count). Reported to
  /// the installed util::StepGate as the bytes change.
  size_t cached_index_bytes() const;
  uint64_t index_evictions() const;

  /// Drops every cached index (releasing their tracked bytes) without
  /// bumping the generation. Used by the runtime's memory-pressure
  /// degradation; safe only under the mutation contract (no concurrent
  /// readers).
  void DropIndexCache();

  std::string ToString() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }

  ~Relation();

 private:
  /// Records a mutation: bumps the generation and drops cached indexes.
  void Touch();
  /// Drops all cached indexes and reports the byte release to the
  /// thread's StepGate. Caller must hold index_mu_ or own the mutation.
  void ReleaseIndexesLocked();

  size_t arity_;
  std::set<Tuple> tuples_;
  uint64_t generation_ = 0;
  IndexBudget index_budget_;
  /// Lazily-built per-mask indexes in LRU order (front = most recently
  /// used); guarded so concurrent const readers may trigger the build
  /// safely. Small (one entry per distinct mask under the budget).
  mutable std::mutex index_mu_;
  mutable std::vector<std::shared_ptr<const Index>> indexes_;
  mutable size_t cached_index_bytes_ = 0;
  mutable uint64_t index_evictions_ = 0;
};

/// Approximate heap footprint of a relation's tuple set (cache-byte
/// accounting for the execution-tree memo). The per-tuple constant
/// stands in for std::set node overhead.
inline size_t ApproxBytes(const Relation& r) {
  size_t bytes = sizeof(Relation);
  for (const Tuple& t : r.tuples()) bytes += ApproxBytes(t) + 64;
  return bytes;
}

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_RELATION_H_
