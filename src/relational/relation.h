#ifndef SWS_RELATIONAL_RELATION_H_
#define SWS_RELATIONAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace sws::rel {

/// A relation instance: a set of tuples of a fixed arity.
///
/// Tuples are kept in an ordered set so iteration order is deterministic —
/// important because SWS runs must be deterministic functions of (D, I)
/// (the paper's central modeling point) and because tests compare printed
/// forms.
///
/// On top of the ordered set, a relation lazily builds hash indexes keyed
/// by bound-column masks (see GetIndex) so the join engine in logic/cq.cc
/// can probe matching tuples in O(1) instead of scanning. Indexes are a
/// cache: any mutation invalidates them and bumps generation().
///
/// Thread-safety (audited for src/runtime): concurrent const readers are
/// safe, including concurrent GetIndex calls (the lazy build is guarded
/// by an internal mutex); mutations must not race with reads, as before.
class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// A relation holding the given tuples; all must share one arity.
  Relation(size_t arity, std::vector<Tuple> tuples);

  /// Copies/moves transfer arity and tuples but not the index cache
  /// (rebuilt on demand). Assignment bumps the destination's generation
  /// so callers caching derived state per generation notice the change.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple. Aborts on arity mismatch. Returns true if new.
  bool Insert(Tuple t);
  /// Removes a tuple if present; returns true if it was present.
  bool Erase(const Tuple& t);
  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  void Clear();

  const std::set<Tuple>& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// Set operations; operands must share the arity. All three run in
  /// O(|this| + |other|) via sorted merges + bulk construction.
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Difference(const Relation& other) const;
  bool SubsetOf(const Relation& other) const;

  /// Moves all of `other`'s tuples into this relation by set-node
  /// splicing (no tuple copies, no re-balancing per tuple). `other` is
  /// left holding the duplicates (tuples already present here).
  void MergeFrom(Relation&& other);

  /// Bulk construction from an already sorted, deduplicated tuple vector
  /// in O(n) (hinted insertion) — the fast path behind the set algebra.
  static Relation FromSorted(size_t arity, std::vector<Tuple> sorted);

  /// All values occurring in any tuple (contribution to the active domain).
  void CollectValues(std::set<Value>* out) const;

  /// Deterministic FNV-style hash of (arity, tuple set); tuples_ is
  /// ordered, so equal relations hash equal. Keys the execution-tree
  /// memo cache (sws/execution.cc).
  size_t Hash() const;

  /// Bumped on every mutation (and on assignment); lets callers cache
  /// derived state — e.g. Database's active domain — per version.
  uint64_t generation() const { return generation_; }

  /// A hash index over the columns set in `mask` (bit i ⇒ column i;
  /// columns ≥ 64 cannot be indexed). The probe key is the tuple of
  /// values at those columns, ascending. Built lazily on first request
  /// and cached until the next mutation. Bucket vectors list tuples in
  /// set order (deterministic). The returned pointer stays valid until
  /// the relation is mutated, assigned over, or destroyed.
  struct Index {
    uint64_t mask = 0;
    std::vector<size_t> cols;  // the set bits of mask, ascending
    std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> buckets;
  };
  const Index* GetIndex(uint64_t mask) const;

  std::string ToString() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }

 private:
  /// Records a mutation: bumps the generation and drops cached indexes.
  void Touch();

  size_t arity_;
  std::set<Tuple> tuples_;
  uint64_t generation_ = 0;
  /// Lazily-built per-mask indexes; guarded so concurrent const readers
  /// may trigger the build safely. Small (one entry per distinct mask).
  mutable std::mutex index_mu_;
  mutable std::vector<std::shared_ptr<const Index>> indexes_;
};

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_RELATION_H_
