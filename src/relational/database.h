#ifndef SWS_RELATIONAL_DATABASE_H_
#define SWS_RELATIONAL_DATABASE_H_

#include <map>
#include <set>
#include <string>

#include "relational/relation.h"
#include "relational/schema.h"

namespace sws::rel {

/// A database instance: a mapping from relation names to relation
/// instances. Per the paper, the local database D stays fixed during a
/// run of an SWS; updates are committed only at the end of a session
/// (see relational/actions.h and sws/session.h).
///
/// Thread-safety (audited for src/runtime): all const members are pure
/// reads with no caches or other hidden mutable state, so a Database may
/// be read from any number of threads concurrently as long as no thread
/// calls Set/GetMutable — the concurrent runtime shares one immutable
/// seed instance across workers and gives each session a private copy.
/// The run engine (sws/execution.cc) copies the database into its
/// per-run environment, so core::Run itself never writes the caller's
/// instance. Relation and Value are likewise cache-free const readers.
class Database {
 public:
  Database() = default;

  /// An empty instance of every relation in the schema.
  explicit Database(const Schema& schema);

  /// Sets (replaces) the instance of the named relation.
  void Set(const std::string& name, Relation relation);

  /// Instance of the named relation; aborts if absent.
  const Relation& Get(const std::string& name) const;
  Relation* GetMutable(const std::string& name);

  /// Instance of the named relation, or an empty relation of the given
  /// arity if absent.
  Relation GetOrEmpty(const std::string& name, size_t arity) const;

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }
  bool empty() const;

  /// The active domain: every value occurring in some relation instance.
  std::set<Value> ActiveDomain() const;

  std::string ToString() const;

  friend bool operator==(const Database&, const Database&) = default;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_DATABASE_H_
