#ifndef SWS_RELATIONAL_DATABASE_H_
#define SWS_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "relational/relation.h"
#include "relational/schema.h"

namespace sws::rel {

/// A database instance: a mapping from relation names to relation
/// instances. Per the paper, the local database D stays fixed during a
/// run of an SWS; updates are committed only at the end of a session
/// (see relational/actions.h and sws/session.h).
///
/// Thread-safety (audited for src/runtime): all const members are pure
/// reads or internally-synchronized caches (ActiveDomainShared guards
/// its lazy rebuild with a mutex), so a Database may be read from any
/// number of threads concurrently as long as no thread calls
/// Set/GetMutable — the concurrent runtime shares one immutable seed
/// instance across workers and gives each session a private copy. The
/// run engine (sws/execution.cc) copies the database into its per-run
/// environment, so core::Run itself never writes the caller's instance.
/// Relation and Value are likewise safe const readers.
class Database {
 public:
  Database() = default;

  /// An empty instance of every relation in the schema.
  explicit Database(const Schema& schema);

  /// Copies/moves transfer the relations but not the active-domain
  /// cache (rebuilt on demand).
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// Sets (replaces) the instance of the named relation. The incoming
  /// relation is stamped with this database's index budget (see
  /// SetIndexBudget) so governed caps survive per-run Set calls.
  void Set(const std::string& name, Relation relation);

  /// Installs an index-cache budget on every current relation and
  /// remembers it for relations installed by future Set calls. Mutation
  /// contract: must not race with concurrent readers.
  void SetIndexBudget(IndexBudget budget);
  const IndexBudget& index_budget() const { return index_budget_; }

  /// Σ cached_index_bytes over all relations (live governed cache gauge)
  /// and Σ lifetime LRU index evictions.
  size_t TrackedIndexBytes() const;
  uint64_t IndexEvictions() const;

  /// Drops every relation's cached indexes (releasing tracked bytes) —
  /// memory-pressure degradation hook. Mutation contract applies.
  void DropIndexCaches();

  /// Instance of the named relation; aborts if absent.
  const Relation& Get(const std::string& name) const;
  Relation* GetMutable(const std::string& name);

  /// Instance of the named relation, or an empty relation of the given
  /// arity if absent.
  Relation GetOrEmpty(const std::string& name, size_t arity) const;

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }
  bool empty() const;

  /// The active domain: every value occurring in some relation instance.
  std::set<Value> ActiveDomain() const;

  /// Shared snapshot of the active domain, cached per database
  /// generation: a Set call or any relation mutation (tracked through
  /// Relation::generation, so mutations via GetMutable pointers are
  /// seen) invalidates the cache. The returned set stays valid as a
  /// snapshot even if the database mutates afterwards.
  std::shared_ptr<const std::set<Value>> ActiveDomainShared() const;

  std::string ToString() const;

  /// Structural hash over the (name, Relation::Hash) pairs in canonical
  /// (name-sorted) order — cheap convergence checks for crash-recovery
  /// tests. Equal databases hash equal; collisions are possible but not
  /// adversarial here.
  uint64_t Hash() const;

  friend bool operator==(const Database& a, const Database& b) {
    return a.relations_ == b.relations_;
  }

 private:
  /// Version key for derived-state caches: (structural changes, sum of
  /// relation generations). Both components only grow between structural
  /// changes, so key equality means "unchanged".
  std::pair<uint64_t, uint64_t> Generation() const;

  std::map<std::string, Relation> relations_;
  uint64_t structural_gen_ = 0;
  IndexBudget index_budget_;
  mutable std::mutex adom_mu_;
  mutable std::shared_ptr<const std::set<Value>> adom_cache_;
  mutable std::pair<uint64_t, uint64_t> adom_key_{~uint64_t{0}, ~uint64_t{0}};
};

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_DATABASE_H_
