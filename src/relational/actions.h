#ifndef SWS_RELATIONAL_ACTIONS_H_
#define SWS_RELATIONAL_ACTIONS_H_

#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/relation.h"

namespace sws::rel {

/// Interpretation of an output relation O (instance of R_out) as *actions*:
/// tuples to be inserted into or deleted from the local database, and
/// external messages to be sent (Section 2, "An overview").
///
/// The convention: an output tuple is (op, target, payload...) where
///   * op is one of the string constants "ins", "del", "msg",
///   * target is a string naming the database relation (for ins/del) or
///     the addressee (for msg),
///   * payload is the action tuple, truncated/checked against the target
///     relation's arity on commit.
///
/// The paper leaves the concrete encoding of actions open; this layer is
/// the commit machinery that turns the formal output into the "external
/// messages are sent and the updates are executed" step at session end.
struct Action {
  enum class Op { kInsert, kDelete, kMessage };
  Op op;
  std::string target;
  Tuple payload;

  std::string ToString() const;
  friend bool operator==(const Action&, const Action&) = default;
};

/// Parses an output relation into actions. Tuples whose first two columns
/// are not (op-string, target-string) are reported in `malformed`.
std::vector<Action> ParseActions(const Relation& output,
                                 std::vector<Tuple>* malformed = nullptr);

/// Result of committing an output relation against a database.
struct CommitResult {
  size_t inserted = 0;        // tuples newly inserted
  size_t deleted = 0;         // tuples actually removed
  std::vector<Action> messages;  // external messages, in output order
  std::vector<Tuple> malformed;  // tuples that were not valid actions
};

/// Commits the actions denoted by `output` to `db`: deletions are applied
/// after insertions within one commit (a deleted tuple wins over a
/// simultaneous insert, keeping commits order-independent). Messages are
/// collected, not sent anywhere.
CommitResult CommitOutput(const Relation& output, Database* db);

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_ACTIONS_H_
