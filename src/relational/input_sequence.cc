#include "relational/input_sequence.h"

#include <sstream>

#include "util/common.h"

namespace sws::rel {

InputSequence::InputSequence(size_t message_arity,
                             std::vector<Relation> messages)
    : message_arity_(message_arity) {
  for (auto& m : messages) Append(std::move(m));
}

const Relation& InputSequence::Message(size_t j) const {
  SWS_CHECK_GE(j, 1u) << "messages are 1-indexed";
  if (j > messages_.size()) return empty_message_;
  return messages_[j - 1];
}

void InputSequence::Append(Relation message) {
  SWS_CHECK_EQ(message.arity(), message_arity_);
  messages_.push_back(std::move(message));
}

InputSequence InputSequence::Suffix(size_t j) const {
  SWS_CHECK_GE(j, 1u);
  InputSequence out(message_arity_);
  for (size_t i = j; i <= messages_.size(); ++i) {
    out.Append(messages_[i - 1]);
  }
  return out;
}

Relation InputSequence::Encode() const {
  Relation out(message_arity_ + 1);
  for (size_t j = 1; j <= messages_.size(); ++j) {
    for (const Tuple& t : messages_[j - 1]) {
      Tuple e;
      e.reserve(t.size() + 1);
      e.push_back(Value::Int(static_cast<int64_t>(j)));
      e.insert(e.end(), t.begin(), t.end());
      out.Insert(std::move(e));
    }
  }
  return out;
}

InputSequence InputSequence::Decode(const Relation& encoded) {
  SWS_CHECK_GE(encoded.arity(), 1u);
  InputSequence out(encoded.arity() - 1);
  int64_t max_ts = 0;
  for (const Tuple& t : encoded) {
    SWS_CHECK(t[0].is_int() && t[0].AsInt() >= 1)
        << "timestamp must be a positive int, got " << t[0].ToString();
    max_ts = std::max(max_ts, t[0].AsInt());
  }
  for (int64_t j = 0; j < max_ts; ++j) out.Append(Relation(out.message_arity_));
  for (const Tuple& t : encoded) {
    Tuple payload(t.begin() + 1, t.end());
    out.messages_[t[0].AsInt() - 1].Insert(std::move(payload));
  }
  return out;
}

void InputSequence::CollectValues(std::set<Value>* out) const {
  for (const Relation& m : messages_) m.CollectValues(out);
}

std::string InputSequence::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t j = 1; j <= messages_.size(); ++j) {
    if (j > 1) out << "; ";
    out << "I" << j << "=" << messages_[j - 1].ToString();
  }
  out << "]";
  return out.str();
}

}  // namespace sws::rel
