#ifndef SWS_RELATIONAL_INPUT_SEQUENCE_H_
#define SWS_RELATIONAL_INPUT_SEQUENCE_H_

#include <string>
#include <vector>

#include "relational/relation.h"

namespace sws::rel {

/// A sequence I = I_1, ..., I_n of input messages, each an instance of the
/// input schema R_in (without the timestamp attribute).
///
/// Section 2 of the paper encodes the sequence as a single relation with a
/// timestamp attribute `ts`: I_j = { t | t in I and t[ts] = j }. This class
/// stores the decoded form and converts to/from the encoded form.
/// Messages are 1-indexed, matching the paper.
class InputSequence {
 public:
  /// An empty sequence of messages of the given payload arity.
  explicit InputSequence(size_t message_arity = 0)
      : message_arity_(message_arity) {}

  InputSequence(size_t message_arity, std::vector<Relation> messages);

  size_t message_arity() const { return message_arity_; }
  /// Number of messages n.
  size_t size() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }

  /// The j-th message I_j, 1-indexed. For j > n returns an empty message
  /// (the run semantics treat exhausted input as Act = ∅ anyway).
  const Relation& Message(size_t j) const;

  /// Appends a message at the end (becoming I_{n+1}).
  void Append(Relation message);

  /// The suffix I^j = I_j, ..., I_n (1-indexed), as its own sequence.
  /// Used by mediator runs where eval(τ_i) consumes a suffix.
  InputSequence Suffix(size_t j) const;

  /// Encodes into a single relation of arity message_arity()+1 with the
  /// timestamp as first attribute.
  Relation Encode() const;

  /// Decodes from the timestamped encoding. Timestamps must be positive
  /// ints; gaps yield empty messages.
  static InputSequence Decode(const Relation& encoded);

  /// All values occurring in any message.
  void CollectValues(std::set<Value>* out) const;

  std::string ToString() const;

  friend bool operator==(const InputSequence&, const InputSequence&) = default;

 private:
  size_t message_arity_;
  /// Returned by Message() for out-of-range indices. Owned per object —
  /// the previous shared function-local `std::map<arity, Relation>` cache
  /// was unbounded and raced when concurrent shards first touched a new
  /// arity; an empty Relation is one word of arity plus empty vectors, so
  /// per-object storage is cheaper than any cache. Declared after
  /// message_arity_ so its initializer may read it.
  Relation empty_message_{message_arity_};
  std::vector<Relation> messages_;
};

}  // namespace sws::rel

#endif  // SWS_RELATIONAL_INPUT_SEQUENCE_H_
