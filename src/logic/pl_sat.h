#ifndef SWS_LOGIC_PL_SAT_H_
#define SWS_LOGIC_PL_SAT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "logic/pl_formula.h"

namespace sws::logic {

/// A CNF formula in DIMACS convention: variables are 1..num_vars, a literal
/// is +v or -v, a clause is a disjunction of literals.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;

  /// Adds a clause; aborts on zero literals or out-of-range variables.
  void AddClause(std::vector<int> literals);
  /// Allocates a fresh variable and returns its index.
  int NewVar() { return ++num_vars; }
};

/// Statistics from a SAT solver invocation, used by the Table 1 benchmarks
/// to report search effort (the NP procedures of Theorem 4.1(3)).
struct SatStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
};

/// A DPLL SAT solver with unit propagation and pure-literal elimination.
/// Deterministic: branching picks the lowest unassigned variable, trying
/// `true` first.
class DpllSolver {
 public:
  /// Solves the CNF; returns a model (index v holds the value of variable
  /// v; index 0 unused) or nullopt if unsatisfiable.
  std::optional<std::vector<bool>> Solve(const Cnf& cnf);

  const SatStats& stats() const { return stats_; }

 private:
  SatStats stats_;
};

/// Tseitin transformation: equisatisfiable CNF for `formula`. Formula
/// variable `v` maps to CNF variable `formula_var_to_cnf_var[v]`; auxiliary
/// variables follow. The CNF asserts the formula's root is true.
Cnf TseitinTransform(const PlFormula& formula,
                     std::map<int, int>* formula_var_to_cnf_var);

/// Satisfiability of a PL formula via Tseitin + DPLL. If satisfiable and
/// `model` is non-null, stores a satisfying assignment of the formula's
/// own variables (variables not mentioned are absent / false).
bool PlSatisfiable(const PlFormula& formula, std::map<int, bool>* model,
                   SatStats* stats = nullptr);
bool PlSatisfiable(const PlFormula& formula);

/// Validity and logical equivalence, via satisfiability of the negation.
bool PlValid(const PlFormula& formula);
bool PlEquivalent(const PlFormula& a, const PlFormula& b);

}  // namespace sws::logic

#endif  // SWS_LOGIC_PL_SAT_H_
