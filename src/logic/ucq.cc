#include "logic/ucq.h"

#include <sstream>

#include "util/common.h"

namespace sws::logic {

UnionQuery::UnionQuery(size_t head_arity,
                       std::vector<ConjunctiveQuery> disjuncts)
    : head_arity_(head_arity) {
  for (auto& d : disjuncts) Add(std::move(d));
}

void UnionQuery::Add(ConjunctiveQuery cq) {
  SWS_CHECK_EQ(cq.head_arity(), head_arity_)
      << "UCQ disjunct head arity mismatch";
  disjuncts_.push_back(std::move(cq));
}

UnionQuery UnionQuery::Single(ConjunctiveQuery cq) {
  UnionQuery u(cq.head_arity());
  u.Add(std::move(cq));
  return u;
}

std::optional<std::string> UnionQuery::Validate() const {
  for (const auto& d : disjuncts_) {
    if (auto err = d.Validate(); err.has_value()) return err;
  }
  return std::nullopt;
}

rel::Relation UnionQuery::Evaluate(const rel::Database& db) const {
  rel::Relation out(head_arity_);
  for (const auto& d : disjuncts_) {
    out = out.Union(d.Evaluate(db));
  }
  return out;
}

bool UnionQuery::EvaluatesNonempty(const rel::Database& db) const {
  for (const auto& d : disjuncts_) {
    if (d.EvaluatesNonempty(db)) return true;
  }
  return false;
}

bool UnionQuery::IsSatisfiable() const {
  for (const auto& d : disjuncts_) {
    if (d.IsSatisfiable()) return true;
  }
  return false;
}

UnionQuery UnionQuery::PruneUnsatisfiable() const {
  UnionQuery out(head_arity_);
  for (const auto& d : disjuncts_) {
    if (auto norm = d.Normalize(); norm.has_value()) out.Add(*norm);
  }
  return out;
}

UnionQuery UnionQuery::ShiftVars(int offset) const {
  UnionQuery out(head_arity_);
  for (const auto& d : disjuncts_) out.Add(d.ShiftVars(offset));
  return out;
}

int UnionQuery::MaxVar() const {
  int max_var = -1;
  for (const auto& d : disjuncts_) max_var = std::max(max_var, d.MaxVar());
  return max_var;
}

size_t UnionQuery::TotalSize() const {
  size_t n = 0;
  for (const auto& d : disjuncts_) n += d.Size();
  return n;
}

std::string UnionQuery::ToString(
    const std::function<std::string(int)>& name) const {
  if (disjuncts_.empty()) return "ans() :- false";
  std::ostringstream out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out << "\n  UNION ";
    out << disjuncts_[i].ToString(name);
  }
  return out.str();
}

}  // namespace sws::logic
