#ifndef SWS_LOGIC_BYTECODE_H_
#define SWS_LOGIC_BYTECODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "logic/cq.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "util/cancellation.h"

namespace sws::logic::bytecode {

/// Register-bytecode join execution (the PR 7 tentpole, stage 3).
///
/// A greedily-ordered CQ body is lowered once into a JoinProgram: a flat
/// register machine whose state is a vector of packed 8-byte rel::Value
/// words ("registers") — variables in first-occurrence order, then the
/// program's constants, preloaded. One Level per atom either scans its
/// relation's rows or probes a bound-column-mask hash index
/// (rel::Relation::GetIndex), and each candidate row is vetted by a
/// straight-line span of three-operand ops over registers and columnar
/// loads. No virtual dispatch, no per-probe allocation: the executor is
/// an iterative cursor stack driven by one switch loop, and probe keys
/// reuse per-level buffers whose constant components are prefilled at
/// compile time.
///
/// ISA (see DESIGN.md §12 for the op table):
///   kLoad      regs[a] = row[b]        bind a first-occurrence variable
///   kCheckCol  row[b] == regs[a]?      repeated variable / constant /
///                                      non-indexable column check
///   kCmpEq     regs[a] == regs[b]?     attached '=' comparison
///   kCmpNe     regs[a] != regs[b]?     attached '≠' comparison
/// Check ops reject the candidate row on failure. Because Values are
/// canonical packed words, every op is a single integer load/compare.
struct Op {
  enum Code : uint8_t { kLoad = 0, kCheckCol = 1, kCmpEq = 2, kCmpNe = 3 };
  Code code;
  uint16_t a;  // register
  uint32_t b;  // column (kLoad/kCheckCol) or second register (kCmp*)
};

/// One variable component of a probe key: key[pos] = regs[reg].
/// Constant components are prefilled in the level's key template.
struct KeySlot {
  uint32_t pos;
  uint16_t reg;
};

struct Level {
  const rel::Relation* relation = nullptr;
  /// Shared ownership: under an IndexBudget the relation's pool may
  /// evict this index mid-run; the program's reference keeps it alive.
  std::shared_ptr<const rel::Relation::Index> index;  // null: full scan
  uint32_t ops_begin = 0, ops_end = 0;    // span into JoinProgram::ops
  uint32_t keys_begin = 0, keys_end = 0;  // span into JoinProgram::keys
};

struct JoinProgram {
  std::vector<Level> levels;
  std::vector<Op> ops;        // all levels' ops, concatenated
  std::vector<KeySlot> keys;  // all levels' variable key slots
  /// Initial register file: [0, num_var_regs) zeroed variable registers
  /// (written by kLoad before any read), then the constants.
  std::vector<rel::Value> reg_init;
  uint16_t num_var_regs = 0;
  /// Per-level probe-key buffers with constant components prefilled;
  /// copied once per execution, reused across every probe.
  std::vector<rel::Tuple> key_templates;
  /// Variable id -> register, for resolving head terms / bindings.
  std::map<int, int> var_reg;
  bool never_matches = false;      // an atom's relation absent/mismatched
  bool comparison_failed = false;  // a const-vs-const comparison is false
};

/// Lowers a body (atoms already join-ordered, e.g. by OrderAtomsGreedily)
/// into a JoinProgram against the given database. Each comparison is
/// attached at the first level where both sides are bound, so it costs
/// exactly one compare per candidate row.
JoinProgram Compile(const std::vector<Atom>& ordered,
                    const std::vector<Comparison>& comparisons,
                    const rel::Database& db);

/// Runs the program; `sink(regs)` fires once per complete match and may
/// return false to stop enumeration. Returns false iff stopped early —
/// by the sink or by a tripped util::StepGate (cooperative cancellation
/// is checked once per candidate row; StepTick batches the gate admit).
/// An empty program (no levels) has exactly one empty match.
template <typename Sink>
bool Run(const JoinProgram& p, Sink&& sink) {
  if (p.never_matches || p.comparison_failed) return true;
  const size_t depth = p.levels.size();
  std::vector<rel::Value> regs = p.reg_init;
  if (depth == 0) return sink(regs);
  std::vector<rel::Tuple> key_bufs = p.key_templates;

  struct Cursor {
    const uint32_t* bucket = nullptr;  // null: positional scan
    size_t pos = 0;
    size_t end = 0;
  };
  std::vector<Cursor> cursors(depth);

  size_t li = 0;
  bool entering = true;
  while (true) {
    const Level& level = p.levels[li];
    Cursor& cur = cursors[li];
    if (entering) {
      entering = false;
      if (level.index != nullptr) {
        rel::Tuple& key = key_bufs[li];
        for (uint32_t k = level.keys_begin; k != level.keys_end; ++k) {
          key[p.keys[k].pos] = regs[p.keys[k].reg];
        }
        auto it = level.index->buckets.find(key);
        if (it == level.index->buckets.end()) {
          cur = Cursor{};
        } else {
          cur.bucket = it->second.data();
          cur.pos = 0;
          cur.end = it->second.size();
        }
      } else {
        cur.bucket = nullptr;
        cur.pos = 0;
        cur.end = level.relation->size();
      }
    }

    // Advance this level's cursor to the next row passing all ops.
    const rel::Relation& rel = *level.relation;
    bool found = false;
    while (cur.pos < cur.end) {
      const size_t row = cur.bucket != nullptr ? cur.bucket[cur.pos] : cur.pos;
      ++cur.pos;
      if (!sws::util::StepTick()) return false;
      bool ok = true;
      for (uint32_t oi = level.ops_begin; oi != level.ops_end; ++oi) {
        const Op op = p.ops[oi];
        switch (op.code) {
          case Op::kLoad:
            regs[op.a] = rel.At(row, op.b);
            break;
          case Op::kCheckCol:
            ok = rel.At(row, op.b) == regs[op.a];
            break;
          case Op::kCmpEq:
            ok = regs[op.a] == regs[op.b];
            break;
          case Op::kCmpNe:
            ok = !(regs[op.a] == regs[op.b]);
            break;
        }
        if (!ok) break;
      }
      if (ok) {
        found = true;
        break;
      }
    }

    if (!found) {
      if (li == 0) return true;  // exhausted the outermost level: done
      --li;                      // resume the parent cursor where it was
      continue;
    }
    if (li + 1 == depth) {
      if (!sink(regs)) return false;
      // Stay at this level; keep advancing its cursor.
    } else {
      ++li;
      entering = true;
    }
  }
}

/// True iff the program has at least one match (stops at the first).
/// Distinguishes "no match" from a cancellation abort by checking the
/// found flag, matching the legacy ComponentHasMatch contract.
bool HasMatch(const JoinProgram& p);

}  // namespace sws::logic::bytecode

#endif  // SWS_LOGIC_BYTECODE_H_
