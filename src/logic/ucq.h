#ifndef SWS_LOGIC_UCQ_H_
#define SWS_LOGIC_UCQ_H_

#include <optional>
#include <string>
#include <vector>

#include "logic/cq.h"

namespace sws::logic {

/// A union of conjunctive queries (with = and ≠), all sharing one head
/// arity. UCQ is the synthesis language of SWS(CQ, UCQ) (Section 2).
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(size_t head_arity) : head_arity_(head_arity) {}
  UnionQuery(size_t head_arity, std::vector<ConjunctiveQuery> disjuncts);

  size_t head_arity() const { return head_arity_; }
  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::vector<ConjunctiveQuery>* mutable_disjuncts() { return &disjuncts_; }
  size_t size() const { return disjuncts_.size(); }
  bool empty() const { return disjuncts_.empty(); }

  /// Adds a disjunct; aborts on head-arity mismatch.
  void Add(ConjunctiveQuery cq);

  /// A UCQ consisting of a single CQ.
  static UnionQuery Single(ConjunctiveQuery cq);

  std::optional<std::string> Validate() const;

  rel::Relation Evaluate(const rel::Database& db) const;
  bool EvaluatesNonempty(const rel::Database& db) const;

  /// True iff some disjunct is satisfiable (Normalize succeeds). Decides
  /// non-emptiness of the query over all databases.
  bool IsSatisfiable() const;

  /// Drops unsatisfiable disjuncts.
  UnionQuery PruneUnsatisfiable() const;

  /// Renames all variables by adding `offset`.
  UnionQuery ShiftVars(int offset) const;
  int MaxVar() const;

  size_t TotalSize() const;

  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;

  friend bool operator==(const UnionQuery&, const UnionQuery&) = default;

 private:
  size_t head_arity_ = 0;
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace sws::logic

#endif  // SWS_LOGIC_UCQ_H_
