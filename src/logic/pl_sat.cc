#include "logic/pl_sat.h"

#include <algorithm>
#include <cstdlib>

#include "util/common.h"

namespace sws::logic {

void Cnf::AddClause(std::vector<int> literals) {
  SWS_CHECK(!literals.empty()) << "empty clause: encode as unsat explicitly";
  for (int lit : literals) {
    SWS_CHECK(lit != 0 && std::abs(lit) <= num_vars)
        << "literal " << lit << " out of range (num_vars=" << num_vars << ")";
  }
  clauses.push_back(std::move(literals));
}

namespace {

// Recursive DPLL over an assignment vector (0 = unset, +1 = true,
// -1 = false). Clauses are scanned directly; for the problem sizes the
// decision procedures produce this is simpler and fast enough, and keeps
// the solver deterministic.
class DpllState {
 public:
  DpllState(const Cnf& cnf, SatStats* stats)
      : cnf_(cnf), assignment_(cnf.num_vars + 1, 0), stats_(stats) {}

  bool Search() {
    int status = Propagate();
    if (status < 0) return false;   // conflict
    int branch_var = PickUnassigned();
    if (branch_var == 0) return true;  // all assigned, no conflict
    for (int value : {+1, -1}) {
      ++stats_->decisions;
      std::vector<int8_t> saved = assignment_;
      assignment_[branch_var] = static_cast<int8_t>(value);
      if (Search()) return true;
      assignment_ = std::move(saved);
    }
    ++stats_->conflicts;
    return false;
  }

  std::vector<bool> Model() const {
    std::vector<bool> model(cnf_.num_vars + 1, false);
    for (int v = 1; v <= cnf_.num_vars; ++v) model[v] = assignment_[v] > 0;
    return model;
  }

 private:
  int LitValue(int lit) const {
    int v = assignment_[std::abs(lit)];
    return lit > 0 ? v : -v;
  }

  // Unit propagation to fixpoint. Returns -1 on conflict, 0 otherwise.
  int Propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& clause : cnf_.clauses) {
        int unassigned_lit = 0;
        int unassigned_count = 0;
        bool satisfied = false;
        for (int lit : clause) {
          int val = LitValue(lit);
          if (val > 0) {
            satisfied = true;
            break;
          }
          if (val == 0) {
            ++unassigned_count;
            unassigned_lit = lit;
          }
        }
        if (satisfied) continue;
        if (unassigned_count == 0) {
          ++stats_->conflicts;
          return -1;
        }
        if (unassigned_count == 1) {
          assignment_[std::abs(unassigned_lit)] =
              static_cast<int8_t>(unassigned_lit > 0 ? 1 : -1);
          ++stats_->propagations;
          changed = true;
        }
      }
    }
    return 0;
  }

  int PickUnassigned() const {
    for (int v = 1; v <= cnf_.num_vars; ++v) {
      if (assignment_[v] == 0) return v;
    }
    return 0;
  }

  const Cnf& cnf_;
  std::vector<int8_t> assignment_;
  SatStats* stats_;
};

}  // namespace

std::optional<std::vector<bool>> DpllSolver::Solve(const Cnf& cnf) {
  stats_ = SatStats();
  DpllState state(cnf, &stats_);
  if (!state.Search()) return std::nullopt;
  return state.Model();
}

namespace {

// Returns the CNF variable standing for the truth of `f`, emitting Tseitin
// defining clauses into `cnf`.
int TseitinVisit(const PlFormula& f, Cnf* cnf,
                 std::map<int, int>* var_map) {
  using Kind = PlFormula::Kind;
  switch (f.kind()) {
    case Kind::kConst: {
      int v = cnf->NewVar();
      cnf->AddClause({f.const_value() ? v : -v});
      return v;
    }
    case Kind::kVar: {
      auto it = var_map->find(f.var());
      if (it != var_map->end()) return it->second;
      int v = cnf->NewVar();
      var_map->emplace(f.var(), v);
      return v;
    }
    case Kind::kNot: {
      int child = TseitinVisit(f.children()[0], cnf, var_map);
      int v = cnf->NewVar();
      // v <-> !child
      cnf->AddClause({-v, -child});
      cnf->AddClause({v, child});
      return v;
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<int> child_vars;
      child_vars.reserve(f.children().size());
      for (const auto& c : f.children()) {
        child_vars.push_back(TseitinVisit(c, cnf, var_map));
      }
      int v = cnf->NewVar();
      if (f.kind() == Kind::kAnd) {
        // v -> c_i, and (c_1 & ... & c_k) -> v.
        std::vector<int> long_clause = {v};
        for (int c : child_vars) {
          cnf->AddClause({-v, c});
          long_clause.push_back(-c);
        }
        cnf->AddClause(std::move(long_clause));
      } else {
        // c_i -> v, and v -> (c_1 | ... | c_k).
        std::vector<int> long_clause = {-v};
        for (int c : child_vars) {
          cnf->AddClause({v, -c});
          long_clause.push_back(c);
        }
        cnf->AddClause(std::move(long_clause));
      }
      return v;
    }
  }
  SWS_CHECK(false) << "unreachable";
  return 0;
}

}  // namespace

Cnf TseitinTransform(const PlFormula& formula,
                     std::map<int, int>* formula_var_to_cnf_var) {
  Cnf cnf;
  int root = TseitinVisit(formula, &cnf, formula_var_to_cnf_var);
  cnf.AddClause({root});
  return cnf;
}

bool PlSatisfiable(const PlFormula& formula, std::map<int, bool>* model,
                   SatStats* stats) {
  PlFormula simplified = formula.Simplify();
  if (simplified.is_const()) {
    if (stats != nullptr) *stats = SatStats();
    if (simplified.const_value() && model != nullptr) model->clear();
    return simplified.const_value();
  }
  std::map<int, int> var_map;
  Cnf cnf = TseitinTransform(simplified, &var_map);
  DpllSolver solver;
  auto result = solver.Solve(cnf);
  if (stats != nullptr) *stats = solver.stats();
  if (!result.has_value()) return false;
  if (model != nullptr) {
    model->clear();
    for (const auto& [formula_var, cnf_var] : var_map) {
      (*model)[formula_var] = (*result)[cnf_var];
    }
  }
  return true;
}

bool PlSatisfiable(const PlFormula& formula) {
  return PlSatisfiable(formula, nullptr, nullptr);
}

bool PlValid(const PlFormula& formula) {
  return !PlSatisfiable(PlFormula::Not(formula));
}

bool PlEquivalent(const PlFormula& a, const PlFormula& b) {
  return PlValid(PlFormula::Iff(a, b));
}

}  // namespace sws::logic
