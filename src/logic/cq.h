#ifndef SWS_LOGIC_CQ_H_
#define SWS_LOGIC_CQ_H_

#include <initializer_list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "logic/term.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace sws::logic {

/// A positive relational atom R(t_1, ..., t_k).
struct Atom {
  std::string relation;
  std::vector<Term> args;

  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;
  friend bool operator==(const Atom&, const Atom&) = default;
  friend std::strong_ordering operator<=>(const Atom&, const Atom&) = default;
};

/// An (in)equality comparison t_1 = t_2 or t_1 != t_2 between terms.
/// The paper's CQ and UCQ classes include '=' and '≠' (Section 2).
struct Comparison {
  Term lhs;
  Term rhs;
  bool is_equality = true;

  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;
  friend bool operator==(const Comparison&, const Comparison&) = default;
  friend std::strong_ordering operator<=>(const Comparison&, const Comparison&) =
      default;
};

/// Evaluation engine selection, for differential testing and ablation
/// benchmarks. All three are semantically identical.
enum class CqEngine {
  /// Register-bytecode executor over columnar relations (logic/
  /// bytecode.h) — the default since the PR 7 interning refactor.
  kBytecode,
  /// The PR 3 compiled JoinPlan (recursive template walker). Retained as
  /// the mid-fidelity differential reference and ablation baseline.
  kIndexedPlan,
  /// Plain backtracking join in textual atom order — the oracle.
  kNaive,
};

/// A conjunctive query with equality and inequality:
///   head(x̄) :- A_1, ..., A_m, c_1, ..., c_l
/// where the A_i are positive atoms and the c_j are (in)equalities.
///
/// Safety: every variable in the head or in a comparison must occur in
/// some body atom (checked by Validate()). Evaluation compiles the body
/// into an indexed join plan: atoms are greedily ordered by bound-argument
/// count (ties toward smaller relations), each atom probes a per-relation
/// hash index over its bound columns (rel::Relation::GetIndex), bindings
/// live in a flat slot vector, and each comparison is checked exactly once
/// at the first point both sides are bound.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<Term> head, std::vector<Atom> body,
                   std::vector<Comparison> comparisons = {})
      : head_(std::move(head)),
        body_(std::move(body)),
        comparisons_(std::move(comparisons)) {}

  const std::vector<Term>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }
  size_t head_arity() const { return head_.size(); }

  std::vector<Term>* mutable_head() { return &head_; }
  std::vector<Atom>* mutable_body() { return &body_; }
  std::vector<Comparison>* mutable_comparisons() { return &comparisons_; }

  /// Checks safety and that atoms of the same relation agree on arity.
  /// Returns an error message, or nullopt if well-formed.
  std::optional<std::string> Validate() const;

  /// Evaluates over the database. Atoms referring to relations absent from
  /// the database match nothing. Inequalities compare values directly
  /// (labeled nulls are plain values: distinct labels are distinct).
  rel::Relation Evaluate(const rel::Database& db) const;

  /// Evaluates with an explicit engine (see CqEngine). Evaluate() is
  /// EvaluateWith(db, CqEngine::kBytecode).
  rel::Relation EvaluateWith(const rel::Database& db, CqEngine engine) const;

  /// Reference evaluation: plain backtracking join in textual atom order,
  /// with no greedy reordering and no connected-component decomposition.
  /// Semantically identical to Evaluate; kept as the ablation baseline
  /// for the benchmarks (guard-heavy unfolded queries are exponential
  /// without the optimizations).
  rel::Relation EvaluateNaive(const rel::Database& db) const;

  /// True iff Evaluate(db) would be nonempty (stops at first match).
  bool EvaluatesNonempty(const rel::Database& db) const;

  /// All variable ids occurring anywhere in the query.
  std::set<int> Vars() const;
  /// All terms (variables and constants) occurring anywhere.
  std::vector<Term> AllTerms() const;
  /// All relation names occurring in the body.
  std::set<std::string> BodyRelations() const;

  /// Applies a variable substitution to every term.
  ConjunctiveQuery Substitute(const std::map<int, Term>& map) const;

  /// Renames all variables by adding `offset` (for making queries
  /// variable-disjoint before unfolding or containment tests).
  ConjunctiveQuery ShiftVars(int offset) const;
  /// Largest variable id used, or -1 if none.
  int MaxVar() const;

  /// Eliminates '=' comparisons by unification. Returns nullopt if the
  /// equalities are unsatisfiable (two distinct constants equated) or an
  /// inequality became trivially false (t != t). The result has only
  /// '≠' comparisons, with duplicates removed.
  std::optional<ConjunctiveQuery> Normalize() const;

  /// Canonical ("frozen") database: every variable v becomes the labeled
  /// null _N{v}. Requires a normalized query. Also returns the frozen
  /// head through `frozen_head` if non-null.
  rel::Database CanonicalDatabase(rel::Tuple* frozen_head = nullptr) const;

  /// A consistent normalized CQ is satisfiable (its canonical database is
  /// a witness); convenience wrapper over Normalize().
  bool IsSatisfiable() const;

  size_t Size() const { return body_.size() + comparisons_.size(); }

  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;

  friend bool operator==(const ConjunctiveQuery&, const ConjunctiveQuery&) =
      default;

 private:
  /// The legacy JoinPlan evaluation (CqEngine::kIndexedPlan).
  rel::Relation EvaluateIndexed(const rel::Database& db) const;

  std::vector<Term> head_;
  std::vector<Atom> body_;
  std::vector<Comparison> comparisons_;
};

/// Binding of query variables to values during evaluation / homomorphism
/// search. Bindings hold a handful of variables at a time, so this is a
/// flat small-vector map with linear lookup: with packed one-word Values
/// the whole binding sits in one or two cache lines, and find/erase beat
/// the node-based std::map it replaced by a wide margin in the FO/CQ
/// interpreter loops (the peer-store runtime workload resolves terms
/// millions of times per run). Iteration order is insertion order with
/// swap-removal on erase — unspecified, like the unordered maps it
/// mirrors; no caller may depend on it.
class Binding {
 public:
  using value_type = std::pair<int, rel::Value>;
  using const_iterator = std::vector<value_type>::const_iterator;

  Binding() = default;
  Binding(std::initializer_list<value_type> init) : entries_(init) {}

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const_iterator find(int var) const {
    auto it = entries_.begin();
    while (it != entries_.end() && it->first != var) ++it;
    return it;
  }
  /// Returns the value bound to `var`, default-inserting like std::map.
  rel::Value& operator[](int var) {
    for (auto& e : entries_) {
      if (e.first == var) return e.second;
    }
    entries_.emplace_back(var, rel::Value());
    return entries_.back().second;
  }
  /// Inserts only if `var` is unbound (std::map::emplace semantics).
  void emplace(int var, const rel::Value& v) {
    if (find(var) == end()) entries_.emplace_back(var, v);
  }
  void erase(int var) {
    for (auto& e : entries_) {
      if (e.first == var) {
        e = entries_.back();
        entries_.pop_back();
        return;
      }
    }
  }

 private:
  std::vector<value_type> entries_;
};

/// Resolves a term under a binding; nullopt if an unbound variable.
std::optional<rel::Value> ResolveTerm(const Term& term, const Binding& binding);

/// Enumerates all bindings of `body` atoms (plus comparisons) against the
/// database, invoking `on_match` for each complete binding. If `on_match`
/// returns false, enumeration stops early. Returns false iff stopped early.
bool EnumerateMatches(const std::vector<Atom>& body,
                      const std::vector<Comparison>& comparisons,
                      const rel::Database& db,
                      const std::function<bool(const Binding&)>& on_match);

}  // namespace sws::logic

#endif  // SWS_LOGIC_CQ_H_
