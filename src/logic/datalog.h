#ifndef SWS_LOGIC_DATALOG_H_
#define SWS_LOGIC_DATALOG_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "relational/database.h"

namespace sws::logic {

/// Positive datalog: rules head :- body over EDB and IDB predicates,
/// evaluated by naive fixpoint iteration. The paper uses *sirups*
/// (single-rule programs with one ground fact, [19]) as the
/// exptime-complete source of the SWS(CQ, UCQ) non-emptiness lower
/// bound (Theorem 4.1(2)); models/sirup_sws.h gives the constructive
/// embedding of sirups into recursive SWS's.
struct DatalogRule {
  Atom head;
  std::vector<Atom> body;

  std::string ToString() const;
};

class DatalogProgram {
 public:
  DatalogProgram() = default;

  void AddRule(DatalogRule rule);
  /// A ground fact (an atom with constant arguments only).
  void AddFact(Atom fact);

  const std::vector<DatalogRule>& rules() const { return rules_; }
  const std::vector<Atom>& facts() const { return facts_; }

  /// IDB predicates: those occurring in some rule head or fact.
  std::set<std::string> IdbPredicates() const;

  /// Safety (head variables bound in the body; facts ground) and arity
  /// consistency.
  std::optional<std::string> Validate() const;

  struct FixpointResult {
    rel::Database idb;          // one relation per IDB predicate
    size_t iterations = 0;
    bool converged = true;      // false iff max_iterations was hit
  };

  /// Naive bottom-up fixpoint over the EDB (IDB relations grow
  /// monotonically until stable or max_iterations rounds).
  FixpointResult Evaluate(const rel::Database& edb,
                          size_t max_iterations = 10000) const;

  std::string ToString() const;

 private:
  std::vector<DatalogRule> rules_;
  std::vector<Atom> facts_;
};

/// A sirup: a single rule plus a single ground fact over one IDB
/// predicate [19].
struct Sirup {
  DatalogRule rule;
  Atom ground_fact;

  DatalogProgram AsProgram() const;
  std::optional<std::string> Validate() const;
};

}  // namespace sws::logic

#endif  // SWS_LOGIC_DATALOG_H_
