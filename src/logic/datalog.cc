#include "logic/datalog.h"

#include <sstream>

#include "util/common.h"

namespace sws::logic {

std::string DatalogRule::ToString() const {
  std::ostringstream out;
  out << head.ToString() << " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out << ", ";
    out << body[i].ToString();
  }
  if (body.empty()) out << "true";
  return out.str();
}

void DatalogProgram::AddRule(DatalogRule rule) {
  rules_.push_back(std::move(rule));
}

void DatalogProgram::AddFact(Atom fact) {
  for (const Term& t : fact.args) {
    SWS_CHECK(t.is_const()) << "facts must be ground: " << fact.ToString();
  }
  facts_.push_back(std::move(fact));
}

std::set<std::string> DatalogProgram::IdbPredicates() const {
  std::set<std::string> idb;
  for (const DatalogRule& r : rules_) idb.insert(r.head.relation);
  for (const Atom& f : facts_) idb.insert(f.relation);
  return idb;
}

std::optional<std::string> DatalogProgram::Validate() const {
  std::map<std::string, size_t> arities;
  auto check_arity = [&arities](const Atom& a) -> std::optional<std::string> {
    auto [it, inserted] = arities.emplace(a.relation, a.args.size());
    if (!inserted && it->second != a.args.size()) {
      return "predicate " + a.relation + " used with inconsistent arities";
    }
    return std::nullopt;
  };
  for (const DatalogRule& r : rules_) {
    if (auto err = check_arity(r.head); err.has_value()) return err;
    std::set<int> body_vars;
    for (const Atom& a : r.body) {
      if (auto err = check_arity(a); err.has_value()) return err;
      for (const Term& t : a.args) {
        if (t.is_var()) body_vars.insert(t.var());
      }
    }
    for (const Term& t : r.head.args) {
      if (t.is_var() && body_vars.count(t.var()) == 0) {
        return "unsafe rule head variable in " + r.ToString();
      }
    }
  }
  for (const Atom& f : facts_) {
    if (auto err = check_arity(f); err.has_value()) return err;
  }
  return std::nullopt;
}

DatalogProgram::FixpointResult DatalogProgram::Evaluate(
    const rel::Database& edb, size_t max_iterations) const {
  SWS_CHECK(!Validate().has_value()) << *Validate();
  FixpointResult result;
  // Working database: EDB plus (growing) IDB relations.
  rel::Database work = edb;
  std::map<std::string, size_t> idb_arity;
  for (const DatalogRule& r : rules_) {
    idb_arity.emplace(r.head.relation, r.head.args.size());
  }
  for (const Atom& f : facts_) idb_arity.emplace(f.relation, f.args.size());
  for (const auto& [name, arity] : idb_arity) {
    SWS_CHECK(!edb.Contains(name))
        << "IDB predicate " << name << " clashes with an EDB relation";
    work.Set(name, rel::Relation(arity));
  }
  for (const Atom& f : facts_) {
    rel::Tuple t;
    for (const Term& term : f.args) t.push_back(term.value());
    work.GetMutable(f.relation)->Insert(std::move(t));
  }

  bool changed = true;
  while (changed && result.iterations < max_iterations) {
    changed = false;
    ++result.iterations;
    for (const DatalogRule& r : rules_) {
      ConjunctiveQuery q(r.head.args, r.body);
      rel::Relation derived = q.Evaluate(work);
      rel::Relation* target = work.GetMutable(r.head.relation);
      for (const rel::Tuple& t : derived) {
        if (target->Insert(t)) changed = true;
      }
    }
  }
  result.converged = !changed;
  for (const auto& [name, arity] : idb_arity) {
    result.idb.Set(name, work.Get(name));
  }
  return result;
}

std::string DatalogProgram::ToString() const {
  std::ostringstream out;
  for (const Atom& f : facts_) out << f.ToString() << ".\n";
  for (const DatalogRule& r : rules_) out << r.ToString() << ".\n";
  return out.str();
}

DatalogProgram Sirup::AsProgram() const {
  DatalogProgram program;
  program.AddRule(rule);
  program.AddFact(ground_fact);
  return program;
}

std::optional<std::string> Sirup::Validate() const {
  if (ground_fact.relation != rule.head.relation) {
    return "a sirup's ground fact must be over the rule's head predicate";
  }
  return AsProgram().Validate();
}

}  // namespace sws::logic
