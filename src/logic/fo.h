#ifndef SWS_LOGIC_FO_H_
#define SWS_LOGIC_FO_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/cq.h"
#include "logic/term.h"
#include "relational/database.h"

namespace sws::logic {

/// A first-order formula over relational atoms and (in)equality, with the
/// usual connectives and quantifiers. FO is the query language of
/// SWS(FO, FO), which captures the data-driven transducer models of
/// [Abiteboul et al.; Deutsch–Sui–Vianu; Spielmann] (Section 3).
///
/// Evaluation uses active-domain semantics: quantifiers range over the
/// values occurring in the database plus the constants of the formula —
/// the standard finite-model reading used by the transducer literature.
class FoFormula {
 public:
  enum class Kind { kAtom, kEq, kNot, kAnd, kOr, kExists, kForall };

  /// Default-constructed formula is "false" (empty disjunction).
  FoFormula();

  static FoFormula MakeAtom(std::string relation, std::vector<Term> args);
  static FoFormula Eq(Term lhs, Term rhs);
  static FoFormula Neq(Term lhs, Term rhs) { return Not(Eq(lhs, rhs)); }
  static FoFormula Not(FoFormula f);
  static FoFormula And(std::vector<FoFormula> fs);
  static FoFormula Or(std::vector<FoFormula> fs);
  static FoFormula And(FoFormula a, FoFormula b);
  static FoFormula Or(FoFormula a, FoFormula b);
  static FoFormula Implies(FoFormula a, FoFormula b);
  static FoFormula Exists(int var, FoFormula body);
  static FoFormula Exists(const std::vector<int>& vars, FoFormula body);
  static FoFormula Forall(int var, FoFormula body);
  static FoFormula Forall(const std::vector<int>& vars, FoFormula body);
  static FoFormula True();
  static FoFormula False();

  Kind kind() const;
  /// kAtom accessors.
  const std::string& relation() const;
  const std::vector<Term>& args() const;
  /// kEq accessors: args()[0], args()[1] are the two sides.
  /// kNot/kAnd/kOr children; kExists/kForall single child.
  const std::vector<FoFormula>& children() const;
  /// kExists/kForall bound variable.
  int bound_var() const;

  /// Evaluates under a binding of free variables over the given active
  /// domain. All free variables must be bound.
  bool Eval(const rel::Database& db, const std::set<rel::Value>& domain,
            const Binding& binding) const;

  /// Reusable per-evaluation state for repeated EvalMutable calls over
  /// one fixed database (FoQuery::Evaluate invokes the formula once per
  /// head-variable assignment — O(|adom|^k) times). Caches each atom
  /// node's resolved relation so the inner loop skips the two
  /// string-keyed database lookups per atom, and reuses one probe-tuple
  /// buffer instead of allocating per atom evaluation. Must not outlive
  /// the database it was first used with.
  struct EvalContext {
    std::unordered_map<const void*, const rel::Relation*> atom_relations;
    rel::Tuple probe;
  };

  /// As above, but extends `binding` in place while walking quantifiers
  /// (saving and restoring shadowed entries) instead of copying the map
  /// at every quantifier node; `binding` is unchanged on return. This is
  /// the hot path — Eval copies once and delegates here. (A separate
  /// name, not an overload: `Eval(db, domain, {})` must keep meaning an
  /// empty binding, not a null pointer.) Pass the same `ctx` across
  /// calls against one database to amortize atom-relation resolution.
  bool EvalMutable(const rel::Database& db,
                   const std::set<rel::Value>& domain, Binding* binding,
                   EvalContext* ctx = nullptr) const;

  /// Free variables of the formula.
  std::set<int> FreeVars() const;
  /// All constants occurring in the formula.
  std::set<rel::Value> Constants() const;
  /// Relation name → arity for every atom (aborts on inconsistent use).
  std::map<std::string, size_t> RelationArities() const;

  size_t Size() const;

  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;

 private:
  struct Node;
  explicit FoFormula(std::shared_ptr<const Node> node);
  std::shared_ptr<const Node> node_;
};

/// An FO query: a formula with an ordered tuple of free head variables
/// (variables may repeat; constants are allowed as head terms).
class FoQuery {
 public:
  FoQuery() = default;
  FoQuery(std::vector<Term> head, FoFormula formula)
      : head_(std::move(head)), formula_(std::move(formula)) {}

  const std::vector<Term>& head() const { return head_; }
  const FoFormula& formula() const { return formula_; }
  size_t head_arity() const { return head_.size(); }

  /// Head variables must be free in the formula or constants; every free
  /// variable of the formula must occur in the head (domain-independent
  /// presentation: non-head variables must be quantified).
  std::optional<std::string> Validate() const;

  /// Active-domain evaluation: head variables range over adom(db) plus the
  /// formula's constants.
  rel::Relation Evaluate(const rel::Database& db) const;

  /// Converts a CQ (with = and ≠) to an equivalent FO query.
  static FoQuery FromCq(const ConjunctiveQuery& cq);

  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;

 private:
  std::vector<Term> head_;
  FoFormula formula_;
};

/// Result of a bounded-model satisfiability search.
struct FoBoundedSatResult {
  bool found = false;
  rel::Database witness;       // valid iff found
  uint64_t databases_checked = 0;
};

/// Searches for a finite model of the FO *sentence* over domains
/// {1, ..., k} for k = 1..max_domain_size. FO satisfiability is
/// undecidable (Trakhtenbrot / [1]); this bounded search is the
/// semi-decision procedure referenced by Theorem 4.1(1): the reduction
/// from FO satisfiability makes all SWS(FO, FO) analyses undecidable, and
/// only bounded variants are implementable.
FoBoundedSatResult FoBoundedSat(const FoFormula& sentence,
                                size_t max_domain_size,
                                uint64_t max_databases = UINT64_MAX);

}  // namespace sws::logic

#endif  // SWS_LOGIC_FO_H_
