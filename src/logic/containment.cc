#include "logic/containment.h"

#include <algorithm>

#include "util/common.h"

namespace sws::logic {

namespace {

// Recursive restricted-growth enumeration: variable i joins one of the
// existing blocks or opens a new one. blocks[b] is the representative term
// of block b (a constant for constant blocks, else the first variable).
bool EnumerateFrom(const std::vector<int>& vars, size_t index,
                   std::vector<Term>* blocks,
                   std::map<int, Term>* assignment,
                   const std::function<bool(const std::map<int, Term>&)>& cb) {
  if (index == vars.size()) return cb(*assignment);
  int v = vars[index];
  // Open a new block represented by v itself (first, so the all-distinct
  // identity partition is enumerated before any merging — callers that
  // search for candidates find the cheap ones early).
  (*assignment)[v] = Term::Var(v);
  blocks->push_back(Term::Var(v));
  bool cont = EnumerateFrom(vars, index + 1, blocks, assignment, cb);
  blocks->pop_back();
  if (!cont) {
    assignment->erase(v);
    return false;
  }
  // Join an existing block.
  for (size_t b = 0; b < blocks->size(); ++b) {
    (*assignment)[v] = (*blocks)[b];
    if (!EnumerateFrom(vars, index + 1, blocks, assignment, cb)) {
      assignment->erase(v);
      return false;
    }
  }
  assignment->erase(v);
  return true;
}

}  // namespace

bool EnumerateIdentifications(
    const std::vector<Term>& terms,
    const std::function<bool(const std::map<int, Term>&)>& on_partition) {
  std::vector<Term> blocks;
  std::vector<int> vars;
  for (const Term& t : terms) {
    if (t.is_const()) {
      if (std::find(blocks.begin(), blocks.end(), t) == blocks.end()) {
        blocks.push_back(t);
      }
    } else if (std::find(vars.begin(), vars.end(), t.var()) == vars.end()) {
      vars.push_back(t.var());
    }
  }
  std::map<int, Term> assignment;
  return EnumerateFrom(vars, 0, &blocks, &assignment,
                       on_partition);
}

namespace {

// True iff the frozen head tuple is in q2 evaluated over db.
bool HeadProducedBy(const UnionQuery& q2, const rel::Database& db,
                    const rel::Tuple& head) {
  for (const ConjunctiveQuery& d : q2.disjuncts()) {
    bool found = false;
    EnumerateMatches(d.body(), d.comparisons(), db,
                     [&](const Binding& binding) {
                       rel::Tuple t;
                       t.reserve(d.head().size());
                       for (const Term& term : d.head()) {
                         auto v = ResolveTerm(term, binding);
                         SWS_CHECK(v.has_value());
                         t.push_back(*v);
                       }
                       if (t == head) {
                         found = true;
                         return false;  // stop
                       }
                       return true;
                     });
    if (found) return true;
  }
  return false;
}

bool AnyDisjunctHasComparisons(const UnionQuery& q) {
  for (const auto& d : q.disjuncts()) {
    if (!d.comparisons().empty()) return true;
  }
  return false;
}

}  // namespace

bool CqContainedIn(const ConjunctiveQuery& q1_in, const UnionQuery& q2_in,
                   ContainmentStats* stats) {
  SWS_CHECK_EQ(q1_in.head_arity(), q2_in.head_arity());
  auto normalized = q1_in.Normalize();
  if (!normalized.has_value()) return true;  // unsatisfiable Q1
  const ConjunctiveQuery& q1 = *normalized;
  // Normalize the right-hand side too: '=' comparisons are eliminated by
  // unification (they may bind head variables that occur in no body
  // atom, e.g. in view expansions) and unsatisfiable disjuncts dropped.
  UnionQuery q2 = q2_in.PruneUnsatisfiable();

  // Fast path: right-hand side comparison-free — one canonical database.
  if (!AnyDisjunctHasComparisons(q2)) {
    rel::Tuple head;
    rel::Database db = q1.CanonicalDatabase(&head);
    if (stats != nullptr) ++stats->canonical_databases;
    return HeadProducedBy(q2, db, head);
  }

  // Full Klug-style test: enumerate identification partitions over the
  // variables of Q1 and the constants of both queries.
  std::vector<Term> terms = q1.AllTerms();
  std::set<rel::Value> constants;
  for (const Term& t : terms) {
    if (t.is_const()) constants.insert(t.value());
  }
  for (const auto& d : q2.disjuncts()) {
    for (const Term& t : d.AllTerms()) {
      if (t.is_const()) constants.insert(t.value());
    }
  }
  std::vector<Term> items;
  for (const auto& c : constants) items.push_back(Term::Const(c));
  for (const Term& t : terms) {
    if (t.is_var()) items.push_back(t);
  }

  bool contained = true;
  EnumerateIdentifications(items, [&](const std::map<int, Term>& ident) {
    // Instantiate Q1 under the identification.
    ConjunctiveQuery q1_pi = q1.Substitute(ident);
    // Skip identifications violating Q1's inequalities: they correspond to
    // no database satisfying Q1's body+comparisons.
    for (const Comparison& c : q1_pi.comparisons()) {
      SWS_CHECK(!c.is_equality);
      if (c.lhs == c.rhs) return true;  // inconsistent branch; continue
    }
    if (stats != nullptr) {
      ++stats->partitions_checked;
      ++stats->canonical_databases;
    }
    rel::Tuple head;
    rel::Database db = q1_pi.CanonicalDatabase(&head);
    if (!HeadProducedBy(q2, db, head)) {
      contained = false;
      return false;  // counterexample found; stop
    }
    return true;
  });
  return contained;
}

bool UcqContainedIn(const UnionQuery& q1, const UnionQuery& q2,
                    ContainmentStats* stats) {
  for (const ConjunctiveQuery& d : q1.disjuncts()) {
    if (!CqContainedIn(d, q2, stats)) return false;
  }
  return true;
}

bool UcqEquivalent(const UnionQuery& a, const UnionQuery& b,
                   ContainmentStats* stats) {
  return UcqContainedIn(a, b, stats) && UcqContainedIn(b, a, stats);
}

bool CqContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   ContainmentStats* stats) {
  return CqContainedIn(q1, UnionQuery::Single(q2), stats);
}

}  // namespace sws::logic
