#include "logic/bytecode.h"

#include <set>

#include "util/common.h"

namespace sws::logic::bytecode {

JoinProgram Compile(const std::vector<Atom>& ordered,
                    const std::vector<Comparison>& comparisons,
                    const rel::Database& db) {
  JoinProgram program;

  // Pass 1: assign variable registers in first-occurrence order (the
  // same numbering the legacy JoinPlan gives its slots, which keeps the
  // two paths easy to differential-test).
  for (const Atom& atom : ordered) {
    for (const Term& term : atom.args) {
      if (term.is_var() && program.var_reg.count(term.var()) == 0) {
        const int reg = static_cast<int>(program.var_reg.size());
        program.var_reg.emplace(term.var(), reg);
      }
    }
  }
  SWS_CHECK_LE(program.var_reg.size(), size_t{UINT16_MAX});
  program.num_var_regs = static_cast<uint16_t>(program.var_reg.size());

  std::vector<rel::Value> constants;
  std::map<rel::Value, uint16_t> const_reg_of;
  auto const_reg = [&](const rel::Value& v) -> uint16_t {
    auto it = const_reg_of.find(v);
    if (it != const_reg_of.end()) return it->second;
    const uint16_t reg =
        static_cast<uint16_t>(program.num_var_regs + constants.size());
    constants.push_back(v);
    const_reg_of.emplace(v, reg);
    return reg;
  };

  // Constant-vs-constant comparisons resolve at compile time.
  std::vector<bool> attached(comparisons.size(), false);
  for (size_t ci = 0; ci < comparisons.size(); ++ci) {
    const Comparison& c = comparisons[ci];
    if (c.lhs.is_const() && c.rhs.is_const()) {
      attached[ci] = true;
      if ((c.lhs.value() == c.rhs.value()) != c.is_equality) {
        program.comparison_failed = true;
      }
    }
  }

  // Pass 2: one Level per atom.
  std::set<int> loaded;       // vars with their kLoad already emitted
  std::set<int> bound_prior;  // vars bound at fully-compiled levels
  for (const Atom& atom : ordered) {
    const rel::Relation* relation =
        db.Contains(atom.relation) ? &db.Get(atom.relation) : nullptr;
    if (relation != nullptr && relation->arity() != atom.args.size()) {
      relation = nullptr;
    }
    if (relation == nullptr) {  // no facts: the whole body matches nothing
      program.never_matches = true;
      return program;
    }
    Level level;
    level.relation = relation;
    level.ops_begin = static_cast<uint32_t>(program.ops.size());
    level.keys_begin = static_cast<uint32_t>(program.keys.size());
    uint64_t mask = 0;
    rel::Tuple key_template;  // parallel to the masked columns, ascending
    for (size_t col = 0; col < atom.args.size(); ++col) {
      const Term& term = atom.args[col];
      if (term.is_const()) {
        if (col < 64) {
          mask |= uint64_t{1} << col;
          key_template.push_back(term.value());  // prefilled, never rewritten
        } else {
          program.ops.push_back({Op::kCheckCol, const_reg(term.value()),
                                 static_cast<uint32_t>(col)});
        }
        continue;
      }
      const uint16_t reg =
          static_cast<uint16_t>(program.var_reg.at(term.var()));
      if (loaded.count(term.var()) == 0) {  // first occurrence: bind here
        loaded.insert(term.var());
        program.ops.push_back({Op::kLoad, reg, static_cast<uint32_t>(col)});
      } else if (bound_prior.count(term.var()) > 0 && col < 64) {
        mask |= uint64_t{1} << col;  // bound earlier: probe key component
        program.keys.push_back(
            {static_cast<uint32_t>(key_template.size()), reg});
        key_template.push_back(rel::Value());  // rewritten per probe
      } else {
        // Repeated within this atom (its register is written by an
        // earlier kLoad of the same level) or beyond indexable columns.
        program.ops.push_back(
            {Op::kCheckCol, reg, static_cast<uint32_t>(col)});
      }
    }
    if (mask != 0) {
      level.index = relation->GetIndex(mask);
    }
    // Attach each comparison at the first level where both sides are
    // bound; it then costs exactly one compare per candidate row.
    for (size_t ci = 0; ci < comparisons.size(); ++ci) {
      if (attached[ci]) continue;
      const Comparison& c = comparisons[ci];
      uint16_t lhs, rhs;
      if (c.lhs.is_var()) {
        if (loaded.count(c.lhs.var()) == 0) continue;
        lhs = static_cast<uint16_t>(program.var_reg.at(c.lhs.var()));
      } else {
        lhs = const_reg(c.lhs.value());
      }
      if (c.rhs.is_var()) {
        if (loaded.count(c.rhs.var()) == 0) continue;
        rhs = static_cast<uint16_t>(program.var_reg.at(c.rhs.var()));
      } else {
        rhs = const_reg(c.rhs.value());
      }
      attached[ci] = true;
      program.ops.push_back(
          {c.is_equality ? Op::kCmpEq : Op::kCmpNe, lhs, rhs});
    }
    for (const Term& t : atom.args) {
      if (t.is_var()) bound_prior.insert(t.var());
    }
    level.ops_end = static_cast<uint32_t>(program.ops.size());
    level.keys_end = static_cast<uint32_t>(program.keys.size());
    program.key_templates.push_back(std::move(key_template));
    program.levels.push_back(std::move(level));
  }

  program.reg_init.assign(program.num_var_regs, rel::Value());
  program.reg_init.insert(program.reg_init.end(), constants.begin(),
                          constants.end());
  return program;
}

bool HasMatch(const JoinProgram& p) {
  bool found = false;
  Run(p, [&found](const std::vector<rel::Value>&) {
    found = true;
    return false;  // one witness suffices
  });
  return found;
}

}  // namespace sws::logic::bytecode
