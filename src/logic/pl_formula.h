#ifndef SWS_LOGIC_PL_FORMULA_H_
#define SWS_LOGIC_PL_FORMULA_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sws::logic {

/// An immutable propositional-logic formula over integer-identified
/// variables. PL is the query language of SWS(PL, PL): transition queries
/// read input messages that are truth assignments, and synthesis queries
/// combine the Boolean action registers of successor states (Section 2).
///
/// Formulas are shared immutable trees; copying is cheap.
class PlFormula {
 public:
  enum class Kind { kConst, kVar, kNot, kAnd, kOr };

  /// Default-constructed formula is the constant false.
  PlFormula() : PlFormula(False()) {}

  static PlFormula True() { return Constant(true); }
  static PlFormula False() { return Constant(false); }
  static PlFormula Constant(bool value);
  static PlFormula Var(int id);
  static PlFormula Not(PlFormula f);
  static PlFormula And(std::vector<PlFormula> fs);
  static PlFormula Or(std::vector<PlFormula> fs);
  static PlFormula And(PlFormula a, PlFormula b);
  static PlFormula Or(PlFormula a, PlFormula b);
  /// a → b, i.e. ¬a ∨ b.
  static PlFormula Implies(PlFormula a, PlFormula b);
  /// a ↔ b.
  static PlFormula Iff(PlFormula a, PlFormula b);

  Kind kind() const;
  /// For kConst nodes: the constant value.
  bool const_value() const;
  /// For kVar nodes: the variable id.
  int var() const;
  /// For kNot/kAnd/kOr nodes: the children (one for kNot).
  const std::vector<PlFormula>& children() const;

  bool is_const() const { return kind() == Kind::kConst; }

  /// Evaluates under the assignment "variable id → truth value". Variables
  /// absent from `true_vars` are false (input messages are represented as
  /// sets of true variables, as in Section 2).
  bool Eval(const std::set<int>& true_vars) const;
  /// Evaluates under an arbitrary assignment function (named differently
  /// to avoid brace-initializer overload ambiguity with the set form).
  bool EvalWith(const std::function<bool(int)>& assignment) const;

  /// Adds all variable ids occurring in the formula to `out`.
  void CollectVars(std::set<int>* out) const;
  std::set<int> Vars() const;

  /// Simultaneously replaces variables per the map; unmapped variables are
  /// left in place.
  PlFormula Substitute(const std::map<int, PlFormula>& map) const;

  /// Constant-folds and flattens nested conjunctions/disjunctions.
  PlFormula Simplify() const;

  /// Number of AST nodes.
  size_t Size() const;

  /// Structural equality (not logical equivalence; see pl_sat.h for that).
  bool StructurallyEquals(const PlFormula& other) const;

  /// Renders with variable names supplied by `name`; by default variables
  /// print as x<id>.
  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;

 private:
  struct Node;
  explicit PlFormula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Maps human-readable variable names to PL variable ids, for examples and
/// tests. Ids are assigned densely from 0 in first-use order.
class PlVarPool {
 public:
  /// Id for the name, allocating if new.
  int Id(const std::string& name);
  /// Formula Var(Id(name)).
  PlFormula Var(const std::string& name);
  /// Name for an id; "x<id>" if the id was never named.
  std::string Name(int id) const;
  size_t size() const { return names_.size(); }

  /// A naming function suitable for PlFormula::ToString.
  std::function<std::string(int)> Namer() const;

 private:
  std::map<std::string, int> ids_;
  std::vector<std::string> names_;
};

}  // namespace sws::logic

#endif  // SWS_LOGIC_PL_FORMULA_H_
